"""Tests for the experiment disk cache and the parallel runner mode."""

import json


from repro.experiments import (
    ComparisonRun,
    ExperimentCache,
    ExperimentRunner,
    MeasuredRun,
    cache_key,
)
from repro.experiments.runner import _compare_worker
from repro.runtime.hashtable import TableStats
from repro.workloads.base import PaperNumbers, Workload
from repro.workloads.registry import get_workload

_SOURCE = """
int lut[8] = {3, 1, 4, 1, 5, 9, 2, 6};

static int classify(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 8; i++)
        r += lut[i] * ((v >> (i & 3)) & 15) + v % (i + 2);
    return r;
}

int main(void) {
    int acc = 0;
    while (__input_avail()) {
        acc += classify(__input_int());
        __output_int(acc & 255);
    }
    return acc;
}
"""

TINY = Workload(
    name="TINY_CACHE",
    source=_SOURCE,
    default_inputs=lambda: [3, 8, 21, 3, 8, 21, 40] * 30,
    alternate_inputs=lambda: [5, 9, 33, 5, 9] * 30,
    alternate_label="alt",
    key_function="classify",
    description="cache test workload",
    paper=PaperNumbers(),
    min_executions=16,
)


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key("a", 1, [2, 3]) == cache_key("a", 1, [2, 3])

    def test_sensitive_to_every_part(self):
        base = cache_key("pipeline", "src", {"x": 1}, [1, 2])
        assert cache_key("run", "src", {"x": 1}, [1, 2]) != base
        assert cache_key("pipeline", "src2", {"x": 1}, [1, 2]) != base
        assert cache_key("pipeline", "src", {"x": 2}, [1, 2]) != base
        assert cache_key("pipeline", "src", {"x": 1}, [1, 2, 3]) != base

    def test_part_boundaries_are_unambiguous(self):
        assert cache_key("ab", "c") != cache_key("a", "bc")


class TestRunStore:
    def test_roundtrip_with_stats(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        run = MeasuredRun(
            seconds=1.5, cycles=309, energy_joules=0.25, output_checksum=0xDEAD
        )
        stats = {3: TableStats(probes=10, hits=7, misses=3, collisions=1)}
        cache.store_run("k1", run, stats)
        loaded_run, loaded_stats = cache.load_run("k1")
        assert loaded_run == run
        assert loaded_stats == stats

    def test_roundtrip_without_stats(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        run = MeasuredRun(
            seconds=0.5, cycles=103, energy_joules=0.1, output_checksum=7
        )
        cache.store_run("k2", run)
        assert cache.load_run("k2") == (run, None)

    def test_miss_returns_none(self, tmp_path):
        assert ExperimentCache(tmp_path).load_run("absent") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        run = MeasuredRun(seconds=1, cycles=1, energy_joules=1, output_checksum=1)
        cache.store_run("k3", run)
        path = next((tmp_path / "runs").iterdir())
        path.write_text("{not json")
        assert cache.load_run("k3") is None

    def test_entries_are_json(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        run = MeasuredRun(seconds=1, cycles=9, energy_joules=2, output_checksum=3)
        cache.store_run("k4", run, {1: TableStats(probes=4, hits=2, misses=2)})
        doc = json.loads(next((tmp_path / "runs").iterdir()).read_text())
        assert doc["run"]["cycles"] == 9
        assert doc["stats"]["1"]["hits"] == 2

    def test_env_var_selects_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envroot"))
        assert ExperimentCache().root == tmp_path / "envroot"

    def test_clear(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        run = MeasuredRun(seconds=1, cycles=1, energy_joules=1, output_checksum=1)
        cache.store_run("k5", run)
        cache.clear()
        assert cache.load_run("k5") is None


class TestRunnerIntegration:
    def test_warm_cache_skips_recompute(self, tmp_path, monkeypatch):
        cold = ExperimentRunner(cache=ExperimentCache(tmp_path))
        first = cold.compare(TINY, "O0")

        # a second runner over the same root must not rebuild anything
        warm = ExperimentRunner(cache=ExperimentCache(tmp_path))
        import repro.experiments.runner as runner_mod

        def _boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("expensive path hit despite warm cache")

        monkeypatch.setattr(runner_mod, "ReusePipeline", _boom)
        monkeypatch.setattr(runner_mod, "compile_program", _boom)
        second = warm.compare(TINY, "O0")
        assert second.original == first.original
        assert second.transformed == first.transformed
        assert {k: vars(v) for k, v in second.table_stats.items()} == {
            k: vars(v) for k, v in first.table_stats.items()
        }

    def test_cached_results_match_uncached(self, tmp_path):
        cached = ExperimentRunner(cache=ExperimentCache(tmp_path)).compare(TINY, "O3")
        plain = ExperimentRunner().compare(TINY, "O3")
        assert cached.original == plain.original
        assert cached.transformed == plain.transformed

    def test_cache_key_separates_opt_levels(self, tmp_path):
        runner = ExperimentRunner(cache=ExperimentCache(tmp_path))
        run0 = runner.compare(TINY, "O0")
        run3 = runner.compare(TINY, "O3")
        assert run0.original.cycles != run3.original.cycles


class TestCompareMany:
    def test_normalize_config(self):
        norm = ExperimentRunner._normalize_config
        assert norm("G721_encode") == ("G721_encode", "O0", False, None)
        assert norm((TINY, "O3")) == ("TINY_CACHE", "O3", False, None)
        assert norm(("GNUGO", "O3", True, 4096)) == ("GNUGO", "O3", True, 4096)

    def test_worker_matches_compare(self, tmp_path):
        # the process-pool entry point, run in-process (tracing off)
        name = "G721_encode"
        (run,), payload = _compare_worker(
            ([(name, "O0", False, None)], str(tmp_path), True, False)
        )
        assert payload is None
        direct = ExperimentRunner().compare(get_workload(name), "O0")
        assert isinstance(run, ComparisonRun)
        assert run.original == direct.original
        assert run.transformed == direct.transformed

    def test_worker_ships_spans_when_tracing(self, tmp_path):
        name = "G721_encode"
        (run,), payload = _compare_worker(
            ([(name, "O0", False, None)], str(tmp_path), True, True)
        )
        assert isinstance(run, ComparisonRun)
        assert payload is not None
        names = {s["name"] for s in payload["spans"]}
        assert "experiment.compare" in names
        assert "pipeline.run" in names

    def test_compare_many_serial_uses_memo(self, tmp_path):
        runner = ExperimentRunner(cache=ExperimentCache(tmp_path))
        configs = [("G721_encode", "O0"), ("G721_encode", "O3")]
        runs = runner.compare_many(configs, max_workers=1)
        assert [r.opt_level for r in runs] == ["O0", "O3"]
        # absorbed into the in-memory memo: compare() returns the same runs
        assert runner.compare(get_workload("G721_encode"), "O0") is runs[0]
        assert runner.compare(get_workload("G721_encode"), "O3") is runs[1]

    def test_compare_many_parallel_two_workloads(self, tmp_path):
        runner = ExperimentRunner(cache=ExperimentCache(tmp_path))
        configs = [("G721_encode", "O0"), ("G721_decode", "O0")]
        runs = runner.compare_many(configs, max_workers=2)
        assert [r.workload for r in runs] == ["G721_encode", "G721_decode"]
        for run in runs:
            assert run.outputs_match
        # the pool workers persisted their artifacts for the parent
        warm = ExperimentRunner(cache=ExperimentCache(tmp_path))
        again = warm.compare(get_workload("G721_encode"), "O0")
        assert again.original == runs[0].original
        assert again.transformed == runs[0].transformed
