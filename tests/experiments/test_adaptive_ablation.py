"""Smoke test for the adaptive-vs-static ablation harness on a small
synthetic drift workload (the registered drift workloads are exercised
by ``benchmarks/bench_adaptive.py``; this keeps tier-1 fast)."""

from repro.experiments.adaptive import ablate_workload, workload_config
from repro.runtime.governor import GovernorPolicy
from repro.workloads.base import Workload

PROGRAM = """
int tab[8] = {5, 3, 8, 1, 9, 2, 7, 4};
static int kernel(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 10; i++)
        r += tab[i & 7] * ((v + i) & 63) + v % (i + 2);
    return r;
}
int main(void) {
    int acc = 0;
    while (__input_avail())
        acc += kernel(__input_int());
    __output_int(acc);
    return acc;
}
"""

_STATIONARY = [3, 9, 3, 17, 9, 3] * 80
# same opening, then all-distinct values: the profiled table never hits
_SHIFTED = _STATIONARY[:60] + list(range(1000, 29000, 7))

TOY_DRIFT = Workload(
    name="toy_drift",
    source=PROGRAM,
    default_inputs=lambda: list(_STATIONARY),
    alternate_inputs=lambda: list(_SHIFTED),
    alternate_label="synthetic shift",
    key_function="kernel",
    description="synthetic drift workload for the ablation harness",
    min_executions=16,
    is_variant=True,
    governor=GovernorPolicy(warmup_probes=16, window=16, probe_window=8),
)


def test_workload_config_carries_governor_override():
    config = workload_config(TOY_DRIFT)
    assert config.governor is TOY_DRIFT.governor
    assert config.min_executions == 16


def test_ablation_row_shape_and_contract():
    row = ablate_workload(TOY_DRIFT)
    assert row["outputs_match"]
    assert row["governed_cycles"] < row["static_cycles"]
    assert row["cycles_saved"] == row["static_cycles"] - row["governed_cycles"]
    assert row["transitions"], row
    # the shift shows up in the ledger's runtime verdicts
    assert any(
        not verdict["passed"] for verdict in row["ledger_governor_verdicts"].values()
    )
    disables = [
        t
        for transitions in row["transitions"].values()
        for t in transitions
        if t["reason"] == "unprofitable"
    ]
    assert disables
