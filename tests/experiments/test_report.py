"""Tests for the text renderers: sparkline guards and perf history.

The sparkline helper backs both the hit-ratio time series and the perf
trend line; its two guarded edge cases (empty series, zero-range series)
must render rather than raise.
"""

from repro.experiments.report import (
    _SPARK_BLOCKS,
    _sparkline,
    render_hit_ratio_series,
    render_perf_history,
)
from repro.runtime.hashtable import TableStats


class TestSparkline:
    def test_empty_series_renders_empty(self):
        assert _sparkline([]) == ""

    def test_constant_series_renders_flat_mid_scale(self):
        # all samples equal: the auto-scaled range is zero, which must
        # not divide — the guard pins the line flat at mid-scale
        out = _sparkline([7.0, 7.0, 7.0])
        mid = _SPARK_BLOCKS[(len(_SPARK_BLOCKS) - 1) // 2]
        assert out == mid * 3

    def test_degenerate_pinned_scale_is_flat(self):
        assert _sparkline([0.5, 0.5], lo=1.0, hi=1.0) == (
            _sparkline([0.5, 0.5], lo=0.0, hi=0.0)
        )

    def test_monotone_series_uses_full_ramp(self):
        out = _sparkline([0.0, 1.0], lo=0.0, hi=1.0)
        assert out == _SPARK_BLOCKS[0] + _SPARK_BLOCKS[-1]

    def test_values_outside_pinned_scale_are_clamped(self):
        out = _sparkline([-1.0, 2.0], lo=0.0, hi=1.0)
        assert out == _SPARK_BLOCKS[0] + _SPARK_BLOCKS[-1]


class TestHitRatioSeries:
    def test_empty_stats_series(self):
        out = render_hit_ratio_series({0: TableStats()})
        assert "segment 0: (no samples)" in out

    def test_sampled_series_renders_one_char_per_sample(self):
        stats = TableStats(sample_budget=4)
        for hit in (False, True, True, True):
            stats.record_probe(hit)
        out = render_hit_ratio_series({0: stats})
        series = stats.hit_ratio_series()
        line = next(l for l in out.splitlines() if "segment 0" in l)
        assert line.count("|") == 2
        assert len(line.split("|")[1]) == len(series)


class TestPerfHistory:
    def test_no_rows(self):
        assert render_perf_history([]) == "Perf history: no recorded runs"

    def test_constant_history_renders_flat_trend(self):
        rows = [
            {"workload": "UNEPIC", "opt": "O0", "variant": "static",
             "git": "abc", "code_version": "4", "cycles": 100,
             "output_checksum": 1}
            for _ in range(3)
        ]
        out = render_perf_history(rows)
        mid = _SPARK_BLOCKS[(len(_SPARK_BLOCKS) - 1) // 2]
        assert f"|{mid * 3}|" in out
        assert "latest 100" in out
        assert "UNEPIC@O0@static" in out
