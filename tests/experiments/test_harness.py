"""Tests for the experiment harness, run on a small synthetic workload so
the suite stays fast (the real workloads are exercised by benchmarks/)."""

import pytest

from repro.experiments import (
    ExperimentRunner,
    accessed_entry_histogram,
    energy_table,
    harmonic_mean,
    input_value_histogram,
    pattern_access_histogram,
    render_energy,
    render_histogram,
    render_speedups,
    render_sweep,
    render_table3,
    render_table4,
    render_table5,
    render_table10,
    size_sweep,
    speedup_table,
    table3,
    table4,
    table5,
    table10,
)
from repro.workloads.base import PaperNumbers, Workload

_SOURCE = """
int lut[12] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8};

static int classify(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 12; i++)
        r += lut[i] * ((v >> (i & 3)) & 15) + v % (i + 2);
    return r;
}

int main(void) {
    int acc = 0;
    while (__input_avail()) {
        acc += classify(__input_int());
        __output_int(acc & 255);
    }
    __output_int(acc);
    return acc;
}
"""


def _default_inputs():
    return [3, 8, 21, 3, 8, 21, 40, 3, 8] * 60


def _alternate_inputs():
    return [5, 9, 33, 5, 9, 5, 9, 33] * 70


TINY = Workload(
    name="TINY",
    source=_SOURCE,
    default_inputs=_default_inputs,
    alternate_inputs=_alternate_inputs,
    alternate_label="alt",
    key_function="classify",
    description="test workload",
    paper=PaperNumbers(speedup_o0=1.5, speedup_o3=1.4, lru_hits=(0.1, 0.2, 0.3, 0.4)),
    min_executions=16,
)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestRunner:
    def test_pipeline_cached(self, runner):
        first = runner.pipeline(TINY)
        second = runner.pipeline(TINY)
        assert first is second

    def test_compare_o0(self, runner):
        run = runner.compare(TINY, "O0")
        assert run.outputs_match
        assert run.speedup > 1.0
        assert run.original.seconds > run.transformed.seconds

    def test_compare_o3_smaller_but_positive(self, runner):
        run0 = runner.compare(TINY, "O0")
        run3 = runner.compare(TINY, "O3")
        assert run3.speedup > 1.0
        assert run3.original.seconds < run0.original.seconds  # O3 is faster

    def test_energy_saving_positive(self, runner):
        run = runner.compare(TINY, "O0")
        assert 0.0 < run.energy_saving < 1.0

    def test_alternate_inputs_still_profitable(self, runner):
        run = runner.compare(TINY, "O3", alternate=True)
        assert run.outputs_match
        assert run.speedup > 1.0

    def test_table_size_cap_reduces_speedup(self, runner):
        full = runner.compare(TINY, "O0")
        capped = runner.compare(TINY, "O0", max_table_bytes=16)
        assert capped.outputs_match
        assert capped.speedup <= full.speedup

    def test_headline_segment(self, runner):
        segment = runner.headline_segment(TINY)
        assert segment.func_name == "classify"
        profile = runner.headline_profile(TINY)
        assert profile.executions == len(_default_inputs())


class TestTables:
    def test_table3_row(self, runner):
        rows = table3(runner, [TINY])
        (row,) = rows
        assert row.program == "TINY"
        assert row.computation_us > row.overhead_us
        assert row.distinct_inputs == 4
        assert 0.9 < row.reuse_rate < 1.0
        assert row.table_bytes > 0

    def test_table4_row(self, runner):
        (row,) = table4(runner, [TINY])
        assert row.analyzed >= row.profiled >= row.transformed >= 1
        assert row.code_lines > 5

    def test_table5_row(self, runner):
        (row,) = table5(runner, [TINY])
        ratios = [row.hit_ratios[s] for s in (1, 4, 16, 64)]
        assert ratios == sorted(ratios)

    def test_speedup_table_and_mean(self, runner):
        rows, mean = speedup_table(runner, "O0", [TINY])
        assert rows[0].speedup > 1.0
        assert mean == pytest.approx(rows[0].speedup)

    def test_energy_table(self, runner):
        rows = energy_table(runner, "O0", [TINY])
        assert 0 < rows[0].saving < 1

    def test_table10(self, runner):
        rows, mean = table10(runner, [TINY])
        assert rows[0].input_source == "alt"
        assert rows[0].speedup > 1.0

    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4 / 3)
        assert harmonic_mean([]) == 0.0


class TestFigures:
    def test_input_value_histogram(self, runner):
        hist = input_value_histogram(runner, TINY, n_bins=8)
        assert hist.total == len(_default_inputs())
        assert len(hist.bins) == 8

    def test_accessed_entry_histogram(self, runner):
        hist = accessed_entry_histogram(runner, TINY, n_bins=8)
        assert hist.total == len(_default_inputs())

    def test_pattern_access_histogram(self, runner):
        hist = pattern_access_histogram(runner, TINY)
        assert hist.bins[0][1] >= hist.bins[-1][1]  # sorted by count

    def test_size_sweep_monotone_tail(self, runner):
        series = size_sweep(runner, "O0", [TINY], sizes=(64, 4096, None))
        points = series[0].points
        # speedup at the optimal size >= speedup at a tiny size
        assert points[-1][1] >= points[0][1] - 1e-9


class TestRendering:
    def test_all_renderers_produce_text(self, runner):
        text = render_table3(table3(runner, [TINY]))
        assert "TINY" in text and "Table 3" in text
        text = render_table4(table4(runner, [TINY]))
        assert "Analyzed" in text
        text = render_table5(table5(runner, [TINY]))
        assert "64-entry" in text
        rows, mean = speedup_table(runner, "O0", [TINY])
        text = render_speedups(rows, mean, "O0", 6)
        assert "Harmonic Mean" in text
        text = render_energy(energy_table(runner, "O0", [TINY]), "O0", 8)
        assert "Saving" in text
        rows, mean = table10(runner, [TINY])
        text = render_table10(rows, mean)
        assert "Inputs" in text
        hist = input_value_histogram(runner, TINY, n_bins=4)
        text = render_histogram(hist)
        assert "#" in text
        series = size_sweep(runner, "O0", [TINY], sizes=(64, None))
        text = render_sweep(series, "O0", 14)
        assert "optimal" in text
