"""Tests for the CSV export helpers."""

import csv
import io

from repro.experiments.export import (
    energy_csv,
    histogram_csv,
    speedup_csv,
    sweep_csv,
    table3_csv,
    table4_csv,
    table5_csv,
    table10_csv,
)
from repro.experiments.figures import Histogram, SweepSeries
from repro.experiments.tables import (
    EnergyRow,
    SpeedupRow,
    Table3Row,
    Table4Row,
    Table5Row,
    Table10Row,
)


def parse(text):
    return list(csv.reader(io.StringIO(text)))


def test_table3_csv():
    row = Table3Row(
        program="X", computation_us=1.5, overhead_us=0.2, distinct_inputs=10,
        reuse_rate=0.9, table_bytes=1024, paper_computation_us=0,
        paper_overhead_us=0, paper_distinct_inputs=0, paper_reuse_rate=0,
        paper_table_bytes=0,
    )
    rows = parse(table3_csv([row]))
    assert rows[0][0] == "program"
    assert rows[1][0] == "X"
    assert float(rows[1][4]) == 0.9


def test_table4_csv():
    row = Table4Row(
        program="X", functions="f", analyzed=5, profiled=3, transformed=1,
        code_lines=40, paper_analyzed=0, paper_profiled=0, paper_transformed=0,
    )
    rows = parse(table4_csv([row]))
    assert rows[1] == ["X", "5", "3", "1", "40"]


def test_table5_csv():
    row = Table5Row(
        program="X",
        hit_ratios={1: 0.1, 4: 0.2, 16: 0.3, 64: 0.4},
        buffer64_bytes=512,
        paper_hit_ratios=(),
    )
    rows = parse(table5_csv([row]))
    assert rows[1][1] == "0.100000"
    assert rows[1][5] == "512"


def test_speedup_csv():
    row = SpeedupRow(
        program="X", original_s=2.0, transformed_s=1.0, speedup=2.0,
        paper_speedup=1.5, in_mean=True,
    )
    rows = parse(speedup_csv([row]))
    assert rows[1][3] == "2.0000"
    assert rows[1][4] == "1"


def test_energy_csv():
    row = EnergyRow(program="X", original_j=1.0, transformed_j=0.5,
                    saving=0.5, paper_saving=0.4)
    rows = parse(energy_csv([row]))
    assert rows[1][3] == "0.500000"


def test_table10_csv():
    row = Table10Row(
        program="X", input_source="alt", original_s=1.0, transformed_s=0.5,
        speedup=2.0, paper_speedup=1.9,
    )
    rows = parse(table10_csv([row]))
    assert rows[1][1] == "alt"


def test_histogram_csv():
    hist = Histogram(title="t", bins=[("0..9", 5), ("10..19", 2)])
    rows = parse(histogram_csv(hist))
    assert rows[1] == ["0..9", "5"]
    assert rows[2] == ["10..19", "2"]


def test_sweep_csv():
    series = [SweepSeries(program="X", points=[(1024, 1.1), (None, 1.5)])]
    rows = parse(sweep_csv(series))
    assert rows[1] == ["X", "1024", "1.1000"]
    assert rows[2] == ["X", "optimal", "1.5000"]
