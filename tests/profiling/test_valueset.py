"""Tests for the value-set profiler."""

import pytest

from repro.profiling import LRU_SIZES, ValueSetProfiler, frequency_report, frequent_segments
from repro.runtime import Machine


def make_profiler(mode="value", allowed=None):
    machine = Machine("O0")
    return machine, ValueSetProfiler(machine, mode=mode, allowed=allowed)


class TestRecording:
    def test_reuse_rate(self):
        _, p = make_profiler()
        for v in [1, 2, 1, 2, 1, 2, 3, 1]:
            p.record(0, (v,))
        profile = p.profile(0)
        assert profile.executions == 8
        assert profile.distinct_inputs == 3
        assert profile.reuse_rate == pytest.approx(1 - 3 / 8)

    def test_reuse_rate_zero_when_all_distinct(self):
        _, p = make_profiler()
        for v in range(10):
            p.record(0, (v,))
        assert p.profile(0).reuse_rate == 0.0

    def test_never_executed(self):
        _, p = make_profiler()
        assert p.profile(9).reuse_rate == 0.0
        assert p.profile(9).mean_cycles == 0.0

    def test_histogram_most_common_first(self):
        _, p = make_profiler()
        for v in [5, 5, 5, 7, 7, 9]:
            p.record(0, (v,))
        hist = p.profile(0).histogram()
        assert hist[0] == ((5,), 3)

    def test_freq_mode_skips_values(self):
        _, p = make_profiler(mode="freq")
        p.record(0, (1,))
        p.record(0, (1,))
        assert p.profile(0).executions == 2
        assert p.profile(0).distinct_inputs == 0

    def test_allowed_filter(self):
        _, p = make_profiler(allowed={1})
        p.record(0, (5,))
        p.record(1, (5,))
        assert p.profile(0).executions == 0
        assert p.profile(1).executions == 1

    def test_invalid_mode_rejected(self):
        machine = Machine("O0")
        with pytest.raises(ValueError):
            ValueSetProfiler(machine, mode="bogus")


class TestLRUSimulation:
    def test_lru_sizes_tracked(self):
        _, p = make_profiler()
        for v in [1, 1, 2, 1]:
            p.record(0, (v,))
        profile = p.profile(0)
        for size in LRU_SIZES:
            assert 0.0 <= profile.lru_hit_ratio(size) <= 1.0
        # 1-entry: hit on the second 1 only
        assert profile.lru_hit_ratio(1) == pytest.approx(1 / 4)
        # 4-entry: second 1 and fourth 1 hit
        assert profile.lru_hit_ratio(4) == pytest.approx(2 / 4)

    def test_hit_ratio_monotone_in_size(self):
        _, p = make_profiler()
        import random

        rng = random.Random(3)
        for _ in range(500):
            p.record(0, (rng.randrange(40),))
        profile = p.profile(0)
        ratios = [profile.lru_hit_ratio(s) for s in LRU_SIZES]
        assert ratios == sorted(ratios)


class TestSegmentTiming:
    def test_inclusive_cycles(self):
        machine, p = make_profiler()
        p.segment_enter(0)
        machine.counters[7] += 100  # 100 ALU ops at 1 cycle
        p.segment_exit(0)
        p.record(0, (1,))
        assert p.profile(0).inclusive_cycles == 100
        assert p.profile(0).mean_cycles == 100.0

    def test_recursion_counts_outermost_only(self):
        machine, p = make_profiler()
        p.segment_enter(0)
        machine.counters[7] += 50
        p.segment_enter(0)  # recursive instance
        machine.counters[7] += 50
        p.segment_exit(0)
        machine.counters[7] += 50
        p.segment_exit(0)
        assert p.profile(0).inclusive_cycles == 150


class TestFrequencyHelpers:
    def test_frequent_segments(self):
        _, p = make_profiler(mode="freq")
        for _ in range(10):
            p.count_entry(1)
        p.count_entry(2)
        assert frequent_segments(p, 5) == {1}
        assert frequent_segments(p, 1) == {1, 2}

    def test_frequency_report_sorted(self):
        _, p = make_profiler(mode="freq")
        for _ in range(3):
            p.count_entry(1)
        for _ in range(7):
            p.count_entry(2)
        assert frequency_report(p) == [(2, 7), (1, 3)]
