"""Unit tests for the online reuse governor: policy validation, the
hysteresis edges of the state machine, recovery re-probes, and the
resize/flush working-set escape hatch."""

import pytest

from repro.errors import ConfigError
from repro.runtime.governor import (
    GovernedMergedReuseTable,
    GovernedReuseTable,
    GovernorPolicy,
    SegmentGovernor,
)
from repro.runtime.hashtable import ReuseTable


def _policy(**kw):
    defaults = dict(
        warmup_probes=0, window=4, hysteresis=2, reprobe_after=8, probe_window=2
    )
    defaults.update(kw)
    return GovernorPolicy(**defaults)


def _governor(**kw):
    # gain = hit_rate * 100 - 30: a window is profitable at >= 30% hits
    return SegmentGovernor("s", granularity=100.0, overhead=30.0, policy=_policy(**kw))


def _feed(gov, hits, misses=0):
    for _ in range(hits):
        gov.observe(True)
    for _ in range(misses):
        gov.observe(False)


class TestPolicyValidation:
    def test_defaults_valid(self):
        GovernorPolicy()

    @pytest.mark.parametrize(
        "kw",
        [
            {"warmup_probes": -1},
            {"window": 0},
            {"hysteresis": 0},
            {"reprobe_after": 0},
            {"probe_window": 0},
            {"resize_evict_ratio": 0.0},
            {"resize_evict_ratio": 1.5},
            {"max_growth": 0},
        ],
    )
    def test_rejects_bad_thresholds(self, kw):
        with pytest.raises(ConfigError):
            GovernorPolicy(**kw)


class TestStateMachine:
    def test_warmup_probes_never_judged(self):
        gov = _governor(warmup_probes=8, window=2)
        _feed(gov, hits=0, misses=8)  # a cold table's miss burst
        assert gov.windows_closed == 0
        assert gov.state == "active"
        _feed(gov, hits=2)
        assert gov.windows_closed == 1

    def test_profitable_windows_never_disable(self):
        gov = _governor()
        for _ in range(50):
            _feed(gov, hits=2, misses=2)  # 50% hits: gain = +20
        assert gov.state == "active"
        assert gov.disables == 0
        assert gov.transitions == []

    def test_single_negative_window_is_not_enough(self):
        gov = _governor(hysteresis=2)
        _feed(gov, hits=0, misses=4)  # one unprofitable window
        assert gov.state == "active"

    def test_disables_after_hysteresis_consecutive_negatives(self):
        gov = _governor(hysteresis=2)
        _feed(gov, hits=0, misses=8)  # two unprofitable windows
        assert gov.state == "disabled"
        assert gov.disables == 1
        assert gov.transitions[-1]["reason"] == "unprofitable"

    def test_positive_window_resets_hysteresis(self):
        gov = _governor(hysteresis=2)
        _feed(gov, hits=0, misses=4)  # negative
        _feed(gov, hits=4)  # positive: streak resets
        _feed(gov, hits=0, misses=4)  # negative again, streak is 1
        assert gov.state == "active"
        _feed(gov, hits=0, misses=4)  # streak reaches hysteresis
        assert gov.state == "disabled"

    def test_bypasses_trigger_reprobe(self):
        gov = _governor(reprobe_after=8)
        _feed(gov, hits=0, misses=8)
        assert gov.state == "disabled"
        for _ in range(7):
            assert gov.should_bypass()
        assert not gov.should_bypass()  # the 8th flips to probing
        assert gov.state == "probing"
        assert gov.bypassed_executions == 8

    def test_probe_window_recovers(self):
        gov = _governor()
        _feed(gov, hits=0, misses=8)
        while gov.state == "disabled":
            gov.should_bypass()
        _feed(gov, hits=2)  # trial window: all hits
        assert gov.state == "active"
        assert gov.reenables == 1
        assert gov.transitions[-1]["reason"] == "recovered"

    def test_probe_window_can_fail_again(self):
        gov = _governor()
        _feed(gov, hits=0, misses=8)
        while gov.state == "disabled":
            gov.should_bypass()
        _feed(gov, hits=0, misses=2)  # trial window: still no locality
        assert gov.state == "disabled"
        assert gov.disables == 2
        assert gov.transitions[-1]["reason"] == "still_unprofitable"

    def test_snapshot_is_json_shaped(self):
        gov = _governor()
        _feed(gov, hits=0, misses=8)
        snap = gov.snapshot()
        assert snap["state"] == "disabled"
        assert snap["disables"] == 1
        assert snap["transitions"][-1]["to"] == "disabled"
        # snapshots are copies: mutating one must not corrupt history
        snap["transitions"][-1]["to"] = "corrupted"
        assert gov.transitions[-1]["to"] == "disabled"


def _drive(table, keys, outputs=(1,)):
    for key in keys:
        if table.bypassed:
            table.push_bypass() if hasattr(table, "push_bypass") else None
            if hasattr(table, "pending_bypassed"):
                table.commit(())
            continue
        if table.probe((key,)):
            table.finish()
        else:
            table.commit(outputs)


class TestGovernedTable:
    def _table(self, capacity=4, **policy_kw):
        return GovernedReuseTable(
            "s",
            capacity,
            in_words=1,
            out_words=1,
            granularity=100.0,
            overhead=30.0,
            policy=_policy(**policy_kw),
        )

    def test_active_matches_plain_table(self):
        """While active the governed table is bit-identical to ReuseTable."""
        keys = [i % 3 for i in range(64)]
        plain = ReuseTable("s", 16, 1, 1)
        governed = self._table(capacity=16)
        for table in (plain, governed):
            for key in keys:
                if table.probe((key,)):
                    table.finish()
                else:
                    table.commit((key * 2,))
        assert governed.stats.probes == plain.stats.probes
        assert governed.stats.hits == plain.stats.hits
        assert governed.stats.collisions == plain.stats.collisions
        assert governed.governor.state == "active"

    def test_eviction_thrash_resizes(self):
        table = self._table(capacity=4, window=8, resize_evict_ratio=0.25)
        _drive(table, range(64))  # all-distinct keys: constant evictions
        assert table.governor.resizes >= 1
        assert table.capacity > 4
        assert table.capacity <= table.max_capacity

    def test_growth_is_bounded_then_flushes(self):
        table = self._table(
            capacity=4, window=8, resize_evict_ratio=0.25, max_growth=1, reprobe_after=4
        )
        _drive(table, range(64))
        assert table.capacity == 4  # never grew past the bound
        assert table.governor.flushes >= 1

    def test_flush_keeps_statistics(self):
        table = self._table(capacity=8)
        _drive(table, [1, 2, 3])
        probes_before = table.stats.probes
        table.flush()
        assert table.occupied == 0
        assert table.stats.probes == probes_before


class TestGovernedMergedTable:
    def test_members_disable_independently(self):
        table = GovernedMergedReuseTable(
            "m",
            capacity=32,
            in_words=1,
            member_out_words={"a": 1, "b": 1},
            member_costs={"a": (100.0, 30.0), "b": (100.0, 30.0)},
            policy=_policy(),
        )
        view_a, view_b = table.view("a"), table.view("b")
        for i in range(16):
            # member a sees all-distinct keys, member b constant reuse
            if not view_a.bypassed:
                if view_a.probe((1000 + i,)):
                    view_a.finish()
                else:
                    view_a.commit((1,))
            else:
                view_a.push_bypass()
                view_a.commit(())
            if view_b.probe((7,)):
                view_b.finish()
            else:
                view_b.commit((2,))
        # a disabled (and may already be in its recovery re-probe); b never judged guilty
        assert view_a.governor.disables >= 1
        assert view_a.governor.bypassed_executions > 0
        assert view_b.governor.state == "active"
        assert view_b.governor.disables == 0
