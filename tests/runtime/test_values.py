"""Unit and property tests for runtime value helpers (C semantics)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InterpError
from repro.minic.types import FLOAT, INT, ArrayType, PointerType
from repro.runtime.values import (
    c_div,
    c_mod,
    c_shl,
    c_shr,
    copy_into,
    deep_copy_value,
    flatten_value,
    float_bits,
    key_words,
    to_u32,
    wrap32,
    zero_value,
)

INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1

ints32 = st.integers(min_value=INT32_MIN, max_value=INT32_MAX)


def test_wrap32_identity_in_range():
    assert wrap32(0) == 0
    assert wrap32(INT32_MAX) == INT32_MAX
    assert wrap32(INT32_MIN) == INT32_MIN


def test_wrap32_overflow():
    assert wrap32(INT32_MAX + 1) == INT32_MIN
    assert wrap32(INT32_MIN - 1) == INT32_MAX
    assert wrap32(2**32) == 0
    assert wrap32(-(2**32)) == 0


@given(st.integers())
def test_wrap32_always_in_range(v):
    w = wrap32(v)
    assert INT32_MIN <= w <= INT32_MAX
    assert (w - v) % 2**32 == 0


@given(ints32)
def test_to_u32_roundtrip(v):
    assert wrap32(to_u32(v)) == v


def test_c_div_truncates_toward_zero():
    assert c_div(7, 2) == 3
    assert c_div(-7, 2) == -3
    assert c_div(7, -2) == -3
    assert c_div(-7, -2) == 3


def test_c_mod_sign_follows_dividend():
    assert c_mod(7, 2) == 1
    assert c_mod(-7, 2) == -1
    assert c_mod(7, -2) == 1
    assert c_mod(-7, -2) == -1


@given(ints32, ints32.filter(lambda v: v != 0))
def test_c_div_mod_identity(a, b):
    assert c_div(a, b) * b + c_mod(a, b) == a


def test_division_by_zero_raises():
    with pytest.raises(InterpError):
        c_div(1, 0)
    with pytest.raises(InterpError):
        c_mod(1, 0)


def test_shifts():
    assert c_shl(1, 4) == 16
    assert c_shl(1, 31) == INT32_MIN  # sign bit
    assert c_shr(-8, 1) == -4  # arithmetic shift
    assert c_shr(8, 1) == 4


@given(ints32, st.integers(min_value=0, max_value=31))
def test_shl_matches_wrap(a, s):
    assert c_shl(a, s) == wrap32(a << s)


def test_shift_count_masked_to_5_bits():
    assert c_shl(1, 32) == 1
    assert c_shr(16, 33) == 8


def test_float_bits_deterministic_and_distinct():
    assert float_bits(1.0) == float_bits(1.0)
    assert float_bits(1.0) != float_bits(-1.0)
    assert float_bits(0.0) == 0


def test_zero_value_shapes():
    assert zero_value(INT) == 0
    assert zero_value(FLOAT) == 0.0
    assert zero_value(ArrayType(INT, 3)) == [0, 0, 0]
    assert zero_value(ArrayType(ArrayType(FLOAT, 2), 2)) == [[0.0, 0.0], [0.0, 0.0]]
    assert zero_value(PointerType(INT)) is None


def test_flatten_value_row_major():
    assert list(flatten_value([[1, 2], [3, 4]])) == [1, 2, 3, 4]
    assert list(flatten_value(5)) == [5]


def test_key_words_ints_and_floats():
    assert key_words(-1) == (0xFFFFFFFF,)
    assert key_words([1, 2]) == (1, 2)
    kw = key_words([1.5, 2.5])
    assert len(kw) == 2
    assert all(isinstance(w, int) for w in kw)


def test_key_words_distinguish_int_from_float():
    assert key_words(1) != key_words(1.0)


def test_deep_copy_value_no_aliasing():
    original = [[1, 2], [3, 4]]
    copy = deep_copy_value(original)
    copy[0][0] = 99
    assert original[0][0] == 1


def test_copy_into_preserves_identity_of_dest():
    dest = [0, 0, 0]
    alias = dest
    copy_into(dest, [1, 2, 3])
    assert alias == [1, 2, 3]


def test_copy_into_nested():
    dest = [[0, 0], [0, 0]]
    inner = dest[1]
    copy_into(dest, [[1, 2], [3, 4]])
    assert inner == [3, 4]


def test_copy_into_length_mismatch_raises():
    with pytest.raises(InterpError):
        copy_into([0, 0], [1, 2, 3])
