"""Tests for reuse tables, merged tables, and LRU buffers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.hashtable import LRUBuffer, MergedReuseTable, ReuseTable
from repro.runtime.jenkins import hash_key_words, jenkins_one_at_a_time


class TestJenkins:
    def test_single_word_key_is_identity(self):
        assert hash_key_words((42,)) == 42
        assert hash_key_words((0xFFFFFFFF,)) == 0xFFFFFFFF

    def test_multi_word_key_hashes(self):
        h = hash_key_words((1, 2, 3))
        assert 0 <= h <= 0xFFFFFFFF
        assert h == hash_key_words((1, 2, 3))
        assert h != hash_key_words((3, 2, 1))

    def test_one_at_a_time_known_properties(self):
        assert jenkins_one_at_a_time(b"") == 0
        assert jenkins_one_at_a_time(b"a") != jenkins_one_at_a_time(b"b")

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=2, max_size=8))
    def test_hash_in_u32_range(self, words):
        h = hash_key_words(tuple(words))
        assert 0 <= h <= 0xFFFFFFFF


class TestReuseTable:
    def test_miss_then_hit(self):
        t = ReuseTable("s", capacity=16, in_words=1, out_words=1)
        assert t.probe((5,)) is False
        t.commit((50,))
        assert t.probe((5,)) is True
        assert t.output(0) == 50
        t.finish()
        assert t.stats.probes == 2
        assert t.stats.hits == 1
        assert t.stats.misses == 1

    def test_capacity_rounded_to_power_of_two(self):
        t = ReuseTable("s", capacity=9, in_words=1, out_words=1)
        assert t.capacity == 16

    def test_collision_replaces_entry(self):
        t = ReuseTable("s", capacity=4, in_words=1, out_words=1)
        # keys 1 and 5 collide in a 4-entry table (1 % 4 == 5 % 4).
        t.probe((1,))
        t.commit((10,))
        assert t.probe((5,)) is False
        assert t.stats.collisions == 1
        t.commit((50,))
        # the old key was evicted
        assert t.probe((1,)) is False
        t.commit((10,))

    def test_multiword_outputs(self):
        t = ReuseTable("s", capacity=8, in_words=1, out_words=3)
        t.probe((7,))
        t.commit((1, 2.5, 3))
        assert t.probe((7,)) is True
        assert t.output(1) == 2.5
        t.finish()

    def test_array_outputs_deep_copied(self):
        t = ReuseTable("s", capacity=8, in_words=1, out_words=4)
        arr = [1, 2, 3, 4]
        t.probe((9,))
        t.commit((arr,))
        arr[0] = 99
        assert t.probe((9,)) is True
        assert t.output(0) == [1, 2, 3, 4]
        t.finish()

    def test_pending_stack_supports_nesting(self):
        t = ReuseTable("s", capacity=8, in_words=1, out_words=1)
        assert t.probe((1,)) is False  # outer miss
        assert t.probe((2,)) is False  # inner (recursive) miss
        t.commit((20,))  # inner commits first (LIFO)
        t.commit((10,))
        assert t.probe((1,)) is True
        assert t.output(0) == 10
        t.finish()

    def test_size_bytes(self):
        t = ReuseTable("s", capacity=64, in_words=2, out_words=3)
        assert t.size_bytes == 64 * 5 * 4

    def test_clear_resets(self):
        t = ReuseTable("s", capacity=4, in_words=1, out_words=1)
        t.probe((1,))
        t.commit((2,))
        t.clear()
        assert t.stats.probes == 0
        assert t.occupied == 0
        assert t.probe((1,)) is False

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
    def test_deterministic_function_property(self, keys):
        """With a large enough table, the reuse table behaves as a memo for
        a deterministic function: every hit returns f(key)."""
        f = lambda k: (k * k + 1,)
        t = ReuseTable("s", capacity=1024, in_words=1, out_words=1)
        for k in keys:
            if t.probe((k,)):
                assert t.output(0) == f(k)[0]
                t.finish()
            else:
                t.commit(f(k))

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=300))
    def test_stats_invariants(self, keys):
        t = ReuseTable("s", capacity=64, in_words=1, out_words=1)
        for k in keys:
            if t.probe((k,)):
                t.finish()
            else:
                t.commit((k,))
        assert t.stats.hits + t.stats.misses == t.stats.probes == len(keys)
        assert t.stats.collisions <= t.stats.misses


class TestMergedReuseTable:
    def _table(self):
        return MergedReuseTable(
            "m", capacity=16, in_words=2, member_out_words={"a": 1, "b": 2}
        )

    def test_members_share_keys_but_not_outputs(self):
        m = self._table()
        va, vb = m.view("a"), m.view("b")
        assert va.probe((1, 2)) is False
        va.commit((10,))
        # Same key, other member: the key is present but its output bit is
        # not set, so this is a miss.
        assert vb.probe((1, 2)) is False
        vb.commit((20, 21))
        assert va.probe((1, 2)) is True
        assert va.output(0) == 10
        va.finish()
        assert vb.probe((1, 2)) is True
        assert vb.output(1) == 21
        vb.finish()

    def test_replacement_invalidates_all_members(self):
        m = MergedReuseTable("m", capacity=4, in_words=1, member_out_words={"a": 1, "b": 1})
        va, vb = m.view("a"), m.view("b")
        va.probe((1,))
        va.commit((10,))
        vb.probe((1,))
        vb.commit((11,))
        # key 5 collides with key 1 (5 % 4 == 1); member a replaces the entry
        va.probe((5,))
        va.commit((50,))
        # b's output for key 5 must not leak from key 1's record
        assert vb.probe((5,)) is False
        vb.commit((51,))
        assert vb.probe((5,)) is True
        assert vb.output(0) == 51
        vb.finish()

    def test_size_includes_bitvector_and_all_outputs(self):
        m = self._table()
        # entry = 2 key words + 1 bitvector word + (1 + 2) output words
        assert m.entry_words == 6
        assert m.size_bytes == 16 * 6 * 4

    def test_per_member_stats(self):
        m = self._table()
        va = m.view("a")
        va.probe((1, 1))
        va.commit((1,))
        va.probe((1, 1))
        va.finish()
        assert m.stats_per_member["a"].hits == 1
        assert m.stats_per_member["b"].probes == 0
        assert m.stats.probes == 2

    def test_unknown_member_raises(self):
        with pytest.raises(KeyError):
            self._table().view("zzz")


class TestLRUBuffer:
    def test_hit_and_miss(self):
        b = LRUBuffer(2)
        assert b.access((1,)) is False
        assert b.access((1,)) is True
        assert b.access((2,)) is False
        assert b.access((3,)) is False  # evicts 1
        assert b.access((1,)) is False

    def test_lru_order_updated_on_hit(self):
        b = LRUBuffer(2)
        b.access((1,))
        b.access((2,))
        b.access((1,))  # 1 becomes MRU
        b.access((3,))  # evicts 2
        assert b.access((1,)) is True
        assert b.access((2,)) is False

    def test_single_entry_buffer(self):
        b = LRUBuffer(1)
        assert b.access((1,)) is False
        assert b.access((1,)) is True
        assert b.access((2,)) is False
        assert b.access((1,)) is False

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUBuffer(0)

    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.integers(min_value=0, max_value=20), max_size=300),
    )
    def test_hit_ratio_bounds_and_monotone_capacity(self, cap, keys):
        small = LRUBuffer(cap)
        big = LRUBuffer(cap * 4)
        for k in keys:
            small.access((k,))
            big.access((k,))
        assert small.stats.hits <= big.stats.hits
        assert 0.0 <= small.hit_ratio <= 1.0


class TestTelemetryInvariants:
    """The PR-2 telemetry counters and their accounting identities."""

    def test_every_miss_is_collision_or_empty(self):
        t = ReuseTable("s", capacity=4, in_words=1, out_words=1)
        t.probe((1,))          # empty miss
        t.commit((10,))
        t.probe((1,))          # hit
        t.finish()
        t.probe((5,))          # collision (1 % 4 == 5 % 4)
        t.commit((50,))
        s = t.stats
        assert (s.misses, s.collisions, s.empty_misses) == (2, 1, 1)
        assert s.misses == s.collisions + s.empty_misses

    @given(st.lists(st.integers(min_value=0, max_value=40), max_size=300))
    @settings(max_examples=50)
    def test_invariants_hold_on_any_stream(self, keys):
        t = ReuseTable("s", capacity=8, in_words=1, out_words=1)
        for k in keys:
            if t.probe((k,)):
                t.finish()
            else:
                t.commit((k * 2,))
        s = t.stats
        assert s.probes == s.hits + s.misses
        assert s.misses == s.collisions + s.empty_misses
        assert s.occupancy_hwm == t.occupied <= t.capacity
        # evictions happen only on collisions followed by commit
        assert s.evictions <= s.collisions

    def test_eviction_counted_on_replacement(self):
        t = ReuseTable("s", capacity=4, in_words=1, out_words=1)
        t.probe((1,))
        t.commit((10,))
        t.probe((5,))
        t.commit((50,))        # replaces key 1
        assert t.stats.evictions == 1
        assert t.occupied == 1  # replacement does not grow occupancy
        assert t.stats.occupancy_hwm == 1

    def test_clear_resets_telemetry(self):
        t = ReuseTable("s", capacity=4, in_words=1, out_words=1)
        t.probe((1,))
        t.commit((10,))
        t.clear()
        assert t.occupied == 0
        assert t.stats.probes == 0
        assert t.stats.samples == []

    def test_merged_unset_bit_is_empty_miss(self):
        m = MergedReuseTable("g", capacity=8, in_words=1,
                             member_out_words={"a": 1, "b": 1})
        va, vb = m.view("a"), m.view("b")
        va.probe((3,))
        va.commit((30,))
        # same key through the other member: entry occupied by the *same*
        # key, just no record for b -> an empty miss, not a collision
        assert vb.probe((3,)) is False
        assert vb.stats.empty_misses == 1
        assert vb.stats.collisions == 0
        vb.commit((33,))
        assert vb.probe((3,)) is True
        vb.finish()

    def test_merged_aggregate_sums_and_maxes(self):
        m = MergedReuseTable("g", capacity=8, in_words=1,
                             member_out_words={"a": 1, "b": 1})
        va, vb = m.view("a"), m.view("b")
        for k in (1, 2, 3):
            va.probe((k,))
            va.commit((k,))
        vb.probe((1,))
        vb.commit((11,))
        agg = m.stats
        assert agg.probes == va.stats.probes + vb.stats.probes
        assert agg.misses == agg.collisions + agg.empty_misses
        assert agg.occupancy_hwm == max(
            va.stats.occupancy_hwm, vb.stats.occupancy_hwm
        )

    def test_merged_eviction_attributed_to_committer(self):
        m = MergedReuseTable("g", capacity=4, in_words=1,
                             member_out_words={"a": 1, "b": 1})
        va, vb = m.view("a"), m.view("b")
        va.probe((1,))
        va.commit((10,))
        vb.probe((5,))         # collides with key 1 in a 4-entry table
        vb.commit((50,))       # evicts the whole entry
        assert vb.stats.evictions == 1
        assert va.stats.evictions == 0

    def test_lru_buffer_invariant(self):
        b = LRUBuffer(2)
        for k in (1, 2, 3, 1, 2, 3):
            b.access((k,))
        s = b.stats
        assert s.misses == s.collisions + s.empty_misses
        assert s.occupancy_hwm == 2
        assert s.evictions == 4  # every miss after warm-up evicts


class TestHitRatioSampling:
    def test_samples_record_probe_and_hit_counts(self):
        from repro.runtime.hashtable import TableStats

        s = TableStats()
        s.record_probe(False)
        s.record_probe(True)
        assert s.samples == [[1, 0], [2, 1]]
        assert s.hit_ratio_series() == [(1, 0.0), (2, 0.5)]

    def test_budget_never_exceeded_and_interval_doubles(self):
        from repro.runtime.hashtable import SAMPLE_BUDGET, TableStats

        s = TableStats()
        for i in range(10_000):
            s.record_probe(i % 2 == 0)
        assert len(s.samples) < SAMPLE_BUDGET
        assert s.sample_interval > 1
        # the decimated series still spans the execution in order
        probes = [p for p, _ in s.samples]
        assert probes == sorted(probes)
        assert probes[-1] > 9_000
        for _, ratio in s.hit_ratio_series():
            assert 0.0 <= ratio <= 1.0

    def test_series_round_trips_through_json(self):
        import dataclasses
        import json

        from repro.runtime.hashtable import TableStats

        s = TableStats()
        for i in range(100):
            s.record_probe(i % 3 == 0)
        clone = TableStats(**json.loads(json.dumps(dataclasses.asdict(s))))
        assert clone == s


class TestSampleBudget:
    """The ring-buffer budget is configurable per table (satellite of the
    observability PR): policy plumbs TableSpec.sample_budget through
    build_tables down to TableStats."""

    def test_default_budget(self):
        from repro.runtime.hashtable import SAMPLE_BUDGET, TableStats

        assert TableStats().sample_budget == SAMPLE_BUDGET == 64

    def test_budget_below_two_rejected(self):
        from repro.runtime.hashtable import TableStats

        with pytest.raises(ValueError):
            TableStats(sample_budget=1)
        with pytest.raises(ValueError):
            TableStats(sample_budget=0)
        assert TableStats(sample_budget=2).sample_budget == 2

    def test_small_budget_decimates_sooner(self):
        from repro.runtime.hashtable import TableStats

        small, big = TableStats(sample_budget=4), TableStats(sample_budget=64)
        for i in range(64):
            small.record_probe(i % 2 == 0)
            big.record_probe(i % 2 == 0)
        assert len(small.samples) <= 4
        assert small.sample_interval > big.sample_interval

    def test_table_constructors_thread_the_budget(self):
        t = ReuseTable("s", capacity=8, in_words=1, out_words=1, sample_budget=8)
        assert t.stats.sample_budget == 8
        t.probe((1,))
        t.clear()
        assert t.stats.sample_budget == 8  # clear() keeps the budget
        m = MergedReuseTable(
            "m", capacity=8, in_words=1,
            member_out_words={"a": 1, "b": 1}, sample_budget=16,
        )
        assert all(
            s.sample_budget == 16 for s in m.stats_per_member.values()
        )

    def test_governed_tables_thread_the_budget(self):
        from repro.runtime.governor import GovernedReuseTable, GovernorPolicy

        t = GovernedReuseTable(
            "s", capacity=8, in_words=1, out_words=1,
            granularity=100.0, overhead=10.0,
            policy=GovernorPolicy(), sample_budget=32,
        )
        assert t.stats.sample_budget == 32

    def test_pipeline_config_validates_and_applies(self):
        from repro.reuse.pipeline import ConfigError, PipelineConfig

        with pytest.raises(ConfigError):
            PipelineConfig(stats_sample_budget=1)
        assert PipelineConfig(stats_sample_budget=128).stats_sample_budget == 128
