"""Tests for the cost model (cycle tables, time, energy)."""

import pytest

from repro.runtime import costs
from repro.runtime.costs import CLOCK_HZ, O0, O3, cost_table


def test_tables_cover_all_classes():
    assert len(O0.cycles) == costs.N_CLASSES
    assert len(O3.cycles) == costs.N_CLASSES
    assert len(costs.CLASS_NAMES) == costs.N_CLASSES


def test_o3_never_more_expensive_per_op():
    for name, c0, c3 in zip(costs.CLASS_NAMES, O0.cycles, O3.cycles):
        assert c3 <= c0, name


def test_register_allocation_modelled():
    # scalar local access is free at O3, a stack access at O0
    assert O0.cycles[costs.LOCAL_RD] > 0
    assert O3.cycles[costs.LOCAL_RD] == 0


def test_software_floats_expensive():
    # SA-1110 has no FPU: float ops cost an order of magnitude more
    assert O0.cycles[costs.FALU] > 10 * O0.cycles[costs.ALU]
    assert O0.cycles[costs.FDIV] > O0.cycles[costs.FMUL] > O0.cycles[costs.FALU]


def test_cycles_for_dot_product():
    counts = [0] * costs.N_CLASSES
    counts[costs.ALU] = 10
    counts[costs.MUL] = 2
    expected = 10 * O0.cycles[costs.ALU] + 2 * O0.cycles[costs.MUL]
    assert O0.cycles_for(counts) == expected


def test_seconds_at_clock_rate():
    counts = [0] * costs.N_CLASSES
    counts[costs.ALU] = CLOCK_HZ  # one second of ALU work
    assert O0.seconds_for(counts) == pytest.approx(O0.cycles[costs.ALU])


def test_energy_dominated_by_base_power():
    counts = [0] * costs.N_CLASSES
    counts[costs.ALU] = 1_000_000
    energy = O0.energy_joules_for(counts)
    seconds = O0.seconds_for(counts)
    base = costs.BASE_WATTS * seconds
    assert energy > base
    assert energy < base * 2  # op-extra is a minor term


def test_memory_ops_carry_more_energy_than_alu():
    alu_only = [0] * costs.N_CLASSES
    alu_only[costs.ALU] = 100_000
    mem_only = [0] * costs.N_CLASSES
    mem_only[costs.MEM_RD] = 100_000
    # compare per-op extra energy at equal op counts
    e_alu = O0.energy_joules_for(alu_only) - costs.BASE_WATTS * O0.seconds_for(alu_only)
    e_mem = O0.energy_joules_for(mem_only) - costs.BASE_WATTS * O0.seconds_for(mem_only)
    assert e_mem > e_alu


def test_cost_table_lookup():
    assert cost_table("O0") is O0
    assert cost_table("O3") is O3
    with pytest.raises(KeyError):
        cost_table("O2")
