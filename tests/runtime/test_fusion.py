"""Differential harness for block-fused cost accounting.

Block fusion (:mod:`repro.runtime.fuse`) is a pure performance layer: a
``Machine(fuse=True)`` must produce *bit-identical* metrics — per-class
counter tallies, cycles, simulated seconds, energy, and output checksums
— to the per-op closure interpreter, for every registered workload at
every optimization level.  These tests enforce that, plus the structural
invariants fusion relies on: a fused region never spans a call (user
function, intrinsic, or profiling stub), and branch charges stay exact
per basic block.
"""

import pytest

from repro.experiments import ExperimentRunner
from repro.minic.parser import parse_program
from repro.minic.sema import Typer, analyze
from repro.opt.pipeline import optimize
from repro.runtime import compiler as rc
from repro.runtime import fuse
from repro.runtime.compiler import compile_program
from repro.runtime.machine import Machine
from repro.workloads.base import PaperNumbers, Workload
from repro.workloads.registry import ALL_WORKLOADS

# Every workload keeps working on a prefix of its default stream (they
# all poll __input_avail), so the differential can run the whole registry
# without the full-suite runtime.
_INPUT_PREFIX = 1024


def _measure(source, opt_level, inputs, fused):
    program = analyze(parse_program(source))
    optimize(program, opt_level)
    machine = Machine(opt_level, fuse=fused)
    machine.set_inputs(list(inputs))
    compile_program(program, machine).run("main")
    return machine.metrics()


@pytest.mark.parametrize("opt_level", ["O0", "O3"])
@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_differential_every_workload(workload, opt_level):
    inputs = workload.default_inputs()[:_INPUT_PREFIX]
    unfused = _measure(workload.source, opt_level, inputs, fused=False)
    fused = _measure(workload.source, opt_level, inputs, fused=True)
    # Metrics equality covers counters, cycles, seconds, joules, checksum.
    assert fused == unfused


# -- transformed programs ----------------------------------------------------

_TINY_SOURCE = """
int lut[12] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8};

static int classify(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 12; i++)
        r += lut[i] * ((v >> (i & 3)) & 15) + v % (i + 2);
    return r;
}

int main(void) {
    int acc = 0;
    while (__input_avail()) {
        acc += classify(__input_int());
        __output_int(acc & 255);
    }
    __output_int(acc);
    return acc;
}
"""

TINY = Workload(
    name="TINY_FUSION",
    source=_TINY_SOURCE,
    default_inputs=lambda: [3, 8, 21, 3, 8, 21, 40, 3, 8] * 40,
    alternate_inputs=lambda: [5, 9, 33, 5, 9] * 40,
    alternate_label="alt",
    key_function="classify",
    description="fusion differential workload",
    paper=PaperNumbers(),
    min_executions=16,
)


@pytest.mark.parametrize("opt_level", ["O0", "O3"])
def test_differential_transformed_program(opt_level):
    """The reuse-transformed program (probe/commit intrinsics around fused
    regions) measures identically with fusion on and off."""
    fused = ExperimentRunner(fuse=True).compare(TINY, opt_level)
    unfused = ExperimentRunner(fuse=False).compare(TINY, opt_level)
    assert fused.original == unfused.original
    assert fused.transformed == unfused.transformed
    assert {k: vars(v) for k, v in fused.table_stats.items()} == {
        k: vars(v) for k, v in unfused.table_stats.items()
    }


# -- structural invariants ---------------------------------------------------


def _function_compiler(source, func="main"):
    program = analyze(parse_program(source))
    machine = Machine("O0", fuse=True)
    compiled = compile_program(program, machine)
    fn = next(f for f in program.functions if f.name == func)
    return rc._FunctionCompiler(fn, compiled, Typer(program), machine), fn


def _stmts(source, func="main"):
    fc, fn = _function_compiler(source, func)
    return fc, list(fn.body.stmts)


def test_fusion_never_spans_user_call():
    fc, stmts = _stmts(
        """
        int f(int x) { return x + 1; }
        int main(void) { int a = 1; a = f(a); a = a + 2; return a; }
        """
    )
    fusable = [fuse.fusable_stmt(s, fc) for s in stmts]
    # decl fusable, call statement not, arithmetic fusable, return fusable
    assert fusable == [True, False, True, True]


def test_fusion_never_spans_intrinsic():
    fc, stmts = _stmts(
        "int main(void) { int a = 3; __output_int(a); a = a * 2; return 0; }"
    )
    assert [fuse.fusable_stmt(s, fc) for s in stmts] == [True, False, True, True]


@pytest.mark.parametrize("stub", ["__seg_enter(7)", "__seg_exit(7)"])
def test_fusion_never_spans_profiling_stub(stub):
    # the zero-cost stubs are calls, so they always split fused regions
    fc, stmts = _stmts(
        f"int main(void) {{ int a = 1; {stub}; a = a + 1; return a; }}"
    )
    assert [fuse.fusable_stmt(s, fc) for s in stmts] == [True, False, True, True]


def test_branch_charges_flushed_per_block():
    """The static tally never spans a branch: the generated code flushes
    pending charges before every conditional, and each arm charges its
    own block."""
    fc, stmts = _stmts(
        """
        int main(void) {
            int x = 3;
            int y = 0;
            if (x > 1) { y = x + 1; } else { y = x - 1; }
            return y;
        }
        """
    )
    assert all(fuse.fusable_stmt(s, fc) for s in stmts)
    region = fuse.fuse_region(stmts, fc)
    lines = region.fused_source.splitlines()
    if_index = next(i for i, l in enumerate(lines) if l.lstrip().startswith("if "))
    # ... a batched charge was emitted before the branch is taken,
    assert any("_c[" in l for l in lines[:if_index])
    # ... and none of the pre-branch batches includes the arms' charges:
    # each arm flushes separately inside its own (deeper-indented) suite.
    arm_lines = [l for l in lines[if_index + 1 :] if "_c[" in l]
    assert arm_lines, "branch arms must charge their own blocks"
    # the region still executes correctly and returns through Ret
    frame = [0] * 8
    result = region(frame)
    assert type(result) is rc.Ret and result.value == 4


def test_fused_break_charges_branch_exactly():
    """break/continue compile to native control flow but still charge
    BRANCH exactly like their closures."""
    source = """
    int main(void) {
        int i;
        int n = 0;
        for (i = 0; i < 10; i++) {
            if (i == 3) break;
            n = n + 1;
        }
        return n;
    }
    """
    unfused = _measure(source, "O0", [], fused=False)
    fused = _measure(source, "O0", [], fused=True)
    assert fused == unfused
    assert fused.counts["branch"] > 0


def test_continue_in_for_still_runs_step():
    source = """
    int main(void) {
        int i;
        int n = 0;
        for (i = 0; i < 10; i++) {
            if (i % 2 == 0) continue;
            n = n + i;
        }
        return n;
    }
    """
    unfused = _measure(source, "O0", [], fused=False)
    fused = _measure(source, "O0", [], fused=True)
    assert fused == unfused


def test_do_while_break_and_continue():
    source = """
    int main(void) {
        int i = 0;
        int n = 0;
        do {
            i = i + 1;
            if (i % 3 == 0) continue;
            if (i > 7) break;
            n = n + i;
        } while (i < 100);
        return n;
    }
    """
    unfused = _measure(source, "O0", [], fused=False)
    fused = _measure(source, "O0", [], fused=True)
    assert fused == unfused


def test_machine_fuse_flag_disables_fusion():
    fc, stmts = _stmts("int main(void) { int a = 1; return a; }")
    assert fc.fuse is True
    machine = Machine("O0", fuse=False)
    program = analyze(parse_program("int main(void) { return 4; }"))
    compiled = compile_program(program, machine)
    assert compiled.run("main") == 4
