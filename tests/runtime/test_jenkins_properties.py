"""Property tests for the Jenkins hash and key construction."""

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.jenkins import hash_key_words, jenkins_one_at_a_time

words = st.integers(min_value=0, max_value=0xFFFFFFFF)


@given(st.binary(max_size=64))
def test_one_at_a_time_deterministic(data):
    assert jenkins_one_at_a_time(data) == jenkins_one_at_a_time(data)


@given(st.binary(min_size=1, max_size=32))
def test_one_at_a_time_in_range(data):
    h = jenkins_one_at_a_time(data)
    assert 0 <= h <= 0xFFFFFFFF


@given(words)
def test_single_word_identity(w):
    # the paper's simple case: single-word keys index directly
    assert hash_key_words((w,)) == w


@given(st.lists(words, min_size=2, max_size=8))
def test_multiword_deterministic(ws):
    key = tuple(ws)
    assert hash_key_words(key) == hash_key_words(key)


@given(st.lists(words, min_size=2, max_size=6))
def test_order_sensitivity(ws):
    key = tuple(ws)
    rev = tuple(reversed(ws))
    if key != rev:
        # not a strict guarantee for a hash, but collisions between a
        # sequence and its reverse would be a red flag; sample-checked
        # by hypothesis over many draws (tolerate the rare collision)
        if hash_key_words(key) == hash_key_words(rev):
            # verify it is a genuine collision, not order-insensitivity
            other = tuple(list(ws) + [1])
            assert hash_key_words(other) != hash_key_words(key)


def test_distribution_over_small_table():
    """Hashing sequential multi-word keys into 64 slots should spread
    them out (no catastrophic clustering)."""
    counts = Counter()
    for i in range(4096):
        key = (i, i * 3 + 1)
        counts[hash_key_words(key) & 63] += 1
    # perfectly uniform would be 64 per slot; accept generous bounds
    assert max(counts.values()) < 64 * 3
    assert len(counts) == 64


def test_avalanche_single_bit():
    """Flipping one input bit changes the hash substantially (on average)."""
    import random

    rng = random.Random(7)
    total_flips = 0
    trials = 200
    for _ in range(trials):
        a = rng.getrandbits(32)
        b = rng.getrandbits(32)
        bit = 1 << rng.randrange(32)
        h1 = hash_key_words((a, b))
        h2 = hash_key_words((a ^ bit, b))
        total_flips += bin(h1 ^ h2).count("1")
    avg = total_flips / trials
    assert 8 < avg < 24  # a healthy avalanche sits near 16 of 32 bits
