"""Tests for the Machine API (I/O streams, counters, metrics)."""

import pytest

from repro.errors import InterpError
from repro.runtime import Machine
from repro.runtime.costs import ALU, CLOCK_HZ


class TestInputs:
    def test_stream_consumed_in_order(self):
        m = Machine()
        m.set_inputs([10, 20, 30])
        assert m.next_input() == 10
        assert m.next_input() == 20
        assert m.input_available() == 1
        assert m.next_input() == 30
        assert m.input_available() == 0

    def test_exhaustion_raises(self):
        m = Machine()
        m.set_inputs([])
        with pytest.raises(InterpError):
            m.next_input()

    def test_reset_io_rewinds(self):
        m = Machine()
        m.set_inputs([1, 2])
        m.next_input()
        m.reset_io()
        assert m.next_input() == 1


class TestOutputs:
    def test_checksum_accumulates(self):
        m = Machine()
        m.emit(1)
        c1 = m.output_checksum
        m.emit(2)
        assert m.output_checksum != c1
        assert m.output_count == 2

    def test_float_outputs_checksummed(self):
        a, b = Machine(), Machine()
        a.emit(1.5)
        b.emit(2.5)
        assert a.output_checksum != b.output_checksum

    def test_capture_mode(self):
        m = Machine(capture_output=True)
        m.emit(7)
        m.emit(1.5)
        assert m.captured_outputs == [7, 1.5]

    def test_no_capture_by_default(self):
        m = Machine()
        m.emit(7)
        assert m.captured_outputs == []


class TestCountersAndMetrics:
    def test_counters_drive_cycles(self):
        m = Machine("O0")
        assert m.cycles == 0
        m.counters[ALU] += 5
        assert m.cycles == 5 * m.cost.cycles[ALU]

    def test_seconds_at_clock(self):
        m = Machine("O0")
        m.counters[ALU] += CLOCK_HZ  # cycles[ALU] == 1 at O0
        assert m.seconds == pytest.approx(1.0)

    def test_reset_counters(self):
        m = Machine()
        m.counters[ALU] += 3
        m.reset_counters()
        assert m.cycles == 0

    def test_metrics_snapshot(self):
        m = Machine("O3")
        m.counters[ALU] += 10
        m.emit(1)
        metrics = m.metrics()
        assert metrics.opt_level == "O3"
        assert metrics.counts["alu"] == 10
        assert metrics.output_count == 1
        assert metrics.energy_joules > 0
        assert "O3" in str(metrics)


class TestTables:
    def test_missing_table_raises(self):
        m = Machine()
        with pytest.raises(InterpError):
            m.table_for(5)

    def test_install_and_lookup(self):
        from repro.runtime import ReuseTable

        m = Machine()
        table = ReuseTable("x", 8, 1, 1)
        m.install_table(5, table)
        assert m.table_for(5) is table


class TestTableTelemetry:
    """Machine.metrics() surfaces per-segment TableStats, keeping member
    identity for segments sharing a MergedReuseTable."""

    def test_metrics_snapshot_per_segment_stats(self):
        from repro.runtime.hashtable import ReuseTable

        machine = Machine("O0")
        table = ReuseTable("7", capacity=4, in_words=1, out_words=1)
        machine.install_table(7, table)
        table.probe((1,))
        table.commit((10,))
        metrics = machine.metrics()
        assert metrics.table_stats[7].probes == 1
        assert metrics.merged_members == {}
        # the snapshot is a copy: later probes do not mutate it
        table.probe((1,))
        table.finish()
        assert metrics.table_stats[7].probes == 1

    def test_merged_members_grouped_by_shared_table(self):
        from repro.runtime.hashtable import MergedReuseTable

        machine = Machine("O0")
        merged = MergedReuseTable(
            "g0", capacity=8, in_words=1, member_out_words={"3": 1, "9": 1}
        )
        machine.install_table(3, merged.view("3"))
        machine.install_table(9, merged.view("9"))
        view = machine.table_for(3)
        view.probe((2,))
        view.commit((20,))
        metrics = machine.metrics()
        assert metrics.merged_members == {"g0": [3, 9]}
        # per-member identity: segment 3 probed, segment 9 did not
        assert metrics.table_stats[3].probes == 1
        assert metrics.table_stats[9].probes == 0

    def test_report_renders_merged_identity(self):
        from repro.experiments.report import render_reuse_stats
        from repro.runtime.hashtable import TableStats

        text = render_reuse_stats(
            {3: TableStats(probes=10, hits=9), 9: TableStats()},
            {"g0": [3, 9]},
        )
        lines = text.splitlines()
        row3 = next(l for l in lines if l.startswith("3"))
        assert "g0" in row3
        assert "90.0%" in row3
