"""Additional interpreter semantics edge cases."""

import pytest

from repro.errors import InterpError
from repro.minic import frontend
from repro.runtime import Machine, compile_program

from tests.support import run_plain


def run(src, entry="main", inputs=()):
    result, _ = run_plain(src, entry=entry, inputs=inputs)
    return result


def test_comma_in_for_step():
    src = """
    int main(void) {
        int i;
        int j = 0;
        for (i = 0; i < 5; i++, j += 2)
            ;
        return j;
    }
    """
    assert run(src) == 10


def test_continue_in_do_while_checks_condition():
    src = """
    int main(void) {
        int n = 3;
        int c = 0;
        do {
            n--;
            if (n > 0) continue;
            c = 100;
        } while (n > 0);
        return c + n;
    }
    """
    assert run(src) == 100


def test_nested_ternary_evaluation_order():
    src = """
    int calls = 0;
    int mark(int v) { calls++; return v; }
    int main(void) {
        int r = 1 ? mark(5) : mark(6);
        return r * 10 + calls;
    }
    """
    assert run(src) == 51  # only one arm evaluated


def test_logical_results_are_zero_one():
    src = "int main(void) { return (5 && 7) * 10 + (0 || 9); }"
    assert run(src) == 11


def test_division_by_zero_raises_at_runtime():
    with pytest.raises(InterpError):
        run("int main(void) { int z = 0; return 1 / z; }")


def test_modulo_by_zero_raises():
    with pytest.raises(InterpError):
        run("int main(void) { int z = 0; return 1 % z; }")


def test_float_division_by_zero_raises():
    with pytest.raises(InterpError):
        run("float main(void) { float z = 0.0; return 1.0 / z; }")


def test_assert_builtin():
    assert run("int main(void) { __assert(1 == 1); return 7; }") == 7
    with pytest.raises(InterpError):
        run("int main(void) { __assert(0); return 7; }")


def test_print_int_collects_debug_log():
    program = frontend(
        "int main(void) { __print_int(3); __print_int(9); return 0; }"
    )
    machine = Machine()
    compile_program(program, machine).run("main")
    assert machine.debug_log == [3, 9]


def test_min_max_builtins():
    assert run("int main(void) { return __min(3, 9) * 100 + __max(3, 9); }") == 309


def test_math_builtins_values():
    src = """
    int main(void) {
        float c = __cos(0.0);
        float s = __sin(0.0);
        float q = __sqrt(16.0);
        float fl = __floor(2.9);
        return (int) (c * 1000.0 + s * 100.0 + q * 10.0 + fl);
    }
    """
    assert run(src) == 1042


def test_sqrt_negative_raises():
    with pytest.raises(InterpError):
        run("float main(void) { float m = -1.0; return __sqrt(m); }")


def test_deep_recursion_works():
    src = """
    int down(int n) { if (n == 0) return 0; return down(n - 1) + 1; }
    int main(void) { return down(200); }
    """
    assert run(src) == 200


def test_shadowed_global_by_param():
    src = """
    int x = 100;
    int f(int x) { return x + 1; }
    int main(void) { return f(5) + x; }
    """
    assert run(src) == 106


def test_multiple_runs_reset_globals():
    program = frontend("int g;\nint main(void) { g = g + 1; return g; }")
    machine = Machine()
    compiled = compile_program(program, machine)
    assert compiled.run("main") == 1
    assert compiled.run("main") == 1  # run() resets globals


def test_entry_other_than_main():
    src = "int helper(int v) { return v * 3; }\nint main(void) { return 0; }"
    program = frontend(src)
    machine = Machine()
    compiled = compile_program(program, machine)
    compiled.reset_globals()
    assert compiled.functions["helper"].invoke((7,)) == 21


def test_unknown_entry_raises():
    program = frontend("int main(void) { return 0; }")
    machine = Machine()
    compiled = compile_program(program, machine)
    with pytest.raises(InterpError):
        compiled.run("nothere")


def test_char_literals_as_ints():
    assert run("int main(void) { return 'a' + '\\n'; }") == 107


def test_hex_literals():
    assert run("int main(void) { return 0xFF & 0x0F; }") == 15
