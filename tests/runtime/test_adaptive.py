"""Runtime deactivation of unprofitable probing (governor path).

The ``AdaptiveReuseTable`` prototype and its ``build_tables(adaptive=True)``
shim are retired; the online reuse governor
(:mod:`repro.runtime.governor`) is the one runtime-deactivation
mechanism.  These tests pin the behavior the prototype introduced — an
adversarial input stream must not keep paying probe overhead, and a
profitable stream must be left alone — on the governed tables, plus the
removal itself.
"""

import pytest

from repro.minic import frontend
from repro.reuse import PipelineConfig, ReusePipeline
from repro.runtime import Machine, compile_program

PROGRAM = """
int tab[8] = {5, 3, 8, 1, 9, 2, 7, 4};
static int kernel(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 10; i++)
        r += tab[i & 7] * ((v + i) & 63) + v % (i + 2);
    return r;
}
int main(void) {
    int acc = 0;
    while (__input_avail())
        acc += kernel(__input_int());
    __output_int(acc);
    return acc;
}
"""


class TestEndToEnd:
    def _measure(self, inputs, governed):
        profile_inputs = [3, 9, 3, 17, 9, 3] * 40  # high-reuse profile run
        result = ReusePipeline(PROGRAM, PipelineConfig(min_executions=16)).run(
            profile_inputs
        )
        mo = Machine("O0")
        mo.set_inputs(list(inputs))
        compile_program(frontend(PROGRAM), mo).run("main")
        mt = Machine("O0")
        mt.set_inputs(list(inputs))
        for seg_id, table in result.build_tables(governed=governed).items():
            mt.install_table(seg_id, table)
        compile_program(result.program, mt).run("main")
        assert mo.output_checksum == mt.output_checksum
        return mo.cycles / mt.cycles, mt

    def test_good_inputs_unaffected(self):
        inputs = [3, 9, 3, 17, 9, 3] * 80
        plain, _ = self._measure(inputs, governed=False)
        governed, _ = self._measure(inputs, governed=True)
        assert governed > 1.2
        assert governed == pytest.approx(plain, rel=0.05)

    def test_adversarial_inputs_recovered(self):
        # all-distinct values: the profiled transformation never hits
        inputs = list(range(0, 40000, 7))
        plain, _ = self._measure(inputs, governed=False)
        governed, mt = self._measure(inputs, governed=True)
        assert plain < 1.0  # the static scheme loses on this input
        assert governed > plain  # bypassing recovers most of the loss
        assert governed > 0.97
        table = next(iter(mt.reuse_tables.values()))
        assert table.governor.disables >= 1
        assert table.governor.bypassed_executions > 0
        assert any(t["reason"] == "unprofitable" for t in table.governor.transitions)


class TestRetiredShim:
    def test_adaptive_kwarg_is_gone(self):
        profile_inputs = [3, 9, 3, 17, 9, 3] * 40
        result = ReusePipeline(PROGRAM, PipelineConfig(min_executions=16)).run(
            profile_inputs
        )
        with pytest.raises(TypeError):
            result.build_tables(adaptive=True)

    def test_adaptive_module_is_gone(self):
        with pytest.raises(ImportError):
            import repro.runtime.adaptive  # noqa: F401
