"""Tests for adaptive reuse tables (runtime deactivation extension)."""

import pytest

from repro.minic import frontend
from repro.reuse import PipelineConfig, ReusePipeline
from repro.runtime import Machine, compile_program
from repro.runtime.adaptive import AdaptiveReuseTable


class TestAdaptiveTable:
    def _table(self, **kw):
        defaults = dict(
            capacity=64, in_words=1, out_words=1, break_even=0.5, window=10,
            retry_every=20,
        )
        defaults.update(kw)
        return AdaptiveReuseTable("s", **defaults)

    def test_stays_active_on_good_locality(self):
        t = self._table()
        for i in range(100):
            key = (i % 3,)
            if not t.bypassed:
                if t.probe(key):
                    t.finish()
                else:
                    t.commit((1,))
        assert t.active
        assert t.deactivations == 0

    def test_deactivates_on_bad_locality(self):
        t = self._table()
        for i in range(30):
            if t.bypassed:
                t.push_bypass()
                t.commit(())
                continue
            key = (i,)  # all distinct: zero hits
            if t.probe(key):
                t.finish()
            else:
                t.commit((1,))
        assert t.deactivations >= 1
        assert t.bypassed_probes > 0

    def test_reactivation_resamples(self):
        t = self._table(window=5, retry_every=8)
        # poison phase: deactivate
        for i in range(10):
            if not t.bypassed:
                t.probe((1000 + i,))
                t.commit((1,))
            else:
                t.push_bypass()
                t.commit(())
        assert not t.active
        # keep bypassing until retry triggers, then feed it locality
        hits = 0
        for i in range(200):
            if t.bypassed:
                t.push_bypass()
                t.commit(())
                continue
            if t.probe((7,)):
                hits += 1
                t.finish()
            else:
                t.commit((9,))
        assert t.active  # recovered
        assert hits > 0

    def test_break_even_validation(self):
        with pytest.raises(ValueError):
            self._table(break_even=1.5)

    def test_commit_after_bypass_is_noop(self):
        t = self._table(window=2, retry_every=100)
        t.probe((1,))
        t.commit((10,))
        t.probe((2,))
        t.commit((20,))  # window closes, ratio 0 -> deactivate
        assert not t.active
        assert t.bypassed  # consumes one bypass
        t.push_bypass()
        t.commit(())  # must not raise or store anything
        assert t.occupied <= 2


PROGRAM = """
int tab[8] = {5, 3, 8, 1, 9, 2, 7, 4};
static int kernel(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 10; i++)
        r += tab[i & 7] * ((v + i) & 63) + v % (i + 2);
    return r;
}
int main(void) {
    int acc = 0;
    while (__input_avail())
        acc += kernel(__input_int());
    __output_int(acc);
    return acc;
}
"""


class TestEndToEnd:
    def _measure(self, inputs, governed):
        profile_inputs = [3, 9, 3, 17, 9, 3] * 40  # high-reuse profile run
        result = ReusePipeline(PROGRAM, PipelineConfig(min_executions=16)).run(
            profile_inputs
        )
        mo = Machine("O0")
        mo.set_inputs(list(inputs))
        compile_program(frontend(PROGRAM), mo).run("main")
        mt = Machine("O0")
        mt.set_inputs(list(inputs))
        for seg_id, table in result.build_tables(governed=governed).items():
            mt.install_table(seg_id, table)
        compile_program(result.program, mt).run("main")
        assert mo.output_checksum == mt.output_checksum
        return mo.cycles / mt.cycles, mt

    def test_good_inputs_unaffected(self):
        inputs = [3, 9, 3, 17, 9, 3] * 80
        plain, _ = self._measure(inputs, governed=False)
        governed, _ = self._measure(inputs, governed=True)
        assert governed > 1.2
        assert governed == pytest.approx(plain, rel=0.05)

    def test_adversarial_inputs_recovered(self):
        # all-distinct values: the profiled transformation never hits
        inputs = list(range(0, 40000, 7))
        plain, _ = self._measure(inputs, governed=False)
        governed, mt = self._measure(inputs, governed=True)
        assert plain < 1.0  # the static scheme loses on this input
        assert governed > plain  # bypassing recovers most of the loss
        assert governed > 0.97
        table = next(iter(mt.reuse_tables.values()))
        assert table.governor.disables >= 1
        assert table.governor.bypassed_executions > 0
        assert any(t["reason"] == "unprofitable" for t in table.governor.transitions)

    def test_adaptive_kwarg_is_deprecated_shim(self):
        profile_inputs = [3, 9, 3, 17, 9, 3] * 40
        result = ReusePipeline(PROGRAM, PipelineConfig(min_executions=16)).run(
            profile_inputs
        )
        with pytest.warns(DeprecationWarning, match=r"repro\."):
            tables = result.build_tables(adaptive=True)
        from repro.runtime.governor import GovernedReuseTable

        assert tables and all(
            isinstance(t, GovernedReuseTable) or hasattr(t, "governor")
            for t in tables.values()
        )
