"""End-to-end interpreter tests: mini-C semantics under the cost model."""

import pytest

from repro.errors import InterpError
from repro.minic import frontend
from repro.runtime import Machine, ReuseTable, compile_program

from tests.support import run_plain


def run(src, entry="main", opt="O0", inputs=()):
    result, _ = run_plain(src, entry=entry, opt_level=opt, inputs=inputs)
    return result


class TestArithmetic:
    def test_basic_int_math(self):
        assert run("int main(void) { return 2 + 3 * 4; }") == 14

    def test_division_truncates_toward_zero(self):
        assert run("int main(void) { return -7 / 2; }") == -3
        assert run("int main(void) { return -7 % 2; }") == -1

    def test_int_overflow_wraps(self):
        assert run("int main(void) { int x = 2147483647; return x + 1; }") == -(2**31)

    def test_shifts_and_bitwise(self):
        assert run("int main(void) { return (1 << 4) | 3; }") == 19
        assert run("int main(void) { return (0xF0 >> 4) & 0x3; }") == 3
        assert run("int main(void) { return ~0; }") == -1

    def test_float_math(self):
        src = "float main(void) { float x = 1.5; return x * 2.0 + 0.25; }"
        assert run(src) == pytest.approx(3.25)

    def test_mixed_int_float_promotion(self):
        assert run("float main(void) { int a = 3; return a / 2.0; }") == pytest.approx(1.5)

    def test_casts(self):
        assert run("int main(void) { return (int) 3.9; }") == 3
        assert run("int main(void) { return (int) -3.9; }") == -3
        assert run("float main(void) { return (float) 7 / 2; }") == pytest.approx(3.5)

    def test_comparisons_return_01(self):
        assert run("int main(void) { return (3 < 5) + (5 < 3); }") == 1

    def test_logical_short_circuit(self):
        src = """
        int count = 0;
        int bump(void) { count = count + 1; return 1; }
        int main(void) {
            int r = 0 && bump();
            int s = 1 || bump();
            return count * 10 + r + s;
        }
        """
        assert run(src) == 1

    def test_ternary(self):
        assert run("int main(void) { return 1 ? 10 : 20; }") == 10

    def test_unary_not(self):
        assert run("int main(void) { return !0 + !5; }") == 1


class TestControlFlow:
    def test_while_loop(self):
        src = "int main(void) { int i = 0; int s = 0; while (i < 10) { s += i; i++; } return s; }"
        assert run(src) == 45

    def test_for_loop_with_break_continue(self):
        src = """
        int main(void) {
            int s = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 10) break;
                s += i;
            }
            return s;
        }
        """
        assert run(src) == 1 + 3 + 5 + 7 + 9

    def test_continue_in_for_executes_step(self):
        src = """
        int main(void) {
            int n = 0;
            for (int i = 0; i < 5; i++) {
                continue;
            }
            return 7;
        }
        """
        assert run(src) == 7  # would loop forever if step were skipped

    def test_do_while_runs_at_least_once(self):
        src = "int main(void) { int i = 100; int n = 0; do { n++; } while (i < 0); return n; }"
        assert run(src) == 1

    def test_nested_loops_break_inner_only(self):
        src = """
        int main(void) {
            int n = 0;
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 10; j++) {
                    if (j == 2) break;
                    n++;
                }
            return n;
        }
        """
        assert run(src) == 6

    def test_early_return_from_loop(self):
        src = """
        int main(void) {
            for (int i = 0; i < 10; i++)
                if (i == 4) return i * 100;
            return -1;
        }
        """
        assert run(src) == 400

    def test_dangling_else(self):
        src = """
        int f(int a, int b) {
            if (a) { if (b) return 1; else return 2; }
            return 3;
        }
        int main(void) { return f(1, 0) * 10 + f(0, 1); }
        """
        assert run(src) == 23


class TestFunctions:
    def test_call_and_return(self):
        src = "int sq(int x) { return x * x; } int main(void) { return sq(7); }"
        assert run(src) == 49

    def test_recursion(self):
        src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main(void) { return fib(12); }"
        assert run(src) == 144

    def test_void_function_and_globals(self):
        src = """
        int acc = 0;
        void add(int v) { acc += v; }
        int main(void) { add(3); add(4); return acc; }
        """
        assert run(src) == 7

    def test_function_pointer_call(self):
        src = """
        int double_(int x) { return 2 * x; }
        int triple(int x) { return 3 * x; }
        int apply(int f(int), int v) { return f(v); }
        int main(void) { return apply(double_, 10) + apply(triple, 10); }
        """
        assert run(src) == 50

    def test_fall_off_end_returns_zero(self):
        assert run("int main(void) { int x = 5; x += 1; }") == 0


class TestArraysAndPointers:
    def test_local_array_zero_initialized(self):
        src = "int main(void) { int a[4]; return a[0] + a[3]; }"
        assert run(src) == 0

    def test_global_array_initializer(self):
        src = """
        int t[5] = {10, 20, 30};
        int main(void) { return t[0] + t[2] + t[4]; }
        """
        assert run(src) == 40

    def test_2d_array(self):
        src = """
        int m[2][3];
        int main(void) {
            for (int i = 0; i < 2; i++)
                for (int j = 0; j < 3; j++)
                    m[i][j] = i * 3 + j;
            return m[1][2];
        }
        """
        assert run(src) == 5

    def test_array_param_aliases_caller(self):
        src = """
        void fill(int *a, int n) { for (int i = 0; i < n; i++) a[i] = i + 1; }
        int main(void) { int buf[4]; fill(buf, 4); return buf[3]; }
        """
        assert run(src) == 4

    def test_pointer_walk(self):
        src = """
        int sum(int *p, int n) {
            int s = 0;
            for (int i = 0; i < n; i++)
                s += *p++;
            return s;
        }
        int data[4] = {1, 2, 3, 4};
        int main(void) { return sum(data, 4); }
        """
        assert run(src) == 10

    def test_address_of_scalar(self):
        src = """
        void bump(int *p) { *p += 10; }
        int main(void) { int x = 5; bump(&x); return x; }
        """
        assert run(src) == 15

    def test_address_of_array_element(self):
        src = """
        int main(void) {
            int a[4] = {0, 0, 0, 0};
            int *p = &a[2];
            *p = 9;
            p[1] = 7;
            return a[2] * 10 + a[3];
        }
        """
        assert run(src) == 97

    def test_pointer_difference(self):
        src = """
        int a[10];
        int main(void) {
            int *p = &a[7];
            int *q = &a[2];
            return p - q;
        }
        """
        assert run(src) == 5

    def test_2d_array_as_pointer_param(self):
        src = """
        int total(int m[][3], int rows) {
            int s = 0;
            for (int i = 0; i < rows; i++)
                for (int j = 0; j < 3; j++)
                    s += m[i][j];
            return s;
        }
        int g[2][3] = {{1, 2, 3}, {4, 5, 6}};
        int main(void) { return total(g, 2); }
        """
        assert run(src) == 21

    def test_local_array_fresh_per_invocation(self):
        src = """
        int f(void) {
            int a[2];
            a[0] += 1;
            return a[0];
        }
        int main(void) { f(); return f(); }
        """
        assert run(src) == 1


class TestIO:
    def test_input_stream(self):
        src = """
        int main(void) {
            int s = 0;
            while (__input_avail())
                s += __input_int();
            return s;
        }
        """
        assert run(src, inputs=[1, 2, 3, 4]) == 10

    def test_input_exhaustion_raises(self):
        with pytest.raises(InterpError):
            run("int main(void) { return __input_int(); }")

    def test_output_checksum_deterministic(self):
        src = """
        int main(void) {
            for (int i = 0; i < 5; i++)
                __output_int(i * i);
            return 0;
        }
        """
        _, m1 = run_plain(src)
        _, m2 = run_plain(src)
        assert m1.output_checksum == m2.output_checksum
        assert m1.output_count == 5

    def test_output_checksum_order_sensitive(self):
        a = "int main(void) { __output_int(1); __output_int(2); return 0; }"
        b = "int main(void) { __output_int(2); __output_int(1); return 0; }"
        _, ma = run_plain(a)
        _, mb = run_plain(b)
        assert ma.output_checksum != mb.output_checksum


class TestCostModel:
    def test_cycles_positive_and_scale_with_work(self):
        small = "int main(void) { int s = 0; for (int i = 0; i < 10; i++) s += i; return s; }"
        big = "int main(void) { int s = 0; for (int i = 0; i < 1000; i++) s += i; return s; }"
        _, ms = run_plain(small)
        _, mb = run_plain(big)
        assert 0 < ms.cycles < mb.cycles
        assert mb.cycles > 50 * ms.cycles

    def test_o3_cheaper_than_o0(self):
        src = "int main(void) { int s = 0; for (int i = 0; i < 100; i++) s += i * 3; return s; }"
        _, m0 = run_plain(src, opt_level="O0")
        _, m3 = run_plain(src, opt_level="O3")
        assert m3.cycles < m0.cycles

    def test_float_ops_cost_more_than_int(self):
        fsrc = "float main(void) { float s = 0.0; for (int i = 0; i < 100; i++) s = s * 1.5; return s; }"
        isrc = "int main(void) { int s = 0; for (int i = 0; i < 100; i++) s = s * 3; return s; }"
        _, mf = run_plain(fsrc)
        _, mi = run_plain(isrc)
        assert mf.cycles > mi.cycles

    def test_energy_positive_and_tracks_time(self):
        src = "int main(void) { int s = 0; for (int i = 0; i < 500; i++) s += i; return s; }"
        _, m = run_plain(src)
        assert m.energy_joules > 0
        # base power dominates: energy/seconds should be within sane wattage
        watts = m.energy_joules / m.seconds
        assert 1.5 < watts < 5.0

    def test_metrics_counts_sum(self):
        src = "int main(void) { return 1 + 2; }"
        _, m = run_plain(src)
        assert m.counts["alu"] >= 1
        assert m.counts["ret"] == 1


class TestReuseIntrinsics:
    def test_probe_commit_roundtrip_via_program(self):
        src = """
        int compute(int x) {
            int r;
            if (__reuse_probe(7, x) == 0) {
                r = x * x + 1;
                __reuse_commit(7, r);
            }
            else {
                r = __reuse_out_i(7, 0);
                __reuse_end(7);
            }
            return r;
        }
        int main(void) {
            int s = 0;
            for (int i = 0; i < 10; i++)
                s += compute(i % 3);
            return s;
        }
        """
        program = frontend(src)
        machine = Machine("O0")
        machine.install_table(7, ReuseTable("seg7", capacity=64, in_words=1, out_words=1))
        compiled = compile_program(program, machine)
        result = compiled.run("main")
        # i%3 cycles 0,1,2 -> values 1,2,5; 10 iters: 4x0, 3x1, 3x2
        assert result == 4 * 1 + 3 * 2 + 3 * 5
        table = machine.reuse_tables[7]
        assert table.stats.probes == 10
        assert table.stats.hits == 7
        assert table.stats.misses == 3

    def test_probe_without_table_raises(self):
        src = """
        int main(void) { return __reuse_probe(1, 5); }
        """
        program = frontend(src)
        machine = Machine("O0")
        compiled = compile_program(program, machine)
        with pytest.raises(InterpError):
            compiled.run("main")

    def test_hash_costs_charged(self):
        src = """
        int main(void) {
            if (__reuse_probe(1, 5) == 0)
                __reuse_commit(1, 9);
            else
                __reuse_end(1);
            return 0;
        }
        """
        program = frontend(src)
        machine = Machine("O0")
        machine.install_table(1, ReuseTable("s", 8, 1, 1))
        compiled = compile_program(program, machine)
        compiled.run("main")
        m = machine.metrics()
        assert m.counts["hash_fixed"] == 1
        assert m.counts["hash_word"] == 2  # 1 key word + 1 output word

    def test_profile_stub_is_zero_cost_and_records(self):
        src = """
        int main(void) {
            for (int i = 0; i < 4; i++)
                __profile(3, i % 2);
            return 0;
        }
        """

        class Recorder:
            def __init__(self):
                self.events = []

            def record(self, seg, key):
                self.events.append((seg, key))

        program = frontend(src)
        machine_with = Machine("O0")
        rec = Recorder()
        machine_with.profiler = rec
        compiled = compile_program(program, machine_with)
        compiled.run("main")
        cycles_with = machine_with.cycles

        machine_without = Machine("O0")
        compiled2 = compile_program(program, machine_without)
        compiled2.run("main")

        assert [e[1] for e in rec.events] == [(0,), (1,), (0,), (1,)]
        assert cycles_with == machine_without.cycles
