"""The bytecode VM must be bit-identical to the closure oracle.

``Machine(backend="vm")`` compiles mini-C to flat register bytecode and
executes it through either the translation engine (default) or the
dispatch loop; the closure tree stays the reference implementation.
Whatever the backend, one measured run must produce the same simulated
cycles, output checksum, per-table statistics, governor telemetry, and
ledger verdicts — that differential is what licenses using the (much
faster) VM for any measurement in this repo.

Three layers of checks:

* the full sweep — every registered workload at O0/O3 with static and
  governed tables, closures vs the translate engine, compared on the
  entire :class:`~repro.runtime.machine.Metrics` dataclass;
* the dispatch engine on a representative subset (it shares the reuse
  kernels with the translator, so a thin slice pins the wiring);
* opcode-level units — reuse probes/commits are first-class ops in the
  stream, observer ops are emitted only when an observer is installed,
  and the probe/commit protocol hits and bypasses exactly like the
  closure intrinsics.
"""

import copy
import os

import pytest

import repro
from repro.minic.sema import analyze
from repro.obs.profiler import CycleProfiler
from repro.obs.metrics import MetricsRegistry
from repro.opt.pipeline import optimize
from repro.reuse.pipeline import PipelineConfig, ReusePipeline
from repro.runtime.compiler import compile_program
from repro.runtime.governor import GovernorPolicy
from repro.runtime.machine import Machine
from repro.runtime.vm import compile_vm_program, vm_opcodes as op
from repro.workloads.registry import ALL_WORKLOADS, get_workload

# Same prefix trick as the fusion/governor differentials: every workload
# polls __input_avail, so a prefix keeps the sweep fast while touching
# every segment kind.
_INPUT_PREFIX = 1024

_cache: dict[str, tuple] = {}
_closure_cache: dict[tuple, object] = {}


def _pipeline(workload):
    if workload.name not in _cache:
        inputs = workload.default_inputs()[:_INPUT_PREFIX]
        config = PipelineConfig(
            min_executions=workload.min_executions,
            memory_budget_bytes=workload.memory_budget_bytes,
            governor=workload.governor or GovernorPolicy(),
        )
        result = ReusePipeline(workload.source, config).run(inputs)
        _cache[workload.name] = (result, inputs)
    return _cache[workload.name]


def _measure(result, opt_level, inputs, governed, backend, engine=None):
    program = copy.deepcopy(result.program)
    analyze(program)
    optimize(program, opt_level)
    machine = Machine(opt_level, backend=backend)
    machine.set_inputs(list(inputs))
    for seg_id, table in result.build_tables(governed=governed).items():
        machine.install_table(seg_id, table)
    previous = os.environ.get("REPRO_VM_ENGINE")
    if engine is not None:
        os.environ["REPRO_VM_ENGINE"] = engine
    try:
        value = compile_program(program, machine).run("main")
    finally:
        if engine is not None:
            if previous is None:
                del os.environ["REPRO_VM_ENGINE"]
            else:
                os.environ["REPRO_VM_ENGINE"] = previous
    return value, machine.metrics()


def _closure_run(workload, opt_level, governed):
    key = (workload.name, opt_level, governed)
    if key not in _closure_cache:
        result, inputs = _pipeline(workload)
        _closure_cache[key] = _measure(
            result, opt_level, inputs, governed, "closures"
        )
    return _closure_cache[key]


# -- full sweep: translate engine vs closures --------------------------------


@pytest.mark.parametrize("governed", [False, True], ids=["static", "governed"])
@pytest.mark.parametrize("opt_level", ["O0", "O3"])
@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_vm_matches_closures(workload, opt_level, governed):
    result, inputs = _pipeline(workload)
    base_value, base_metrics = _closure_run(workload, opt_level, governed)
    vm_value, vm_metrics = _measure(
        result, opt_level, inputs, governed, "vm", engine="translate"
    )
    assert vm_value == base_value
    # the whole dataclass: cycles, seconds, joules, checksum, per-table
    # TableStats (incl. sampled hit-ratio series), governor snapshots
    assert vm_metrics == base_metrics


# -- dispatch engine: representative slice -----------------------------------

_DISPATCH_SLICE = ("G721_encode", "MPEG2_decode", "RASTA", "GNUGO_drift")


@pytest.mark.parametrize("name", _DISPATCH_SLICE)
def test_dispatch_engine_matches(name):
    workload = get_workload(name)
    result, inputs = _pipeline(workload)
    base_value, base_metrics = _closure_run(workload, "O0", True)
    vm_value, vm_metrics = _measure(
        result, "O0", inputs, True, "vm", engine="dispatch"
    )
    assert vm_value == base_value
    assert vm_metrics == base_metrics


# -- ledger verdicts ---------------------------------------------------------


def test_governor_ledger_verdicts_identical():
    """A governed api-level run appends the governor stage to the ledger;
    both backends must record the same verdicts with the same numbers."""
    workload = get_workload("UNEPIC_drift")
    inputs = workload.default_inputs()[:_INPUT_PREFIX]

    def verdicts(backend):
        program = repro.compile(
            workload.source,
            repro.CompileOptions(
                governed=True,
                backend=backend,
                config=PipelineConfig(
                    min_executions=workload.min_executions,
                    memory_budget_bytes=workload.memory_budget_bytes,
                    governor=workload.governor or GovernorPolicy(),
                ),
            ),
        )
        run = program.run(inputs)
        assert run.ledger is not None
        return {
            seg_id: [v for v in record.verdicts if v.stage == "governor"]
            for seg_id, record in run.ledger.records.items()
        }

    closure_verdicts = verdicts("closures")
    vm_verdicts = verdicts("vm")
    assert any(v for v in closure_verdicts.values())
    assert vm_verdicts == closure_verdicts


# -- opcode-level: probes and observer ops in the instruction stream ---------

KERNEL_PROGRAM = """
int tab[8] = {5, 3, 8, 1, 9, 2, 7, 4};
static int kernel(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 10; i++)
        r += tab[i & 7] * ((v + i) & 63) + v % (i + 2);
    return r;
}
int main(void) {
    int acc = 0;
    while (__input_avail())
        acc += kernel(__input_int());
    __output_int(acc);
    return acc;
}
"""

_PROFILE_INPUTS = [3, 9, 3, 17, 9, 3] * 40


def _transformed_result():
    return ReusePipeline(KERNEL_PROGRAM, PipelineConfig(min_executions=16)).run(
        list(_PROFILE_INPUTS)
    )


def _opcodes(vm_program):
    return {
        ins[0] for fn in vm_program.functions.values() for ins in fn.code
    }


def test_probe_and_commit_are_first_class_ops():
    result = _transformed_result()
    assert result.selected, "pipeline must transform the kernel"
    program = copy.deepcopy(result.program)
    analyze(program)
    machine = Machine("O0", backend="vm")
    ops = _opcodes(compile_vm_program(program, machine))
    assert op.PROBE in ops and op.COMMIT in ops and op.REND in ops
    # the untransformed program carries no reuse ops at all
    from repro.minic import frontend

    plain_ops = _opcodes(
        compile_vm_program(frontend(KERNEL_PROGRAM), Machine("O0", backend="vm"))
    )
    assert not plain_ops & {op.PROBE, op.COMMIT, op.ROUT, op.ROUT_ARR, op.REND}


def test_observer_ops_emitted_only_when_observed():
    """Profiler and meter ops exist in the stream only when the machine
    has that observer installed at compile time — the VM's equivalent of
    the closure backend's observer-free fast path."""
    from repro.minic import frontend

    prof_ops = {
        op.PROF_ENTER, op.PROF_EXIT, op.PROF_PB, op.PROF_PE,
        op.PROF_CB, op.PROF_SX,
    }
    meter_ops = {op.METER_FUNC, op.METER_PROBE}

    bare = Machine("O0", backend="vm")
    assert not _opcodes(compile_vm_program(frontend(KERNEL_PROGRAM), bare)) & (
        prof_ops | meter_ops
    )

    profiled = Machine("O0", backend="vm")
    profiled.cycle_profiler = CycleProfiler(profiled)
    assert _opcodes(compile_vm_program(frontend(KERNEL_PROGRAM), profiled)) & prof_ops

    metered = Machine("O0", backend="vm")
    metered.metrics_registry = MetricsRegistry()
    assert (
        _opcodes(compile_vm_program(frontend(KERNEL_PROGRAM), metered)) & meter_ops
    )


@pytest.mark.parametrize("engine", ["translate", "dispatch"])
def test_probe_protocol_hits_like_closures(engine):
    """Same inputs, same tables: the VM's probe/commit kernels must hit,
    miss, and bypass exactly like the closure intrinsics."""
    result = _transformed_result()
    inputs = [3, 9, 3, 17, 9, 3] * 80
    base_value, base_metrics = _measure(result, "O0", inputs, True, "closures")
    vm_value, vm_metrics = _measure(result, "O0", inputs, True, "vm", engine=engine)
    assert vm_value == base_value
    assert vm_metrics == base_metrics
    stats = next(iter(vm_metrics.table_stats.values()))
    assert stats.hits > 0  # the stream re-uses values, so the table must hit
