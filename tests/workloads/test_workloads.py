"""Tests for the benchmark workloads: sources compile and run, input
generators are deterministic and have the documented properties."""

import pytest

from repro.minic import frontend
from repro.runtime import Machine, compile_program
from repro.workloads import ALL_WORKLOADS, PRIMARY_WORKLOADS, WORKLOADS, get_workload
from repro.workloads import inputs as gen


class TestRegistry:
    def test_fourteen_programs(self):
        assert len(ALL_WORKLOADS) == 14

    def test_seven_primary(self):
        assert len(PRIMARY_WORKLOADS) == 7
        assert [w.name for w in PRIMARY_WORKLOADS] == [
            "G721_encode",
            "G721_decode",
            "MPEG2_encode",
            "MPEG2_decode",
            "RASTA",
            "UNEPIC",
            "GNUGO",
        ]

    def test_get_workload(self):
        assert get_workload("RASTA").name == "RASTA"
        with pytest.raises(KeyError):
            get_workload("nope")

    def test_variants_flagged(self):
        for name in (
            "G721_encode_s",
            "G721_encode_b",
            "G721_decode_s",
            "G721_decode_b",
            "MPEG2_encode_drift",
            "UNEPIC_drift",
            "GNUGO_drift",
        ):
            assert WORKLOADS[name].is_variant

    def test_drift_variants_share_parent_defaults(self):
        # profiling (and the governor no-op differential) must see the
        # parent's stationary stream; only the alternate stream drifts
        for drift, parent in (
            ("UNEPIC_drift", "UNEPIC"),
            ("MPEG2_encode_drift", "MPEG2_encode"),
            ("GNUGO_drift", "GNUGO"),
        ):
            d, p = WORKLOADS[drift], WORKLOADS[parent]
            assert d.source == p.source
            assert d.default_inputs() == p.default_inputs()
            assert d.alternate_inputs() != p.alternate_inputs()


class TestSourcesRun:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_source_parses_and_runs(self, name):
        workload = WORKLOADS[name]
        program = frontend(workload.source)
        machine = Machine("O0")
        # a truncated input stream keeps this fast
        inputs = workload.default_inputs()
        machine.set_inputs(inputs[: min(len(inputs), 640)])
        compile_program(program, machine).run("main")
        assert machine.cycles > 0
        assert machine.output_count > 0

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_deterministic_checksum(self, name):
        workload = WORKLOADS[name]
        results = []
        for _ in range(2):
            machine = Machine("O0")
            machine.set_inputs(workload.default_inputs()[:320])
            compile_program(frontend(workload.source), machine).run("main")
            results.append(machine.output_checksum)
        assert results[0] == results[1]

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_alternate_inputs_differ(self, name):
        workload = WORKLOADS[name]
        assert workload.default_inputs()[:200] != workload.alternate_inputs()[:200]


class TestGenerators:
    def test_generators_deterministic(self):
        assert gen.g721_audio() == gen.g721_audio()
        assert gen.rasta_bands() == gen.rasta_bands()
        assert gen.gnugo_points() == gen.gnugo_points()

    def test_audio_in_16bit_range(self):
        for s in gen.g721_audio():
            assert -32768 <= s <= 32767

    def test_codes_are_4bit(self):
        for c in gen.g721_codes(gen.g721_audio()):
            assert 0 <= c <= 15

    def test_rasta_has_31_distinct_bands(self):
        bands = set(gen.rasta_bands())
        assert bands <= set(range(31))
        assert len(bands) == 31

    def test_mpeg2_decode_duplicate_rate(self):
        stream = gen.mpeg2_coeff_blocks()
        blocks = [tuple(stream[i : i + 64]) for i in range(0, len(stream), 64)]
        rate = 1 - len(set(blocks)) / len(blocks)
        assert 0.35 < rate < 0.62  # the paper's 48.6% neighbourhood

    def test_mpeg2_encode_duplicate_rate_low(self):
        stream = gen.mpeg2_pixel_blocks()
        blocks = [tuple(stream[i : i + 64]) for i in range(0, len(stream), 64)]
        rate = 1 - len(set(blocks)) / len(blocks)
        assert rate < 0.25

    def test_mpeg2_decode_has_runs(self):
        """Consecutive identical blocks exist (Table 5's 1-entry hits)."""
        stream = gen.mpeg2_coeff_blocks()
        blocks = [tuple(stream[i : i + 64]) for i in range(0, len(stream), 64)]
        runs = sum(1 for a, b in zip(blocks, blocks[1:]) if a == b)
        assert runs / len(blocks) > 0.15

    def test_unepic_repetition_rate(self):
        values = gen.unepic_coeffs()
        rate = 1 - len(set(values)) / len(values)
        assert 0.5 < rate < 0.8  # the paper's 65.1% neighbourhood

    def test_unepic_no_temporal_locality(self):
        """Immediate repeats are rare (shuffled stream)."""
        values = gen.unepic_coeffs()
        adjacent = sum(1 for a, b in zip(values, values[1:]) if a == b)
        assert adjacent / len(values) < 0.05

    def test_gnugo_values_in_range(self):
        stream = gen.gnugo_points()
        assert len(stream) % 4 == 0
        assert all(0 <= v <= 19 for v in stream)

    def test_gnugo_quadruples_repeat_across_moves(self):
        stream = gen.gnugo_points()
        quads = [tuple(stream[i : i + 4]) for i in range(0, len(stream), 4)]
        rate = 1 - len(set(quads)) / len(quads)
        assert rate > 0.85  # the paper's 98.2% neighbourhood (scaled)

    def test_paper_numbers_attached(self):
        wl = get_workload("MPEG2_decode")
        assert wl.paper.reuse_rate == pytest.approx(0.486)
        assert wl.paper.speedup_o0 == pytest.approx(1.82)
