"""Differential property tests over randomly generated mini-C programs.

Three system-level invariants, checked against generated programs:

1. the interpreter agrees with a reference evaluation in Python
   (semantics oracle for straight-line integer code);
2. the O3 optimizer pipeline never changes observable behaviour;
3. the reuse transformation never changes observable behaviour, for any
   feasible segment and any table capacity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minic import format_program, frontend
from repro.minic.sema import analyze
from repro.minic.parser import parse_program
from repro.opt.pipeline import optimize
from repro.reuse import PipelineConfig, ReusePipeline
from repro.runtime import Machine, compile_program
from repro.runtime.values import c_shl, c_shr, wrap32


# -- 1. interpreter vs Python oracle -----------------------------------------

_BINOPS = {
    "+": lambda a, b: wrap32(a + b),
    "-": lambda a, b: wrap32(a - b),
    "*": lambda a, b: wrap32(a * b),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": c_shl,
    ">>": c_shr,
}


@st.composite
def straightline_program(draw):
    """A straight-line program over 4 int variables; returns (source,
    oracle_value) where the oracle evaluates the same operations in
    Python using the C-semantics helpers."""
    n_stmts = draw(st.integers(min_value=1, max_value=12))
    env = {"a": 1, "b": 2, "c": 3, "d": 4}
    names = list(env)
    lines = [f"int {n} = {env[n]};" for n in names]
    for _ in range(n_stmts):
        target = draw(st.sampled_from(names))
        op = draw(st.sampled_from(sorted(_BINOPS)))
        lhs = draw(st.sampled_from(names))
        rhs_choice = draw(st.integers(min_value=0, max_value=1))
        if rhs_choice:
            rhs_name = draw(st.sampled_from(names))
            rhs_text, rhs_val = rhs_name, env[rhs_name]
        else:
            lit = draw(st.integers(min_value=0, max_value=31))
            rhs_text, rhs_val = str(lit), lit
        lines.append(f"{target} = {lhs} {op} {rhs_text};")
        env[target] = _BINOPS[op](env[lhs], rhs_val)
    result = wrap32(env["a"] + env["b"] + env["c"] + env["d"])
    body = "\n    ".join(lines)
    source = f"int main(void) {{\n    {body}\n    return a + b + c + d;\n}}\n"
    return source, result


@settings(max_examples=120, deadline=None)
@given(straightline_program())
def test_interpreter_matches_python_oracle(case):
    source, expected = case
    machine = Machine("O0")
    got = compile_program(frontend(source), machine).run("main")
    assert got == expected, source


@settings(max_examples=60, deadline=None)
@given(straightline_program())
def test_o3_matches_oracle_too(case):
    source, expected = case
    program = frontend(source)
    optimize(program, "O3")
    machine = Machine("O3")
    got = compile_program(program, machine).run("main")
    assert got == expected, format_program(program)


# -- 2/3. structured programs: O3 and reuse preserve behaviour -----------------


@st.composite
def kernel_program(draw):
    """A program with a pure kernel function containing loops/branches,
    driven by an input stream — the shape the reuse pipeline targets."""
    n_terms = draw(st.integers(min_value=1, max_value=4))
    terms = []
    for i in range(n_terms):
        coef = draw(st.integers(min_value=1, max_value=9))
        shift = draw(st.integers(min_value=0, max_value=4))
        terms.append(f"tab[(v >> {shift}) & 7] * {coef} + (v % {i + 2})")
    body = "\n        ".join(f"r += {t};" for t in terms)
    loop_bound = draw(st.integers(min_value=1, max_value=6))
    branch_const = draw(st.integers(min_value=0, max_value=64))
    source = f"""
int tab[8] = {{5, 3, 8, 1, 9, 2, 7, 4}};

static int kernel(int v) {{
    int r = 0;
    int i;
    for (i = 0; i < {loop_bound}; i++) {{
        {body}
    }}
    if (v > {branch_const})
        r = r - v;
    return r;
}}

int main(void) {{
    int acc = 0;
    while (__input_avail())
        acc += kernel(__input_int());
    __output_int(acc);
    return acc;
}}
"""
    inputs = draw(
        st.lists(st.integers(min_value=0, max_value=300), min_size=8, max_size=60)
    )
    # repeat to create reuse opportunities
    return source, inputs * 3


def _run(program, inputs, opt, tables=None):
    machine = Machine(opt)
    machine.set_inputs(list(inputs))
    for seg_id, table in (tables or {}).items():
        machine.install_table(seg_id, table)
    result = compile_program(program, machine).run("main")
    return result, machine.output_checksum


@settings(max_examples=30, deadline=None)
@given(kernel_program())
def test_optimizer_preserves_behaviour(case):
    source, inputs = case
    r0, c0 = _run(frontend(source), inputs, "O0")
    program = frontend(source)
    optimize(program, "O3")
    r3, c3 = _run(program, inputs, "O3")
    assert (r0, c0) == (r3, c3)


@settings(max_examples=20, deadline=None)
@given(kernel_program(), st.integers(min_value=0, max_value=2))
def test_reuse_transform_preserves_behaviour(case, capacity_exp):
    source, inputs = case
    r0, c0 = _run(frontend(source), inputs, "O0")
    result = ReusePipeline(
        source,
        PipelineConfig(min_executions=4, enable_cost_filter=False),
    ).run(inputs)
    capacity = 4 ** (capacity_exp + 1)  # tiny tables stress replacement
    tables = result.build_tables(capacity_override=capacity)
    rt, ct = _run(result.program, inputs, "O0", tables)
    assert (r0, c0) == (rt, ct), format_program(result.program)


@settings(max_examples=10, deadline=None)
@given(kernel_program())
def test_reuse_plus_o3_preserves_behaviour(case):
    """The full deployment path: transform, then optimize at O3."""
    source, inputs = case
    r0, c0 = _run(frontend(source), inputs, "O0")
    result = ReusePipeline(
        source, PipelineConfig(min_executions=4)
    ).run(inputs)
    transformed = analyze(parse_program(format_program(result.program)))
    optimize(transformed, "O3")
    rt, ct = _run(transformed, inputs, "O3", result.build_tables())
    assert (r0, c0) == (rt, ct)
