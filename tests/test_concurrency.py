"""Concurrent use of one compiled program — the serving layer's bedrock.

The service shares a single session-bound :class:`CompiledProgram` (and
its warmed reuse tables) across worker threads.  These tests pin the
three properties that make that sound:

* the lazy pipeline (profile → transform → tables) is built exactly
  once under a thundering herd of first runs;
* every thread's outputs are bit-identical to a sequential oracle —
  concurrent table warming never changes a value or a checksum;
* the session's metrics registry reconciles: run/input counters add up
  across threads.
"""

import threading

import pytest

from repro import api
from repro.workloads import get_workload

THREADS = 8


def _chunks(name: str, count: int, chunk: int):
    workload = get_workload(name)
    granule = 4 if name.startswith("GNUGO") else (64 if name.startswith("MPEG2") else 1)
    chunk -= chunk % granule
    stream = workload.default_inputs()[: count * chunk]
    return workload, [stream[i : i + chunk] for i in range(0, len(stream), chunk)]


def _run_concurrently(session, program, chunks):
    results = [None] * len(chunks)
    errors = []
    barrier = threading.Barrier(len(chunks))

    def work(i):
        try:
            barrier.wait(timeout=30)
            results[i] = session.run_program(program, chunks[i])
        except BaseException as exc:  # surfaced by the main thread
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(len(chunks))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors
    assert all(result is not None for result in results)
    return results


@pytest.mark.parametrize("governed", [False, True], ids=["static", "governed"])
def test_concurrent_runs_bit_identical_to_sequential(governed):
    workload, chunks = _chunks("G721_encode", THREADS, 32)
    options = api.CompileOptions(governed=governed)

    # sequential oracle: same program object, same chunk order is
    # irrelevant — outputs depend only on each chunk, never on the
    # table state runs before it left behind
    with api.Session(options) as session:
        program = session.compile(workload.source)
        program.profile(workload.default_inputs()[:256])
        sequential = [
            (run.value, run.output_checksum)
            for run in (session.run_program(program, chunk) for chunk in chunks)
        ]

    with api.Session(options, metrics=True) as session:
        program = session.compile(workload.source)
        program.profile(workload.default_inputs()[:256])
        results = _run_concurrently(session, program, chunks)

        concurrent = [(run.value, run.output_checksum) for run in results]
        assert concurrent == sequential

        # metrics reconciliation: every thread's run and every input
        # landed in the shared registry
        snapshot = session.registry.snapshot()
        families = snapshot["families"]
        assert families["repro_session_runs"]["samples"][0]["value"] == len(chunks)
        assert families["repro_session_inputs"]["samples"][0]["value"] == sum(
            len(chunk) for chunk in chunks
        )
        assert (
            families["repro_session_run_seconds"]["samples"][0]["count"]
            == len(chunks)
        )


def test_thundering_herd_profiles_exactly_once():
    """N threads race the first run of an unprofiled program: the lazy
    pipeline must build once (one PipelineResult object, one table set)
    and every thread must see consistent outputs."""
    workload, chunks = _chunks("G721_encode", THREADS, 32)

    with api.Session() as session:
        program = session.compile(workload.source)
        assert program.result is None  # still lazy
        results = _run_concurrently(session, program, chunks)
        assert program.result is not None
        tables = program._tables
        assert tables is not None
        # and the shared tables accumulated probes from the whole herd
        total_probes = sum(table.stats.probes for table in tables.values())
        assert total_probes > 0

    with api.Session() as session:
        oracle_program = session.compile(workload.source)
        oracle_program.profile(chunks[0])
        oracle = [
            (run.value, run.output_checksum)
            for run in (
                session.run_program(oracle_program, chunk) for chunk in chunks
            )
        ]
    assert [(run.value, run.output_checksum) for run in results] == oracle


def test_concurrent_session_compile_memoizes_one_program():
    """Racing Session.compile calls for the same source converge on one
    memoized CompiledProgram."""
    workload = get_workload("G721_encode")
    with api.Session() as session:
        programs = [None] * THREADS
        barrier = threading.Barrier(THREADS)

        def work(i):
            barrier.wait(timeout=30)
            programs[i] = session.compile(workload.source)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert all(program is programs[0] for program in programs)
