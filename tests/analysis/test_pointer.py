"""Tests for the unification-based pointer analysis."""

from repro.minic import frontend
from repro.analysis.pointer import analyze_pointers


def syms(prog):
    table = {}
    for g in prog.globals:
        table[g.decl.name] = g.decl.symbol
    for fn in prog.functions:
        for p in fn.params:
            table[f"{fn.name}.{p.name}"] = p.symbol
        for node in _decls(fn.body):
            table[f"{fn.name}.{node.name}"] = node.symbol
    return table


def _decls(block):
    from repro.minic import astnodes as ast

    for node in ast.walk(block):
        if isinstance(node, ast.VarDecl):
            yield node


def names(symbols):
    return {s.name for s in symbols}


def test_pointer_to_local_array():
    prog = frontend(
        """
        int f(void) {
            int a[4];
            int *p = a;
            return p[0];
        }
        """
    )
    pt = analyze_pointers(prog)
    s = syms(prog)
    assert "a" in names(pt.pointees(s["f.p"]))


def test_address_of_element():
    prog = frontend(
        """
        int g[8];
        int f(void) {
            int *p = &g[3];
            return *p;
        }
        """
    )
    pt = analyze_pointers(prog)
    s = syms(prog)
    assert "g" in names(pt.pointees(s["f.p"]))


def test_param_aliases_caller_array():
    prog = frontend(
        """
        int power2[15];
        int quan(int val, int *table) { return table[0]; }
        int main(void) { return quan(1, power2); }
        """
    )
    pt = analyze_pointers(prog)
    s = syms(prog)
    assert "power2" in names(pt.pointees(s["quan.table"]))


def test_two_pointers_may_alias_through_assignment():
    prog = frontend(
        """
        int f(void) {
            int a[4];
            int *p = a;
            int *q = p;
            return *q;
        }
        """
    )
    pt = analyze_pointers(prog)
    s = syms(prog)
    assert pt.may_alias(s["f.p"], s["f.q"])
    assert "a" in names(pt.pointees(s["f.q"]))


def test_distinct_pointers_do_not_alias():
    prog = frontend(
        """
        int f(void) {
            int a[4];
            int b[4];
            int *p = a;
            int *q = b;
            return *p + *q;
        }
        """
    )
    pt = analyze_pointers(prog)
    s = syms(prog)
    assert not pt.may_alias(s["f.p"], s["f.q"])


def test_pointer_arith_preserves_target():
    prog = frontend(
        """
        int f(void) {
            int a[4];
            int *p = a + 2;
            return *p;
        }
        """
    )
    pt = analyze_pointers(prog)
    s = syms(prog)
    assert "a" in names(pt.pointees(s["f.p"]))


def test_address_of_scalar():
    prog = frontend(
        """
        void g(int *p) { *p = 1; }
        int f(void) {
            int x = 0;
            g(&x);
            return x;
        }
        """
    )
    pt = analyze_pointers(prog)
    s = syms(prog)
    assert "x" in names(pt.pointees(s["g.p"]))


def test_function_pointer_resolution():
    prog = frontend(
        """
        int dbl(int x) { return 2 * x; }
        int tpl(int x) { return 3 * x; }
        int apply(int f(int), int v) { return f(v); }
        int main(void) { return apply(dbl, 1) + apply(tpl, 2); }
        """
    )
    pt = analyze_pointers(prog)
    s = syms(prog)
    assert pt.called_functions(s["apply.f"]) == {"dbl", "tpl"}


def test_call_targets_direct_and_indirect():
    prog = frontend(
        """
        int one(void) { return 1; }
        int pick(int f(void)) { return f(); }
        int main(void) { return pick(one); }
        """
    )
    pt = analyze_pointers(prog)
    from repro.minic import astnodes as ast

    pick = prog.function("pick")
    call = next(n for n in ast.walk(pick.body) if isinstance(n, ast.Call))
    assert pt.call_targets(call) == {"one"}


def test_returned_pointer_flows():
    prog = frontend(
        """
        int buf[16];
        int *get(void) { return buf; }
        int f(void) {
            int *p = get();
            return *p;
        }
        """
    )
    pt = analyze_pointers(prog)
    s = syms(prog)
    assert "buf" in names(pt.pointees(s["f.p"]))


def test_deref_targets_of_expression():
    prog = frontend(
        """
        int a[4];
        int f(int i) { return a[i]; }
        """
    )
    pt = analyze_pointers(prog)
    from repro.minic import astnodes as ast

    fn = prog.function("f")
    ret = fn.body.stmts[0]
    index = ret.value
    targets = pt.deref_targets(index.base)
    assert "a" in names(targets)
