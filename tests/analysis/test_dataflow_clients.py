"""Tests for liveness, upward-exposed reads, reaching defs, def-use,
mod/ref, and the coverage (invariance) analysis — exercised on the
paper's quan example and targeted snippets."""

from repro.minic import astnodes as ast
from repro.minic import frontend
from repro.ir.cfg import build_cfg
from repro.ir.defuse import DefUseChains
from repro.analysis.coverage import BetweenExecutions, invariant_globals
from repro.analysis.liveness import Liveness, function_exit_live
from repro.analysis.modref import analyze_modref
from repro.analysis.pointer import analyze_pointers
from repro.analysis.upward import segment_inputs, upward_exposed
from repro.analysis.usedef import UseDefExtractor


QUAN_SPECIALIZED = """
int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};
int quan(int val) {
    int i;
    for (i = 0; i < 15; i++)
        if (val < power2[i])
            break;
    return (i);
}
"""


def build_all(src):
    prog = frontend(src)
    pt = analyze_pointers(prog)
    modref = analyze_modref(prog, pt)
    globals_ = {g.decl.symbol for g in prog.globals}
    extractor = UseDefExtractor(pt, modref=modref, global_symbols=globals_)
    return prog, pt, modref, extractor


def names(symbols):
    return {s.name for s in symbols}


class TestUpwardExposed:
    def test_quan_body_inputs(self):
        prog, pt, modref, ex = build_all(QUAN_SPECIALIZED)
        fn = prog.function("quan")
        cfg = build_cfg(fn)
        region = cfg.nodes_in_region(fn.body)
        exposed = upward_exposed(cfg, region, ex)
        # val and power2 are read before written; i is written first
        assert names(exposed) == {"val", "power2"}

    def test_invariants_excluded_from_inputs(self):
        prog, pt, modref, ex = build_all(QUAN_SPECIALIZED)
        fn = prog.function("quan")
        cfg = build_cfg(fn)
        region = cfg.nodes_in_region(fn.body)
        inv = invariant_globals(prog, modref)
        inputs = segment_inputs(cfg, region, ex, invariants=inv)
        assert names(inputs) == {"val"}

    def test_def_before_use_not_exposed(self):
        prog, pt, modref, ex = build_all(
            "int f(int a) { int x; x = a; return x; }"
        )
        fn = prog.function("f")
        cfg = build_cfg(fn)
        region = cfg.nodes_in_region(fn.body)
        assert names(upward_exposed(cfg, region, ex)) == {"a"}

    def test_conditional_def_still_exposed(self):
        prog, pt, modref, ex = build_all(
            "int f(int a, int x) { if (a) x = 1; return x; }"
        )
        fn = prog.function("f")
        cfg = build_cfg(fn)
        region = cfg.nodes_in_region(fn.body)
        # x read at the return may see the entry value
        assert "x" in names(upward_exposed(cfg, region, ex))

    def test_array_element_write_does_not_kill(self):
        prog, pt, modref, ex = build_all(
            """
            int f(int i) {
                int a[4];
                a[i] = 1;
                return a[0];
            }
            """
        )
        fn = prog.function("f")
        cfg = build_cfg(fn)
        # region: just the two trailing statements (skip the declaration)
        block = ast.Block(stmts=fn.body.stmts[1:], line=0)
        region = cfg.nodes_in_region(block)
        assert "a" in names(upward_exposed(cfg, region, ex))

    def test_loop_body_region_inputs(self):
        prog, pt, modref, ex = build_all(QUAN_SPECIALIZED)
        fn = prog.function("quan")
        cfg = build_cfg(fn)
        loop = fn.body.stmts[1]
        region = cfg.nodes_in_region(loop.body)
        inv = invariant_globals(prog, modref)
        inputs = segment_inputs(cfg, region, ex, invariants=inv)
        # body reads val and i (loop counter flows in)
        assert names(inputs) == {"val", "i"}


class TestLiveness:
    def test_quan_outputs(self):
        prog, pt, modref, ex = build_all(QUAN_SPECIALIZED)
        fn = prog.function("quan")
        cfg = build_cfg(fn)
        exit_live = function_exit_live(fn, prog, pt)
        live = Liveness(cfg, ex, exit_live)
        region = cfg.nodes_in_region(fn.body)
        # i is dead at function exit (its value leaves via return, which
        # segment analysis models separately); no globals are written
        assert names(live.region_outputs(region)) == set()

    def test_global_write_is_an_output(self):
        prog, pt, modref, ex = build_all(
            """
            int acc;
            void f(int v) { acc = acc + v; }
            """
        )
        fn = prog.function("f")
        cfg = build_cfg(fn)
        live = Liveness(cfg, ex, function_exit_live(fn, prog, pt))
        region = cfg.nodes_in_region(fn.body)
        assert names(live.region_outputs(region)) == {"acc"}

    def test_pointer_param_write_is_an_output(self):
        prog, pt, modref, ex = build_all(
            """
            int data[4];
            void fill(int *out) { out[0] = 7; }
            int main(void) { fill(data); return data[0]; }
            """
        )
        fn = prog.function("fill")
        cfg = build_cfg(fn)
        live = Liveness(cfg, ex, function_exit_live(fn, prog, pt))
        region = cfg.nodes_in_region(fn.body)
        assert "data" in names(live.region_outputs(region))

    def test_dead_local_not_output(self):
        prog, pt, modref, ex = build_all(
            "int f(int v) { int t = v * 2; return v; }"
        )
        fn = prog.function("f")
        cfg = build_cfg(fn)
        live = Liveness(cfg, ex, function_exit_live(fn, prog, pt))
        region = cfg.nodes_in_region(fn.body)
        assert "t" not in names(live.region_outputs(region))

    def test_loop_region_output_live_after_loop(self):
        prog, pt, modref, ex = build_all(
            """
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++)
                    s += i;
                return s;
            }
            """
        )
        fn = prog.function("f")
        cfg = build_cfg(fn)
        live = Liveness(cfg, ex, function_exit_live(fn, prog, pt))
        loop = fn.body.stmts[1]
        region = cfg.nodes_in_region(loop.body)
        outs = names(live.region_outputs(region))
        assert "s" in outs


class TestModRef:
    SRC = """
    int g1;
    int g2;
    int table[4];
    int reader(void) { return g1 + table[0]; }
    void writer(int v) { g2 = v; }
    void caller(int v) { writer(v + reader()); }
    """

    def test_direct_effects(self):
        prog, pt, modref, ex = build_all(self.SRC)
        assert names(modref.ref("reader")) >= {"g1", "table"}
        assert names(modref.mod("reader")) == set()
        assert names(modref.mod("writer")) == {"g2"}

    def test_transitive_effects(self):
        prog, pt, modref, ex = build_all(self.SRC)
        assert "g2" in names(modref.mod("caller"))
        assert "g1" in names(modref.ref("caller"))

    def test_locals_filtered(self):
        prog, pt, modref, ex = build_all(
            "int f(int v) { int x = v; x += 1; return x; }"
        )
        assert modref.mod("f") == frozenset()

    def test_pointer_param_write_visible(self):
        prog, pt, modref, ex = build_all(
            """
            int buf[4];
            void w(int *p) { p[0] = 1; }
            void top(void) { w(buf); }
            """
        )
        assert "buf" in names(modref.mod("w"))
        assert "buf" in names(modref.mod("top"))

    def test_recursive_function_terminates(self):
        prog, pt, modref, ex = build_all(
            """
            int g;
            int f(int n) { if (n) { g = n; return f(n - 1); } return 0; }
            """
        )
        assert "g" in names(modref.mod("f"))

    def test_invariant_globals_refinement(self):
        # table escapes syntactically (passed to a call) but the callee
        # only reads it: the mod/ref-based invariance must recover it.
        prog, pt, modref, ex = build_all(
            """
            int table[4];
            int look(int *t, int i) { return t[i]; }
            int main(void) { return look(table, 2); }
            """
        )
        inv = invariant_globals(prog, modref)
        assert "table" in names(inv)
        # and sema alone could not prove it
        assert not prog.global_var("table").decl.symbol.is_const


class TestDefUse:
    def test_chain_from_def_to_use(self):
        prog, pt, modref, ex = build_all(
            "int f(int a) { int x = a + 1; return x * 2; }"
        )
        fn = prog.function("f")
        cfg = build_cfg(fn)
        chains = DefUseChains(cfg, ex)
        x = fn.body.stmts[0].decls[0].symbol
        links = [c for c in chains.chains if c.symbol is x]
        assert len(links) == 1

    def test_entry_pseudo_def_for_params(self):
        prog, pt, modref, ex = build_all("int f(int a) { return a; }")
        fn = prog.function("f")
        cfg = build_cfg(fn)
        chains = DefUseChains(cfg, ex)
        a = fn.params[0].symbol
        links = [c for c in chains.chains if c.symbol is a]
        assert links and all(c.def_node == cfg.entry for c in links)

    def test_two_reaching_defs(self):
        prog, pt, modref, ex = build_all(
            "int f(int c) { int x; if (c) x = 1; else x = 2; return x; }"
        )
        fn = prog.function("f")
        cfg = build_cfg(fn)
        chains = DefUseChains(cfg, ex)
        x = fn.body.stmts[0].decls[0].symbol
        ret = next(
            n for n in cfg
            if n.kind == "stmt" and isinstance(n.ast_node, ast.Return)
        )
        assert len(chains.defs_of_use(ret.nid, x)) == 2

    def test_dead_definition_detected(self):
        prog, pt, modref, ex = build_all(
            "int f(int a) { int t = a * 2; return a; }"
        )
        fn = prog.function("f")
        cfg = build_cfg(fn)
        chains = DefUseChains(cfg, ex)
        dead = chains.dead_definitions()
        assert any(s.name == "t" for _, s in dead)

    def test_interprocedural_def_via_call(self):
        # the call to setter is a (weak) def of g in the caller's chains
        prog, pt, modref, ex = build_all(
            """
            int g;
            void setter(void) { g = 5; }
            int f(void) { setter(); return g; }
            """
        )
        fn = prog.function("f")
        cfg = build_cfg(fn)
        chains = DefUseChains(cfg, ex)
        g = prog.global_var("g").decl.symbol
        ret = next(
            n for n in cfg
            if n.kind == "stmt" and isinstance(n.ast_node, ast.Return)
        )
        defs = chains.defs_of_use(ret.nid, g)
        # at least one def comes from the call statement, not just entry
        assert any(d.def_node != cfg.entry for d in defs)


class TestCoverage:
    def test_between_executions_detects_modification(self):
        prog, pt, modref, ex = build_all(
            """
            int k;
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    s += k;
                    k = k + 1;
                }
                return s;
            }
            """
        )
        fn = prog.function("f")
        cfg = build_cfg(fn)
        loop = fn.body.stmts[1]
        # region: just the first statement of the body (s += k)
        first = loop.body.stmts[0]
        region = cfg.nodes_in_region(first)
        be = BetweenExecutions(cfg, region, ex)
        k = prog.global_var("k").decl.symbol
        assert be.modifies(k)

    def test_between_executions_invariant(self):
        prog, pt, modref, ex = build_all(
            """
            int k;
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    s += k;
                }
                return s;
            }
            """
        )
        fn = prog.function("f")
        cfg = build_cfg(fn)
        loop = fn.body.stmts[1]
        region = cfg.nodes_in_region(loop.body)
        be = BetweenExecutions(cfg, region, ex)
        k = prog.global_var("k").decl.symbol
        assert not be.modifies(k)
        assert k in be.invariant_symbols(frozenset({k}))
