"""Tests for array-shape (I/O width) analysis."""

from repro.minic import frontend
from repro.analysis.arrays import IOShape, shape_of, total_words
from repro.analysis.pointer import analyze_pointers


def _symbols(src):
    program = frontend(src)
    pt = analyze_pointers(program)
    table = {}
    for g in program.globals:
        table[g.decl.name] = g.decl.symbol
    for fn in program.functions:
        for p in fn.params:
            table[f"{fn.name}.{p.name}"] = p.symbol
    return table, pt


def test_scalar_shape():
    table, pt = _symbols("int f(int x) { return x; }")
    shape = shape_of(table["f.x"], pt)
    assert shape == IOShape(table["f.x"], 1, False, False)


def test_float_scalar_flagged():
    table, pt = _symbols("float f(float x) { return x; }")
    assert shape_of(table["f.x"], pt).is_float


def test_array_shape():
    table, pt = _symbols("int a[6];\nint f(void) { return a[0]; }")
    shape = shape_of(table["a"], pt)
    assert shape.words == 6
    assert shape.is_array


def test_2d_array_shape():
    table, pt = _symbols("float m[4][4];\nfloat f(void) { return m[0][0]; }")
    shape = shape_of(table["m"], pt)
    assert shape.words == 16
    assert shape.is_float


def test_pointer_resolves_to_pointee_size():
    table, pt = _symbols(
        """
        int a[10];
        int f(int *p) { return p[0]; }
        int main(void) { return f(a); }
        """
    )
    shape = shape_of(table["f.p"], pt)
    assert shape is not None
    assert shape.words == 10


def test_pointer_with_multiple_pointees_takes_max():
    table, pt = _symbols(
        """
        int a[4];
        int b[12];
        int f(int *p) { return p[0]; }
        int main(void) { return f(a) + f(b); }
        """
    )
    shape = shape_of(table["f.p"], pt)
    # Steensgaard unifies a and b into one class; the bound is the max
    assert shape is not None
    assert shape.words == 12


def test_unbound_pointer_rejected():
    table, pt = _symbols("int f(int *p) { return p[0]; }")
    assert shape_of(table["f.p"], pt) is None


def test_pointer_without_points_to_rejected():
    table, _ = _symbols("int a[4];\nint f(int *p) { return p[0]; }\nint main(void) { return f(a); }")
    assert shape_of(table["f.p"], None) is None


def test_total_words():
    table, pt = _symbols("int a[3];\nint f(int x) { return a[x]; }")
    shapes = [shape_of(table["a"], pt), shape_of(table["f.x"], pt)]
    assert total_words(shapes) == 4
