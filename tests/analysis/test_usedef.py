"""Unit tests for symbol-level use/def extraction."""

from repro.minic import frontend
from repro.analysis.modref import analyze_modref
from repro.analysis.pointer import analyze_pointers
from repro.analysis.usedef import UseDefExtractor


def setup(src):
    program = frontend(src)
    pt = analyze_pointers(program)
    modref = analyze_modref(program, pt)
    globals_ = {g.decl.symbol for g in program.globals}
    extractor = UseDefExtractor(pt, modref=modref, global_symbols=globals_)
    return program, extractor


def names(symbols):
    return {s.name for s in symbols}


def stmt_of(program, fn_name, index):
    return program.function(fn_name).body.stmts[index]


def test_simple_assignment():
    program, ex = setup("void f(int a, int b) { int c; c = a + b; }")
    ud = ex.of_stmt(stmt_of(program, "f", 1))
    assert names(ud.uses) == {"a", "b"}
    assert names(ud.defs) == {"c"}
    assert not ud.weak_defs


def test_compound_assignment_reads_target():
    program, ex = setup("void f(int a) { int c = 0; c += a; }")
    ud = ex.of_stmt(stmt_of(program, "f", 1))
    assert "c" in names(ud.uses)
    assert "c" in names(ud.defs)


def test_declaration_with_init():
    program, ex = setup("void f(int a) { int c = a * 2; }")
    ud = ex.of_stmt(stmt_of(program, "f", 0))
    assert names(ud.uses) == {"a"}
    assert names(ud.defs) == {"c"}


def test_array_element_store_is_weak():
    program, ex = setup("void f(int i) { int a[4]; a[i] = 1; }")
    ud = ex.of_stmt(stmt_of(program, "f", 1))
    assert "a" in names(ud.weak_defs)
    assert "a" not in names(ud.defs)
    assert "i" in names(ud.uses)


def test_array_element_read_uses_array():
    program, ex = setup("int g[4];\nint f(int i) { return g[i]; }")
    ud = ex.of_stmt(stmt_of(program, "f", 0))
    assert {"g", "i"} <= names(ud.uses)


def test_pointer_store_weak_defs_pointees():
    program, ex = setup(
        """
        int buf[4];
        void f(int *p) { *p = 9; }
        int main(void) { f(buf); return buf[0]; }
        """
    )
    ud = ex.of_stmt(stmt_of(program, "f", 0))
    assert "buf" in names(ud.weak_defs)
    assert "p" in names(ud.uses)


def test_address_of_is_not_a_read():
    program, ex = setup("void g(int *p) { *p = 1; }\nvoid f(void) { int x; g(&x); }")
    ud = ex.of_stmt(stmt_of(program, "f", 1))
    # x appears only as &x (plus the call's effect makes it a weak def)
    assert "x" in names(ud.weak_defs)


def test_ternary_arms_are_weak():
    program, ex = setup("void f(int c) { int a; int b; (c ? (a = 1) : (b = 2)); }")
    ud = ex.of_stmt(stmt_of(program, "f", 2))
    assert {"a", "b"} <= names(ud.weak_defs)
    assert not ({"a", "b"} & names(ud.defs))


def test_short_circuit_rhs_weak():
    program, ex = setup("void f(int c) { int a = 0; c && (a = 1); }")
    ud = ex.of_stmt(stmt_of(program, "f", 1))
    assert "a" in names(ud.weak_defs)


def test_incdec_reads_and_writes():
    program, ex = setup("void f(void) { int i = 0; i++; }")
    ud = ex.of_stmt(stmt_of(program, "f", 1))
    assert "i" in names(ud.uses)
    assert "i" in names(ud.defs)


def test_call_effects_via_modref():
    program, ex = setup(
        """
        int g;
        void w(int v) { g = v; }
        void f(int v) { w(v); }
        """
    )
    ud = ex.of_stmt(stmt_of(program, "f", 0))
    assert "g" in names(ud.weak_defs)


def test_call_without_modref_conservative_on_globals():
    program = frontend(
        """
        int g;
        void w(int v) { g = v; }
        void f(int v) { w(v); }
        """
    )
    pt = analyze_pointers(program)
    globals_ = {gl.decl.symbol for gl in program.globals}
    ex = UseDefExtractor(pt, modref=None, global_symbols=globals_)
    ud = ex.of_stmt(program.function("f").body.stmts[0])
    assert "g" in names(ud.weak_defs)
    assert "g" in names(ud.uses)


def test_return_uses_value():
    program, ex = setup("int f(int a) { return a + 1; }")
    ud = ex.of_stmt(stmt_of(program, "f", 0))
    assert names(ud.uses) == {"a"}
