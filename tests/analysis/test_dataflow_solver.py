"""Unit tests for the generic dataflow solver on hand-built CFGs."""

from repro.minic import frontend
from repro.ir.cfg import build_cfg
from repro.analysis.dataflow import gen_kill_transfer, solve_backward, solve_forward


def diamond_cfg():
    """entry -> a; a -> b|c; b,c -> d -> exit, built from real source."""
    src = """
    int f(int p) {
        int x = 1;
        if (p) { x = 2; } else { x = 3; }
        return x;
    }
    """
    return build_cfg(frontend(src).functions[0])


def loop_cfg():
    src = """
    int f(int n) {
        int s = 0;
        while (n > 0) { s = s + n; n = n - 1; }
        return s;
    }
    """
    return build_cfg(frontend(src).functions[0])


class TestForward:
    def test_constant_propagation_of_facts(self):
        cfg = diamond_cfg()
        # gen a token at the entry node; no kills: it must reach exit
        gen = {cfg.entry: frozenset({"T"})}
        result = solve_forward(cfg, gen_kill_transfer(gen, {}))
        assert "T" in result.in_sets[cfg.exit]

    def test_kill_blocks_fact(self):
        cfg = diamond_cfg()
        gen = {cfg.entry: frozenset({"T"})}
        # kill T at every non-entry node with an AST: it cannot reach exit
        kill = {
            n.nid: frozenset({"T"})
            for n in cfg
            if n.ast_node is not None
        }
        result = solve_forward(cfg, gen_kill_transfer(gen, kill))
        assert "T" not in result.in_sets[cfg.exit]

    def test_union_at_join(self):
        cfg = diamond_cfg()
        # generate different facts in the two branches; the join sees both
        branch_nodes = [
            n.nid
            for n in cfg
            if n.kind == "stmt" and n.ast_node is not None and n.preds
        ]
        gen = {}
        for i, nid in enumerate(branch_nodes[:2]):
            gen[nid] = frozenset({f"B{i}"})
        result = solve_forward(cfg, gen_kill_transfer(gen, {}))
        facts_at_exit = result.in_sets[cfg.exit]
        for i in range(min(2, len(branch_nodes))):
            assert f"B{i}" in facts_at_exit

    def test_loop_reaches_fixed_point(self):
        cfg = loop_cfg()
        gen = {cfg.entry: frozenset({"T"})}
        result = solve_forward(cfg, gen_kill_transfer(gen, {}))
        # every node sees T despite the back edge
        for node in cfg:
            if node.nid != cfg.entry:
                assert "T" in result.in_sets[node.nid]


class TestBackward:
    def test_exit_value_propagates_to_entry(self):
        cfg = diamond_cfg()
        result = solve_backward(
            cfg, gen_kill_transfer({}, {}), exit_value=frozenset({"L"})
        )
        assert "L" in result.out_sets[cfg.entry]

    def test_gen_flows_upward(self):
        cfg = loop_cfg()
        ret = next(
            n.nid
            for n in cfg
            if n.kind == "stmt" and n.ast_node is not None and cfg.exit in n.succs
        )
        gen = {ret: frozenset({"use"})}
        result = solve_backward(cfg, gen_kill_transfer(gen, {}))
        assert "use" in result.out_sets[cfg.entry]

    def test_kill_stops_upward_flow(self):
        cfg = diamond_cfg()
        kill = {
            n.nid: frozenset({"L"})
            for n in cfg
            if n.ast_node is not None
        }
        result = solve_backward(
            cfg, gen_kill_transfer({}, kill), exit_value=frozenset({"L"})
        )
        assert "L" not in result.out_sets[cfg.entry]
