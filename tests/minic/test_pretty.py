"""Round-trip tests for the mini-C pretty-printer.

The invariant: pretty-printing a parsed program and re-parsing the output
yields a structurally identical AST.  This is the property that lets the
reuse pass behave as a true source-to-source transformation.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minic import astnodes as ast
from repro.minic.parser import parse_expression, parse_program
from repro.minic.pretty import format_expr, format_program


def ast_equal(a, b):
    """Structural AST equality ignoring symbols/positions."""
    if type(a) is not type(b):
        return False
    if isinstance(a, (int, float, str, bool)) or a is None:
        return a == b
    if isinstance(a, list):
        return len(a) == len(b) and all(ast_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, ast.Node):
        for f in dataclasses.fields(a):
            if f.name in ("line", "symbol", "frame_size"):
                continue
            if not ast_equal(getattr(a, f.name), getattr(b, f.name)):
                return False
        return True
    return a == b


def roundtrip_program(src):
    prog = parse_program(src)
    text = format_program(prog)
    reparsed = parse_program(text)
    assert ast_equal(prog, reparsed), f"round-trip mismatch:\n{text}"
    return text


def roundtrip_expr(src):
    e = parse_expression(src)
    text = format_expr(e)
    again = parse_expression(text)
    assert ast_equal(e, again), f"round-trip mismatch: {src!r} -> {text!r}"


def test_expression_roundtrips():
    for src in [
        "a + b * c",
        "(a + b) * c",
        "a << b + c",
        "(a << b) + c",
        "-x[i]++",
        "a ? b : c ? d : e",
        "(a ? b : c) ? d : e",
        "f(a, b + 1, g())",
        "*p + &x",
        "*(p + 1)",
        "a && b || c && d",
        "a & b | c ^ d",
        "x = y = z + 1",
        "i += j << 2",
        "a[i][j] * 2",
        "!(a == b)",
        "~x & 0xFF",
        "- -x",
        "a - -b",
        "a % b / c",
    ]:
        roundtrip_expr(src)


def test_program_roundtrip_quan():
    src = """
    int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};
    int quan(int val) {
        int i;
        for (i = 0; i < 15; i++)
            if (val < power2[i])
                break;
        return (i);
    }
    """
    text = roundtrip_program(src)
    assert "for (" in text
    assert "power2[15]" in text


def test_program_roundtrip_control_flow():
    roundtrip_program(
        """
        int f(int n) {
            int s = 0;
            int i = 0;
            while (i < n) {
                if (i % 2 == 0)
                    s += i;
                else {
                    s -= i;
                    continue;
                }
                i++;
            }
            do { s++; } while (s < 0);
            for (;;) break;
            return s;
        }
        """
    )


def test_program_roundtrip_pointers_and_floats():
    roundtrip_program(
        """
        static const float pi = 3.5;
        float m[2][3];
        static int helper(int *p, float x) {
            *p = (int) x;
            return p[0];
        }
        void f(void) {
            int v = 0;
            helper(&v, pi * 2.0);
            m[1][2] = 0.5;
        }
        """
    )


def test_else_if_chain_roundtrip():
    roundtrip_program(
        """
        int sign(int x) {
            if (x > 0) return 1;
            else if (x < 0) return -1;
            else return 0;
        }
        """
    )


def test_empty_function_and_void_return():
    text = roundtrip_program("void f(void) { return; }")
    assert "void f(void)" in text


# -- property-based expression round-trip ------------------------------------

_names = st.sampled_from(["a", "b", "c", "x", "y"])


def _exprs(depth):
    if depth == 0:
        return st.one_of(
            st.integers(min_value=0, max_value=1000).map(str),
            _names,
        )
    sub = _exprs(depth - 1)
    binop = st.sampled_from(["+", "-", "*", "/", "%", "<<", ">>", "<", "==", "&", "|", "^", "&&", "||"])
    return st.one_of(
        sub,
        st.tuples(sub, binop, sub).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
        st.tuples(st.sampled_from(["-", "!", "~"]), sub).map(lambda t: f"{t[0]}({t[1]})"),
        st.tuples(sub, sub, sub).map(lambda t: f"(({t[0]}) ? ({t[1]}) : ({t[2]}))"),
        st.tuples(_names, sub).map(lambda t: f"{t[0]}[{t[1]}]"),
    )


@settings(max_examples=120, deadline=None)
@given(_exprs(3))
def test_random_expressions_roundtrip(src):
    roundtrip_expr(src)
