"""Unit tests for the mini-C lexer."""

import pytest

from repro.errors import LexError
from repro.minic.lexer import tokenize
from repro.minic.tokens import EOF, FLOAT_LIT, IDENT, INT_LIT, KEYWORD, PUNCT


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


def test_empty_source_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind == EOF


def test_identifiers_and_keywords():
    toks = tokenize("int foo while_ _bar")
    assert toks[0].kind == KEYWORD
    assert toks[1].kind == IDENT and toks[1].text == "foo"
    assert toks[2].kind == IDENT and toks[2].text == "while_"
    assert toks[3].kind == IDENT and toks[3].text == "_bar"


def test_integer_literals_decimal_and_hex():
    toks = tokenize("42 0 0x1F")
    assert [t.value for t in toks[:-1]] == [42, 0, 31]
    assert all(t.kind == INT_LIT for t in toks[:-1])


def test_float_literals():
    toks = tokenize("3.14 1e3 2.5e-2 7.f")
    assert toks[0].kind == FLOAT_LIT and toks[0].value == pytest.approx(3.14)
    assert toks[1].value == pytest.approx(1000.0)
    assert toks[2].value == pytest.approx(0.025)
    assert toks[3].value == pytest.approx(7.0)


def test_char_literal_lexes_as_int():
    toks = tokenize("'a' '\\n' '\\0'")
    assert [t.value for t in toks[:-1]] == [97, 10, 0]
    assert all(t.kind == INT_LIT for t in toks[:-1])


def test_maximal_munch_punctuators():
    assert texts("a<<=b") == ["a", "<<=", "b"]
    assert texts("a<<b") == ["a", "<<", "b"]
    assert texts("a<b") == ["a", "<", "b"]
    assert texts("x+++y") == ["x", "++", "+", "y"]


def test_line_and_block_comments_skipped():
    src = "a // comment\nb /* multi\nline */ c"
    assert texts(src) == ["a", "b", "c"]


def test_comment_tracks_line_numbers():
    toks = tokenize("a /* x\ny */ b")
    assert toks[1].line == 2


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never closed")


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("int a = $;")


def test_positions_recorded():
    toks = tokenize("ab\n  cd")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_malformed_exponent_raises():
    with pytest.raises(LexError):
        tokenize("1e+")


def test_all_compound_assign_ops():
    ops = "+= -= *= /= %= <<= >>= &= |= ^="
    toks = tokenize(ops)
    assert [t.text for t in toks[:-1]] == ops.split()
    assert all(t.kind == PUNCT for t in toks[:-1])
