"""Tests for the builtin registry."""

from repro.minic.builtins import BUILTINS, is_builtin


def test_core_builtins_present():
    for name in (
        "__abs", "__cos", "__sqrt", "__input_int", "__output_int",
        "__cast_int", "__cast_float",
        "__reuse_probe", "__reuse_commit", "__reuse_end",
        "__reuse_out_i", "__reuse_out_f", "__reuse_out_arr",
        "__profile", "__freq", "__seg_enter", "__seg_exit",
    ):
        assert is_builtin(name), name


def test_compiler_only_flags():
    assert BUILTINS["__reuse_probe"].compiler_only
    assert BUILTINS["__profile"].compiler_only
    assert not BUILTINS["__abs"].compiler_only


def test_zero_cost_flags():
    for name in ("__profile", "__freq", "__seg_enter", "__seg_exit"):
        assert BUILTINS[name].zero_cost, name
    assert not BUILTINS["__reuse_probe"].zero_cost


def test_variadic_signatures():
    assert BUILTINS["__reuse_probe"].variadic
    assert BUILTINS["__reuse_commit"].variadic
    assert not BUILTINS["__reuse_end"].variadic


def test_unknown_name():
    assert not is_builtin("__nope")
    assert not is_builtin("main")
