"""Tests for the mini-C type model."""

from repro.minic.types import (
    FLOAT,
    INT,
    VOID,
    ArrayType,
    FuncType,
    PointerType,
    common_arith_type,
    decay,
    is_arith,
    is_float,
    is_integer,
)


def test_scalar_sizes():
    assert INT.size_words() == 1
    assert FLOAT.size_words() == 1
    assert VOID.size_words() == 0


def test_array_sizes_nested():
    a = ArrayType(INT, 8)
    assert a.size_words() == 8
    m = ArrayType(ArrayType(FLOAT, 8), 8)
    assert m.size_words() == 64
    assert m.base_elem == FLOAT


def test_pointer_is_one_word():
    assert PointerType(ArrayType(INT, 100)).size_words() == 1


def test_structural_equality():
    assert ArrayType(INT, 4) == ArrayType(INT, 4)
    assert ArrayType(INT, 4) != ArrayType(INT, 5)
    assert PointerType(INT) == PointerType(INT)
    assert FuncType(INT, (INT,)) == FuncType(INT, (INT,))


def test_predicates():
    assert INT.is_scalar and FLOAT.is_scalar
    assert not INT.is_pointer and not INT.is_array
    assert PointerType(INT).is_pointer
    assert ArrayType(INT, 2).is_array
    assert is_integer(INT) and not is_integer(FLOAT)
    assert is_float(FLOAT) and not is_float(INT)
    assert is_arith(INT) and is_arith(FLOAT) and not is_arith(VOID)


def test_decay():
    assert decay(ArrayType(INT, 4)) == PointerType(INT)
    assert decay(ArrayType(ArrayType(INT, 3), 2)) == PointerType(ArrayType(INT, 3))
    assert decay(INT) == INT
    assert decay(PointerType(FLOAT)) == PointerType(FLOAT)


def test_common_arith_type():
    assert common_arith_type(INT, INT) == INT
    assert common_arith_type(INT, FLOAT) == FLOAT
    assert common_arith_type(FLOAT, FLOAT) == FLOAT


def test_str_forms():
    assert str(INT) == "int"
    assert str(PointerType(INT)) == "int*"
    assert str(ArrayType(INT, 4)) == "int[4]"
    assert str(FuncType(INT, (INT, FLOAT))) == "int(int, float)"
