"""Unit tests for the mini-C parser."""

import pytest

from repro.errors import ParseError
from repro.minic import astnodes as ast
from repro.minic.parser import parse_expression, parse_program
from repro.minic.types import FLOAT, INT, ArrayType, PointerType


# -- expressions -----------------------------------------------------------


def test_precedence_mul_over_add():
    e = parse_expression("a + b * c")
    assert isinstance(e, ast.Binary) and e.op == "+"
    assert isinstance(e.rhs, ast.Binary) and e.rhs.op == "*"


def test_precedence_shift_below_add():
    e = parse_expression("a << b + c")
    assert isinstance(e, ast.Binary) and e.op == "<<"
    assert isinstance(e.rhs, ast.Binary) and e.rhs.op == "+"


def test_comparison_chains_left():
    e = parse_expression("a < b == c")
    assert e.op == "=="
    assert e.lhs.op == "<"


def test_logical_ops_produce_logical_nodes():
    e = parse_expression("a && b || c")
    assert isinstance(e, ast.Logical) and e.op == "||"
    assert isinstance(e.lhs, ast.Logical) and e.lhs.op == "&&"


def test_assignment_right_associative():
    e = parse_expression("a = b = c")
    assert isinstance(e, ast.Assign)
    assert isinstance(e.value, ast.Assign)


def test_compound_assignment():
    e = parse_expression("x += y << 2")
    assert isinstance(e, ast.Assign) and e.op == "+="


def test_assignment_to_rvalue_rejected():
    with pytest.raises(ParseError):
        parse_expression("1 = 2")


def test_ternary():
    e = parse_expression("a ? b : c ? d : e")
    assert isinstance(e, ast.Ternary)
    assert isinstance(e.els, ast.Ternary)


def test_unary_and_postfix():
    e = parse_expression("-a[i]++")
    assert isinstance(e, ast.Unary) and e.op == "-"
    assert isinstance(e.operand, ast.IncDec) and not e.operand.prefix


def test_prefix_incdec():
    e = parse_expression("++x")
    assert isinstance(e, ast.IncDec) and e.prefix


def test_deref_and_addressof():
    e = parse_expression("*p + &x")
    assert isinstance(e.lhs, ast.Unary) and e.lhs.op == "*"
    assert isinstance(e.rhs, ast.Unary) and e.rhs.op == "&"


def test_call_with_args():
    e = parse_expression("f(a, b + 1, g())")
    assert isinstance(e, ast.Call)
    assert len(e.args) == 3
    assert isinstance(e.args[2], ast.Call)


def test_cast_desugars_to_builtin_call():
    e = parse_expression("(int) x")
    assert isinstance(e, ast.Call)
    assert e.func.name == "__cast_int"


def test_parenthesized_expression_is_not_cast():
    e = parse_expression("(x) + 1")
    assert isinstance(e, ast.Binary) and e.op == "+"


def test_sizeof_folds_to_int():
    e = parse_expression("sizeof(int)")
    assert isinstance(e, ast.IntLit) and e.value == 4
    e = parse_expression("sizeof(int[8])")
    assert e.value == 32


def test_comma_operator():
    e = parse_expression("a = 1, b = 2")
    assert isinstance(e, ast.Binary) and e.op == ","


# -- declarations and functions ---------------------------------------------


def test_simple_function():
    prog = parse_program("int add(int a, int b) { return a + b; }")
    assert len(prog.functions) == 1
    fn = prog.functions[0]
    assert fn.name == "add"
    assert fn.ret_type == INT
    assert [p.name for p in fn.params] == ["a", "b"]


def test_void_params():
    prog = parse_program("void f(void) { }")
    assert prog.functions[0].params == []


def test_static_function_flag():
    prog = parse_program("static int f(void) { return 0; }")
    assert prog.functions[0].is_static


def test_prototype_is_skipped():
    prog = parse_program("int f(int x);\nint f(int x) { return x; }")
    assert len(prog.functions) == 1


def test_global_scalar_with_init():
    prog = parse_program("int g = 42;")
    g = prog.globals[0]
    assert g.decl.name == "g"
    assert isinstance(g.decl.init, ast.IntLit)


def test_global_array_with_initializer_list():
    prog = parse_program("int t[4] = {1, 2, 3, 4};")
    decl = prog.globals[0].decl
    assert decl.type == ArrayType(INT, 4)
    assert len(decl.array_init) == 4


def test_global_2d_array():
    prog = parse_program("float m[2][3];")
    decl = prog.globals[0].decl
    assert decl.type == ArrayType(ArrayType(FLOAT, 3), 2)
    assert decl.type.size_words() == 6


def test_const_global_flag():
    prog = parse_program("const int k = 1;")
    assert prog.globals[0].is_const


def test_multiple_declarators_per_global():
    prog = parse_program("int a, b = 2, c;")
    assert [g.decl.name for g in prog.globals] == ["a", "b", "c"]


def test_pointer_param_and_array_param_decay():
    prog = parse_program("int f(int *p, int a[], int m[][4]) { return 0; }")
    params = prog.functions[0].params
    assert params[0].type == PointerType(INT)
    assert params[1].type == PointerType(INT)
    assert params[2].type == PointerType(ArrayType(INT, 4))


def test_array_size_constant_expression():
    prog = parse_program("int t[4 * 2];")
    assert prog.globals[0].decl.type.length == 8


# -- statements ---------------------------------------------------------------


def _body(src):
    return parse_program("void f(void) {" + src + "}").functions[0].body.stmts


def test_if_else_as_blocks():
    (stmt,) = _body("if (x) y = 1; else y = 2;")
    assert isinstance(stmt, ast.If)
    assert isinstance(stmt.then, ast.Block)
    assert isinstance(stmt.els, ast.Block)


def test_dangling_else_binds_inner():
    (stmt,) = _body("if (a) if (b) x = 1; else x = 2;")
    assert stmt.els is None
    inner = stmt.then.stmts[0]
    assert inner.els is not None


def test_while_and_do_while():
    stmts = _body("while (i < 10) i++; do i--; while (i);")
    assert isinstance(stmts[0], ast.While)
    assert isinstance(stmts[1], ast.DoWhile)


def test_for_with_decl_init():
    (stmt,) = _body("for (int i = 0; i < 15; i++) s += i;")
    assert isinstance(stmt, ast.For)
    assert isinstance(stmt.init, ast.DeclStmt)
    assert stmt.cond is not None and stmt.step is not None


def test_for_with_empty_clauses():
    (stmt,) = _body("for (;;) break;")
    assert stmt.init is None and stmt.cond is None and stmt.step is None


def test_return_break_continue():
    stmts = _body("return; break; continue;")
    assert isinstance(stmts[0], ast.Return) and stmts[0].value is None
    assert isinstance(stmts[1], ast.Break)
    assert isinstance(stmts[2], ast.Continue)


def test_local_declarations_with_init():
    stmts = _body("int i = 0, j; float x = 1.5;")
    assert isinstance(stmts[0], ast.DeclStmt)
    assert len(stmts[0].decls) == 2
    assert stmts[1].decls[0].type == FLOAT


def test_empty_statement():
    (stmt,) = _body(";")
    assert isinstance(stmt, ast.Block) and not stmt.stmts


def test_unterminated_block_raises():
    with pytest.raises(ParseError):
        parse_program("void f(void) { int x = 1;")


def test_missing_semicolon_raises():
    with pytest.raises(ParseError):
        parse_program("void f(void) { x = 1 }")


def test_quan_example_from_paper():
    # Figure 2(a) of the paper.
    src = """
    int power2[15];
    int quan(int val) {
        int i;
        for (i = 0; i < 15; i++)
            if (val < power2[i])
                break;
        return (i);
    }
    """
    prog = parse_program(src)
    fn = prog.functions[0]
    assert fn.name == "quan"
    loop = fn.body.stmts[1]
    assert isinstance(loop, ast.For)
    assert isinstance(loop.body.stmts[0], ast.If)
