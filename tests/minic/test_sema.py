"""Unit tests for mini-C semantic analysis."""

import pytest

from repro.errors import SemanticError
from repro.minic import astnodes as ast
from repro.minic import frontend
from repro.minic.parser import parse_program
from repro.minic.sema import Typer, analyze
from repro.minic.types import FLOAT, INT, ArrayType, FuncType, PointerType


def test_params_and_locals_get_slots():
    prog = frontend("int f(int a, int b) { int c = a + b; return c; }")
    fn = prog.functions[0]
    assert [p.symbol.slot for p in fn.params] == [0, 1]
    decl = fn.body.stmts[0].decls[0]
    assert decl.symbol.slot == 2
    assert fn.frame_size == 3


def test_name_resolves_to_local_over_global():
    prog = frontend("int x = 1;\nint f(void) { int x = 2; return x; }")
    ret = prog.functions[0].body.stmts[1]
    assert ret.value.symbol.kind == "local"


def test_block_scoping_with_shadowing():
    prog = frontend("int f(void) { int x = 1; { int x = 2; x = 3; } return x; }")
    fn = prog.functions[0]
    outer = fn.body.stmts[0].decls[0].symbol
    inner_block = fn.body.stmts[1]
    inner = inner_block.stmts[0].decls[0].symbol
    assert outer is not inner
    assign = inner_block.stmts[1].expr
    assert assign.target.symbol is inner
    ret = fn.body.stmts[2]
    assert ret.value.symbol is outer


def test_undeclared_identifier_rejected():
    with pytest.raises(SemanticError):
        frontend("int f(void) { return zzz; }")


def test_duplicate_declaration_rejected():
    with pytest.raises(SemanticError):
        frontend("int f(void) { int a; int a; return 0; }")


def test_call_arity_checked():
    with pytest.raises(SemanticError):
        frontend("int g(int a) { return a; } int f(void) { return g(1, 2); }")


def test_call_to_undeclared_function_rejected():
    with pytest.raises(SemanticError):
        frontend("int f(void) { return nosuch(1); }")


def test_builtin_calls_allowed():
    prog = frontend("int f(int x) { return __abs(x); }")
    assert prog.functions[0].name == "f"


def test_address_taken_marks_symbol():
    prog = frontend("int f(void) { int x = 1; int *p = &x; return *p; }")
    x = prog.functions[0].body.stmts[0].decls[0].symbol
    assert x.address_taken


def test_address_of_array_does_not_box():
    prog = frontend("int f(void) { int a[4]; int *p = &a[0]; return *p; }")
    a = prog.functions[0].body.stmts[0].decls[0].symbol
    assert not a.address_taken


def test_global_never_written_is_const():
    prog = frontend("int tbl[4] = {1,2,3,4};\nint f(int i) { return tbl[i]; }")
    assert prog.globals[0].decl.symbol.is_const


def test_global_written_is_not_const():
    prog = frontend("int g;\nvoid f(void) { g = 1; }")
    assert not prog.globals[0].decl.symbol.is_const


def test_global_array_passed_to_call_is_not_const():
    src = """
    int tbl[4];
    int g(int *p) { return p[0]; }
    int f(void) { return g(tbl); }
    """
    prog = frontend(src)
    assert not prog.globals[0].decl.symbol.is_const


def test_return_without_value_in_int_function_rejected():
    with pytest.raises(SemanticError):
        frontend("int f(void) { return; }")


def test_for_init_scope_is_local_to_loop():
    src = "int f(void) { for (int i = 0; i < 3; i++) { } return 0; }"
    prog = frontend(src)
    assert prog.functions[0].frame_size == 1


class TestTyper:
    def _typer_and_fn(self, src):
        prog = frontend(src)
        return Typer(prog), prog.functions[-1]

    def test_arith_promotion(self):
        typer, fn = self._typer_and_fn("float f(int a, float b) { return a + b; }")
        ret = fn.body.stmts[0]
        assert typer.type_of(ret.value) == FLOAT

    def test_comparison_is_int(self):
        typer, fn = self._typer_and_fn("int f(float a) { return a < 1.0; }")
        assert typer.type_of(fn.body.stmts[0].value) == INT

    def test_index_of_2d_array(self):
        typer, fn = self._typer_and_fn(
            "float m[2][3];\nfloat f(int i, int j) { return m[i][j]; }"
        )
        ret = fn.body.stmts[0]
        assert typer.type_of(ret.value) == FLOAT
        assert typer.type_of(ret.value.base) == ArrayType(FLOAT, 3)

    def test_pointer_arith(self):
        typer, fn = self._typer_and_fn("int f(int *p) { return *(p + 1); }")
        assert typer.type_of(fn.body.stmts[0].value) == INT

    def test_function_symbol_type(self):
        typer, fn = self._typer_and_fn("int g(int x) { return x; } int f(void) { return g(1); }")
        call = fn.body.stmts[0].value
        assert isinstance(typer.type_of(call.func), FuncType)
        assert typer.type_of(call) == INT

    def test_deref_non_pointer_rejected(self):
        typer, fn = self._typer_and_fn("int f(int x) { return x; }")
        bad = ast.Unary(op="*", operand=fn.body.stmts[0].value)
        with pytest.raises(SemanticError):
            typer.type_of(bad)

    def test_array_decays_in_expression(self):
        typer, fn = self._typer_and_fn("int a[4];\nint *f(void) { return a + 1; }")
        assert typer.type_of(fn.body.stmts[0].value) == PointerType(INT)


def test_analyze_returns_same_program_object():
    prog = parse_program("int f(void) { return 1; }")
    assert analyze(prog) is prog
