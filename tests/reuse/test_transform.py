"""Tests for the reuse transformation: generated code shape and, above
all, semantic equivalence with the original program."""


from repro.minic import format_program, frontend
from repro.minic.parser import parse_program
from repro.reuse.segments import ProgramAnalysis, enumerate_segments
from repro.reuse.transform import ReuseTransformer
from repro.runtime import Machine, ReuseTable, compile_program


def transform_segment_of(src, kind, func_name=None):
    program = frontend(src)
    analysis = ProgramAnalysis(program)
    segments = enumerate_segments(analysis)
    chosen = next(
        s
        for s in segments
        if s.kind == kind and s.feasible and (func_name is None or s.func_name == func_name)
    )
    chosen.distinct_inputs = 64
    transformer = ReuseTransformer(program, analysis)
    spec = transformer.transform_segment(chosen)
    return program, chosen, spec


def run_both(src, entry="main", inputs=(), kind="function", func_name=None, capacity=256):
    """Run original and transformed; return (orig_machine, xfrm_machine)."""
    machine_o = Machine("O0")
    machine_o.set_inputs(list(inputs))
    ro = compile_program(frontend(src), machine_o).run(entry)

    program, segment, spec = transform_segment_of(src, kind, func_name)
    machine_t = Machine("O0")
    machine_t.set_inputs(list(inputs))
    machine_t.install_table(
        segment.seg_id,
        ReuseTable(str(segment.seg_id), capacity, spec.in_words, spec.out_words),
    )
    rt = compile_program(program, machine_t).run(entry)
    assert ro == rt, f"result mismatch: {ro} != {rt}"
    assert machine_o.output_checksum == machine_t.output_checksum
    return machine_o, machine_t


QUAN = """
int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};
int quan(int val) {
    int i;
    for (i = 0; i < 15; i++)
        if (val < power2[i])
            break;
    return (i);
}
int main(void) {
    int s = 0;
    while (__input_avail())
        s += quan(__input_int());
    __output_int(s);
    return s;
}
"""


class TestFunctionSegment:
    def test_generated_shape_matches_figure_2b(self):
        program, segment, spec = transform_segment_of(QUAN, "function")
        text = format_program(program)
        assert "__reuse_probe" in text
        assert "__reuse_commit" in text
        assert "__reuse_out_i" in text
        assert "__reuse_end" in text
        # source-to-source: output re-parses
        parse_program(text)

    def test_equivalence_and_speedup_on_repetitive_input(self):
        inputs = [3, 900, 17, 3, 900, 17] * 120
        mo, mt = run_both(QUAN, inputs=inputs)
        assert mt.cycles < mo.cycles  # high reuse: transformed wins

    def test_equivalence_on_all_distinct_inputs(self):
        inputs = list(range(0, 33000, 37))  # nearly all distinct
        mo, mt = run_both(QUAN, inputs=inputs, capacity=4096)
        # correctness holds even when reuse never pays off
        assert mt.cycles > 0

    def test_early_returns_committed(self):
        src = """
        int classify(int x) {
            if (x < 0) return -1;
            if (x == 0) return 0;
            return 1;
        }
        int main(void) {
            int s = 0;
            while (__input_avail())
                s += classify(__input_int());
            return s;
        }
        """
        inputs = [-5, 0, 7, -5, 0, 7, -5, 0, 7]
        mo, mt = run_both(src, inputs=inputs)

    def test_global_output_restored_on_hit(self):
        src = """
        int last;
        int f(int x) {
            last = x * 2;
            return x + 1;
        }
        int main(void) {
            int s = 0;
            while (__input_avail()) {
                s += f(__input_int());
                s += last;
            }
            return s;
        }
        """
        inputs = [4, 9, 4, 9, 4]
        run_both(src, inputs=inputs)

    def test_void_function_with_global_outputs(self):
        src = """
        int a;
        int b;
        void f(int x) {
            a = x * 3;
            b = x - 1;
        }
        int main(void) {
            int s = 0;
            while (__input_avail()) {
                f(__input_int());
                s += a * b;
            }
            return s;
        }
        """
        inputs = [2, 5, 2, 5, 2, 5]
        run_both(src, inputs=inputs)

    def test_array_output_through_pointer_param(self):
        src = """
        int buf[4];
        void expand(int x, int *out) {
            out[0] = x;
            out[1] = x * x;
            out[2] = x + 1;
            out[3] = x - 1;
        }
        int main(void) {
            int s = 0;
            while (__input_avail()) {
                expand(__input_int(), buf);
                s += buf[0] + buf[1] + buf[2] + buf[3];
            }
            return s;
        }
        """
        inputs = [3, 8, 3, 8, 3]
        run_both(src, inputs=inputs, func_name="expand")

    def test_float_retval(self):
        src = """
        float half(int x) { return x / 2.0; }
        int main(void) {
            float s = 0.0;
            while (__input_avail())
                s = s + half(__input_int());
            __output_float(s);
            return (int) s;
        }
        """
        inputs = [1, 2, 3, 1, 2, 3]
        run_both(src, inputs=inputs)

    def test_recursive_function_memoized(self):
        src = """
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main(void) { return fib(14); }
        """
        mo, mt = run_both(src)
        # memoized fib collapses the exponential tree
        assert mt.cycles < mo.cycles / 5


class TestRegionSegments:
    def test_loop_body_segment(self):
        src = """
        int weight(int x) {
            int s = 0;
            for (int i = 0; i < 100; i++) {
                int v = x;
                int acc = 0;
                for (int j = 0; j < 20; j++)
                    acc += (v + j) * (v - j);
                s += acc;
            }
            return s;
        }
        int main(void) {
            int t = 0;
            while (__input_avail())
                t += weight(__input_int());
            __output_int(t);
            return t;
        }
        """
        # the outer loop body has input {x, i?}... verify equivalence
        inputs = [5, 5, 5, 9]
        mo, mt = run_both(src, inputs=inputs, kind="loop", func_name="weight")

    def test_if_branch_segment(self):
        src = """
        int g;
        int f(int x, int mode) {
            int r = 0;
            if (mode) {
                r = x * x + x;
                g = r / 2;
            }
            else {
                r = -x;
            }
            return r + g;
        }
        int main(void) {
            int s = 0;
            while (__input_avail())
                s += f(__input_int(), s % 2);
            return s;
        }
        """
        inputs = [3, 3, 4, 3, 3, 4, 3]
        run_both(src, inputs=inputs, kind="if-branch", func_name="f")

    def test_region_transform_shape(self):
        src = """
        int f(int x) {
            int r = 0;
            for (int i = 0; i < 4; i++) {
                r = r + x;
            }
            return r;
        }
        int main(void) { return f(3); }
        """
        program, segment, spec = transform_segment_of(src, "loop")
        text = format_program(program)
        assert "__reuse_probe" in text
        assert "== 0" in text  # the Figure 2(b) check_hash(...) == 0 shape
        parse_program(text)


class TestTableStats:
    def test_hits_match_expected_reuse(self):
        inputs = [7, 7, 7, 7, 7, 7, 7, 7]
        mo, mt = run_both(QUAN, inputs=inputs)
        table = next(iter(mt.reuse_tables.values()))
        assert table.stats.probes == 8
        assert table.stats.hits == 7
        assert table.stats.misses == 1

    def test_tiny_table_still_correct(self):
        inputs = [1, 2000, 1, 2000, 1, 2000]
        # capacity 1: constant eviction, zero or near-zero hits, still correct
        mo, mt = run_both(QUAN, inputs=inputs, capacity=1)
        table = next(iter(mt.reuse_tables.values()))
        assert table.stats.hits < table.stats.probes
