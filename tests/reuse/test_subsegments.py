"""Tests for the sub-segment extension (paper §5 future work)."""


from repro.minic import format_program, frontend
from repro.reuse import PipelineConfig, ReusePipeline
from repro.reuse.segments import ProgramAnalysis, enumerate_segments
from repro.reuse.subsegments import enumerate_subsegments
from repro.runtime import Machine, compile_program

# A main loop that is infeasible as a whole (I/O at both ends) but whose
# middle — the expensive computation — is a clean run.
IO_LOOP = """
int tab[8] = {5, 3, 8, 1, 9, 2, 7, 4};

int main(void) {
    int acc = 0;
    while (__input_avail()) {
        int v = __input_int();
        int r = 0;
        int i;
        for (i = 0; i < 12; i++)
            r += tab[i & 7] * ((v + i) & 63) + v % (i + 2);
        acc += r;
        __output_int(r & 255);
    }
    __output_int(acc);
    return acc;
}
"""


def _run(program, inputs, tables=None):
    machine = Machine("O0")
    machine.set_inputs(list(inputs))
    for seg_id, table in (tables or {}).items():
        machine.install_table(seg_id, table)
    result = compile_program(program, machine).run("main")
    return result, machine


class TestEnumeration:
    def test_subsegment_found_in_io_loop(self):
        program = frontend(IO_LOOP)
        analysis = ProgramAnalysis(program)
        segments = enumerate_segments(analysis)
        loop = next(s for s in segments if s.kind == "loop")
        assert not loop.feasible  # I/O disqualifies the whole body
        subs = enumerate_subsegments(analysis, segments, next_id=100)
        assert len(subs) >= 1
        sub = subs[0]
        assert sub.kind == "sub-block"
        assert sub.feasible, sub.reject_reason
        in_names = {s.symbol.name for s in sub.inputs}
        assert "v" in in_names

    def test_declaration_leak_shrinks_run(self):
        # `r` is declared in the clean middle but read by the trailing
        # output statement: the run must not swallow the declaration in a
        # way that breaks scoping (the program must still resolve).
        program = frontend(IO_LOOP)
        analysis = ProgramAnalysis(program)
        segments = enumerate_segments(analysis)
        enumerate_subsegments(analysis, segments, next_id=100)
        # the mutated program still parses/resolves after pretty-printing
        from repro.minic.parser import parse_program
        from repro.minic.sema import analyze

        analyze(parse_program(format_program(program)))

    def test_feasible_bodies_not_searched(self):
        src = """
        int f(int x) {
            int r = 0;
            int i;
            for (i = 0; i < 4; i++)
                r += x * i;
            return r;
        }
        int main(void) { return f(3); }
        """
        program = frontend(src)
        analysis = ProgramAnalysis(program)
        segments = enumerate_segments(analysis)
        subs = enumerate_subsegments(analysis, segments, next_id=100)
        assert subs == []


class TestPipelineIntegration:
    INPUTS = [7, 21, 7, 99, 21, 7] * 60

    def test_disabled_by_default(self):
        result = ReusePipeline(IO_LOOP, PipelineConfig(min_executions=8)).run(
            self.INPUTS
        )
        # without the extension only the inner for-loop body is available
        # (fine-grained, small per-execution gain); no sub-block appears
        assert all(s.kind != "sub-block" for s in result.segments)

    def test_enabled_transforms_the_middle(self):
        config = PipelineConfig(min_executions=8, enable_subsegments=True)
        result = ReusePipeline(IO_LOOP, config).run(self.INPUTS)
        assert any(s.kind == "sub-block" for s in result.selected)
        text = format_program(result.program)
        assert "__reuse_probe" in text

    def test_equivalence_and_speedup(self):
        config = PipelineConfig(min_executions=8, enable_subsegments=True)
        result = ReusePipeline(IO_LOOP, config).run(self.INPUTS)
        r_orig, m_orig = _run(frontend(IO_LOOP), self.INPUTS)
        r_xfrm, m_xfrm = _run(result.program, self.INPUTS, result.build_tables())
        assert r_orig == r_xfrm
        assert m_orig.output_checksum == m_xfrm.output_checksum
        assert m_xfrm.cycles < m_orig.cycles  # the extension pays off

    def test_subsegment_respects_cost_filter(self):
        # all-distinct inputs: the sub-block profiles R ~ 0 and must not
        # be transformed
        config = PipelineConfig(min_executions=8, enable_subsegments=True)
        inputs = list(range(0, 3600, 10))
        result = ReusePipeline(IO_LOOP, config).run(inputs)
        assert not result.selected
