"""Tests for the paper's cost-benefit formulas (section 2.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.reuse.cost_model import (
    cost_with_reuse,
    gain,
    is_beneficial,
    passes_prefilter,
    prefer_inner,
)

pos = st.floats(min_value=1.0, max_value=1e6, allow_nan=False)
rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def test_formula_1_extremes():
    # never reused: pay C + O every time
    assert cost_with_reuse(100, 10, 0.0) == pytest.approx(110)
    # always reused: pay only O
    assert cost_with_reuse(100, 10, 1.0) == pytest.approx(10)


def test_formula_2_equivalence():
    # C - [(C+O)(1-R) + O R] == R*C - O, checked numerically
    for c, o, r in [(100, 10, 0.5), (1000, 50, 0.99), (20, 19, 0.9)]:
        assert c - cost_with_reuse(c, o, r) == pytest.approx(gain(c, o, r))


@given(pos, pos, rates)
def test_formula_2_equivalence_property(c, o, r):
    assert c - cost_with_reuse(c, o, r) == pytest.approx(gain(c, o, r), rel=1e-9, abs=1e-6)


def test_formula_3_threshold():
    # beneficial iff R > O/C
    assert is_beneficial(100, 10, 0.11)
    assert not is_beneficial(100, 10, 0.10)
    assert not is_beneficial(100, 10, 0.09)


@given(pos, pos, rates)
def test_formula_3_matches_gain_sign(c, o, r):
    assert is_beneficial(c, o, r) == (gain(c, o, r) > 0)


def test_prefilter():
    assert passes_prefilter(100, 10)
    assert not passes_prefilter(10, 10)  # O/C == 1: R <= 1 can never win
    assert not passes_prefilter(10, 100)
    assert not passes_prefilter(0, 5)


def test_formula_4_nested_preference():
    # inner wins when its (scaled) gain exceeds the outer gain
    assert prefer_inner(gain_outer=50, inner_total_gain=60)
    assert not prefer_inner(gain_outer=50, inner_total_gain=40)
    assert not prefer_inner(gain_outer=50, inner_total_gain=50)  # tie: outer


def test_paper_quan_numbers_plausible():
    """Table 3 G721_encode row: C=1.28us, O=0.12us, R=99.4% -> big win."""
    c, o, r = 1.28, 0.12, 0.994
    assert is_beneficial(c, o, r)
    assert gain(c, o, r) == pytest.approx(1.15232)


def test_paper_mpeg2_encode_numbers():
    """Table 3 MPEG2_encode: C=13859, O=49.4, R=9.8% -> still positive but
    small relative to C (matching the tiny 1.07 speedup)."""
    c, o, r = 13859.0, 49.4, 0.098
    assert is_beneficial(c, o, r)
    assert gain(c, o, r) / c < 0.1
