"""Tests for candidate segment identification and feasibility analysis."""


from repro.minic import frontend
from repro.reuse.granularity import GranularityAnalysis
from repro.reuse.hashing_cost import annotate_costs, hashing_overhead
from repro.reuse.segments import ProgramAnalysis, enumerate_segments


def segments_for(src):
    program = frontend(src)
    analysis = ProgramAnalysis(program)
    return enumerate_segments(analysis), analysis, program


def by_kind(segments, kind):
    return [s for s in segments if s.kind == kind]


QUAN_SPECIALIZED = """
int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};
int quan(int val) {
    int i;
    for (i = 0; i < 15; i++)
        if (val < power2[i])
            break;
    return (i);
}
int main(void) { return quan(7); }
"""


class TestEnumeration:
    def test_kinds_enumerated(self):
        segments, _, _ = segments_for(QUAN_SPECIALIZED)
        assert len(by_kind(segments, "function")) == 1  # main excluded
        assert len(by_kind(segments, "loop")) == 1
        assert len(by_kind(segments, "if-branch")) == 1

    def test_main_body_not_a_candidate(self):
        segments, _, _ = segments_for("int main(void) { return 1; }")
        assert not by_kind(segments, "function")

    def test_else_branch_enumerated(self):
        segments, _, _ = segments_for(
            "int f(int x) { int r; if (x) { r = 1; } else { r = 2; } return r; }"
        )
        assert len(by_kind(segments, "if-branch")) == 2


class TestQuanSegment:
    def test_function_segment_io(self):
        segments, _, _ = segments_for(QUAN_SPECIALIZED)
        seg = by_kind(segments, "function")[0]
        assert seg.feasible
        assert [s.symbol.name for s in seg.inputs] == ["val"]
        assert seg.outputs == []  # i leaves via the return value
        assert seg.has_retval
        assert seg.in_words == 1
        assert seg.out_words == 1

    def test_loop_rejected_for_break(self):
        segments, _, _ = segments_for(QUAN_SPECIALIZED)
        seg = by_kind(segments, "loop")[0]
        assert not seg.feasible
        assert "escapes" in seg.reject_reason


class TestFeasibility:
    def test_io_segment_rejected(self):
        segments, _, _ = segments_for(
            "int f(int x) { __output_int(x); return x; }\nint main(void) { return f(1); }"
        )
        seg = by_kind(segments, "function")[0]
        assert not seg.feasible
        assert "I/O" in seg.reject_reason

    def test_transitive_io_rejected(self):
        src = """
        void log_(int x) { __print_int(x); }
        int f(int x) { log_(x); return x * 2; }
        int main(void) { return f(3); }
        """
        segments, _, _ = segments_for(src)
        f_seg = next(s for s in by_kind(segments, "function") if s.func_name == "f")
        assert not f_seg.feasible

    def test_return_in_loop_body_rejected(self):
        src = """
        int f(int n) {
            for (int i = 0; i < n; i++)
                if (i == 3) return i;
            return 0;
        }
        """
        segments, _, _ = segments_for(src)
        loop = by_kind(segments, "loop")[0]
        assert not loop.feasible

    def test_inner_loop_break_does_not_reject_outer_body(self):
        src = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                for (int j = 0; j < 10; j++) {
                    if (j == i) break;
                    s++;
                }
            }
            return s;
        }
        """
        segments, _, _ = segments_for(src)
        loops = by_kind(segments, "loop")
        outer = next(s for s in loops if len(list(_walk_loops(s.region_root))) > 0)
        assert outer.feasible  # break binds to the inner loop

    def test_no_inputs_rejected(self):
        segments, _, _ = segments_for(
            "int f(void) { return 42; }\nint main(void) { return f(); }"
        )
        seg = by_kind(segments, "function")[0]
        assert not seg.feasible
        assert "no inputs" in seg.reject_reason

    def test_unbounded_pointer_rejected(self):
        # p has no known pointee (no call site binds it)
        src = "int f(int *p) { return p[0] + p[1]; }"
        segments, _, _ = segments_for(src)
        seg = by_kind(segments, "function")[0]
        assert not seg.feasible
        assert "unbounded" in seg.reject_reason

    def test_weakly_defined_output_becomes_input(self):
        src = """
        int g;
        void f(int x) { if (x > 0) g = x; }
        int main(void) { f(3); return g; }
        """
        segments, _, _ = segments_for(src)
        seg = next(s for s in by_kind(segments, "function") if s.func_name == "f")
        assert seg.feasible
        names = [s.symbol.name for s in seg.inputs]
        assert "g" in names  # conditional write: entry value matters
        assert "x" in names

    def test_float_io_shapes(self):
        src = """
        float acc;
        float f(float x) { acc = acc + x; return acc * 2.0; }
        int main(void) { f(1.5); return 0; }
        """
        segments, _, _ = segments_for(src)
        seg = by_kind(segments, "function")[0]
        assert seg.feasible
        assert seg.retval_is_float
        out_names = {s.symbol.name for s in seg.outputs}
        assert out_names == {"acc"}
        assert all(s.is_float for s in seg.outputs)

    def test_array_input_shape(self):
        src = """
        int block[8];
        int f(int *b) {
            int s = 0;
            for (int i = 0; i < 8; i++)
                s += b[i];
            return s;
        }
        int main(void) { block[0] = 1; return f(block); }
        """
        segments, _, _ = segments_for(src)
        seg = next(s for s in by_kind(segments, "function") if s.func_name == "f")
        assert seg.feasible
        assert seg.in_words == 8
        assert seg.out_words == 1


def _walk_loops(block):
    from repro.minic import astnodes as ast

    for node in ast.walk(block):
        if isinstance(node, (ast.For, ast.While, ast.DoWhile)):
            yield node


class TestCosts:
    def test_quan_costs(self):
        segments, _, program = segments_for(QUAN_SPECIALIZED)
        gran = GranularityAnalysis(program)
        annotate_costs(segments, gran)
        seg = by_kind(segments, "function")[0]
        # the constant-trip loop makes C comfortably exceed O
        assert seg.static_granularity > seg.overhead
        assert seg.overhead > 0

    def test_overhead_scales_with_io_words(self):
        wide_src = """
        int blk[64];
        int f(int *b) { int s = 0; for (int i = 0; i < 64; i++) s += b[i]; return s; }
        int main(void) { return f(blk); }
        """
        narrow_src = QUAN_SPECIALIZED
        wide_segments, _, _ = segments_for(wide_src)
        narrow_segments, _, _ = segments_for(narrow_src)
        wide = next(s for s in wide_segments if s.kind == "function" and s.feasible)
        narrow = next(s for s in narrow_segments if s.kind == "function" and s.feasible)
        assert hashing_overhead(wide) > hashing_overhead(narrow)

    def test_o3_overhead_below_o0(self):
        from repro.runtime import costs

        segments, _, _ = segments_for(QUAN_SPECIALIZED)
        seg = by_kind(segments, "function")[0]
        assert hashing_overhead(seg, costs.O3) < hashing_overhead(seg, costs.O0)
