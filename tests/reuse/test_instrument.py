"""Tests for profiling instrumentation insert/strip."""

from repro.minic import astnodes as ast
from repro.minic import format_program, frontend
from repro.reuse.instrument import (
    instrument_program,
    instrument_segment,
    strip_instrumentation,
)
from repro.reuse.segments import ProgramAnalysis, enumerate_segments
from repro.runtime import Machine, compile_program

SRC = """
int tab[4] = {1, 2, 3, 4};
int f(int x) {
    int r = 0;
    for (int i = 0; i < 4; i++)
        r += tab[i] * x;
    if (x > 100) return r * 2;
    return r;
}
int main(void) { return f(7) + f(7); }
"""


def _prepare():
    program = frontend(SRC)
    analysis = ProgramAnalysis(program)
    segments = [s for s in enumerate_segments(analysis) if s.feasible]
    return program, analysis, segments


def test_stubs_inserted_and_text_shows_them():
    program, analysis, segments = _prepare()
    instrument_program(segments, program)
    text = format_program(program)
    assert "__seg_enter" in text
    assert "__profile" in text
    assert "__seg_exit" in text


def test_exit_before_every_return():
    program, analysis, segments = _prepare()
    fn_seg = next(s for s in segments if s.kind == "function")
    instrument_segment(fn_seg, program)
    fn = program.function("f")
    exits = [
        n
        for n in ast.walk(fn.body)
        if isinstance(n, ast.Call)
        and isinstance(n.func, ast.Name)
        and n.func.name == "__seg_exit"
    ]
    returns = [n for n in ast.walk(fn.body) if isinstance(n, ast.Return)]
    # one exit stub per return plus the fall-through one
    assert len(exits) == len(returns) + 1


def test_strip_restores_program_text():
    program, analysis, segments = _prepare()
    before = format_program(program)
    instrument_program(segments, program)
    removed = strip_instrumentation(program)
    assert removed > 0
    assert format_program(program) == before


def test_instrumented_run_records_and_is_zero_cost():
    program, analysis, segments = _prepare()
    fn_seg = next(s for s in segments if s.kind == "function")
    instrument_segment(fn_seg, program)

    from repro.profiling import ValueSetProfiler

    machine = Machine("O0")
    profiler = ValueSetProfiler(machine)
    machine.profiler = profiler
    compile_program(program, machine).run("main")
    profile = profiler.profile(fn_seg.seg_id)
    assert profile.executions == 2
    assert profile.distinct_inputs == 1
    assert profile.inclusive_cycles > 0

    # same program, no profiler: identical cycle count (stubs are free)
    machine2 = Machine("O0")
    compile_program(program, machine2).run("main")
    assert machine2.cycles == machine.cycles


def test_region_object_survives_instrumentation():
    program, analysis, segments = _prepare()
    fn_seg = next(s for s in segments if s.kind == "function")
    region_before = fn_seg.region_root
    instrument_segment(fn_seg, program)
    strip_instrumentation(program)
    assert fn_seg.region_root is region_before
