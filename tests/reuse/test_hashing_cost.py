"""Unit tests for the hashing-overhead (O) estimator."""


from repro.analysis.arrays import IOShape
from repro.minic.astnodes import Symbol
from repro.minic.types import INT
from repro.reuse.hashing_cost import hashing_overhead
from repro.reuse.segments import Segment
from repro.runtime import costs


def make_segment(n_in=1, n_out=1, arrays=0, retval=True):
    seg = Segment(seg_id=0, kind="function", func_name="f", region_root=None, control=None)
    for i in range(n_in):
        is_array = i < arrays
        words = 16 if is_array else 1
        seg.inputs.append(IOShape(Symbol(f"i{i}", INT, "param"), words, is_array, False))
    for i in range(n_out):
        seg.outputs.append(IOShape(Symbol(f"o{i}", INT, "global"), 1, False, False))
    seg.has_retval = retval
    return seg


def test_overhead_positive_and_has_fixed_part():
    seg = make_segment()
    o = hashing_overhead(seg)
    assert o >= costs.O0.cycles[costs.HASH_FIXED]


def test_overhead_monotone_in_inputs():
    assert hashing_overhead(make_segment(n_in=4)) > hashing_overhead(make_segment(n_in=1))


def test_overhead_monotone_in_outputs():
    assert hashing_overhead(make_segment(n_out=6)) > hashing_overhead(make_segment(n_out=1))


def test_array_inputs_charge_per_word():
    scalar = hashing_overhead(make_segment(n_in=1))
    array = hashing_overhead(make_segment(n_in=1, arrays=1))
    # the 16-word array adds at least 15 extra HASH_WORD charges
    assert array - scalar >= 15 * costs.O0.cycles[costs.HASH_WORD]


def test_retval_counts_as_output_word():
    with_rv = hashing_overhead(make_segment(retval=True))
    without = hashing_overhead(make_segment(retval=False))
    assert with_rv > without


def test_matches_runtime_charges_for_quan_shape():
    """The estimate must agree with what the intrinsics actually charge
    (one int in, retval out): HASH_FIXED + 2 HASH_WORD plus access costs."""
    seg = make_segment(n_in=1, n_out=0, retval=True)
    o = hashing_overhead(seg)
    table = costs.O0.cycles
    floor = table[costs.HASH_FIXED] + 2 * table[costs.HASH_WORD]
    assert o >= floor
    assert o <= floor + 20  # access + branch overhead stays small
