"""Tests for the static granularity (C lower bound) estimator."""


from repro.minic import frontend
from repro.reuse.granularity import GranularityAnalysis
from repro.runtime import costs


def cycles_of(src, fn_name):
    program = frontend(src)
    g = GranularityAnalysis(program)
    return g.function_cycles(fn_name)


def test_straightline_counts_ops():
    c = cycles_of("int f(int a, int b) { return a + b * 2; }", "f")
    assert c > 0
    # at least a multiply, an add, two loads
    table = costs.O0.cycles
    assert c >= table[costs.MUL] + table[costs.ALU] + 2 * table[costs.LOCAL_RD]


def test_constant_trip_loop_multiplies():
    one = cycles_of("int f(int x) { int s = 0; for (int i = 0; i < 1; i++) s += x; return s; }", "f")
    ten = cycles_of("int f(int x) { int s = 0; for (int i = 0; i < 10; i++) s += x; return s; }", "f")
    assert ten > 5 * one


def test_loop_with_break_halves_estimate():
    plain = """
    int t[16];
    int f(int x) { int s = 0; for (int i = 0; i < 16; i++) { s += t[i]; } return s; }
    """
    breaking = """
    int t[16];
    int f(int x) { int s = 0; for (int i = 0; i < 16; i++) { if (t[i] > x) break; s += t[i]; } return s; }
    """
    assert cycles_of(breaking, "f") < cycles_of(plain, "f")


def test_unknown_trip_counts_once():
    src = "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }"
    c = cycles_of(src, "f")
    fixed = "int f(int n) { int s = 0; for (int i = 0; i < 100; i++) s += i; return s; }"
    assert c < cycles_of(fixed, "f") / 10


def test_while_counts_one_iteration():
    src = "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }"
    assert cycles_of(src, "f") > 0


def test_if_takes_cheaper_branch():
    src = """
    float g(float x) { return x * x * x * x; }
    int f(int c) {
        if (c) { g(1.0); g(2.0); g(3.0); }
        else { c = c + 1; }
        return c;
    }
    """
    program = frontend(src)
    g = GranularityAnalysis(program)
    f_cost = g.function_cycles("f")
    g_cost = g.function_cycles("g")
    # the lower bound must not include the expensive branch
    assert f_cost < g_cost


def test_float_ops_cost_more():
    fsrc = "float f(float a, float b) { return a * b; }"
    isrc = "int f(int a, int b) { return a * b; }"
    assert cycles_of(fsrc, "f") > cycles_of(isrc, "f")


def test_call_includes_callee():
    src = """
    int leaf(int x) { int s = 0; for (int i = 0; i < 8; i++) s += x * i; return s; }
    int caller(int x) { return leaf(x) + 1; }
    """
    program = frontend(src)
    g = GranularityAnalysis(program)
    assert g.function_cycles("caller") > g.function_cycles("leaf")


def test_recursion_terminates():
    src = "int f(int n) { if (n < 1) return 0; return f(n - 1) + n; }"
    c = cycles_of(src, "f")
    assert 0 < c < 10_000  # finite, no infinite recursion


def test_region_cycles_of_loop_body():
    src = """
    int f(int x) {
        int s = 0;
        for (int i = 0; i < 4; i++) {
            s += x * i;
        }
        return s;
    }
    """
    program = frontend(src)
    g = GranularityAnalysis(program)
    loop = program.function("f").body.stmts[1]
    body_cost = g.region_cycles(loop.body)
    assert 0 < body_cost < g.function_cycles("f")


def test_math_intrinsics_charged():
    with_math = cycles_of("float f(float x) { return __cos(x); }", "f")
    without = cycles_of("float f(float x) { return x; }", "f")
    assert with_math >= without + costs.O0.cycles[costs.MATH]
