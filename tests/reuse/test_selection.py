"""Tests for nesting-graph selection, specialization, merging, and the
end-to-end pipeline."""

import pytest

from repro.minic import format_program, frontend
from repro.reuse import (
    NestingGraph,
    PipelineConfig,
    ReusePipeline,
    Specializer,
    merge_groups,
    merged_size_bytes,
    unmerged_size_bytes,
)
from repro.reuse.segments import ProgramAnalysis, Segment, enumerate_segments
from repro.runtime import Machine, compile_program


def _make_segment(seg_id, kind, func, region, control, gain, execs):
    segment = Segment(
        seg_id=seg_id, kind=kind, func_name=func, region_root=region, control=control
    )
    segment.gain = gain
    segment.executions = execs
    return segment


class TestNestingGraph:
    SRC = """
    int inner(int x) {
        int r = 0;
        for (int i = 0; i < 10; i++)
            r += x * i;
        return r;
    }
    int outer(int y) {
        int s = 0;
        s += inner(y);
        s += inner(y + 1);
        return s;
    }
    int main(void) {
        int t = 0;
        while (__input_avail())
            t += outer(__input_int());
        return t;
    }
    """

    def _segments(self):
        program = frontend(self.SRC)
        analysis = ProgramAnalysis(program)
        segments = [s for s in enumerate_segments(analysis) if s.feasible]
        return segments, analysis

    def test_interprocedural_edge(self):
        segments, analysis = self._segments()
        outer = next(s for s in segments if s.func_name == "outer" and s.kind == "function")
        inner = next(s for s in segments if s.func_name == "inner" and s.kind == "function")
        outer.gain, outer.executions = 100.0, 10
        inner.gain, inner.executions = 10.0, 20
        graph = NestingGraph([outer, inner], analysis)
        assert inner.seg_id in graph.edges[outer.seg_id]
        assert outer.seg_id not in graph.edges[inner.seg_id]

    def test_outer_selected_when_gain_dominates(self):
        segments, analysis = self._segments()
        outer = next(s for s in segments if s.func_name == "outer" and s.kind == "function")
        inner = next(s for s in segments if s.func_name == "inner" and s.kind == "function")
        outer.gain, outer.executions = 100.0, 10
        inner.gain, inner.executions = 10.0, 20  # n = 2, n*g2 = 20 < 100
        selected = NestingGraph([outer, inner], analysis).select()
        assert [s.seg_id for s in selected] == [outer.seg_id]

    def test_inner_selected_when_scaled_gain_wins(self):
        segments, analysis = self._segments()
        outer = next(s for s in segments if s.func_name == "outer" and s.kind == "function")
        inner = next(s for s in segments if s.func_name == "inner" and s.kind == "function")
        outer.gain, outer.executions = 15.0, 10
        inner.gain, inner.executions = 10.0, 20  # n*g2 = 20 > 15
        selected = NestingGraph([outer, inner], analysis).select()
        assert [s.seg_id for s in selected] == [inner.seg_id]

    def test_figure_3_example(self):
        """The paper's Figure 3: CS1 contains CS2 and CS3; CS2 contains
        CS4; CS3 contains CS5 and CS6 (sequential).  We model it with
        gains chosen so CS1 should delegate to {CS4, CS5, CS6}."""
        src = """
        int cs4(int x) { int r = 0; for (int i = 0; i < 4; i++) r += x * i; return r; }
        int cs2(int x) { return cs4(x) + cs4(x + 1); }
        int cs5(int x) { int r = 0; for (int i = 0; i < 4; i++) r += x + i; return r; }
        int cs6(int x) { int r = 0; for (int i = 0; i < 4; i++) r -= x + i; return r; }
        int cs3(int x) { return cs5(x) + cs6(x); }
        int cs1(int x) { return cs2(x) + cs3(x); }
        int main(void) {
            int t = 0;
            while (__input_avail())
                t += cs1(__input_int());
            return t;
        }
        """
        program = frontend(src)
        analysis = ProgramAnalysis(program)
        segments = [
            s
            for s in enumerate_segments(analysis)
            if s.feasible and s.kind == "function"
        ]
        by_name = {s.func_name: s for s in segments}
        # executions per one cs1 call: cs2 x1, cs3 x1, cs4 x2, cs5 x1, cs6 x1
        by_name["cs1"].gain, by_name["cs1"].executions = 50.0, 10
        by_name["cs2"].gain, by_name["cs2"].executions = 10.0, 10
        by_name["cs3"].gain, by_name["cs3"].executions = 12.0, 10
        by_name["cs4"].gain, by_name["cs4"].executions = 20.0, 20
        by_name["cs5"].gain, by_name["cs5"].executions = 30.0, 10
        by_name["cs6"].gain, by_name["cs6"].executions = 25.0, 10
        # bottom-up: cs2 -> n*g(cs4)=40 > 10 -> delegate; cs3 -> 55 > 12 ->
        # delegate; cs1: inner total = 40 + 55 = 95 > 50 -> delegate.
        selected = NestingGraph(list(by_name.values()), analysis).select()
        names = {s.func_name for s in selected}
        assert names == {"cs4", "cs5", "cs6"}

    def test_recursive_scc_condensed(self):
        src = """
        int even(int n);
        int odd(int n) { if (n == 0) return 0; return even(n - 1); }
        int even(int n) { if (n == 0) return 1; return odd(n - 1); }
        int main(void) { return even(10); }
        """
        program = frontend(src)
        analysis = ProgramAnalysis(program)
        segments = [
            s for s in enumerate_segments(analysis) if s.feasible and s.kind == "function"
        ]
        for s in segments:
            s.executions = 10
        segments[0].gain = 5.0
        segments[1].gain = 9.0
        selected = NestingGraph(segments, analysis).select()
        # mutual recursion: one SCC; only its best-gain member survives
        assert len(selected) == 1
        assert selected[0].gain == 9.0


class TestSpecializer:
    SRC = """
    int table[8] = {1, 2, 4, 8, 16, 32, 64, 128};
    int look(int v, int *t, int n) {
        int i;
        for (i = 0; i < n; i++)
            if (v < t[i])
                break;
        return i;
    }
    int use_a(int v) { return look(v, table, 8); }
    int use_b(int v) { return look(v, table, 8); }
    """

    def _specialize(self, src=None):
        program = frontend(src or self.SRC)
        analysis = ProgramAnalysis(program)
        spec = Specializer(program, analysis.invariants)
        records = spec.specialize_function("look")
        return program, records

    def test_version_created_with_bindings(self):
        program, records = self._specialize()
        assert len(records) == 1
        record = records[0]
        assert record.original == "look"
        assert record.call_sites == 2
        kinds = {b.kind for b in record.bindings}
        assert kinds == {"const", "global"}

    def test_specialized_function_has_one_param(self):
        program, records = self._specialize()
        fn = program.function(records[0].specialized)
        assert [p.name for p in fn.params] == ["v"]

    def test_call_sites_rewritten(self):
        program, records = self._specialize()
        text = format_program(program)
        assert text.count("look__s0(v)") == 2

    def test_body_references_global_directly(self):
        program, records = self._specialize()
        from repro.minic.pretty import format_function

        fn = program.function(records[0].specialized)
        text = format_function(fn)
        assert "table[i]" in text
        assert "< 8" in text

    def test_semantics_preserved(self):
        from repro.minic.sema import analyze

        from tests.support import run_plain

        src = self.SRC + "\nint main(void) { return use_a(3) * 100 + use_b(40); }"
        before, _ = run_plain(src)
        program, _ = self._specialize(src)
        analyze(program)
        machine = Machine("O0")
        after = compile_program(program, machine).run("main")
        assert before == after

    def test_no_bindings_no_versions(self):
        src = """
        int f(int a, int b) { return a + b; }
        int main(void) { int x = __input_int(); return f(x, x); }
        """
        program = frontend(src)
        analysis = ProgramAnalysis(program)
        spec = Specializer(program, analysis.invariants)
        assert spec.specialize_function("f") == []

    def test_distinct_signatures_get_distinct_versions(self):
        src = """
        int f(int a, int n) { return a * n; }
        int main(void) { return f(__input_int(), 3) + f(__input_int(), 7); }
        """
        program = frontend(src)
        analysis = ProgramAnalysis(program)
        spec = Specializer(program, analysis.invariants)
        records = spec.specialize_function("f")
        assert len(records) == 2
        assert {r.specialized for r in records} == {"f__s0", "f__s1"}


class TestMerging:
    def _segments_with_inputs(self, program):
        analysis = ProgramAnalysis(program)
        return [s for s in enumerate_segments(analysis) if s.feasible], analysis

    def test_identical_inputs_merged(self):
        src = """
        int g1;
        int g2;
        void f(int a, int b) {
            if (a > b) { g1 = a * b + a; }
            if (a > b) { g2 = a * b - a; }
        }
        int main(void) { f(__input_int(), 1); return g1 + g2; }
        """
        program = frontend(src)
        segments, _ = self._segments_with_inputs(program)
        branches = [s for s in segments if s.kind == "if-branch"]
        assert len(branches) == 2
        groups = merge_groups(branches)
        if groups:  # inputs must be identical symbols
            (members,) = groups.values()
            assert len(members) == 2
            assert all(s.merged_group for s in members)

    def test_different_inputs_not_merged(self):
        s1 = Segment(seg_id=1, kind="loop", func_name="f", region_root=None, control=None)
        s2 = Segment(seg_id=2, kind="loop", func_name="f", region_root=None, control=None)
        from repro.analysis.arrays import IOShape
        from repro.minic.astnodes import Symbol
        from repro.minic.types import INT

        a, b = Symbol("a", INT, "local"), Symbol("b", INT, "local")
        s1.inputs = [IOShape(a, 1, False, False)]
        s2.inputs = [IOShape(b, 1, False, False)]
        assert merge_groups([s1, s2]) == {}

    def test_merged_smaller_than_unmerged(self):
        from repro.analysis.arrays import IOShape
        from repro.minic.astnodes import Symbol
        from repro.minic.types import INT

        syms = [Symbol(n, INT, "local") for n in "abcd"]
        shapes = [IOShape(s, 1, False, False) for s in syms]
        members = []
        for i in range(8):
            seg = Segment(seg_id=i, kind="loop", func_name="f", region_root=None, control=None)
            seg.inputs = list(shapes)
            seg.outputs = [IOShape(Symbol(f"o{i}", INT, "local"), 1, False, False)]
            members.append(seg)
        merged = merged_size_bytes(members, capacity=1024)
        unmerged = unmerged_size_bytes(members, capacity=1024)
        assert merged < unmerged
        # 8 tables of (4 in + 1 out) vs 1 table of (4 in + 1 bitvec + 8 out)
        assert unmerged / merged == pytest.approx(40 / 13, rel=0.01)


class TestPipelineEndToEnd:
    SRC = """
    int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};
    static int quan(int val, int *table, int size) {
        int i;
        for (i = 0; i < size; i++)
            if (val < table[i])
                break;
        return (i);
    }
    int main(void) {
        int s = 0;
        while (__input_avail())
            s += quan(__input_int(), power2, 15);
        __output_int(s);
        return s;
    }
    """

    INPUTS = [5, 100, 3000, 5, 100, 3000, 12000, 5] * 40

    def _run(self, config=None):
        pipeline = ReusePipeline(self.SRC, config or PipelineConfig(min_executions=10))
        return pipeline.run(self.INPUTS)

    def test_counts_monotone(self):
        result = self._run()
        counts = result.counts
        assert counts["analyzed"] >= counts["profiled"] >= counts["transformed"]
        assert counts["transformed"] == 1

    def test_specialization_happened(self):
        result = self._run()
        assert result.specializations
        assert result.specializations[0].original == "quan"

    def test_transformed_program_equivalent_and_faster(self):
        result = self._run()
        machine_o = Machine("O0")
        machine_o.set_inputs(self.INPUTS)
        ro = compile_program(frontend(self.SRC), machine_o).run("main")
        machine_t = Machine("O0")
        machine_t.set_inputs(self.INPUTS)
        for seg_id, table in result.build_tables().items():
            machine_t.install_table(seg_id, table)
        rt = compile_program(result.program, machine_t).run("main")
        assert ro == rt
        assert machine_o.output_checksum == machine_t.output_checksum
        assert machine_t.cycles < machine_o.cycles

    def test_profile_statistics(self):
        result = self._run()
        seg = result.selected[0]
        assert seg.executions == len(self.INPUTS)
        assert seg.distinct_inputs == 4
        assert seg.reuse_rate == pytest.approx(1 - 4 / len(self.INPUTS))

    def test_cost_filter_ablation(self):
        relaxed = self._run(
            PipelineConfig(min_executions=10, enable_cost_filter=False)
        )
        strict = self._run()
        assert len(relaxed.profiled) >= len(strict.profiled)

    def test_capacity_override(self):
        result = self._run(
            PipelineConfig(min_executions=10, table_capacity_override=8)
        )
        assert all(spec.capacity == 8 for spec in result.table_specs)

    def test_stub_free_output(self):
        result = self._run()
        text = format_program(result.program)
        assert "__profile" not in text
        assert "__seg_enter" not in text
