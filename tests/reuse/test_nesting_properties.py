"""Property tests for nesting-graph selection.

The core §2.3 invariant: the selection never transforms two segments
where one (transitively) encloses the other — at most one table probe is
live per dynamic nest."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minic import frontend
from repro.reuse.nesting import NestingGraph
from repro.reuse.segments import ProgramAnalysis, enumerate_segments

# A five-level call chain with a loop at the bottom: plenty of nesting.
CHAIN_SRC = """
int leaf(int x) {
    int r = 0;
    int i;
    for (i = 0; i < 6; i++)
        r += (x + i) * 3;
    return r;
}
int l1(int x) { return leaf(x) + leaf(x + 1); }
int l2(int x) { return l1(x) + 1; }
int l3(int x) { return l2(x) + l2(x + 2); }
int main(void) {
    int acc = 0;
    while (__input_avail())
        acc += l3(__input_int());
    return acc;
}
"""


def _profitable_segments():
    program = frontend(CHAIN_SRC)
    analysis = ProgramAnalysis(program)
    segments = [s for s in enumerate_segments(analysis) if s.feasible]
    return segments, analysis


def _reaches(edges, src, dst):
    seen = {src}
    stack = [src]
    while stack:
        node = stack.pop()
        for succ in edges.get(node, ()):
            if succ == dst:
                return True
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return False


@settings(max_examples=40, deadline=None)
@given(
    gains=st.lists(
        st.floats(min_value=0.5, max_value=500.0, allow_nan=False),
        min_size=8,
        max_size=8,
    ),
    execs=st.lists(st.integers(min_value=1, max_value=1000), min_size=8, max_size=8),
)
def test_no_two_selected_segments_nest(gains, execs):
    segments, analysis = _profitable_segments()
    usable = segments[: len(gains)]
    for segment, gain, n in zip(usable, gains, execs):
        segment.gain = gain
        segment.executions = n
        segment.selected = False
    graph = NestingGraph(usable, analysis)
    selected = graph.select()
    assert selected, "positive gains must select something"
    ids = [s.seg_id for s in selected]
    for a in ids:
        for b in ids:
            if a != b:
                assert not _reaches(graph.edges, a, b), (a, b)


@settings(max_examples=25, deadline=None)
@given(
    gains=st.lists(
        st.floats(min_value=0.5, max_value=500.0, allow_nan=False),
        min_size=8,
        max_size=8,
    ),
)
def test_selection_deterministic(gains):
    segments1, analysis1 = _profitable_segments()
    segments2, analysis2 = _profitable_segments()
    for segs in (segments1, segments2):
        for segment, gain in zip(segs[: len(gains)], gains):
            segment.gain = gain
            segment.executions = 10
    sel1 = NestingGraph(segments1[: len(gains)], analysis1).select()
    sel2 = NestingGraph(segments2[: len(gains)], analysis2).select()
    # seg ids are assigned in enumeration order, so they are comparable
    assert sorted(s.seg_id for s in sel1) == sorted(s.seg_id for s in sel2)


def test_every_nest_is_covered_by_exactly_one_choice():
    """With uniform gains, leaves win (n multiplies); the leaf function
    segment covers every nest through the chain."""
    segments, analysis = _profitable_segments()
    for segment in segments:
        segment.gain = 10.0
        segment.executions = {"leaf": 400, "l1": 200, "l2": 100, "l3": 50}.get(
            segment.func_name, 100
        )
    selected = NestingGraph(segments, analysis).select()
    names = {s.func_name for s in selected}
    assert names == {"leaf"} or "leaf" in names
