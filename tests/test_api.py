"""Tests for the stable facade (:mod:`repro.api`).

The facade is a thin, validated veneer over the existing pipeline and
runtime — these tests pin three contracts: (1) facade runs are
bit-identical to the legacy wiring they replaced, (2) the input parser
accepts the full numeric-literal grammar and rejects garbage with
:class:`~repro.errors.ConfigError`, and (3) the legacy entry points
survive as shims that warn but still work.
"""

import pytest

import repro
from repro import api
from repro.errors import ConfigError
from repro.reuse import PipelineConfig, ReusePipeline
from repro.runtime import Machine, compile_program, run_source

# The heavier kernel from the adaptive tests: enough work per call that
# the reuse transformation is profitable on a high-locality stream.
PROGRAM = """
int tab[8] = {5, 3, 8, 1, 9, 2, 7, 4};
static int kernel(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 10; i++)
        r += tab[i & 7] * ((v + i) & 63) + v % (i + 2);
    return r;
}
int main(void) {
    int acc = 0;
    while (__input_avail())
        acc += kernel(__input_int());
    __output_int(acc);
    return acc;
}
"""

INPUTS = [3, 9, 3, 17, 9, 3] * 40


class TestInputParser:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("42", 42),
            ("-7", -7),
            ("  3 ", 3),
            ("2.5", 2.5),
            ("-0.125", -0.125),
            ("1e5", 100000.0),
            ("-1e-3", -0.001),
            ("+2E2", 200.0),
        ],
    )
    def test_accepts_numeric_literals(self, token, expected):
        value = api.parse_input_literal(token)
        assert value == expected
        assert type(value) is type(expected)

    @pytest.mark.parametrize("token", ["", "  ", "abc", "1..2", "0x10", "nan", "inf", "-inf"])
    def test_rejects_garbage(self, token):
        with pytest.raises(ConfigError):
            api.parse_input_literal(token)

    def test_stream_mixes_commas_and_whitespace(self):
        assert api.parse_input_stream("1, 2\n3\t4,5") == [1, 2, 3, 4, 5]
        assert api.parse_input_stream("") == []

    def test_exported_from_package_root(self):
        assert repro.parse_input_literal is api.parse_input_literal
        assert repro.parse_input_stream is api.parse_input_stream


class TestValidation:
    def test_unknown_opt_level(self):
        with pytest.raises(ConfigError, match="opt"):
            repro.CompileOptions(opt="O2")

    def test_config_type_checked(self):
        with pytest.raises(ConfigError, match="PipelineConfig"):
            repro.CompileOptions(config={"min_executions": 8})

    def test_session_validates_opt(self):
        with pytest.raises(ConfigError):
            api.Session(repro.CompileOptions(opt="fast"))

    def test_governor_policy_exported_and_validated(self):
        with pytest.raises(ConfigError):
            repro.GovernorPolicy(window=0)

    def test_pipeline_config_is_keyword_only(self):
        with pytest.raises(TypeError):
            PipelineConfig(8)

    @pytest.mark.parametrize(
        "kw",
        [
            {"opt_level": "O2"},
            {"load_factor": 0.0},
            {"load_factor": 1.5},
            {"min_executions": -1},
            {"table_capacity_override": 0},
            {"memory_budget_bytes": -1},
            {"entry": ""},
            {"governor": "fast"},
        ],
    )
    def test_pipeline_config_rejects_bad_knobs(self, kw):
        with pytest.raises(ConfigError):
            PipelineConfig(**kw)


class TestFacadeVsLegacy:
    def test_plain_run_matches_legacy_run_source(self):
        program = repro.compile(PROGRAM, repro.CompileOptions(reuse=False))
        facade = program.run(INPUTS)
        with pytest.warns(DeprecationWarning, match=r"repro\."):
            value, metrics = run_source(PROGRAM, inputs=INPUTS)
        assert facade.value == value
        assert facade.metrics == metrics

    def test_reuse_run_matches_legacy_pipeline_wiring(self):
        config = PipelineConfig(min_executions=16)
        program = repro.compile(PROGRAM, repro.CompileOptions(config=config))
        facade = program.run(INPUTS)

        result = ReusePipeline(PROGRAM, config).run(list(INPUTS))
        machine = Machine("O0")
        machine.set_inputs(list(INPUTS))
        for seg_id, table in result.build_tables().items():
            machine.install_table(seg_id, table)
        value = compile_program(result.program, machine).run("main")
        assert facade.value == value
        assert facade.metrics == machine.metrics()

    def test_transformed_output_matches_plain(self):
        plain = repro.compile(PROGRAM, repro.CompileOptions(reuse=False)).run(INPUTS)
        reused = repro.compile(PROGRAM).run(INPUTS)
        assert reused.output_checksum == plain.output_checksum
        assert reused.cycles < plain.cycles  # high-locality stream profits
        assert reused.speedup_vs(plain) > 1.0


class TestCompiledProgram:
    def test_profile_is_idempotent(self):
        program = repro.compile(
            PROGRAM, repro.CompileOptions(config=PipelineConfig(min_executions=16))
        )
        first = program.profile(INPUTS)
        second = program.profile([1, 2, 3])  # ignored: already profiled
        assert first is second

    def test_transformed_source_roundtrip(self):
        program = repro.compile(
            PROGRAM, repro.CompileOptions(config=PipelineConfig(min_executions=16))
        )
        with pytest.raises(ConfigError):
            program.transformed_source()  # not profiled yet
        program.profile(INPUTS)
        text = program.transformed_source()
        assert "main" in text
        assert text != PROGRAM

    def test_governed_run_reports_telemetry(self):
        program = repro.compile(
            PROGRAM,
            repro.CompileOptions(config=PipelineConfig(min_executions=16), governed=True),
        )
        result = program.run(INPUTS)
        assert result.governor
        for snap in result.governor.values():
            assert snap["state"] == "active"  # stationary inputs
        assert result.governor_transitions() == {}

    def test_run_result_properties(self):
        result = repro.compile(PROGRAM, repro.CompileOptions(reuse=False)).run(INPUTS)
        assert result.cycles == result.metrics.cycles > 0
        assert result.seconds == pytest.approx(result.metrics.seconds)
        assert result.energy_joules > 0
        assert result.table_stats == {}


class TestSession:
    def test_compile_is_memoized(self):
        with api.Session() as session:
            a = session.compile(PROGRAM)
            b = session.compile(PROGRAM)
        assert a is b

    def test_tables_stay_warm_across_runs(self):
        options = repro.CompileOptions(config=PipelineConfig(min_executions=16))
        with api.Session(options) as session:
            program = session.compile(PROGRAM)
            program.profile(INPUTS)
            first = program.run(INPUTS)
            second = program.run(INPUTS)
        hits = lambda r: sum(s.hits for s in r.table_stats.values())
        # the second run probes tables the first already filled
        assert hits(second) > hits(first)
        assert second.output_checksum == first.output_checksum

    def test_one_shot_runs_are_cold(self):
        program = repro.compile(
            PROGRAM, repro.CompileOptions(config=PipelineConfig(min_executions=16))
        )
        program.profile(INPUTS)
        hits = lambda r: sum(s.hits for s in r.table_stats.values())
        assert hits(program.run(INPUTS)) == hits(program.run(INPUTS))


class TestShims:
    def test_run_source_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match=r"repro\.runtime\.run_source"):
            value, metrics = run_source(PROGRAM, inputs=[1, 2, 3])
        assert metrics.cycles > 0

    def test_build_tables_adaptive_kwarg_retired(self):
        result = ReusePipeline(PROGRAM, PipelineConfig(min_executions=16)).run(
            list(INPUTS)
        )
        with pytest.raises(TypeError):
            result.build_tables(adaptive=True)
        tables = result.build_tables(governed=True)
        assert tables and all(hasattr(t, "governor") for t in tables.values())


class TestCompileOptions:
    def test_frozen_and_replace(self):
        options = repro.CompileOptions(opt="O3", governed=True)
        with pytest.raises(Exception):  # FrozenInstanceError
            options.opt = "O0"
        tweaked = options.replace(opt="O0")
        assert tweaked.opt == "O0" and tweaked.governed is True
        assert options.opt == "O3"

    def test_replace_revalidates(self):
        with pytest.raises(ConfigError):
            repro.CompileOptions().replace(backend="gpu")

    @pytest.mark.parametrize(
        "kw",
        [
            {"opt": "O2"},
            {"profile": "statements"},
            {"backend": "gpu"},
            {"config": {"min_executions": 8}},
        ],
    )
    def test_rejects_bad_options(self, kw):
        with pytest.raises(ConfigError):
            repro.CompileOptions(**kw)

    def test_profile_inputs_coerced_to_tuple(self):
        options = repro.CompileOptions(profile_inputs=[1, 2, 3])
        assert options.profile_inputs == (1, 2, 3)

    def test_content_key_tracks_semantics_not_observers(self):
        base = repro.CompileOptions()
        assert base.content_key(PROGRAM) == repro.CompileOptions().content_key(PROGRAM)
        # observers (trace/profile) don't change what is compiled
        assert (
            base.replace(trace=True, profile="lines").content_key(PROGRAM)
            == base.content_key(PROGRAM)
        )
        # semantic knobs do
        assert base.replace(opt="O3").content_key(PROGRAM) != base.content_key(PROGRAM)
        assert (
            base.replace(config=PipelineConfig(min_executions=8)).content_key(PROGRAM)
            != base.content_key(PROGRAM)
        )
        assert base.content_key(PROGRAM) != base.content_key(PROGRAM + " ")

    def test_run_options_validates_entry(self):
        with pytest.raises(ConfigError):
            repro.RunOptions(entry="")
        assert repro.RunOptions(entry="main").entry == "main"

    def test_exported_from_package_root(self):
        assert repro.CompileOptions is api.CompileOptions
        assert repro.RunOptions is api.RunOptions


class TestLegacyKeywordShims:
    def test_compile_legacy_kwargs_warn_and_work(self):
        with pytest.warns(DeprecationWarning, match=r"repro\.compile\(reuse=\.\.\.\)"):
            program = repro.compile(PROGRAM, reuse=False)
        assert program.options == repro.CompileOptions(reuse=False)
        assert program.run(INPUTS).value is not None

    def test_compile_rejects_options_plus_legacy(self):
        with pytest.raises(ConfigError, match="not both"):
            repro.compile(PROGRAM, repro.CompileOptions(), reuse=False)

    def test_compile_rejects_unknown_keyword(self):
        with pytest.raises(ConfigError, match="unexpected"):
            repro.compile(PROGRAM, optimize="O3")

    def test_run_entry_kwarg_warns_and_works(self):
        program = repro.compile(PROGRAM, repro.CompileOptions(reuse=False))
        with pytest.warns(DeprecationWarning, match=r"repro\.CompiledProgram\.run"):
            legacy = program.run(INPUTS, entry="main")
        fresh = program.run(INPUTS, repro.RunOptions(entry="main"))
        assert legacy.output_checksum == fresh.output_checksum

    def test_session_legacy_kwargs_warn_and_work(self):
        with pytest.warns(DeprecationWarning, match=r"repro\.Session\(opt=\.\.\.\)"):
            session = api.Session(opt="O3")
        assert session.options.opt == "O3"
        session.close()

    def test_session_compile_legacy_kwargs_warn(self):
        with api.Session() as session:
            with pytest.warns(DeprecationWarning, match=r"Session\.compile"):
                program = session.compile(PROGRAM, reuse=False)
            assert program.reuse is False

    def test_session_rejects_compile_only_keywords(self):
        with pytest.raises(ConfigError, match="unexpected"):
            api.Session(profile=True)


class TestSessionLifecycle:
    def test_close_is_idempotent(self):
        session = api.Session(metrics=True)
        session.serve_metrics()
        session.close()
        session.close()
        assert session.closed

    def test_closed_session_rejects_work(self):
        session = api.Session()
        session.close()
        with pytest.raises(ConfigError, match="closed Session"):
            session.compile(PROGRAM)
        with pytest.raises(ConfigError, match="closed Session"):
            session.run(PROGRAM, INPUTS)
        with pytest.raises(ConfigError, match="closed Session"):
            session.serve_metrics()

    def test_serve_metrics_binds_ephemeral_port_and_survives_double_close(self):
        import urllib.request

        session = api.Session(metrics=True)
        server = session.serve_metrics(port=0)
        assert server.port != 0
        assert session.serve_metrics() is server  # idempotent start
        body = urllib.request.urlopen(server.url, timeout=5).read().decode()
        assert body.endswith("# EOF\n")
        session.close()
        server.close()  # second close of the underlying server is a no-op

    def test_two_sessions_never_collide_on_ports(self):
        a, b = api.Session(metrics=True), api.Session(metrics=True)
        try:
            assert a.serve_metrics().port != b.serve_metrics().port
        finally:
            a.close()
            b.close()

    def test_evict_drops_memoized_program(self):
        with api.Session() as session:
            first = session.compile(PROGRAM)
            assert session.evict(PROGRAM) is True
            assert session.evict(PROGRAM) is False
            assert session.compile(PROGRAM) is not first

    def test_memo_distinguishes_options(self):
        with api.Session() as session:
            default = session.compile(PROGRAM)
            governed = session.compile(
                PROGRAM, session.options.replace(governed=True)
            )
            assert default is not governed
            assert session.compile(PROGRAM) is default

    def test_run_program_publishes_session_metrics(self):
        with api.Session(metrics=True) as session:
            program = session.compile(PROGRAM)
            session.run_program(program, INPUTS)
            snapshot = session.registry.snapshot()
        runs = snapshot["families"]["repro_session_runs"]["samples"][0]["value"]
        assert runs == 1
