"""Tests for the stable facade (:mod:`repro.api`).

The facade is a thin, validated veneer over the existing pipeline and
runtime — these tests pin three contracts: (1) facade runs are
bit-identical to the legacy wiring they replaced, (2) the input parser
accepts the full numeric-literal grammar and rejects garbage with
:class:`~repro.errors.ConfigError`, and (3) the legacy entry points
survive as shims that warn but still work.
"""

import pytest

import repro
from repro import api
from repro.errors import ConfigError
from repro.reuse import PipelineConfig, ReusePipeline
from repro.runtime import Machine, compile_program, run_source

# The heavier kernel from the adaptive tests: enough work per call that
# the reuse transformation is profitable on a high-locality stream.
PROGRAM = """
int tab[8] = {5, 3, 8, 1, 9, 2, 7, 4};
static int kernel(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 10; i++)
        r += tab[i & 7] * ((v + i) & 63) + v % (i + 2);
    return r;
}
int main(void) {
    int acc = 0;
    while (__input_avail())
        acc += kernel(__input_int());
    __output_int(acc);
    return acc;
}
"""

INPUTS = [3, 9, 3, 17, 9, 3] * 40


class TestInputParser:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("42", 42),
            ("-7", -7),
            ("  3 ", 3),
            ("2.5", 2.5),
            ("-0.125", -0.125),
            ("1e5", 100000.0),
            ("-1e-3", -0.001),
            ("+2E2", 200.0),
        ],
    )
    def test_accepts_numeric_literals(self, token, expected):
        value = api.parse_input_literal(token)
        assert value == expected
        assert type(value) is type(expected)

    @pytest.mark.parametrize("token", ["", "  ", "abc", "1..2", "0x10", "nan", "inf", "-inf"])
    def test_rejects_garbage(self, token):
        with pytest.raises(ConfigError):
            api.parse_input_literal(token)

    def test_stream_mixes_commas_and_whitespace(self):
        assert api.parse_input_stream("1, 2\n3\t4,5") == [1, 2, 3, 4, 5]
        assert api.parse_input_stream("") == []

    def test_exported_from_package_root(self):
        assert repro.parse_input_literal is api.parse_input_literal
        assert repro.parse_input_stream is api.parse_input_stream


class TestValidation:
    def test_unknown_opt_level(self):
        with pytest.raises(ConfigError, match="opt"):
            repro.compile(PROGRAM, opt="O2")

    def test_config_type_checked(self):
        with pytest.raises(ConfigError, match="PipelineConfig"):
            repro.compile(PROGRAM, config={"min_executions": 8})

    def test_session_validates_opt(self):
        with pytest.raises(ConfigError):
            api.Session(opt="fast")

    def test_governor_policy_exported_and_validated(self):
        with pytest.raises(ConfigError):
            repro.GovernorPolicy(window=0)

    def test_pipeline_config_is_keyword_only(self):
        with pytest.raises(TypeError):
            PipelineConfig(8)

    @pytest.mark.parametrize(
        "kw",
        [
            {"opt_level": "O2"},
            {"load_factor": 0.0},
            {"load_factor": 1.5},
            {"min_executions": -1},
            {"table_capacity_override": 0},
            {"memory_budget_bytes": -1},
            {"entry": ""},
            {"governor": "fast"},
        ],
    )
    def test_pipeline_config_rejects_bad_knobs(self, kw):
        with pytest.raises(ConfigError):
            PipelineConfig(**kw)


class TestFacadeVsLegacy:
    def test_plain_run_matches_legacy_run_source(self):
        program = repro.compile(PROGRAM, reuse=False)
        facade = program.run(INPUTS)
        with pytest.warns(DeprecationWarning, match=r"repro\."):
            value, metrics = run_source(PROGRAM, inputs=INPUTS)
        assert facade.value == value
        assert facade.metrics == metrics

    def test_reuse_run_matches_legacy_pipeline_wiring(self):
        config = PipelineConfig(min_executions=16)
        program = repro.compile(PROGRAM, config=config)
        facade = program.run(INPUTS)

        result = ReusePipeline(PROGRAM, config).run(list(INPUTS))
        machine = Machine("O0")
        machine.set_inputs(list(INPUTS))
        for seg_id, table in result.build_tables().items():
            machine.install_table(seg_id, table)
        value = compile_program(result.program, machine).run("main")
        assert facade.value == value
        assert facade.metrics == machine.metrics()

    def test_transformed_output_matches_plain(self):
        plain = repro.compile(PROGRAM, reuse=False).run(INPUTS)
        reused = repro.compile(PROGRAM).run(INPUTS)
        assert reused.output_checksum == plain.output_checksum
        assert reused.cycles < plain.cycles  # high-locality stream profits
        assert reused.speedup_vs(plain) > 1.0


class TestCompiledProgram:
    def test_profile_is_idempotent(self):
        program = repro.compile(PROGRAM, config=PipelineConfig(min_executions=16))
        first = program.profile(INPUTS)
        second = program.profile([1, 2, 3])  # ignored: already profiled
        assert first is second

    def test_transformed_source_roundtrip(self):
        program = repro.compile(PROGRAM, config=PipelineConfig(min_executions=16))
        with pytest.raises(ConfigError):
            program.transformed_source()  # not profiled yet
        program.profile(INPUTS)
        text = program.transformed_source()
        assert "main" in text
        assert text != PROGRAM

    def test_governed_run_reports_telemetry(self):
        program = repro.compile(
            PROGRAM, config=PipelineConfig(min_executions=16), governed=True
        )
        result = program.run(INPUTS)
        assert result.governor
        for snap in result.governor.values():
            assert snap["state"] == "active"  # stationary inputs
        assert result.governor_transitions() == {}

    def test_run_result_properties(self):
        result = repro.compile(PROGRAM, reuse=False).run(INPUTS)
        assert result.cycles == result.metrics.cycles > 0
        assert result.seconds == pytest.approx(result.metrics.seconds)
        assert result.energy_joules > 0
        assert result.table_stats == {}


class TestSession:
    def test_compile_is_memoized(self):
        with api.Session() as session:
            a = session.compile(PROGRAM)
            b = session.compile(PROGRAM)
        assert a is b

    def test_tables_stay_warm_across_runs(self):
        with api.Session(config=PipelineConfig(min_executions=16)) as session:
            program = session.compile(PROGRAM)
            program.profile(INPUTS)
            first = program.run(INPUTS)
            second = program.run(INPUTS)
        hits = lambda r: sum(s.hits for s in r.table_stats.values())
        # the second run probes tables the first already filled
        assert hits(second) > hits(first)
        assert second.output_checksum == first.output_checksum

    def test_one_shot_runs_are_cold(self):
        program = repro.compile(PROGRAM, config=PipelineConfig(min_executions=16))
        program.profile(INPUTS)
        hits = lambda r: sum(s.hits for s in r.table_stats.values())
        assert hits(program.run(INPUTS)) == hits(program.run(INPUTS))


class TestShims:
    def test_run_source_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match=r"repro\.runtime\.run_source"):
            value, metrics = run_source(PROGRAM, inputs=[1, 2, 3])
        assert metrics.cycles > 0

    def test_build_tables_adaptive_kwarg_retired(self):
        result = ReusePipeline(PROGRAM, PipelineConfig(min_executions=16)).run(
            list(INPUTS)
        )
        with pytest.raises(TypeError):
            result.build_tables(adaptive=True)
        tables = result.build_tables(governed=True)
        assert tables and all(hasattr(t, "governor") for t in tables.values())
