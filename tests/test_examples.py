"""Smoke tests for the example scripts.

Each example is importable and its ``main()`` runs to completion (with
output captured).  The two heavier examples run on reduced data via the
same entry points they expose.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "g721_specialization",
        "gnugo_merged_tables",
        "cost_model_explorer",
        "subsegment_extension",
    ],
)
def test_example_importable(name):
    module = _load(name)
    assert callable(module.main)


def test_quickstart_runs(capsys):
    module = _load("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "__reuse_probe" in out


def test_subsegment_extension_runs(capsys):
    module = _load("subsegment_extension")
    module.main()
    out = capsys.readouterr().out
    assert "sub-block" in out
    assert "speedup" in out
