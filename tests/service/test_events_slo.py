"""The structured event stream (/v1/events) and per-tenant SLO accounting.

The event-log half pins the long-poll cursor protocol end to end: the
server's lifecycle and request events land in the ring, trace ids are
stamped on records emitted inside traced requests, cursors resume where
they left, and ``log_capacity=0`` disables the endpoint with a 404.

The SLO half pins the math (exact rolling p99, error-budget spend rules)
at the :class:`~repro.service.slo.SloTracker` unit level, then checks
the service wiring: ``/v1/stats`` carries the snapshot and ``/metrics``
exposes the gauges the dashboard and alerting would scrape.
"""

import asyncio

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceThread,
    SloTracker,
    TenantPolicy,
)
from repro.workloads import get_workload

SOURCE = get_workload("G721_encode").source


def _inputs(n=32, offset=0):
    return get_workload("G721_encode").default_inputs()[offset : offset + n]


class TestEventsEndpoint:
    def test_stream_carries_lifecycle_and_requests(self):
        with ServiceThread(ServiceConfig()) as thread:

            async def go():
                async with ServiceClient(
                    "127.0.0.1", thread.port, trace=True
                ) as client:
                    reply = await client.run("ev", source=SOURCE, inputs=_inputs())
                    assert reply.status == 200
                    stream = await client.events(since=0, level="info")
                    return reply.trace_id, stream.payload

            trace_id, payload = asyncio.run(go())
        names = [r["name"] for r in payload["records"]]
        assert "service.start" in names
        assert "service.request" in names
        request_record = next(
            r for r in payload["records"] if r["name"] == "service.request"
        )
        # loop-thread emits stamp the request's trace context explicitly
        assert request_record["trace_id"] == trace_id
        assert request_record["args"]["endpoint"] == "/v1/run"
        assert request_record["args"]["status"] == 200
        assert payload["dropped"] == 0

    def test_cursor_resumes_and_level_filters(self):
        with ServiceThread(ServiceConfig()) as thread:

            async def go():
                async with ServiceClient("127.0.0.1", thread.port) as client:
                    first = (await client.events(since=0)).payload
                    # no new records: the cursor returns empty, not a replay
                    again = (await client.events(since=first["next_seq"])).payload
                    await client.run("ev2", source=SOURCE, inputs=_inputs())
                    fresh = (await client.events(since=first["next_seq"])).payload
                    errors_only = (await client.events(level="error")).payload
                    return first, again, fresh, errors_only

            first, again, fresh, errors_only = asyncio.run(go())
        assert first["records"]
        assert again["records"] == []
        assert all(r["seq"] > first["next_seq"] for r in fresh["records"])
        assert [r["name"] for r in errors_only["records"]] == []

    def test_long_poll_returns_on_new_record(self):
        with ServiceThread(ServiceConfig()) as thread:

            async def go():
                async with ServiceClient("127.0.0.1", thread.port) as client:
                    drained = (await client.events(since=0)).payload
                    waiter = asyncio.create_task(
                        client.events(since=drained["next_seq"], wait=10.0)
                    )
                    await asyncio.sleep(0.1)
                    assert not waiter.done()
                    async with ServiceClient("127.0.0.1", thread.port) as poker:
                        await poker.run("ev3", source=SOURCE, inputs=_inputs())
                    reply = await asyncio.wait_for(waiter, timeout=10.0)
                    return reply.payload

            payload = asyncio.run(go())
        assert payload["records"]

    def test_disabled_log_is_404(self):
        with ServiceThread(ServiceConfig(log_capacity=0)) as thread:

            async def go():
                async with ServiceClient("127.0.0.1", thread.port) as client:
                    return await client.events()

            reply = asyncio.run(go())
        assert reply.status == 404
        assert "disabled" in reply.payload["error"]

    def test_bad_query_is_400(self):
        with ServiceThread(ServiceConfig()) as thread:

            async def go():
                async with ServiceClient("127.0.0.1", thread.port) as client:
                    return await client.request("GET", "/v1/events?since=banana")

            assert asyncio.run(go()).status == 400


class TestSloTracker:
    def test_p99_exact_interpolation(self):
        tracker = SloTracker("t", TenantPolicy(slo_p99_ms=10_000.0))
        for ms in range(1, 101):  # 0.001s .. 0.100s
            tracker.record(ms / 1000.0, 200)
        snap = tracker.snapshot()
        # exact quantile over 100 samples: pos 98.01 → 99ms..100ms
        assert snap["p99_ms"] == pytest.approx(99.01, abs=0.01)
        assert snap["violations"] == 0
        assert snap["error_budget_remaining"] == 1.0

    def test_slow_and_5xx_spend_budget_4xx_does_not(self):
        policy = TenantPolicy(slo_p99_ms=100.0, slo_error_budget=0.5, slo_window=8)
        tracker = SloTracker("t", policy)
        assert tracker.record(0.01, 200) is False
        assert tracker.record(0.01, 404) is False  # client error: no spend
        assert tracker.record(0.01, 504) is True   # server failure
        assert tracker.record(0.5, 200) is True    # slower than target
        snap = tracker.snapshot()
        assert snap["violations"] == 2
        # 2 bad of 4 seen = 0.5 bad fraction = the whole 0.5 budget
        assert snap["error_budget_remaining"] == 0.0

    def test_window_rolls_old_badness_out(self):
        policy = TenantPolicy(slo_p99_ms=100.0, slo_error_budget=0.1, slo_window=8)
        tracker = SloTracker("t", policy)
        tracker.record(0.01, 500)
        for _ in range(8):
            tracker.record(0.01, 200)
        snap = tracker.snapshot()
        assert snap["error_budget_remaining"] == 1.0
        assert snap["violations"] == 1  # the counter is monotone

    def test_gauges_published(self):
        registry = MetricsRegistry()
        policy = TenantPolicy(slo_p99_ms=50.0, slo_error_budget=0.25, slo_window=8)
        tracker = SloTracker("gold", policy, registry)
        tracker.record(0.2, 200)  # slow: spends budget
        text = registry.render_openmetrics()
        assert 'repro_service_slo_target_seconds{tenant="gold"} 0.05' in text
        assert 'repro_service_slo_p99_seconds{tenant="gold"} 0.2' in text
        assert 'repro_service_slo_error_budget_remaining{tenant="gold"} 0.0' in text
        assert 'repro_service_slo_violations_total{tenant="gold"} 1' in text


class TestSloService:
    def test_stats_and_metrics_carry_slo(self):
        config = ServiceConfig(
            tenants={
                "tight": TenantPolicy(slo_p99_ms=0.001, slo_error_budget=0.5)
            },
        )
        with ServiceThread(config) as thread:

            async def go():
                async with ServiceClient("127.0.0.1", thread.port) as client:
                    # any real run takes longer than a 1 µs target
                    reply = await client.run("tight", source=SOURCE, inputs=_inputs())
                    assert reply.status == 200
                    stats = (await client.stats("tight")).payload
                    metrics = (await client.metrics()).payload
                    stream = (await client.events(level="warning")).payload
                    return stats, metrics, stream

            stats, metrics, stream = asyncio.run(go())
        slo = stats["slo"]
        assert slo["tenant"] == "tight"
        assert slo["target_p99_ms"] == 0.001
        assert slo["violations"] >= 1
        assert slo["error_budget_remaining"] < 1.0
        assert slo["p99_ms"] > 0.001
        assert 'repro_service_slo_p99_seconds{tenant="tight"}' in metrics
        assert 'repro_service_slo_violations_total{tenant="tight"}' in metrics
        # the violation also hit the event stream at warning level
        assert any(r["name"] == "slo.violation" for r in stream["records"])

    def test_within_target_spends_nothing(self):
        config = ServiceConfig(
            tenants={"lax": TenantPolicy(slo_p99_ms=60_000.0)},
        )
        with ServiceThread(config) as thread:

            async def go():
                async with ServiceClient("127.0.0.1", thread.port) as client:
                    await client.run("lax", source=SOURCE, inputs=_inputs())
                    return (await client.stats("lax")).payload

            stats = asyncio.run(go())
        slo = stats["slo"]
        assert slo["violations"] == 0
        assert slo["error_budget_remaining"] == 1.0
