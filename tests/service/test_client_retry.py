"""The client's stale keep-alive retry contract.

A server may close an idle kept-alive connection between a client's
requests; the failure only surfaces when the next request hits the dead
socket.  :class:`repro.service.ServiceClient` retries exactly that case
— once, on a fresh connection — and surfaces every other failure,
because a request that failed on a *fresh* connection may have reached
the server (replaying it is the caller's idempotency decision).

The fixture is a hand-rolled asyncio server whose connections the test
kills between requests, so the retry path is exercised deterministically
rather than by racing a real idle-timeout.
"""

import asyncio
import json

import pytest

from repro.service import ServiceClient


class FlakyServer:
    """Answers JSON over HTTP/1.1 keep-alive; connections can be killed
    server-side on demand (abort() between requests = stale keep-alive),
    or configured to drop each connection after N answered requests."""

    def __init__(self, close_after: int = 0):
        self.close_after = close_after  # 0 = never; N = drop conn after N replies
        self.requests_served = 0
        self.connections = 0
        self._writers = []
        self._server = None

    async def __aenter__(self):
        self._server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc):
        self._server.close()
        await self._server.wait_closed()
        for writer in self._writers:
            writer.close()

    async def _handle(self, reader, writer):
        self.connections += 1
        self._writers.append(writer)
        served_here = 0
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                length = 0
                for line in head.decode("latin-1").split("\r\n"):
                    if line.lower().startswith("content-length:"):
                        length = int(line.split(":", 1)[1])
                if length:
                    await reader.readexactly(length)
                body = json.dumps({"n": self.requests_served}).encode()
                writer.write(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: %d\r\n"
                    b"Connection: keep-alive\r\n\r\n%s" % (len(body), body)
                )
                await writer.drain()
                self.requests_served += 1
                served_here += 1
                if self.close_after and served_here >= self.close_after:
                    self.abort_writer(writer)
                    return
        finally:
            writer.close()

    def abort_writer(self, writer):
        """Kill one connection abruptly (RST, not FIN-with-close-header)."""
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # SO_LINGER 0 makes close() send RST so the client's next
            # write/read fails instead of seeing a clean EOF
            import socket as socketlib

            sock.setsockopt(
                socketlib.SOL_SOCKET,
                socketlib.SO_LINGER,
                b"\x01\x00\x00\x00\x00\x00\x00\x00",
            )
        writer.close()

    def kill_connections(self):
        for writer in self._writers:
            self.abort_writer(writer)
        self._writers.clear()


class TestStaleKeepAliveRetry:
    def test_retry_once_on_stale_connection(self):
        async def go():
            async with FlakyServer() as server:
                client = ServiceClient("127.0.0.1", server.port)
                try:
                    first = await client.request("GET", "/a")
                    assert first.status == 200
                    # the server kills the socket between requests — the
                    # classic stale keep-alive shape
                    server.kill_connections()
                    await asyncio.sleep(0.05)
                    second = await client.request("GET", "/b")
                    assert second.status == 200
                finally:
                    await client.close()
                return client.retries, server.connections

        retries, connections = asyncio.run(go())
        assert retries == 1
        assert connections == 2  # the retry opened a fresh connection

    def test_fresh_connection_failure_is_surfaced(self):
        async def go():
            async with FlakyServer() as server:
                port = server.port
            # server gone: the very first exchange fails on a fresh
            # connection and must NOT be retried
            client = ServiceClient("127.0.0.1", port)
            try:
                with pytest.raises((ConnectionError, OSError)):
                    await client.request("GET", "/a")
            finally:
                await client.close()
            return client.retries

        assert asyncio.run(go()) == 0

    def test_second_stale_failure_in_a_row_propagates(self):
        # close_after=1: every connection dies after one reply, so each
        # request after the first rides a stale socket, retries once on a
        # fresh connection, and succeeds — but never retries twice
        async def go():
            async with FlakyServer(close_after=1) as server:
                client = ServiceClient("127.0.0.1", server.port)
                try:
                    for i in range(4):
                        reply = await client.request("GET", f"/{i}")
                        assert reply.status == 200
                        await asyncio.sleep(0.02)
                finally:
                    await client.close()
                return client.retries, server.connections

        retries, connections = asyncio.run(go())
        # requests 2..4 each found their kept-alive socket dead
        assert retries == 3
        assert connections == 4
