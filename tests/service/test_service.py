"""Tests for the multi-tenant compile-and-run service.

Four contracts:

* **Differential** — outputs served over HTTP are bit-identical to
  direct :class:`repro.api.Session` runs of the same chunks, governed
  or static, closures or VM, however warm the shared tables are.
* **Isolation** — tenants never see each other's program caches; LRU
  eviction closes the evicted program's session and frees its tables.
* **Robustness** — backpressure (429 + Retry-After), request timeouts
  (504), graceful drain (503 for new work, in-flight completes),
  malformed requests (400), unknown routes/programs (404/405).
* **Observability** — request counters/histograms and tenant program
  gauges land in the shared registry and render as OpenMetrics.
"""

import asyncio
import json
import time

import pytest

import repro
from repro import api
from repro.errors import ConfigError
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceThread,
    TenantPolicy,
    compile_options_from_wire,
    governor_from_wire,
    pipeline_config_from_wire,
)
from repro.runtime.governor import GovernorPolicy
from repro.workloads import get_workload

# the api-test kernel: transforms profitably on a high-locality stream
KERNEL = """
int tab[8] = {5, 3, 8, 1, 9, 2, 7, 4};
static int kernel(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 10; i++)
        r += tab[i & 7] * ((v + i) & 63) + v % (i + 2);
    return r;
}
int main(void) {
    int acc = 0;
    while (__input_avail())
        acc += kernel(__input_int());
    __output_int(acc);
    return acc;
}
"""

KERNEL_INPUTS = [3, 9, 3, 17, 9, 3] * 40

# a busy loop taking visible wall-clock time per run: the timeout and
# backpressure tests need one request to still be in flight when the
# next arrives
SLOW = """
int main(void) {
    int acc = 0;
    int i;
    int j;
    for (i = 0; i < 900; i++)
        for (j = 0; j < 900; j++)
            acc += (i * 7 + j) & 1023;
    __output_int(acc);
    return acc;
}
"""


def _request(port, method, path, payload=None):
    async def go():
        async with ServiceClient("127.0.0.1", port) as client:
            return await client.request(method, path, payload)

    return asyncio.run(go())


@pytest.fixture(scope="module")
def server():
    config = ServiceConfig(
        request_timeout=60.0,
        tenants={"governed-tenant": TenantPolicy(governor=GovernorPolicy(window=128))},
    )
    with ServiceThread(config) as thread:
        yield thread


class TestEndpoints:
    def test_healthz(self, server):
        reply = _request(server.port, "GET", "/healthz")
        assert reply.status == 200
        assert reply.payload["status"] == "ok"

    def test_compile_is_content_addressed_and_cached(self, server):
        first = _request(
            server.port, "POST", "/v1/compile",
            {"tenant": "alpha", "source": KERNEL},
        )
        again = _request(
            server.port, "POST", "/v1/compile",
            {"tenant": "alpha", "source": KERNEL},
        )
        assert first.status == again.status == 200
        assert first.payload["program"] == again.payload["program"]
        assert first.payload["cached"] is False or again.payload["cached"] is True
        # semantic knobs change the id; a trailing space changes the id
        governed = _request(
            server.port, "POST", "/v1/compile",
            {"tenant": "alpha", "source": KERNEL, "options": {"governed": True}},
        )
        assert governed.payload["program"] != first.payload["program"]

    def test_run_by_program_id_shares_warmed_tables(self, server):
        compiled = _request(
            server.port, "POST", "/v1/compile",
            {"tenant": "warm", "source": KERNEL},
        )
        key = compiled.payload["program"]
        first = _request(
            server.port, "POST", "/v1/run",
            {"tenant": "warm", "program": key, "inputs": KERNEL_INPUTS},
        )
        second = _request(
            server.port, "POST", "/v1/run",
            {"tenant": "warm", "program": key, "inputs": KERNEL_INPUTS},
        )
        assert first.status == second.status == 200
        # outputs identical; hit counts strictly grow across requests
        # because both runs share one session's tables
        assert second.payload["value"] == first.payload["value"]
        assert second.payload["output_checksum"] == first.payload["output_checksum"]
        assert second.payload["tables"]["hits"] > first.payload["tables"]["hits"]

    def test_inline_source_run(self, server):
        reply = _request(
            server.port, "POST", "/v1/run",
            {"tenant": "inline", "source": KERNEL, "inputs": KERNEL_INPUTS},
        )
        assert reply.status == 200
        assert reply.payload["cached"] is False

    def test_stats_endpoint(self, server):
        _request(
            server.port, "POST", "/v1/run",
            {"tenant": "stats-tenant", "source": KERNEL, "inputs": KERNEL_INPUTS},
        )
        everyone = _request(server.port, "GET", "/v1/stats")
        assert everyone.status == 200
        names = {t["tenant"] for t in everyone.payload["tenants"]}
        assert "stats-tenant" in names
        one = _request(server.port, "GET", "/v1/stats?tenant=stats-tenant")
        assert one.payload["runs"] >= 1
        assert one.payload["programs"][0]["table_probes"] > 0

    def test_metrics_endpoint_exposes_service_families(self, server):
        _request(server.port, "GET", "/healthz")
        reply = _request(server.port, "GET", "/metrics")
        assert reply.status == 200
        assert "openmetrics" in reply.headers["content-type"]
        assert "repro_service_requests" in reply.payload
        assert "repro_service_request_seconds" in reply.payload
        assert reply.payload.endswith("# EOF\n")

    def test_governed_tenant_policy_applies(self, server):
        reply = _request(
            server.port, "POST", "/v1/run",
            {
                "tenant": "governed-tenant",
                "source": KERNEL,
                "options": {"governed": True},
                "inputs": KERNEL_INPUTS,
            },
        )
        assert reply.status == 200
        assert reply.payload["governor"]  # at least one governed segment


class TestErrors:
    def test_unknown_route_404(self, server):
        assert _request(server.port, "GET", "/nope").status == 404

    def test_wrong_method_405(self, server):
        assert _request(server.port, "GET", "/v1/run").status == 405
        assert _request(server.port, "POST", "/healthz").status == 405

    def test_unknown_program_404(self, server):
        reply = _request(
            server.port, "POST", "/v1/run",
            {"tenant": "alpha", "program": "feed" * 16, "inputs": []},
        )
        assert reply.status == 404
        assert "unknown program" in reply.payload["error"]

    def test_bad_option_400(self, server):
        reply = _request(
            server.port, "POST", "/v1/compile",
            {"tenant": "alpha", "source": KERNEL, "options": {"optimize": "O9"}},
        )
        assert reply.status == 400
        assert "unexpected key" in reply.payload["error"]

    def test_missing_tenant_400(self, server):
        reply = _request(server.port, "POST", "/v1/run", {"source": KERNEL})
        assert reply.status == 400

    def test_bad_inputs_400(self, server):
        reply = _request(
            server.port, "POST", "/v1/run",
            {"tenant": "alpha", "source": KERNEL, "inputs": ["NaN-ish"]},
        )
        assert reply.status == 400

    def test_parse_error_400(self, server):
        reply = _request(
            server.port, "POST", "/v1/compile",
            {"tenant": "alpha", "source": "int main( {"},
        )
        assert reply.status == 400

    def test_source_and_program_400(self, server):
        reply = _request(
            server.port, "POST", "/v1/run",
            {"tenant": "alpha", "source": KERNEL, "program": "x", "inputs": []},
        )
        assert reply.status == 400

    def test_malformed_body_400(self, server):
        async def go():
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            body = b"{not json"
            writer.write(
                b"POST /v1/run HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
            )
            await writer.drain()
            status = (await reader.readuntil(b"\r\n")).split()[1]
            writer.close()
            return int(status)

        assert asyncio.run(go()) == 400

    @staticmethod
    def _raw_exchange(port, head: bytes):
        """Send raw bytes, return (status, parsed JSON error body)."""

        async def go():
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(head)
            await writer.drain()
            status = int((await reader.readuntil(b"\r\n")).split()[1])
            headers = {}
            while True:
                line = (await reader.readuntil(b"\r\n"))[:-2]
                if not line:
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = await reader.readexactly(int(headers["content-length"]))
            writer.close()
            return status, json.loads(body)

        return asyncio.run(go())

    def test_malformed_content_length_400_json(self, server):
        status, payload = self._raw_exchange(
            server.port,
            b"POST /v1/run HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: banana\r\n\r\n",
        )
        assert status == 400
        assert "Content-Length" in payload["error"]

    def test_negative_content_length_400_json(self, server):
        status, payload = self._raw_exchange(
            server.port,
            b"POST /v1/run HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: -5\r\n\r\n",
        )
        assert status == 400
        assert "Content-Length" in payload["error"]

    def test_oversized_header_block_400_json(self, server):
        # under the per-line and per-count limits, over the 32 KiB total
        filler = b"".join(
            b"X-Pad-%02d: %s\r\n" % (i, b"v" * 4000) for i in range(10)
        )
        status, payload = self._raw_exchange(
            server.port,
            b"GET /healthz HTTP/1.1\r\nHost: x\r\n" + filler + b"\r\n",
        )
        assert status == 400
        assert payload["error"] == "header block too large"


class TestDifferential:
    """Served outputs must be bit-identical to direct facade runs."""

    @pytest.mark.parametrize("governed", [False, True], ids=["static", "governed"])
    @pytest.mark.parametrize("backend", ["closures", "vm"])
    @pytest.mark.parametrize("name", ["G721_encode", "GNUGO_drift"])
    def test_served_matches_direct_session(self, server, name, backend, governed):
        workload = get_workload(name)
        granule = 4 if name.startswith("GNUGO") else 1
        chunk = 64 - 64 % granule
        stream = workload.default_inputs()[: 3 * chunk]
        chunks = [stream[i : i + chunk] for i in range(0, len(stream), chunk)]
        options = {"governed": governed, "backend": backend}
        tenant = f"diff-{name}-{backend}-{governed}"

        served = []
        for inputs in chunks:
            reply = _request(
                server.port, "POST", "/v1/run",
                {
                    "tenant": tenant,
                    "source": workload.source,
                    "options": options,
                    "inputs": inputs,
                },
            )
            assert reply.status == 200
            served.append((reply.payload["value"], reply.payload["output_checksum"]))

        with api.Session(
            api.CompileOptions(governed=governed, backend=backend)
        ) as session:
            direct = [
                (run.value, run.output_checksum)
                for run in (session.run(workload.source, inputs) for inputs in chunks)
            ]
        assert served == direct


class TestIsolationAndEviction:
    def test_tenants_do_not_share_program_caches(self):
        with ServiceThread(ServiceConfig()) as thread:
            compiled = _request(
                thread.port, "POST", "/v1/compile",
                {"tenant": "a", "source": KERNEL},
            )
            key = compiled.payload["program"]
            # tenant b never compiled it: running by id is a 404 even
            # though the content key would match
            reply = _request(
                thread.port, "POST", "/v1/run",
                {"tenant": "b", "program": key, "inputs": []},
            )
            assert reply.status == 404

    def test_lru_eviction_closes_oldest_program(self):
        config = ServiceConfig(
            default_policy=TenantPolicy(max_programs=1),
        )
        with ServiceThread(config) as thread:
            first = _request(
                thread.port, "POST", "/v1/compile",
                {"tenant": "t", "source": KERNEL},
            )
            other = KERNEL + "\n"
            second = _request(
                thread.port, "POST", "/v1/compile",
                {"tenant": "t", "source": other},
            )
            assert second.status == 200
            gone = _request(
                thread.port, "POST", "/v1/run",
                {"tenant": "t", "program": first.payload["program"], "inputs": []},
            )
            assert gone.status == 404
            stats = _request(thread.port, "GET", "/v1/stats?tenant=t")
            assert stats.payload["evictions"] == 1
            assert len(stats.payload["programs"]) == 1


class TestRobustness:
    def test_request_timeout_504(self):
        config = ServiceConfig(request_timeout=0.2)
        with ServiceThread(config) as thread:
            reply = _request(
                thread.port, "POST", "/v1/run",
                {
                    "tenant": "slow",
                    "source": SLOW,
                    "options": {"reuse": False},
                    "inputs": [],
                },
            )
            assert reply.status == 504
            assert "exceeded" in reply.payload["error"]

    def test_backpressure_429_with_retry_after(self):
        config = ServiceConfig(max_pending=1, workers=1, request_timeout=60.0)
        with ServiceThread(config) as thread:

            async def go():
                slow_client = ServiceClient("127.0.0.1", thread.port)
                await slow_client.connect()
                slow_task = asyncio.create_task(
                    slow_client.run(
                        "p", source=SLOW, options={"reuse": False}, inputs=[]
                    )
                )
                # wait until the slow run is admitted
                async with ServiceClient("127.0.0.1", thread.port) as probe:
                    for _ in range(200):
                        health = await probe.healthz()
                        if health.payload["pending"] >= 1:
                            break
                        await asyncio.sleep(0.01)
                    rejected = await probe.run(
                        "p", source=KERNEL, inputs=KERNEL_INPUTS
                    )
                slow_reply = await slow_task
                await slow_client.close()
                return rejected, slow_reply

            rejected, slow_reply = asyncio.run(go())
            assert rejected.status == 429
            assert float(rejected.headers["retry-after"]) > 0
            assert slow_reply.status == 200  # in-flight request unharmed

    def test_drain_rejects_new_work_and_finishes_inflight(self):
        config = ServiceConfig(max_pending=8, request_timeout=60.0, drain_grace=60.0)
        with ServiceThread(config) as thread:

            async def go():
                client = ServiceClient("127.0.0.1", thread.port)
                await client.connect()
                inflight = asyncio.create_task(
                    client.run("d", source=SLOW, options={"reuse": False}, inputs=[])
                )
                async with ServiceClient("127.0.0.1", thread.port) as probe:
                    for _ in range(200):
                        health = await probe.healthz()
                        if health.payload["pending"] >= 1:
                            break
                        await asyncio.sleep(0.01)
                drained = await asyncio.get_running_loop().run_in_executor(
                    None, thread.drain
                )
                async with ServiceClient("127.0.0.1", thread.port) as probe:
                    rejected = await probe.run("d", source=KERNEL, inputs=[1])
                    health = await probe.healthz()
                reply = await inflight
                await client.close()
                return drained, rejected, health, reply

            drained, rejected, health, reply = asyncio.run(go())
            assert drained is True
            assert reply.status == 200  # the in-flight run completed
            assert rejected.status == 503
            assert health.payload["status"] == "draining"


class TestWireCodec:
    def test_options_round_trip(self):
        options = compile_options_from_wire(
            {
                "opt": "O3",
                "governed": True,
                "backend": "vm",
                "config": {"min_executions": 8, "governor": {"window": 64}},
            }
        )
        assert options.opt == "O3"
        assert options.governed is True
        assert options.backend == "vm"
        assert options.config.min_executions == 8
        assert options.config.governor.window == 64

    def test_tenant_default_governor_applies_only_without_explicit(self):
        policy = TenantPolicy(governor=GovernorPolicy(window=99))
        from_policy = compile_options_from_wire({"governed": True}, policy)
        assert from_policy.config.governor.window == 99
        explicit = compile_options_from_wire(
            {"governed": True, "config": {"governor": {"window": 7}}}, policy
        )
        assert explicit.config.governor.window == 7

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unexpected key"):
            compile_options_from_wire({"opt": "O0", "optimize": True})
        with pytest.raises(ConfigError, match="unexpected key"):
            pipeline_config_from_wire({"min_execution": 8})
        with pytest.raises(ConfigError, match="unexpected key"):
            governor_from_wire({"windows": 1})

    def test_observer_knobs_not_on_the_wire(self):
        with pytest.raises(ConfigError, match="unexpected key"):
            compile_options_from_wire({"trace": True})
        with pytest.raises(ConfigError, match="unexpected key"):
            compile_options_from_wire({"profile": True})

    def test_service_config_validates(self):
        with pytest.raises(ConfigError):
            ServiceConfig(max_pending=0)
        with pytest.raises(ConfigError):
            ServiceConfig(request_timeout=0)
        with pytest.raises(ConfigError):
            TenantPolicy(max_programs=0)
        with pytest.raises(ConfigError):
            ServiceConfig(tenants={"x": object()})
