"""End-to-end trace round-trip and no-observer-effect contracts.

Three pins:

* **Reassembly.**  A traced request's spans — client → ``http.request``
  → ``session.run`` → ``machine.run``, plus whatever the pipeline and
  governor record below — come back from ``GET /v1/trace/<id>`` as ONE
  tree with zero orphan spans, across closures/vm × static/governed.
* **Loadgen differential.**  A traced loadgen sweep still verifies
  bit-identical outputs (tracing must not perturb execution), and every
  fetched span tree reassembles without orphans.
* **Tracing off is free.**  Requests without a ``traceparent`` produce
  zero trace records, no ``X-Repro-Trace-Id`` header, and responses
  byte-identical (modulo wall-clock) to traced ones.
"""

import asyncio
import itertools

import pytest

from repro.service import ServiceClient, ServiceConfig, ServiceThread
from repro.service.loadgen import LoadgenConfig, run_loadgen
from repro.workloads import get_workload

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _span_names(node, out):
    out.append(node["name"])
    for child in node.get("children", ()):
        _span_names(child, out)
    return out


def _run_traced(port, tenant, source, inputs, options):
    """One traced run; returns (reply, fetched trace tree payload)."""

    async def go():
        async with ServiceClient("127.0.0.1", port, trace=True) as client:
            reply = await client.run(
                tenant, source=source, inputs=inputs, options=options
            )
            assert reply.status == 200, reply.payload
            assert reply.trace_id == client.last_trace_id
            fetched = await client.trace_tree(reply.trace_id)
            assert fetched.status == 200
            return reply, fetched.payload

    return asyncio.run(go())


@pytest.fixture(scope="module")
def server():
    with ServiceThread(ServiceConfig(request_timeout=60.0)) as thread:
        yield thread


class TestRoundTrip:
    @pytest.mark.parametrize(
        "backend,governed",
        list(itertools.product(["closures", "vm"], [False, True])),
        ids=lambda v: str(v),
    )
    def test_single_tree_no_orphans(self, server, backend, governed):
        workload = get_workload("G721_encode")
        inputs = workload.default_inputs()[:96]
        reply, record = _run_traced(
            server.port,
            f"rt-{backend}-{governed}",
            workload.source,
            inputs,
            {"backend": backend, "governed": governed},
        )
        tree = record["tree"]
        assert record["trace_id"] == reply.trace_id
        assert tree["orphans"] == [] and tree["orphan_events"] == []
        # one root: the server's http.request span, parented under the
        # client's remote span id
        (root,) = tree["roots"]
        assert root["name"] == "http.request"
        names = _span_names(root, [])
        assert "session.run" in names and "machine.run" in names
        # the api layer attached per-table probe telemetry, governor
        # states, and ledger verdicts to the machine.run span
        machine = next(
            n for n in _iter_nodes(root) if n["name"] == "machine.run"
        )
        assert "tables" in machine["args"]
        if governed:  # static runs carry no governor snapshots
            assert "governor" in machine["args"]
        assert machine["args"]["governed"] == governed
        assert machine["args"]["backend"] == backend

    def test_trace_index_lists_and_ranks(self, server):
        workload = get_workload("G721_encode")
        _run_traced(
            server.port, "rt-index", workload.source,
            workload.default_inputs()[:32], {},
        )

        async def go():
            async with ServiceClient("127.0.0.1", server.port) as client:
                return (await client.traces(limit=5)).payload

        index = asyncio.run(go())
        assert index["stored"] >= 1
        assert index["recent"] and index["slowest"]
        # summaries are trees-free (the full tree only on /v1/trace/<id>)
        assert "tree" not in index["recent"][0]


def _iter_nodes(node):
    yield node
    for child in node.get("children", ()):
        yield from _iter_nodes(child)


class TestLoadgenDifferential:
    def test_traced_sweep_verifies_and_reassembles(self):
        # 8 sessions × alternate backends × governed flip per workload
        # cycle = all four backend/governed combos, traced end to end
        config = LoadgenConfig(
            sessions=8,
            runs_per_session=2,
            tenants=2,
            workloads=("G721_encode", "GNUGO_drift"),
            input_prefix=96,
            chunk=32,
            trace=True,
            trace_slowest=3,
        )
        report = run_loadgen(config)
        assert report["ok"], report["errors"][:3]
        assert report["verification"]["mismatches"] == 0
        tracing = report["tracing"]
        assert tracing["traced_runs"] == report["totals"]["runs"]
        assert tracing["orphan_spans"] == 0
        assert len(tracing["slowest"]) == 3
        for entry in tracing["slowest"]:
            names = []
            for root in entry["tree"]["roots"]:
                _span_names(root, names)
            assert names[0] == "http.request"
            assert "session.run" in names


class TestTracingOffIsFree:
    def test_untraced_requests_produce_zero_trace_records(self):
        workload = get_workload("G721_encode")
        with ServiceThread(ServiceConfig()) as thread:

            async def go():
                async with ServiceClient("127.0.0.1", thread.port) as client:
                    reply = await client.run(
                        "quiet", source=workload.source,
                        inputs=workload.default_inputs()[:32],
                    )
                    assert reply.status == 200
                    assert reply.trace_id is None
                    index = await client.traces()
                    return index.payload

            index = asyncio.run(go())
            assert index["stored"] == 0 and index["recent"] == []
            assert len(thread.traces) == 0

    def test_trace_mode_off_ignores_traceparent(self):
        workload = get_workload("G721_encode")
        with ServiceThread(ServiceConfig(trace="off")) as thread:

            async def go():
                async with ServiceClient(
                    "127.0.0.1", thread.port, trace=True
                ) as client:
                    reply = await client.run(
                        "quiet", source=workload.source,
                        inputs=workload.default_inputs()[:32],
                    )
                    assert reply.status == 200
                    assert reply.trace_id is None

            asyncio.run(go())
            assert len(thread.traces) == 0

    def test_traced_and_untraced_responses_bit_identical(self):
        # same program, same chunks, fresh tenants: everything except
        # wall-clock must match whether or not the request was traced
        workload = get_workload("G721_encode")
        chunks = [
            workload.default_inputs()[i : i + 32] for i in (0, 32, 64)
        ]
        with ServiceThread(ServiceConfig(request_timeout=60.0)) as thread:

            async def run_all(tenant, trace):
                replies = []
                async with ServiceClient(
                    "127.0.0.1", thread.port, trace=trace
                ) as client:
                    for inputs in chunks:
                        reply = await client.run(
                            tenant, source=workload.source, inputs=inputs,
                            options={"governed": True},
                        )
                        assert reply.status == 200
                        replies.append(reply.payload)
                return replies

            traced = asyncio.run(run_all("t-traced", True))
            plain = asyncio.run(run_all("t-plain", False))
        for a, b in zip(traced, plain):
            for doc in (a, b):
                doc.pop("seconds")
                doc.pop("tenant")
            assert a == b
