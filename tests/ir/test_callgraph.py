"""Tests for call-graph construction (direct, indirect, recursive)."""

from repro.minic import frontend
from repro.ir.callgraph import build_callgraph


def cg_for(src):
    return build_callgraph(frontend(src))


def test_direct_edges():
    cg = cg_for(
        """
        int b(int x) { return x; }
        int a(int x) { return b(x) + b(x + 1); }
        int main(void) { return a(1); }
        """
    )
    assert cg.callees("main") == {"a"}
    assert cg.callees("a") == {"b"}
    assert cg.callers("b") == {"a"}


def test_call_sites_recorded():
    cg = cg_for(
        """
        int b(int x) { return x; }
        int a(int x) { return b(x) + b(x + 1); }
        int main(void) { return a(1); }
        """
    )
    sites = cg.sites_calling("b")
    assert len(sites) == 2
    assert all(site.caller == "a" for site in sites)


def test_indirect_calls_via_function_pointer():
    cg = cg_for(
        """
        int dbl(int x) { return 2 * x; }
        int tpl(int x) { return 3 * x; }
        int apply(int f(int), int v) { return f(v); }
        int main(void) { return apply(dbl, 1) + apply(tpl, 2); }
        """
    )
    assert cg.callees("apply") == {"dbl", "tpl"}


def test_self_recursion_detected():
    cg = cg_for("int f(int n) { if (n) return f(n - 1); return 0; }")
    assert cg.recursive_functions() == {"f"}


def test_mutual_recursion_scc():
    cg = cg_for(
        """
        int odd(int n);
        int even(int n) { if (n == 0) return 1; return odd(n - 1); }
        int odd(int n) { if (n == 0) return 0; return even(n - 1); }
        int main(void) { return even(4); }
        """
    )
    assert cg.recursive_functions() == {"even", "odd"}
    sccs = [set(c) for c in cg.sccs()]
    assert {"even", "odd"} in sccs


def test_non_recursive_not_flagged():
    cg = cg_for(
        """
        int b(void) { return 1; }
        int a(void) { return b(); }
        int main(void) { return a(); }
        """
    )
    assert cg.recursive_functions() == set()


def test_reachability():
    cg = cg_for(
        """
        int c(void) { return 1; }
        int b(void) { return c(); }
        int a(void) { return 2; }
        int main(void) { return b() + a(); }
        """
    )
    assert cg.reachable_from("main") == {"main", "a", "b", "c"}
    assert cg.reachable_from("b") == {"b", "c"}


def test_builtin_calls_not_edges():
    cg = cg_for("int main(void) { return __abs(-1); }")
    assert cg.callees("main") == set()


def test_condensation_dag():
    cg = cg_for(
        """
        int odd(int n);
        int even(int n) { if (n == 0) return 1; return odd(n - 1); }
        int odd(int n) { if (n == 0) return 0; return even(n - 1); }
        int main(void) { return even(4); }
        """
    )
    component_of, members, dag = cg.condensation()
    assert component_of["even"] == component_of["odd"]
    assert component_of["main"] != component_of["even"]
