"""Tests for Tarjan SCC and condensation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.scc import condense, strongly_connected_components, topological_order


def sccs_as_sets(graph):
    return [frozenset(c) for c in strongly_connected_components(graph)]


def test_empty_graph():
    assert strongly_connected_components({}) == []


def test_singletons_no_edges():
    result = sccs_as_sets({1: [], 2: [], 3: []})
    assert sorted(result, key=sorted) == [frozenset({1}), frozenset({2}), frozenset({3})]


def test_simple_cycle():
    result = sccs_as_sets({1: [2], 2: [3], 3: [1]})
    assert result == [frozenset({1, 2, 3})]


def test_two_components_with_bridge():
    graph = {1: [2], 2: [1, 3], 3: [4], 4: [3]}
    result = sccs_as_sets(graph)
    assert frozenset({1, 2}) in result
    assert frozenset({3, 4}) in result
    # reverse topological: {3,4} (callee side) emitted before {1,2}
    assert result.index(frozenset({3, 4})) < result.index(frozenset({1, 2}))


def test_self_loop_is_singleton_scc():
    result = sccs_as_sets({1: [1], 2: []})
    assert frozenset({1}) in result


def test_dag_order():
    graph = {"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []}
    result = strongly_connected_components(graph)
    flat = [c[0] for c in result]
    assert flat.index("d") < flat.index("b")
    assert flat.index("b") < flat.index("a") or flat.index("c") < flat.index("a")


def test_edges_to_unknown_nodes_ignored():
    result = sccs_as_sets({1: [2, 99], 2: [1]})
    assert result == [frozenset({1, 2})]


def test_condense():
    graph = {1: [2], 2: [1, 3], 3: []}
    component_of, members, dag = condense(graph)
    assert component_of[1] == component_of[2] != component_of[3]
    c12 = component_of[1]
    c3 = component_of[3]
    assert dag[c12] == {c3}
    assert dag[c3] == set()
    assert sorted(members[c12]) == [1, 2]


def test_topological_order():
    dag = {1: [2, 3], 2: [4], 3: [4], 4: []}
    order = topological_order(dag)
    pos = {n: i for i, n in enumerate(order)}
    assert pos[1] < pos[2] and pos[1] < pos[3]
    assert pos[2] < pos[4] and pos[3] < pos[4]


def test_topological_order_rejects_cycles():
    with pytest.raises(ValueError):
        topological_order({1: [2], 2: [1]})


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=14),
        st.lists(st.integers(min_value=0, max_value=14), max_size=5),
        max_size=15,
    )
)
def test_scc_partition_property(graph):
    """SCCs partition the node set, and condensation is acyclic."""
    result = strongly_connected_components(graph)
    seen = set()
    for component in result:
        assert not (set(component) & seen), "components must be disjoint"
        seen.update(component)
    assert seen == set(graph)
    _, _, dag = condense(graph)
    topological_order(dag)  # must not raise
