"""Tests for the clean-up pass (call splitting)."""

from repro.minic import astnodes as ast
from repro.minic import frontend, format_program
from repro.ir.cleanup import cleanup
from tests.support import run_plain


def cleaned(src):
    prog = cleanup(frontend(src))
    return prog, format_program(prog)


def test_call_in_binary_expression_is_split():
    prog, text = cleaned(
        """
        int f(int x) { return x + 1; }
        int main(void) { return f(1) + f(2); }
        """
    )
    main = prog.function("main")
    # two hoisted declarations before the return
    decls = [s for s in main.body.stmts if isinstance(s, ast.DeclStmt)]
    assert len(decls) == 2
    assert "__cu0" in text and "__cu1" in text


def test_direct_call_statement_not_split():
    prog, text = cleaned(
        """
        void g(void) { }
        void main(void) { g(); }
        """
    )
    assert "__cu" not in text


def test_direct_assignment_rhs_not_split():
    prog, text = cleaned(
        """
        int f(void) { return 1; }
        int main(void) { int x; x = f(); return x; }
        """
    )
    assert "__cu" not in text


def test_nested_call_args_split_inner_first():
    prog, text = cleaned(
        """
        int f(int x) { return x + 1; }
        int main(void) { return 1 + f(f(2)); }
        """
    )
    # inner f(2) stays as the initializer of the first temp; outer call
    # references it
    assert text.index("__cu0") < text.index("__cu1")


def test_if_condition_call_hoisted_before_if():
    prog, text = cleaned(
        """
        int f(void) { return 1; }
        int main(void) { if (f() > 0) return 1; return 0; }
        """
    )
    main = prog.function("main")
    assert isinstance(main.body.stmts[0], ast.DeclStmt)
    assert isinstance(main.body.stmts[1], ast.If)


def test_loop_condition_call_not_hoisted():
    prog, text = cleaned(
        """
        int f(void) { return 0; }
        int main(void) { while (f()) { } return 0; }
        """
    )
    assert "__cu" not in text


def test_short_circuit_rhs_not_hoisted():
    prog, text = cleaned(
        """
        int f(void) { return 1; }
        int main(void) { return 1 && f(); }
        """
    )
    assert "__cu" not in text


def test_builtin_calls_not_split():
    prog, text = cleaned("int main(void) { return __abs(-3) + __abs(4); }")
    assert "__cu" not in text


def test_semantics_preserved():
    src = """
    int calls = 0;
    int f(int x) { calls++; return x * 10; }
    int main(void) { return f(1) + f(2) * f(3) + calls; }
    """
    before, _ = run_plain(src)
    prog = cleanup(frontend(src))
    from repro.minic.pretty import format_program as fp
    after, _ = run_plain(fp(prog))
    assert before == after


def test_cleanup_inside_nested_blocks_and_loops():
    prog, text = cleaned(
        """
        int f(int x) { return x; }
        int main(void) {
            int s = 0;
            for (int i = 0; i < 3; i++) {
                s += f(i) * 2;
            }
            return s;
        }
        """
    )
    # hoisted inside the loop body, before the += statement
    loop = prog.function("main").body.stmts[1]
    assert isinstance(loop.body.stmts[0], ast.DeclStmt)
    assert loop.body.stmts[0].decls[0].name.startswith("__cu")


def test_hoist_counter_reported():
    from repro.ir.cleanup import CleanupPass

    prog = frontend(
        """
        int f(int x) { return x; }
        int main(void) { return f(1) * f(2); }
        """
    )
    cp = CleanupPass(prog)
    cp.run()
    assert cp.hoisted == 2
