"""Tests for statement-level CFG construction and region queries."""

import pytest

from repro.errors import AnalysisError
from repro.minic import astnodes as ast
from repro.minic import frontend
from repro.ir.cfg import COND, STEP, STMT, build_cfg


def cfg_for(src, name=None):
    prog = frontend(src)
    fn = prog.functions[-1] if name is None else prog.function(name)
    return build_cfg(fn), fn


def reachable(cfg, start):
    seen = {start}
    stack = [start]
    while stack:
        nid = stack.pop()
        for s in cfg.node(nid).succs:
            if s not in seen:
                seen.add(s)
                stack.append(s)
    return seen


def test_linear_sequence():
    cfg, _ = cfg_for("int f(void) { int a = 1; int b = 2; return a + b; }")
    kinds = [n.kind for n in cfg]
    assert kinds.count(STMT) == 3
    assert cfg.exit in reachable(cfg, cfg.entry)


def test_if_else_diamond():
    cfg, fn = cfg_for("int f(int x) { int r; if (x) r = 1; else r = 2; return r; }")
    conds = [n for n in cfg if n.kind == COND]
    assert len(conds) == 1
    assert len(conds[0].succs) == 2


def test_if_without_else_falls_through():
    cfg, _ = cfg_for("int f(int x) { if (x) x = 1; return x; }")
    cond = next(n for n in cfg if n.kind == COND)
    # one successor is the then-branch, one is the return
    assert len(cond.succs) == 2


def test_while_back_edge():
    cfg, _ = cfg_for("int f(int n) { while (n > 0) n--; return n; }")
    cond = next(n for n in cfg if n.kind == COND)
    body = next(n for n in cfg if n.kind == STMT and isinstance(n.ast_node, ast.ExprStmt))
    assert cond.nid in body.succs  # back edge
    assert body.nid in cond.succs


def test_for_loop_structure():
    cfg, _ = cfg_for("int f(void) { int s = 0; for (int i = 0; i < 3; i++) s += i; return s; }")
    assert any(n.kind == STEP for n in cfg)
    step = next(n for n in cfg if n.kind == STEP)
    cond = next(n for n in cfg if n.kind == COND)
    assert cond.nid in step.succs


def test_break_exits_loop():
    cfg, _ = cfg_for(
        "int f(void) { while (1) { break; } return 0; }"
    )
    brk = next(
        n for n in cfg if n.kind == STMT and isinstance(n.ast_node, ast.Break)
    )
    ret = next(
        n for n in cfg if n.kind == STMT and isinstance(n.ast_node, ast.Return)
    )
    assert ret.nid in brk.succs


def test_continue_goes_to_step():
    cfg, _ = cfg_for(
        "int f(void) { for (int i = 0; i < 9; i++) { if (i) continue; i = 2; } return 0; }"
    )
    cont = next(
        n for n in cfg if n.kind == STMT and isinstance(n.ast_node, ast.Continue)
    )
    step = next(n for n in cfg if n.kind == STEP)
    assert step.nid in cont.succs


def test_return_connects_to_exit_only():
    cfg, _ = cfg_for("int f(int x) { if (x) return 1; return 2; }")
    returns = [
        n for n in cfg if n.kind == STMT and isinstance(n.ast_node, ast.Return)
    ]
    assert len(returns) == 2
    for node in returns:
        assert node.succs == [cfg.exit]


def test_do_while():
    cfg, _ = cfg_for("int f(int n) { do { n--; } while (n > 0); return n; }")
    cond = next(n for n in cfg if n.kind == COND)
    body = next(n for n in cfg if n.kind == STMT and isinstance(n.ast_node, ast.ExprStmt))
    assert cond.nid in body.succs
    assert body.nid in cond.succs  # back edge


def test_break_outside_loop_raises():
    prog = frontend("int f(void) { return 0; }")
    fn = prog.functions[0]
    fn.body.stmts.insert(0, ast.Break(line=1))
    with pytest.raises(AnalysisError):
        build_cfg(fn)


def test_reverse_postorder_starts_at_entry():
    cfg, _ = cfg_for("int f(int x) { if (x) x = 1; else x = 2; return x; }")
    order = cfg.reverse_postorder()
    assert order[0] == cfg.entry
    pos = {nid: i for i, nid in enumerate(order)}
    cond = next(n for n in cfg if n.kind == COND)
    for succ in cond.succs:
        assert pos[cond.nid] < pos[succ]


class TestRegions:
    QUAN = """
    int power2[15];
    int quan(int val) {
        int i;
        for (i = 0; i < 15; i++)
            if (val < power2[i])
                break;
        return (i);
    }
    """

    def test_loop_body_region_excludes_cond(self):
        cfg, fn = cfg_for(self.QUAN, "quan")
        loop = fn.body.stmts[1]
        region = cfg.nodes_in_region(loop.body)
        cond = next(n for n in cfg if n.kind == COND and n.owner is loop)
        assert cond.nid not in region
        # the inner if-cond and break are inside
        inner_if = loop.body.stmts[0]
        if_cond = next(n for n in cfg if n.kind == COND and n.owner is inner_if)
        assert if_cond.nid in region

    def test_function_body_region_is_everything_but_entry_exit(self):
        cfg, fn = cfg_for(self.QUAN, "quan")
        region = cfg.nodes_in_region(fn.body)
        non_virtual = {n.nid for n in cfg if n.kind not in ("entry", "exit")}
        assert region == non_virtual

    def test_region_entries_and_exits(self):
        cfg, fn = cfg_for(self.QUAN, "quan")
        loop = fn.body.stmts[1]
        region = cfg.nodes_in_region(loop.body)
        entries = cfg.region_entries(region)
        assert len(entries) == 1  # the if-condition node
        targets = cfg.region_exit_targets(region)
        # body exits to the for-step (fallthrough/continue) or via break to
        # the return
        kinds = {cfg.node(t).kind for t in targets}
        assert STEP in kinds
