"""Edge cases for the trace exporters.

The golden tests (``test_export.py``) pin the happy path byte-for-byte;
these pin the corners: exporting an empty trace, and the ordering and
re-parenting of pool-worker spans absorbed into a coordinator tracer
(the shape ``ExperimentRunner`` produces when its process pool returns
serialized worker traces).
"""

import json

from repro.obs import Tracer, to_chrome, to_jsonl


class StepClock:
    def __init__(self) -> None:
        self.reads = 0

    def __call__(self) -> float:
        value = 100.0 + self.reads * 0.001
        self.reads += 1
        return value


def _coordinator_with_workers(n_workers: int = 2) -> Tracer:
    coordinator = Tracer(enabled=True, clock=StepClock(), wall=StepClock(), pid=1)
    with coordinator.span("experiment.run") as root:
        pass
    for i in range(n_workers):
        worker = Tracer(
            enabled=True, clock=StepClock(), wall=StepClock(), pid=10 + i
        )
        with worker.span("run.original", workload=f"W{i}"):
            with worker.span("machine.execute"):
                pass
        worker.event("cache.miss", category="cache", index=i)
        coordinator.absorb(worker.serialize(), root)
    return coordinator


class TestEmptyTrace:
    def test_jsonl_is_empty_string(self):
        assert to_jsonl(Tracer(enabled=True)) == ""

    def test_chrome_has_no_events_and_no_metadata(self):
        doc = to_chrome(Tracer(enabled=True))
        assert doc == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_disabled_tracer_exports_empty(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored"):
            tracer.event("also.ignored")
        assert to_jsonl(tracer) == ""
        assert to_chrome(tracer)["traceEvents"] == []


class TestAbsorbedWorkers:
    def test_worker_roots_reparented_under_coordinator_span(self):
        coordinator = _coordinator_with_workers()
        root = coordinator.spans[0]
        worker_roots = [
            s for s in coordinator.spans if s.name == "run.original"
        ]
        assert len(worker_roots) == 2
        for span in worker_roots:
            assert span.parent_id == root.span_id

    def test_absorbed_ids_are_remapped_into_coordinator_space(self):
        coordinator = _coordinator_with_workers()
        ids = [s.span_id for s in coordinator.spans]
        assert len(ids) == len(set(ids)), "span ids must stay unique"
        # nested worker spans keep their worker-local parent, remapped
        child = next(s for s in coordinator.spans if s.name == "machine.execute")
        parent = next(
            s for s in coordinator.spans if s.span_id == child.parent_id
        )
        assert parent.name == "run.original"

    def test_chrome_export_keeps_span_order_and_pids(self):
        doc = to_chrome(_coordinator_with_workers())
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        # metadata first, one per pid, sorted
        assert events[: len(metadata)] == metadata
        assert [m["pid"] for m in metadata] == [1, 10, 11]
        # spans follow tracer order: coordinator root, then workers in
        # absorb order (the pid distinguishes worker lanes in the UI)
        assert [s["name"] for s in spans] == [
            "experiment.run",
            "run.original", "machine.execute",
            "run.original", "machine.execute",
        ]
        assert [s["pid"] for s in spans] == [1, 10, 10, 11, 11]

    def test_absorbed_events_follow_spans_in_jsonl(self):
        lines = to_jsonl(_coordinator_with_workers()).splitlines()
        docs = [json.loads(line) for line in lines]
        kinds = [d["type"] for d in docs]
        # spans first (in start order), then events — absorbed or not
        assert kinds == sorted(kinds, key=lambda k: k != "span")
        events = [d for d in docs if d["type"] == "event"]
        assert [e["name"] for e in events] == ["cache.miss", "cache.miss"]

    def test_absorbing_empty_payload_is_a_noop(self):
        tracer = Tracer(enabled=True)
        tracer.absorb(None)
        tracer.absorb({})
        assert tracer.spans == [] and tracer.events == []
