"""Golden-file tests for the annotated-source renderers.

``render_text`` and ``render_html`` are pure functions of an
:class:`~repro.obs.annotate.Annotation`, so their output is pinned
byte-for-byte against a fixed synthetic annotation (two backends, heat
extremes, markers, characters needing HTML escaping, absent ledger
estimates).  To regenerate after an intentional renderer change::

    PYTHONPATH=src python tests/obs/test_annotate.py

then review the diffs of ``tests/obs/golden/annotate.txt`` and
``tests/obs/golden/annotate.html``.
"""

from pathlib import Path

from repro.obs.annotate import (
    Annotation,
    LineRow,
    SiteRow,
    build_annotation,
    render_fragment,
    render_html,
    render_text,
)

GOLDEN_TEXT = Path(__file__).parent / "golden" / "annotate.txt"
GOLDEN_HTML = Path(__file__).parent / "golden" / "annotate.html"

_SOURCE_LINES = [
    "static int quan(int v) <&escape>",
    "{",
    "    int r = v * v;",
    "    return r;",
    "}",
    "int main(void) { return quan(3); }",
]


def _annotation(backend: str) -> Annotation:
    site = SiteRow(
        seg_id=0,
        function="quan",
        probe_line=1,
        commit_line=4,
        end_line=4,
        executions=9000,
        hits=5606,
        misses=3394,
        bypassed=0,
        meas_r=0.623,
        meas_c=1439.0,
        meas_o=26.0,
        est_r=0.623,
        est_c=1428.0,
        est_o=28.0,
    )
    # a second site with no ledger estimates exercises the "-" columns
    bare = SiteRow(seg_id=1, function="main", probe_line=6, executions=1)
    rows = [
        LineRow(1, _SOURCE_LINES[0], body=53623, overhead=213636,
                markers=[("probe", 0)]),
        LineRow(2, _SOURCE_LINES[1]),
        LineRow(3, _SOURCE_LINES[2], body=2511560),
        LineRow(4, _SOURCE_LINES[3], body=53622, overhead=20364,
                markers=[("commit", 0), ("end", 0)]),
        LineRow(5, _SOURCE_LINES[4]),
        LineRow(6, _SOURCE_LINES[5], body=117000, markers=[("probe", 1)]),
    ]
    total = sum(r.total for r in rows) + 6
    return Annotation(
        title="SAMPLE@O0 <&>",
        backend=backend,
        cycles=total,
        attributed=total,
        prelude=(6, 0),
        rows=rows,
        sites=[site, bare],
    )


def _sample() -> list:
    return [_annotation("closures"), _annotation("vm")]


def test_text_matches_golden():
    rendered = render_text(_sample()[0])
    assert GOLDEN_TEXT.exists(), "golden file missing; run this file as a script"
    assert rendered == GOLDEN_TEXT.read_text(encoding="utf-8")


def test_html_matches_golden():
    rendered = render_html(_sample())
    assert GOLDEN_HTML.exists(), "golden file missing; run this file as a script"
    assert rendered == GOLDEN_HTML.read_text(encoding="utf-8")


def test_renderers_are_deterministic():
    assert render_text(_sample()[0]) == render_text(_sample()[0])
    assert render_html(_sample()) == render_html(_sample())


def test_html_escapes_source_text():
    html = render_html(_sample())
    assert "&lt;&amp;escape&gt;" in html
    assert "<&escape>" not in html
    assert "annotate: SAMPLE@O0 &lt;&amp;&gt;" in html


def test_selector_only_with_multiple_backends():
    lone = render_html(_sample()[0])          # bare Annotation accepted
    assert "reproShow" not in lone
    both = render_html(_sample())
    assert both.count('class="selector"') == 1
    assert 'data-backend="closures"' in both and 'data-backend="vm"' in both
    # exactly one section starts visible
    assert both.count('style="display:none"') == 1


def test_fragment_is_uid_scoped_and_chrome_free():
    fragment = render_fragment(_sample(), uid="UNEPIC-O0")
    assert "<style" not in fragment and "<body" not in fragment
    assert fragment.count('data-panel="UNEPIC-O0"') >= 3  # selector + sections
    assert "reproShow('UNEPIC-O0'" in fragment


def test_text_marks_sites_and_heat():
    text = render_text(_sample()[0])
    assert "[probe:s0]" in text
    assert "[commit:s0 end:s0]" in text
    assert "hit-ratio 0.623" in text
    assert "C 1439/1428" in text
    # site without estimates renders "-" for every ledger column
    assert "R 0.000/-" in text
    # hottest line gets the full-width heat bar
    hottest = next(line for line in text.splitlines() if " int r = v * v;" in line)
    assert "######" in hottest


class _FakeProfile:
    """The minimal CycleProfile surface ``build_annotation`` touches."""

    def __init__(self):
        self.lines = {0: [6, 0], 1: [100, 40], 3: [200, 0]}
        self.seg_costs = {0: {"R": 0.5, "C": 120.0, "O": 8.0}}
        self.total_cycles = 346

    def line_total(self):
        return 346

    def segments(self):
        return {}


class _FakeSourceMap:
    backend = "closures"

    def sites(self):
        return {0: ("quan", {"probe_line": 1, "commit_line": 3, "end_line": 3})}


def test_build_annotation_joins_fakes():
    source = "int quan;\nint x;\nint y;\n"
    ann = build_annotation(source, _FakeProfile(), _FakeSourceMap(), title="t")
    assert ann.cycles == ann.attributed == 346
    assert ann.prelude == (6, 0)
    assert [r.total for r in ann.rows] == [140, 0, 200]
    assert ann.rows[0].markers == [("probe", 0)]
    assert ann.rows[2].markers == [("commit", 0), ("end", 0)]
    site = ann.sites[0]
    # ledger estimates survive even when the run never executed the site
    assert (site.est_r, site.est_c, site.est_o) == (0.5, 120.0, 8.0)
    assert site.executions == 0 and site.hit_ratio == 0.0


if __name__ == "__main__":
    GOLDEN_TEXT.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_TEXT.write_text(render_text(_sample()[0]), encoding="utf-8")
    GOLDEN_HTML.write_text(render_html(_sample()), encoding="utf-8")
    print(f"regenerated {GOLDEN_TEXT}")
    print(f"regenerated {GOLDEN_HTML}")
