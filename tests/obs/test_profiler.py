"""Unit tests for the cycle-attribution profiler.

Small, purpose-built programs pin the tree shape, the body/overhead
split of reuse segments, the hit/miss accounting, the self-recursion
fold, and the exporter formats (text tree, collapsed stacks,
measured-vs-ledger).
"""

import pytest

from repro import api
from repro.obs.profiler import ledger_costs

REUSE_SOURCE = """
int tab[8] = {5, 3, 8, 1, 9, 2, 7, 4};

static int kernel(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 6; i++)
        r += tab[i] * ((v + i) & 31) + v % (i + 2);
    return r;
}

int main(void) {
    int acc = 0;
    while (__input_avail())
        acc += kernel(__input_int());
    __output_int(acc);
    return acc;
}
"""

RECURSIVE_SOURCE = """
int depth(int n) {
    if (n <= 0)
        return 0;
    return 1 + depth(n - 1);
}

int main(void) {
    __output_int(depth(50));
    return 0;
}
"""

# 4 distinct values cycled many times: high reuse rate, >=1 miss per value
INPUTS = [1, 2, 3, 4] * 64


def _profiled_run(source=REUSE_SOURCE, inputs=INPUTS, reuse=True, **kwargs):
    program = api.compile(
        source, api.CompileOptions(reuse=reuse, profile=True, **kwargs)
    )
    if reuse:
        program.profile(inputs)
    return program.run(inputs)


class TestTreeShape:
    def test_root_is_run(self):
        profile = _profiled_run().profile()
        assert profile.root.name == "run"
        assert "main" in {n.name for _, n in profile.root.walk()}

    def test_total_matches_metrics(self):
        result = _profiled_run()
        profile = result.profile()
        assert profile.total_cycles == result.metrics.cycles

    def test_unprofiled_run_has_no_profile(self):
        program = api.compile(REUSE_SOURCE, api.CompileOptions(reuse=False))
        result = program.run(INPUTS)
        with pytest.raises(api.ConfigError):
            result.profile()

    def test_self_recursion_folds_to_one_node(self):
        profile = _profiled_run(RECURSIVE_SOURCE, inputs=[], reuse=False).profile()
        depth_nodes = [
            (d, n) for d, n in profile.root.walk() if n.name == "depth"
        ]
        assert len(depth_nodes) == 1
        depth, node = depth_nodes[0]
        assert node.count == 51  # the fold keeps the invocation count
        assert depth == 2  # run > main > depth, not 50 frames deep


class TestSegmentSplit:
    def test_hit_miss_counts_match_table_stats(self):
        result = _profiled_run()
        profile = result.profile()
        segments = profile.segments()
        assert segments, "expected at least one reused segment"
        for seg_id, att in segments.items():
            stats = result.metrics.table_stats[seg_id]
            assert att.hits == stats.hits
            assert att.executions == stats.probes
            assert att.bypassed == 0

    def test_overhead_and_body_are_split(self):
        profile = _profiled_run().profile()
        att = next(iter(profile.segments().values()))
        # misses executed the body; every execution paid the probe
        assert att.body_cycles > 0
        assert att.overhead_cycles > 0
        assert att.misses > 0 and att.hits > 0

    def test_measured_rates(self):
        profile = _profiled_run().profile()
        att = next(iter(profile.segments().values()))
        assert att.measured_reuse_rate == att.hits / att.executions
        assert att.measured_overhead == att.overhead_cycles / att.executions
        assert att.measured_granularity == att.body_cycles / att.executed_bodies
        assert att.measured_gain == pytest.approx(
            att.measured_reuse_rate * att.measured_granularity
            - att.measured_overhead
        )


class TestExports:
    def test_render_contains_segment_rows(self):
        profile = _profiled_run().profile()
        text = profile.render()
        assert "seg:" in text
        assert "hit/miss/byp" in text

    def test_collapsed_stack_format(self):
        profile = _profiled_run().profile()
        lines = profile.collapsed().splitlines()
        assert lines, "collapsed output should not be empty"
        for line in lines:
            path, _, count = line.rpartition(" ")
            assert path and count.isdigit()
        # self-cycles across all frames also conserve the total
        assert sum(int(l.rpartition(" ")[2]) for l in lines) == (
            profile.total_cycles
        )
        assert any(line.startswith("run;main") for line in lines)

    def test_measured_vs_ledger_columns(self):
        program = api.compile(REUSE_SOURCE, api.CompileOptions(profile=True))
        program.profile(INPUTS)
        result = program.run(INPUTS)
        table = result.profile().measured_vs_ledger()
        for column in ("R est", "R meas", "C est", "C meas",
                       "O est", "O meas", "gain est", "gain meas"):
            assert column in table

    def test_to_dict_round_trips_counts(self):
        profile = _profiled_run().profile()
        doc = profile.to_dict()
        assert doc["total_cycles"] == profile.total_cycles
        assert doc["tree"]["name"] == "run"


class TestLedgerCosts:
    def test_costs_cover_selected_segments(self):
        program = api.compile(REUSE_SOURCE, api.CompileOptions(profile=True))
        program.profile(INPUTS)
        costs = ledger_costs(program.result)
        selected = {s.seg_id for s in program.result.selected}
        assert set(costs) == selected
        for info in costs.values():
            assert info["C"] > 0
            assert info["O"] > 0
            assert 0.0 <= info["R"] <= 1.0
