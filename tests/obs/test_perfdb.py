"""Unit tests for the append-only perf store and the regression gate.

The store is pure storage (no measuring), so these tests drive it with
hand-built rows; the gate's contract — cycles above the tolerance limit
or *any* checksum change fails, missing measurements of a baselined key
fail, unmeasured baseline rows are skipped — is pinned with injected
regressions.
"""

import json

import pytest

from repro.obs.perfdb import (
    PerfDB,
    baseline_key,
    check_rows,
    git_revision,
    load_baseline,
    write_baseline,
)


def _row(workload="UNEPIC", opt="O0", variant="static", cycles=1000,
         checksum=0xAB, **extra):
    return {
        "workload": workload,
        "opt": opt,
        "variant": variant,
        "cycles": cycles,
        "output_checksum": checksum,
        **extra,
    }


class TestPerfDB:
    def test_append_and_rows(self, tmp_path):
        db = PerfDB(tmp_path / "perf")
        db.append(_row(cycles=100))
        db.append(_row(cycles=200))
        db.append(_row(workload="GNUGO", cycles=300))
        rows = db.rows("UNEPIC", "O0", "static")
        assert [r["cycles"] for r in rows] == [100, 200]
        assert all("ts" in r for r in rows)

    def test_latest_and_history(self, tmp_path):
        db = PerfDB(tmp_path / "perf")
        for cycles in (5, 7, 6):
            db.append(_row(cycles=cycles))
        assert db.latest("UNEPIC", "O0", "static")["cycles"] == 6
        assert db.history("UNEPIC", "O0", "static") == [5, 7, 6]

    def test_empty_store(self, tmp_path):
        db = PerfDB(tmp_path / "missing")
        assert db.rows() == []
        assert db.latest("UNEPIC", "O0", "static") is None

    def test_rows_are_jsonl(self, tmp_path):
        db = PerfDB(tmp_path / "perf")
        db.append(_row())
        lines = db.path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["workload"] == "UNEPIC"


class TestBaseline:
    def test_write_then_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_row(cycles=123, checksum=9)], tolerance_pct=1.5)
        baseline = load_baseline(path)
        assert baseline["default_tolerance_pct"] == 1.5
        key = baseline_key("UNEPIC", "O0", "static")
        assert baseline["rows"][key] == {"cycles": 123, "output_checksum": 9}

    def test_clean_run_passes(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_row()])
        assert check_rows([_row()], load_baseline(path)) == []

    def test_injected_cycle_regression_fails(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_row(cycles=1000)])
        # tamper the committed baseline downward: the measured run now
        # reads as a regression
        doc = json.loads(path.read_text())
        key = baseline_key("UNEPIC", "O0", "static")
        doc["rows"][key]["cycles"] = 900
        path.write_text(json.dumps(doc))
        regressions = check_rows([_row(cycles=1000)], load_baseline(path))
        assert len(regressions) == 1
        assert regressions[0].kind == "cycles"
        assert "exceeds" in regressions[0].describe()

    def test_tolerance_allows_bounded_drift(self):
        baseline = {
            "default_tolerance_pct": 0.0,
            "rows": {
                baseline_key("UNEPIC", "O0", "static"): {
                    "cycles": 1000,
                    "output_checksum": 0xAB,
                    "tolerance_pct": 10.0,
                }
            },
        }
        assert check_rows([_row(cycles=1099)], baseline) == []
        bad = check_rows([_row(cycles=1101)], baseline)
        assert [r.kind for r in bad] == ["cycles"]

    def test_checksum_change_always_fails(self):
        baseline = {
            "default_tolerance_pct": 100.0,  # cycles may double...
            "rows": {
                baseline_key("UNEPIC", "O0", "static"): {
                    "cycles": 1000,
                    "output_checksum": 0xAB,
                }
            },
        }
        # ...but a checksum change is a correctness bug, never tolerated
        regressions = check_rows([_row(cycles=500, checksum=0xCD)], baseline)
        assert [r.kind for r in regressions] == ["checksum"]

    def test_missing_measurement_skipped_on_subset_gate(self):
        baseline = {
            "default_tolerance_pct": 0.0,
            "rows": {
                baseline_key("UNEPIC", "O0", "static"): {
                    "cycles": 1000,
                    "output_checksum": 0xAB,
                }
            },
        }
        # a subset gate skips unmeasured rows; a full gate fails them
        assert check_rows([], baseline) == []
        regressions = check_rows([], baseline, require_all=True)
        assert [r.kind for r in regressions] == ["missing"]
        assert "no measurement" in regressions[0].describe()

    def test_faster_run_passes(self):
        baseline = {
            "default_tolerance_pct": 0.0,
            "rows": {
                baseline_key("UNEPIC", "O0", "static"): {
                    "cycles": 1000,
                    "output_checksum": 0xAB,
                }
            },
        }
        assert check_rows([_row(cycles=900)], baseline) == []

    def test_unknown_measured_rows_are_ignored(self):
        baseline = {"default_tolerance_pct": 0.0, "rows": {}}
        assert check_rows([_row()], baseline) == []

    def test_load_missing_baseline_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_baseline(tmp_path / "nope.json")


class TestGitRevision:
    def test_outside_a_repository_falls_back_to_unknown(self, tmp_path):
        # nonzero git exit (rev-parse in a bare tmp dir), not an exception
        assert git_revision(repo_dir=str(tmp_path)) == "unknown"

    def test_subprocess_failure_falls_back_to_unknown(self, monkeypatch):
        import subprocess

        def boom(*args, **kwargs):
            raise OSError("git binary missing")

        monkeypatch.setattr(subprocess, "run", boom)
        assert git_revision() == "unknown"

    def test_timeout_falls_back_to_unknown(self, monkeypatch):
        import subprocess

        def hang(cmd, **kwargs):
            raise subprocess.TimeoutExpired(cmd, kwargs.get("timeout"))

        monkeypatch.setattr(subprocess, "run", hang)
        assert git_revision(timeout=0.01) == "unknown"

    def test_repo_dir_pins_the_lookup(self, monkeypatch, tmp_path):
        import subprocess

        seen = {}
        real_run = subprocess.run

        def spy(cmd, **kwargs):
            seen["cwd"] = kwargs.get("cwd")
            seen["timeout"] = kwargs.get("timeout")
            return real_run(cmd, **kwargs)

        monkeypatch.setattr(subprocess, "run", spy)
        git_revision(repo_dir=str(tmp_path), timeout=5.0)
        assert seen["cwd"] == str(tmp_path)
        assert seen["timeout"] == 5.0
