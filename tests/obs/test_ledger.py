"""Tests for the segment decision ledger, standalone and pipeline-fed."""

import json

import pytest

from repro.obs import DecisionLedger
from repro.reuse.pipeline import PipelineConfig, ReusePipeline


class FakeSegment:
    def __init__(self, seg_id, kind="loop", func_name="f"):
        self.seg_id = seg_id
        self.kind = kind
        self.func_name = func_name


class TestLedgerBasics:
    def test_open_is_idempotent(self):
        ledger = DecisionLedger()
        first = ledger.open(FakeSegment(1))
        second = ledger.open(FakeSegment(1))
        assert first is second

    def test_record_appends_verdicts(self):
        ledger = DecisionLedger()
        ledger.open(FakeSegment(1))
        ledger.record(1, "feasibility", True, reason="ok")
        ledger.record(1, "prefilter", False, margin=-0.5, C=10.0, O=15.0)
        record = ledger.records[1]
        assert [v.stage for v in record.verdicts] == ["feasibility", "prefilter"]
        assert record.rejection.stage == "prefilter"
        assert record.rejection.margin == -0.5
        assert record.selected is False

    def test_selected_record_has_no_rejection(self):
        ledger = DecisionLedger()
        ledger.open(FakeSegment(2, func_name="g"))
        for stage in ("feasibility", "prefilter", "frequency", "formula3"):
            ledger.record(2, stage, True)
        ledger.record(2, "selected", True, margin=12.5)
        record = ledger.records[2]
        assert record.selected is True
        assert record.rejection is None

    def test_rejections_lists_only_failures(self):
        ledger = DecisionLedger()
        ledger.open(FakeSegment(1))
        ledger.record(1, "feasibility", False, reason="io")
        ledger.open(FakeSegment(2))
        ledger.record(2, "selected", True)
        rejections = ledger.rejections()
        assert len(rejections) == 1
        record, verdict = rejections[0]
        assert record.seg_id == 1
        assert verdict.stage == "feasibility"


class TestWhy:
    def make(self):
        ledger = DecisionLedger()
        ledger.open(FakeSegment(0, func_name="quan"))
        ledger.record(0, "feasibility", True)
        ledger.record(0, "frequency", False, margin=-28.0, executions=4, required=32)
        ledger.open(FakeSegment(1, func_name="fmult"))
        ledger.record(1, "selected", True)
        return ledger

    def test_by_id(self):
        text = self.make().why(0)
        assert "quan#0" in text
        assert "rejected at frequency" in text
        assert "margin -28" in text

    def test_by_function_name(self):
        text = self.make().why("quan")
        assert "rejected at frequency" in text

    def test_workload_suffix_ignored(self):
        # "why was quan@mpeg2 rejected?" — the @workload suffix names the
        # experiment, not the segment
        text = self.make().why("quan@mpeg2")
        assert "rejected at frequency" in text

    def test_digit_string(self):
        text = self.make().why("1")
        assert "fmult#1" in text
        assert "SELECTED" in text

    def test_unknown_names_known_functions(self):
        text = self.make().why("nosuch")
        assert "no candidate segment" in text
        assert "quan" in text and "fmult" in text


class TestOutput:
    def test_to_json_is_serializable(self):
        ledger = DecisionLedger()
        ledger.open(FakeSegment(3))
        ledger.record(3, "prefilter", True, margin=0.4, C=100.0, O=60.0)
        doc = json.loads(json.dumps(ledger.to_json()))
        (seg,) = doc["segments"]
        assert seg["seg_id"] == 3
        assert seg["verdicts"][0]["detail"]["C"] == 100.0

    def test_render_names_stage_and_margin(self):
        ledger = DecisionLedger()
        ledger.open(FakeSegment(1, func_name="quan"))
        ledger.record(1, "formula3", False, margin=-3.25, N=100, R=0.1)
        text = ledger.render()
        assert "quan#1" in text
        assert "formula3" in text
        assert "-3.25" in text


_SOURCE = """
int tab[8] = {5, 3, 8, 1, 9, 2, 7, 4};

static int kernel(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 6; i++)
        r += tab[i] * ((v + i) & 31) + v % (i + 2);
    return r;
}

int main(void) {
    int acc = 0;
    while (__input_avail())
        acc += kernel(__input_int());
    __output_int(acc);
    return acc;
}
"""


class TestPipelineLedger:
    @pytest.fixture(scope="class")
    def result(self):
        inputs = [7, 9, 7, 9] * 30
        config = PipelineConfig(min_executions=8)
        return ReusePipeline(_SOURCE, config).run(inputs)

    def test_every_segment_has_a_record(self, result):
        assert set(result.ledger.records) == {s.seg_id for s in result.segments}

    def test_selected_segments_marked(self, result):
        assert result.selected  # sanity: this workload transforms something
        for segment in result.selected:
            assert result.ledger.records[segment.seg_id].selected

    def test_every_nonselected_has_rejecting_stage_and_margin_or_reason(self, result):
        selected_ids = {s.seg_id for s in result.selected}
        for seg_id, record in result.ledger.records.items():
            if seg_id in selected_ids:
                continue
            verdict = record.rejection
            assert verdict is not None, f"segment {seg_id} lacks a rejection"
            # every rejection names its stage and carries a margin or a reason
            assert verdict.stage in (
                "feasibility", "prefilter", "frequency",
                "formula3", "nesting", "budget",
            )
            assert verdict.margin is not None or verdict.detail.get("reason")

    def test_formula3_verdicts_carry_the_paper_numbers(self, result):
        for segment in result.profiled:
            verdicts = [
                v for v in result.ledger.records[segment.seg_id].verdicts
                if v.stage == "formula3"
            ]
            assert len(verdicts) == 1
            detail = verdicts[0].detail
            assert {"N", "N_ds", "R", "R_adj", "C", "O"} <= set(detail)
            profile = result.profiles[segment.seg_id]
            assert detail["N"] == profile.executions
            assert detail["N_ds"] == profile.distinct_inputs

    def test_ledger_json_round_trips(self, result):
        doc = json.loads(json.dumps(result.ledger.to_json()))
        assert len(doc["segments"]) == len(result.segments)

    def test_ledger_survives_pickling_with_result(self, result):
        import pickle

        clone = pickle.loads(pickle.dumps(result))
        assert set(clone.ledger.records) == set(result.ledger.records)


class TestWhyUnknown:
    def test_unknown_segment_id_names_the_known_functions(self):
        ledger = DecisionLedger()
        ledger.open(FakeSegment(1, func_name="quan"))
        ledger.open(FakeSegment(2, func_name="gproc"))
        out = ledger.why(999)
        assert "no candidate segment matches 999" in out
        assert "quan" in out and "gproc" in out

    def test_unknown_function_name(self):
        ledger = DecisionLedger()
        ledger.open(FakeSegment(1, func_name="quan"))
        out = ledger.why("nonexistent")
        assert "no candidate segment matches 'nonexistent'" in out
        assert "quan" in out

    def test_unknown_query_on_empty_ledger(self):
        out = DecisionLedger().why("anything")
        assert "no candidate segment matches 'anything'" in out
