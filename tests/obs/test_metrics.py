"""Unit tests for the metrics registry, OpenMetrics exposition, and the
HTTP endpoint (including end-to-end from a live Session)."""

import urllib.request

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    ExpositionServer,
    MetricsRegistry,
    get_registry,
    parse_openmetrics,
    render_openmetrics,
    set_registry,
)


# -- families and children ---------------------------------------------------


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things", "Things.")
        c.inc()
        c.inc(2)
        assert c.labels().value == 3

    def test_negative_inc_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.counter("repro_things").inc(-1)

    def test_advance_to_is_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things").labels(segment="1")
        c.inc(5)
        c.advance_to(3)  # below current: no-op
        assert c.value == 5
        c.advance_to(9)
        assert c.value == 9

    def test_labeled_children_are_memoized(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_things")
        a = fam.labels(segment="1")
        b = fam.labels(segment="1")
        assert a is b
        assert fam.labels(segment="2") is not a

    def test_label_names_fixed_by_first_call(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_things")
        fam.labels(segment="1")
        with pytest.raises(ConfigError):
            fam.labels(other="x")

    def test_get_or_create_and_kind_mismatch(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_things", "Things.")
        assert reg.counter("repro_things") is a
        with pytest.raises(ConfigError):
            reg.gauge("repro_things")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.counter("9bad")
        with pytest.raises(ConfigError):
            reg.counter("bad-name")
        fam = reg.counter("repro_ok")
        with pytest.raises(ConfigError):
            fam.labels(**{"bad-label": "x"})


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_level")
        g.set(10.0)
        g.inc(2)
        g.dec(3)
        assert g.labels().value == 9.0


class TestHistogram:
    def test_observe_buckets_count_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        child = h.labels()
        assert child.count == 3
        assert child.sum == 55.5
        assert child.bucket_counts == [1, 2]  # cumulative; +Inf implied

    def test_default_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat")
        assert tuple(h.labels().bounds) == DEFAULT_BUCKETS

    def test_unsorted_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.histogram("repro_lat", buckets=(10.0, 1.0))


# -- snapshots and deltas ----------------------------------------------------


def _filled_registry():
    reg = MetricsRegistry()
    reg.counter("repro_hits", "Hits.").labels(segment="1").inc(4)
    reg.counter("repro_hits").labels(segment="2").inc(1)
    reg.gauge("repro_occupancy", "Live entries.").labels(segment="1").set(7)
    reg.histogram("repro_cycles", "Cycles.", buckets=(100.0, 1000.0)).observe(250)
    return reg


class TestSnapshot:
    def test_snapshot_shape(self):
        snap = _filled_registry().snapshot()
        fams = snap["families"]
        assert fams["repro_hits"]["kind"] == "counter"
        assert {s["labels"]["segment"]: s["value"] for s in fams["repro_hits"]["samples"]} == {
            "1": 4,
            "2": 1,
        }
        hist = fams["repro_cycles"]["samples"][0]
        assert hist["count"] == 1
        assert hist["sum"] == 250
        assert hist["buckets"] == [[100.0, 0], [1000.0, 1]]

    def test_snapshot_is_detached(self):
        reg = _filled_registry()
        snap = reg.snapshot()
        reg.counter("repro_hits").labels(segment="1").inc(10)
        assert snap["families"]["repro_hits"]["samples"][0]["value"] == 4

    def test_delta_since(self):
        reg = _filled_registry()
        before = reg.snapshot()
        reg.counter("repro_hits").labels(segment="1").inc(6)
        reg.gauge("repro_occupancy").labels(segment="1").set(9)
        delta = reg.delta_since(before)
        fams = delta["families"]
        # only the changed child, diffed
        assert fams["repro_hits"]["samples"] == [
            {"labels": {"segment": "1"}, "value": 6}
        ]
        assert fams["repro_occupancy"]["samples"][0]["value"] == 9
        # untouched histogram dropped entirely
        assert "repro_cycles" not in fams

    def test_delta_since_none_is_full_snapshot(self):
        reg = _filled_registry()
        assert reg.delta_since(None) == reg.snapshot()


# -- OpenMetrics exposition --------------------------------------------------


class TestOpenMetrics:
    def test_render_is_deterministic_and_terminated(self):
        reg = _filled_registry()
        text = reg.render_openmetrics()
        assert text == reg.render_openmetrics()
        assert text.endswith("# EOF\n")
        assert "# TYPE repro_hits counter" in text
        assert 'repro_hits_total{segment="1"} 4' in text
        assert 'repro_cycles_bucket{le="+Inf"} 1' in text

    def test_round_trip(self):
        snap = _filled_registry().snapshot()
        assert parse_openmetrics(render_openmetrics(snap)) == snap

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("repro_weird").labels(path='a"b\\c\nd').inc()
        snap = reg.snapshot()
        assert parse_openmetrics(render_openmetrics(snap)) == snap


# -- process-local install ---------------------------------------------------


class TestProcessLocal:
    def test_default_is_none(self):
        assert get_registry() is None

    def test_set_returns_previous(self):
        reg = MetricsRegistry()
        previous = set_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            set_registry(previous)
        assert get_registry() is previous


# -- HTTP exposition ---------------------------------------------------------


class TestExpositionServer:
    def test_serves_metrics_and_404(self):
        reg = _filled_registry()
        with ExpositionServer(reg) as srv:
            body = urllib.request.urlopen(srv.url, timeout=5).read().decode()
            assert parse_openmetrics(body) == reg.snapshot()
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{srv.host}:{srv.port}/nope", timeout=5
                )

    def test_live_session_end_to_end(self):
        import repro
        from repro.workloads import get_workload

        workload = get_workload("UNEPIC")
        with repro.Session(metrics=True) as session:
            session.run(workload.source, workload.default_inputs()[:512])
            srv = session.serve_metrics()
            body = urllib.request.urlopen(srv.url, timeout=5).read().decode()
        parsed = parse_openmetrics(body)
        fams = parsed["families"]
        assert fams["repro_session_runs"]["samples"][0]["value"] == 1
        assert "repro_machine_cycles" in fams
        # close() shut the server down
        with pytest.raises(OSError):
            urllib.request.urlopen(srv.url, timeout=1)

    def test_serve_metrics_requires_registry(self):
        import repro

        with repro.Session() as session:
            with pytest.raises(ConfigError):
                session.serve_metrics()
