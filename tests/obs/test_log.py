"""Unit tests for the structured event log (repro.obs.log).

Covers the four pillars the module docstring promises: ring-buffered
cursor reads, per-name token-bucket rate limiting with suppressed-count
surfacing, trace-id stamping from the ambient tracer, and the
process-local default being None (logging off is free).
"""

import json
import threading

import pytest

from repro.obs.log import LEVELS, EventLog, get_event_log, set_event_log
from repro.obs.tracer import Tracer, set_tracer


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestEmit:
    def test_record_shape(self):
        log = EventLog(wall=lambda: 12.5)
        record = log.emit("service.request", level="warning", status=504, ms=3.25)
        assert record == {
            "seq": 1,
            "ts_us": 12_500_000,
            "level": "warning",
            "name": "service.request",
            "args": {"status": 504, "ms": 3.25},
        }

    def test_seq_is_monotone(self):
        log = EventLog()
        seqs = [log.emit(f"e{i}")["seq"] for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]

    def test_unknown_level_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown level"):
            log.emit("x", level="critical")
        assert LEVELS == ("debug", "info", "warning", "error")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            EventLog(capacity=0)

    def test_explicit_trace_ids_stamped(self):
        log = EventLog()
        record = log.emit("x", trace_id="ab" * 16, span_id=7)
        assert record["trace_id"] == "ab" * 16
        assert record["span_id"] == 7

    def test_ambient_tracer_supplies_ids(self):
        log = EventLog()
        tracer = Tracer(enabled=True, trace_id="cd" * 16)
        previous = set_tracer(tracer)
        try:
            with tracer.span("outer", category="t"):
                record = log.emit("x")
        finally:
            set_tracer(previous)
        assert record["trace_id"] == "cd" * 16
        assert record["span_id"] == tracer.spans[0].span_id

    def test_untraced_emit_has_no_ids(self):
        record = EventLog().emit("x")
        assert "trace_id" not in record and "span_id" not in record


class TestRing:
    def test_eviction_and_dropped_accounting(self):
        log = EventLog(capacity=3)
        for i in range(6):
            log.emit(f"e{i}")
        view = log.since(seq=1)
        # records 2 and 3 were evicted before this reader caught up
        assert [r["seq"] for r in view["records"]] == [4, 5, 6]
        assert view["dropped"] == 2
        assert view["next_seq"] == 6

    def test_cursor_resumes_where_it_left(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        first = log.since(seq=0, limit=1)
        rest = log.since(seq=first["next_seq"])
        assert [r["name"] for r in rest["records"]] == ["b"]

    def test_level_filter(self):
        log = EventLog()
        log.emit("lo", level="debug")
        log.emit("mid", level="info")
        log.emit("hi", level="error")
        names = [r["name"] for r in log.since(level="warning")["records"]]
        assert names == ["hi"]

    def test_empty_log_since(self):
        view = EventLog().since(seq=0)
        assert view == {"records": [], "next_seq": 0, "dropped": 0}

    def test_to_jsonl_round_trips(self):
        log = EventLog(wall=lambda: 1.0)
        log.emit("a", k=1)
        log.emit("b", k=2)
        docs = [json.loads(line) for line in log.to_jsonl().splitlines()]
        assert [d["name"] for d in docs] == ["a", "b"]


class TestRateLimit:
    def test_burst_then_suppression(self):
        clock = FakeClock()
        log = EventLog(rate_limit_per_sec=10.0, rate_limit_burst=3, clock=clock)
        admitted = [log.emit("hot") for _ in range(5)]
        assert [r is not None for r in admitted] == [True, True, True, False, False]
        assert log.suppressed == 2

    def test_suppressed_count_attaches_to_next_admitted(self):
        clock = FakeClock()
        log = EventLog(rate_limit_per_sec=10.0, rate_limit_burst=1, clock=clock)
        assert log.emit("hot") is not None
        assert log.emit("hot") is None
        assert log.emit("hot") is None
        clock.advance(1.0)  # refill
        record = log.emit("hot")
        assert record["rate_limited_dropped"] == 2

    def test_names_have_independent_buckets(self):
        clock = FakeClock()
        log = EventLog(rate_limit_per_sec=10.0, rate_limit_burst=1, clock=clock)
        assert log.emit("hot") is not None
        assert log.emit("hot") is None
        assert log.emit("cold") is not None

    def test_zero_rate_disables_limiting(self):
        log = EventLog(rate_limit_per_sec=0.0)
        assert all(log.emit("hot") is not None for _ in range(500))


class TestWaiters:
    def test_wait_for_timeout(self):
        log = EventLog()
        assert log.wait_for(seq=0, timeout=0.01) is False

    def test_wait_for_existing_record(self):
        log = EventLog()
        log.emit("x")
        assert log.wait_for(seq=0, timeout=0.01) is True

    def test_emit_wakes_waiter(self):
        log = EventLog()
        woke = threading.Event()

        def waiter():
            if log.wait_for(seq=0, timeout=5.0):
                woke.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        log.emit("x")
        thread.join(timeout=5.0)
        assert woke.is_set()


class TestProcessLocal:
    def test_default_is_none(self):
        assert get_event_log() is None

    def test_set_and_restore(self):
        log = EventLog()
        previous = set_event_log(log)
        try:
            assert get_event_log() is log
        finally:
            set_event_log(previous)
        assert get_event_log() is previous
