"""Golden-file test for the dashboard renderer.

``render_dashboard`` is a pure function, so its output is pinned
byte-for-byte.  To regenerate after an intentional renderer change::

    PYTHONPATH=src python tests/obs/test_dash.py

then review the diff of ``tests/obs/golden/dash.html``.
"""

from pathlib import Path

from repro.obs.dash import DashData, WorkloadPanel, render_dashboard

GOLDEN = Path(__file__).parent / "golden" / "dash.html"


def _sample_data() -> DashData:
    """A fixed DashData exercising every rendered element: anomalies in
    both directions, empty and populated text blocks, characters that
    need HTML escaping."""
    clean = WorkloadPanel(
        key="UNEPIC@O0@static",
        cycles=5757080,
        seconds=0.027947,
        energy_joules=0.011458,
        output_checksum=0xC4C08DA2,
        table_text="Seg  Hits  Misses\n---  ----  ------\n3    5606  3394",
        hit_ratio_text="Hit-ratio over time\n  segment 3: |...===+++| final 62.3%",
        measured_vs_ledger="Seg  Est C  Meas C\n---  -----  ------\n3    120    118",
        profile_text="main 5757080cy\n  quan 3210000cy <reuse>",
        ledger_text='seg 3 quan: selected gain=42 "R*C - O > 0"',
        history_text="Perf history for UNEPIC@O0@static (3 runs)\ntrend |===| latest 5757080",
        annotate_html=(
            '<section data-panel="UNEPIC-O0" data-backend="closures">\n'
            '<table class="annotate"><tr><th>line</th><th class="src">source</th>'
            "</tr><tr><td>4</td>"
            '<td class="src">let q = quan(x);'
            '<span class="marker">probe:s3</span></td></tr></table>\n'
            "</section>"
        ),
    )
    regressed = WorkloadPanel(
        key="GNUGO@O3@governed",
        cycles=9000000,
        seconds=0.043689,
        energy_joules=0.017913,
        output_checksum=0x00000042,
        governor_text="segment 7: disabled after window 4 (gain < 0)",
        anomalies=[
            "GNUGO@O3@governed cycles: 9e+06 vs history 8.1e+06 "
            "(+11.11% (flat history)) [REGRESSION, shifted at run 5]",
            "GNUGO@O3@governed hit_ratio[7]: 0.31 vs history 0.62 "
            "(-50.00% z=-4.2) [REGRESSION]",
        ],
    )
    improved = WorkloadPanel(
        key="ADPCM_decode@O0@static",
        cycles=400000,
        seconds=0.001942,
        energy_joules=0.000796,
        output_checksum=0x7F00FF01,
        anomalies=[
            "ADPCM_decode@O0@static cycles: 4e+05 vs history 4.4e+05 "
            "(-9.09% (flat history)) [improvement]",
        ],
    )
    return DashData(
        title='repro dashboard <escape & check "quotes">',
        generated="2026-01-01 00:00:00 UTC",
        metrics_text=(
            "# TYPE repro_reuse_hits counter\n"
            'repro_reuse_hits_total{segment="3"} 5606\n'
            "# EOF\n"
        ),
        session_text=(
            "Session run latency (wall-clock, bucket-interpolated)\n"
            "  runs 3  p50 27.95ms  p90 43.69ms  p99 43.69ms  total 73.58ms"
        ),
        slowest_text=(
            "Slowest requests (8 traced runs, 0 orphan spans)\n"
            "\n"
            "  trace deadbeef  workload=G721_encode  tenant=t0  status=200"
            "  server 215.7ms  (3 spans, 1 events)\n"
            "    http.request  215.72ms  [service]  method=POST path=/v1/run\n"
            "      session.run  201.94ms  [api]  backend=closures opt=O0\n"
            "        machine.run  28.39ms  [api]  cycles=107683 entry=main"
        ),
        panels=[clean, regressed, improved],
    )


def test_dashboard_matches_golden():
    rendered = render_dashboard(_sample_data())
    assert GOLDEN.exists(), "golden file missing; run this file as a script"
    assert rendered == GOLDEN.read_text(encoding="utf-8")


def test_render_is_deterministic():
    assert render_dashboard(_sample_data()) == render_dashboard(_sample_data())


def test_escaping_and_structure():
    html = render_dashboard(_sample_data())
    assert "&lt;escape &amp; check &quot;quotes&quot;&gt;" in html
    assert "<script" not in html.lower()
    # every panel is linked from the summary table and anchored
    for key in ("UNEPIC@O0@static", "GNUGO@O3@governed", "ADPCM_decode@O0@static"):
        assert f'href="#{key}"' in html
        assert f'id="{key}"' in html
    assert "2 regression(s)" in html
    assert "No history anomalies." in html
    assert html.count("<pre>") == html.count("</pre>")
    # the annotate fragment is embedded raw (markers survive unescaped),
    # and the session-latency quantile block is rendered
    assert '<span class="marker">probe:s3</span>' in html
    assert "Session run latency" in html
    # the slowest-request join panel renders its span tree as monospace
    assert "Slowest requests (span trees)" in html
    assert "http.request  215.72ms  [service]" in html


def test_empty_blocks_are_omitted():
    html = render_dashboard(_sample_data())
    # the regressed panel has no table/profile text: its section renders
    # the governor block only
    section = html.split('id="GNUGO@O3@governed"')[1].split("<h2")[0]
    assert "Governor" in section
    assert "Cycle attribution" not in section


if __name__ == "__main__":
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(render_dashboard(_sample_data()), encoding="utf-8")
    print(f"regenerated {GOLDEN}")
