"""Observability must never change a measured number.

With tracing disabled (the default), and equally with tracing *enabled*,
the pipeline must make bit-identical decisions and the measured runs must
produce bit-identical metrics for every registered workload at O0 and O3
— the tracer and ledger are pure observers.  These tests also pin the
block-fused accounting default: instrumentation rides on top of
``Machine(fuse=True)``, it does not replace it.
"""

import copy

import pytest

from repro.minic.sema import analyze
from repro.obs import Tracer, set_tracer
from repro.opt.pipeline import optimize
from repro.reuse.pipeline import PipelineConfig, ReusePipeline
from repro.runtime.compiler import compile_program
from repro.runtime.machine import Machine
from repro.workloads.registry import ALL_WORKLOADS

# Same prefix trick as the fusion differential: every workload polls
# __input_avail, so a prefix keeps the full-registry sweep fast.
_INPUT_PREFIX = 1024

_cache: dict[str, tuple] = {}


def _pipelines(workload):
    """(untraced result, traced result, inputs) for one workload."""
    if workload.name not in _cache:
        inputs = workload.default_inputs()[:_INPUT_PREFIX]
        config = PipelineConfig(
            min_executions=workload.min_executions,
            memory_budget_bytes=workload.memory_budget_bytes,
        )
        previous = set_tracer(Tracer(enabled=False))
        try:
            untraced = ReusePipeline(workload.source, config).run(inputs)
        finally:
            set_tracer(previous)
        previous = set_tracer(Tracer(enabled=True))
        try:
            traced = ReusePipeline(workload.source, config).run(inputs)
        finally:
            set_tracer(previous)
        _cache[workload.name] = (untraced, traced, inputs)
    return _cache[workload.name]


def _measure_transformed(result, opt_level, inputs, tracer):
    program = copy.deepcopy(result.program)
    analyze(program)
    optimize(program, opt_level)
    machine = Machine(opt_level)
    machine.set_inputs(list(inputs))
    for seg_id, table in result.build_tables().items():
        machine.install_table(seg_id, table)
    previous = set_tracer(tracer)
    try:
        compile_program(program, machine).run("main")
    finally:
        set_tracer(previous)
    return machine.metrics()


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_pipeline_decisions_identical(workload):
    untraced, traced, _ = _pipelines(workload)
    assert untraced.counts == traced.counts
    assert [s.seg_id for s in untraced.selected] == [
        s.seg_id for s in traced.selected
    ]
    assert [s.gain for s in untraced.selected] == [s.gain for s in traced.selected]
    assert [
        (sp.segment_id, sp.capacity, sp.in_words, sp.out_words, sp.merged_group)
        for sp in untraced.table_specs
    ] == [
        (sp.segment_id, sp.capacity, sp.in_words, sp.out_words, sp.merged_group)
        for sp in traced.table_specs
    ]


@pytest.mark.parametrize("opt_level", ["O0", "O3"])
@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_transformed_metrics_identical(workload, opt_level):
    untraced, traced, inputs = _pipelines(workload)
    off = _measure_transformed(untraced, opt_level, inputs, Tracer(enabled=False))
    on = _measure_transformed(traced, opt_level, inputs, Tracer(enabled=True))
    # Metrics equality covers counters, cycles, seconds, joules, checksum,
    # per-segment TableStats (incl. the sampled series), merged membership.
    assert off == on


def test_ledger_produced_either_way():
    # the ledger is bookkeeping, not tracing: it is on in both modes
    workload = ALL_WORKLOADS[0]
    untraced, traced, _ = _pipelines(workload)
    assert set(untraced.ledger.records) == set(traced.ledger.records)


def test_fused_accounting_still_the_default():
    assert Machine("O0").fuse is True
    from repro.experiments import ExperimentRunner

    assert ExperimentRunner()._fuse is True
