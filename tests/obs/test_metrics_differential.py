"""The metrics registry must be a pure observer.

Two properties, checked for every registered workload at O0 and O3 with
both static and governed tables:

* **Zero observer effect** — a metered run (registry installed before
  ``compile_program``) produces bit-identical :class:`Metrics` to an
  un-metered run.  Like the profiler's hooks, the metered closures are
  a compile-time decision: no registry, no wrapper.
* **Exact reconciliation** — the registry's counters agree bit-exactly
  with the machine's own accounting: per-segment hit/miss counters with
  ``TableStats``, the cycle counter with ``Metrics.cycles``.  The live
  per-probe increments and the end-of-run ``advance_to`` from lifetime
  table totals must land on the same numbers, or one of the two paths
  is lying.
"""

import copy

import pytest

from repro.minic.sema import analyze
from repro.obs.metrics import MetricsRegistry
from repro.opt.pipeline import optimize
from repro.reuse.pipeline import PipelineConfig, ReusePipeline
from repro.runtime.compiler import compile_program
from repro.runtime.governor import GovernorPolicy
from repro.runtime.machine import Machine
from repro.workloads.registry import ALL_WORKLOADS

# Same prefix trick as the other differentials: every workload polls
# __input_avail, so a prefix keeps the full sweep fast.
_INPUT_PREFIX = 1024

_cache: dict[str, tuple] = {}


def _pipeline(workload):
    if workload.name not in _cache:
        inputs = workload.default_inputs()[:_INPUT_PREFIX]
        config = PipelineConfig(
            min_executions=workload.min_executions,
            memory_budget_bytes=workload.memory_budget_bytes,
            governor=workload.governor or GovernorPolicy(),
        )
        result = ReusePipeline(workload.source, config).run(inputs)
        _cache[workload.name] = (result, inputs)
    return _cache[workload.name]


def _measure(result, opt_level, inputs, governed, metered):
    program = copy.deepcopy(result.program)
    analyze(program)
    optimize(program, opt_level)
    machine = Machine(opt_level)
    machine.set_inputs(list(inputs))
    registry = None
    if metered:
        registry = MetricsRegistry()
        machine.metrics_registry = registry
    for seg_id, table in result.build_tables(governed=governed).items():
        machine.install_table(seg_id, table)
    compile_program(program, machine).run("main")
    metrics = machine.metrics()
    machine.publish_metrics()
    return metrics, registry


def _family_totals(snapshot, name):
    family = snapshot["families"].get(name)
    if family is None:
        return {}
    return {
        sample["labels"].get("segment"): sample["value"]
        for sample in family["samples"]
    }


@pytest.mark.parametrize("governed", [False, True], ids=["static", "governed"])
@pytest.mark.parametrize("opt_level", ["O0", "O3"])
@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_no_observer_effect(workload, opt_level, governed):
    result, inputs = _pipeline(workload)
    plain, _ = _measure(result, opt_level, inputs, governed, metered=False)
    metered, _ = _measure(result, opt_level, inputs, governed, metered=True)
    # Metrics equality covers counters, cycles, seconds, joules, checksum,
    # per-segment TableStats (incl. sampled series), governor telemetry.
    assert plain == metered


@pytest.mark.parametrize("governed", [False, True], ids=["static", "governed"])
@pytest.mark.parametrize("opt_level", ["O0", "O3"])
@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_counters_reconcile_exactly(workload, opt_level, governed):
    result, inputs = _pipeline(workload)
    metrics, registry = _measure(result, opt_level, inputs, governed, metered=True)
    snap = registry.snapshot()

    hits = _family_totals(snap, "repro_reuse_hits")
    misses = _family_totals(snap, "repro_reuse_misses")
    for seg_id, stats in metrics.table_stats.items():
        label = str(seg_id)
        assert hits.get(label, 0) == stats.hits, f"segment {seg_id} hits"
        assert misses.get(label, 0) == stats.misses, f"segment {seg_id} misses"

    cycles = snap["families"]["repro_machine_cycles"]["samples"][0]["value"]
    assert cycles == metrics.cycles

    if governed:
        bypassed = sum(_family_totals(snap, "repro_reuse_bypassed").values())
        total_bypassed = sum(
            s["bypassed_executions"] for s in metrics.governor.values()
        )
        assert bypassed == total_bypassed
