"""Tests for the baseline-free anomaly detector.

The acceptance property: an injected 10% cycle regression is flagged
from history alone (no committed baseline anywhere), while stationary
history stays green — including the deterministic-simulator case where
the history is exactly flat and classic z-scores degenerate.
"""

import pytest

from repro.errors import ConfigError
from repro.obs.anomaly import (
    AnomalyPolicy,
    changepoint,
    detect_row_anomalies,
    detect_store_anomalies,
    ewma,
    judge_cycles,
    judge_hit_ratio,
    mad,
    median,
    robust_zscore,
)
from repro.obs.perfdb import PerfDB


def _row(cycles, hit_ratios=None, workload="UNEPIC", opt="O0", variant="static"):
    return {
        "workload": workload,
        "opt": opt,
        "variant": variant,
        "cycles": cycles,
        "output_checksum": 0x12345678,
        "hit_ratios": hit_ratios or {},
    }


# -- robust statistics -------------------------------------------------------


class TestStatistics:
    def test_ewma_weights_recent(self):
        assert ewma([100.0], 0.3) == 100.0
        assert ewma([0.0, 100.0], 0.5) == 50.0
        # recent points dominate as alpha -> 1
        assert ewma([0.0, 0.0, 100.0], 0.9) > ewma([0.0, 0.0, 100.0], 0.1)

    def test_ewma_empty_rejected(self):
        with pytest.raises(ConfigError):
            ewma([])

    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_mad_and_robust_z(self):
        series = [10.0, 10.0, 10.0, 12.0, 8.0]
        assert mad(series) == 0.0  # median of deviations [0,0,0,2,2]
        assert robust_zscore(11.0, series) is None
        noisy = [8.0, 9.0, 10.0, 11.0, 12.0]
        z = robust_zscore(16.0, noisy)
        assert z is not None and z > 3.0

    def test_robust_z_outlier_resistant(self):
        # one historical spike must not inflate the tolerance
        history = [100.0, 101.0, 99.0, 100.0, 1000.0, 100.0, 101.0]
        z = robust_zscore(120.0, history)
        assert z is not None and z > 3.5

    def test_changepoint_finds_the_step(self):
        series = [100.0] * 6 + [110.0] * 6
        found = changepoint(series, min_len=3)
        assert found is not None
        index, before, after = found
        assert index == 6
        assert before == 100.0
        assert after == 110.0

    def test_changepoint_short_series(self):
        assert changepoint([1.0, 2.0, 3.0], min_len=3) is None


# -- policy validation -------------------------------------------------------


class TestPolicy:
    def test_defaults_valid(self):
        AnomalyPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_history": 1},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"z_threshold": 0.0},
            {"cycles_drift_pct": -1.0},
            {"flat_tolerance_pct": -0.1},
            {"hit_ratio_drift": 0.0},
            {"changepoint_min_len": 1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            AnomalyPolicy(**kwargs)


# -- judges ------------------------------------------------------------------


class TestJudgeCycles:
    def test_flat_history_flags_ten_percent_regression(self):
        # the deterministic simulator: history is exactly flat, MAD == 0
        history = [1000.0] * 6
        found = judge_cycles("k", history, 1100.0)
        assert found is not None
        assert found.regression is True
        assert found.score is None  # flat history, judged by relative drift
        assert found.deviation_pct == pytest.approx(10.0)
        assert "REGRESSION" in found.describe()

    def test_flat_history_stationary_stays_green(self):
        assert judge_cycles("k", [1000.0] * 6, 1000.0) is None

    def test_flat_history_improvement_still_reported(self):
        found = judge_cycles("k", [1000.0] * 6, 900.0)
        assert found is not None
        assert found.regression is False
        assert "improvement" in found.describe()

    def test_noisy_history_needs_both_thresholds(self):
        noisy = [1000.0, 1010.0, 990.0, 1005.0, 995.0]
        # large z but tiny relative drift: not anomalous
        assert judge_cycles("k", noisy, 1040.0) is None
        # far out on both axes: anomalous
        found = judge_cycles("k", noisy, 1200.0)
        assert found is not None and found.regression

    def test_short_history_skipped(self):
        assert judge_cycles("k", [1000.0] * 3, 2000.0) is None

    def test_changepoint_dated(self):
        history = [1000.0] * 5 + [1100.0] * 3
        found = judge_cycles("k", history, 1100.0)
        assert found is not None
        assert found.changepoint_run == 5
        assert "shifted at run 5" in found.describe()


class TestJudgeHitRatio:
    def test_drop_is_regression(self):
        found = judge_hit_ratio("k", "3", [0.60] * 5, 0.50)
        assert found is not None
        assert found.regression is True
        assert found.metric == "hit_ratio[3]"

    def test_within_drift_green(self):
        assert judge_hit_ratio("k", "3", [0.60] * 5, 0.58) is None

    def test_rise_is_improvement(self):
        found = judge_hit_ratio("k", "3", [0.60] * 5, 0.70)
        assert found is not None and found.regression is False


# -- store entry points ------------------------------------------------------


class TestDetectRowAnomalies:
    def test_injected_regression_flagged_from_history_alone(self):
        history = [_row(1000, {"1": 0.6}) for _ in range(5)]
        current = _row(1100, {"1": 0.6})  # +10% cycles
        anomalies = detect_row_anomalies(history, current)
        assert [a.metric for a in anomalies] == ["cycles"]
        assert anomalies[0].regression

    def test_stationary_history_green(self):
        history = [_row(1000, {"1": 0.6}) for _ in range(5)]
        assert detect_row_anomalies(history, _row(1000, {"1": 0.6})) == []

    def test_hit_ratio_judged_per_segment(self):
        history = [_row(1000, {"1": 0.6, "2": 0.8}) for _ in range(5)]
        anomalies = detect_row_anomalies(history, _row(1000, {"1": 0.4, "2": 0.8}))
        assert [a.metric for a in anomalies] == ["hit_ratio[1]"]


class TestDetectStoreAnomalies:
    def test_newest_row_judged_against_predecessors(self, tmp_path):
        db = PerfDB(str(tmp_path))
        for _ in range(5):
            db.append(_row(1000))
        db.append(_row(1100))
        anomalies = detect_store_anomalies(db)
        assert len(anomalies) == 1
        assert anomalies[0].key == "UNEPIC@O0@static"

    def test_workload_filter(self, tmp_path):
        db = PerfDB(str(tmp_path))
        for _ in range(5):
            db.append(_row(1000))
        db.append(_row(1100))
        assert detect_store_anomalies(db, workloads=["GNUGO"]) == []

    def test_empty_store(self, tmp_path):
        assert detect_store_anomalies(PerfDB(str(tmp_path))) == []
