"""Golden-file tests for the JSONL and Chrome trace exporters.

The tracer takes injected clocks and pid, so the export output is
byte-deterministic; the goldens under ``tests/obs/golden/`` are the
contract.  Regenerate them by running this file as a script:

    PYTHONPATH=src python tests/obs/test_export.py
"""

import json
from pathlib import Path

from repro.obs import Tracer, to_chrome, to_jsonl, write_chrome_trace, write_jsonl

GOLDEN_DIR = Path(__file__).parent / "golden"


class StepClock:
    """Returns 100.0, 100.001, 100.002, ... — one ms per reading."""

    def __init__(self) -> None:
        self.reads = 0

    def __call__(self) -> float:
        value = 100.0 + self.reads * 0.001
        self.reads += 1
        return value


def build_tracer() -> Tracer:
    clock = StepClock()
    tracer = Tracer(enabled=True, clock=clock, wall=clock, pid=7)
    with tracer.span("pipeline.run", opt="O0"):
        with tracer.span("pipeline.prefilter", candidates=3):
            pass
        tracer.event("cache.hit", category="cache", kind="run", key="abc123")
        with tracer.span("profile.freq", category="profiling"):
            pass
    worker = Tracer(enabled=True, clock=StepClock(), wall=StepClock(), pid=8)
    with worker.span("run.original", category="experiment", workload="RASTA"):
        pass
    tracer.absorb(worker.serialize(), tracer.spans[0])
    return tracer


class TestJsonl:
    def test_matches_golden(self):
        expected = (GOLDEN_DIR / "trace.jsonl").read_text()
        assert to_jsonl(build_tracer()) == expected

    def test_one_json_doc_per_line(self):
        lines = to_jsonl(build_tracer()).splitlines()
        docs = [json.loads(line) for line in lines]
        assert {d["type"] for d in docs} == {"span", "event"}

    def test_write_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(build_tracer(), path)
        assert path.read_text() == (GOLDEN_DIR / "trace.jsonl").read_text()

    def test_empty_tracer_yields_empty_text(self):
        assert to_jsonl(Tracer(enabled=True)) == ""


class TestChrome:
    def test_matches_golden(self):
        expected = json.loads((GOLDEN_DIR / "trace.chrome.json").read_text())
        assert to_chrome(build_tracer()) == expected

    def test_write_chrome_trace_bytes(self, tmp_path):
        path = tmp_path / "t.json"
        write_chrome_trace(build_tracer(), path)
        assert path.read_text() == (GOLDEN_DIR / "trace.chrome.json").read_text()

    def test_document_is_valid_trace_event_format(self):
        doc = to_chrome(build_tracer())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} <= {"X", "i", "M"}
        for event in events:
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert isinstance(event["ts"], int)
                assert isinstance(event["dur"], int)
            if event["ph"] == "i":
                assert event["s"] == "p"

    def test_metadata_names_every_pid(self):
        doc = to_chrome(build_tracer())
        meta_pids = {
            e["pid"] for e in doc["traceEvents"] if e["ph"] == "M"
        }
        all_pids = {e["pid"] for e in doc["traceEvents"]}
        assert meta_pids == all_pids == {7, 8}


def _regenerate() -> None:  # pragma: no cover - maintenance entry point
    GOLDEN_DIR.mkdir(exist_ok=True)
    tracer = build_tracer()
    write_jsonl(tracer, GOLDEN_DIR / "trace.jsonl")
    write_chrome_trace(tracer, GOLDEN_DIR / "trace.chrome.json")
    print(f"wrote goldens under {GOLDEN_DIR}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
