"""Tests for the shared series renderers (obs.render) and the
back-compat aliases the experiment reports keep exporting."""

from repro.obs.render import (
    SPARK_BLOCKS,
    render_hit_ratio_series,
    render_perf_history,
    render_table,
    sparkline,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_ramp_uses_full_range(self):
        out = sparkline([0.0, 0.5, 1.0])
        assert out[0] == SPARK_BLOCKS[0]
        assert out[-1] == SPARK_BLOCKS[-1]
        assert len(out) == 3

    def test_zero_range_renders_flat_mid_scale(self):
        out = sparkline([5.0, 5.0, 5.0])
        assert out == SPARK_BLOCKS[(len(SPARK_BLOCKS) - 1) // 2] * 3

    def test_pinned_scale(self):
        # a 0.5 ratio on a pinned 0..1 scale sits mid-range regardless
        # of the series' own min/max
        out = sparkline([0.5, 0.5], lo=0.0, hi=1.0)
        top = len(SPARK_BLOCKS) - 1
        assert out == SPARK_BLOCKS[int(0.5 * top + 0.5)] * 2


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["A", "Long"], [["xx", "1"], ["y", "22"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A ")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)
        assert "--" in lines[1]


class _FakeStats:
    def __init__(self, series):
        self._series = series

    def hit_ratio_series(self):
        return self._series


class TestSeriesRenderers:
    def test_hit_ratio_series(self):
        stats = {1: _FakeStats([(10, 0.5), (20, 1.0)]), 2: _FakeStats([])}
        out = render_hit_ratio_series(stats)
        assert "segment 1" in out and "final 100.0%" in out
        assert "segment 2: (no samples)" in out

    def test_perf_history_empty(self):
        assert "no recorded runs" in render_perf_history([])

    def test_perf_history_table(self):
        rows = [
            {"workload": "W", "opt": "O0", "variant": "static",
             "cycles": 100, "git": "abc", "code_version": 3,
             "output_checksum": 0xFF},
            {"workload": "W", "opt": "O0", "variant": "static",
             "cycles": 110, "git": "def", "code_version": 3,
             "output_checksum": 0xFF},
        ]
        out = render_perf_history(rows)
        assert "W@O0@static (2 runs)" in out
        assert "latest 110" in out


class TestReportBackCompat:
    # experiments.report re-exports the moved renderers; downstream code
    # (and older tests) import them from there
    def test_aliases_are_the_shared_functions(self):
        from repro.experiments import report

        assert report._sparkline is sparkline
        assert report._render is render_table
        assert report._SPARK_BLOCKS is SPARK_BLOCKS
        assert report.render_hit_ratio_series is render_hit_ratio_series
        assert report.render_perf_history is render_perf_history
