"""Tests for the shared series renderers (obs.render) and the
back-compat aliases the experiment reports keep exporting."""

from repro.obs.render import (
    SPARK_BLOCKS,
    render_event_line,
    render_hit_ratio_series,
    render_perf_history,
    render_slowest_requests,
    render_table,
    render_trace_tree,
    sparkline,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_ramp_uses_full_range(self):
        out = sparkline([0.0, 0.5, 1.0])
        assert out[0] == SPARK_BLOCKS[0]
        assert out[-1] == SPARK_BLOCKS[-1]
        assert len(out) == 3

    def test_zero_range_renders_flat_mid_scale(self):
        out = sparkline([5.0, 5.0, 5.0])
        assert out == SPARK_BLOCKS[(len(SPARK_BLOCKS) - 1) // 2] * 3

    def test_pinned_scale(self):
        # a 0.5 ratio on a pinned 0..1 scale sits mid-range regardless
        # of the series' own min/max
        out = sparkline([0.5, 0.5], lo=0.0, hi=1.0)
        top = len(SPARK_BLOCKS) - 1
        assert out == SPARK_BLOCKS[int(0.5 * top + 0.5)] * 2


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["A", "Long"], [["xx", "1"], ["y", "22"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A ")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)
        assert "--" in lines[1]


class _FakeStats:
    def __init__(self, series):
        self._series = series

    def hit_ratio_series(self):
        return self._series


class TestSeriesRenderers:
    def test_hit_ratio_series(self):
        stats = {1: _FakeStats([(10, 0.5), (20, 1.0)]), 2: _FakeStats([])}
        out = render_hit_ratio_series(stats)
        assert "segment 1" in out and "final 100.0%" in out
        assert "segment 2: (no samples)" in out

    def test_perf_history_empty(self):
        assert "no recorded runs" in render_perf_history([])

    def test_perf_history_table(self):
        rows = [
            {"workload": "W", "opt": "O0", "variant": "static",
             "cycles": 100, "git": "abc", "code_version": 3,
             "output_checksum": 0xFF},
            {"workload": "W", "opt": "O0", "variant": "static",
             "cycles": 110, "git": "def", "code_version": 3,
             "output_checksum": 0xFF},
        ]
        out = render_perf_history(rows)
        assert "W@O0@static (2 runs)" in out
        assert "latest 110" in out


def _sample_trace_record():
    return {
        "trace_id": "ab" * 16,
        "method": "POST",
        "path": "/v1/run",
        "tenant": "t0",
        "status": 200,
        "duration_ms": 12.5,
        "tree": {
            "trace_id": "ab" * 16,
            "span_count": 2,
            "event_count": 1,
            "orphans": [],
            "roots": [
                {
                    "name": "http.request",
                    "category": "service",
                    "dur_us": 12500,
                    "args": {"method": "POST", "path": "/v1/run"},
                    "events": [],
                    "children": [
                        {
                            "name": "session.run",
                            "category": "api",
                            "dur_us": 9000,
                            "args": {"tables": {"3": {}, "7": {}},
                                     "ratio": 0.6251},
                            "events": [
                                {"name": "cache.hit", "args": {"key": "k"}}
                            ],
                            "children": [],
                        }
                    ],
                }
            ],
        },
    }


class TestTraceRenderers:
    def test_trace_tree_structure(self):
        out = render_trace_tree(_sample_trace_record())
        lines = out.splitlines()
        assert lines[0] == (
            f"trace {'ab' * 16}  POST /v1/run  tenant=t0  status=200"
            "  12.5ms  (2 spans, 1 events)"
        )
        assert "  http.request  12.50ms  [service]  method=POST path=/v1/run" in out
        # children indent one level deeper; dicts collapse to their size,
        # floats render compactly
        assert "    session.run  9.00ms  [api]  ratio=0.6251 tables[2]" in out
        assert "      · cache.hit  key=k" in out
        assert "orphan" not in out

    def test_trace_tree_flags_orphans(self):
        record = _sample_trace_record()
        record["tree"]["orphans"] = [{"name": "lost.span"}]
        out = render_trace_tree(record)
        assert "!! 1 orphan span(s): lost.span" in out

    def test_trace_tree_accepts_bare_tree(self):
        record = _sample_trace_record()
        out = render_trace_tree(record["tree"])
        assert out.startswith(f"trace {'ab' * 16}")
        assert "http.request" in out

    def test_event_line(self):
        line = render_event_line(
            {
                "seq": 4,
                "ts_us": 45_296_250_000,  # 12:34:56.250 UTC
                "level": "warning",
                "name": "slo.violation",
                "args": {"tenant": "t0", "ms": 512.0},
                "trace_id": "cd" * 16,
            }
        )
        assert line == (
            "12:34:56.250 WARNING slo.violation  ms=512 tenant=t0"
            f"  trace={'cd' * 8}"
        )

    def test_event_line_minimal_and_suppressed(self):
        line = render_event_line(
            {"ts_us": 0, "level": "info", "name": "x",
             "args": {}, "rate_limited_dropped": 3}
        )
        assert line == "00:00:00.000 INFO    x  (+3 suppressed)"

    def test_slowest_requests_block(self):
        tracing = {
            "traced_runs": 8,
            "orphan_spans": 0,
            "slowest": [
                {
                    "trace_id": "ab" * 16,
                    "workload": "G721_encode",
                    "tenant": "t0",
                    "status": 200,
                    "server_ms": 215.7,
                    "tree": _sample_trace_record()["tree"],
                }
            ],
        }
        out = render_slowest_requests(tracing)
        assert out.startswith("Slowest requests (8 traced runs, 0 orphan spans)")
        assert "workload=G721_encode" in out and "server 215.7ms" in out
        assert "    http.request" in out  # trees indent under the header

    def test_slowest_requests_empty(self):
        assert render_slowest_requests({"slowest": []}) == ""


class TestReportBackCompat:
    # experiments.report re-exports the moved renderers; downstream code
    # (and older tests) import them from there
    def test_aliases_are_the_shared_functions(self):
        from repro.experiments import report

        assert report._sparkline is sparkline
        assert report._render is render_table
        assert report._SPARK_BLOCKS is SPARK_BLOCKS
        assert report.render_hit_ratio_series is render_hit_ratio_series
        assert report.render_perf_history is render_perf_history
