"""The cycle-attribution profiler must be a pure observer.

Two properties, checked for every registered workload at O0 and O3 with
both static and governed tables:

* **Conservation** — the attribution tree partitions the run: summing
  every node's own body and overhead cycles reproduces
  ``Metrics.cycles`` bit-exactly.  The cost model is a linear integer
  function of the counter vector, and the profiler snapshots it at every
  attribution boundary, so the deltas tile the total by construction —
  this test pins that construction against future cost-model or hook
  changes.
* **Zero observer effect** — a profiled run produces bit-identical
  metrics (cycles, checksum, table stats, governor telemetry) to an
  unprofiled run.  Hooks are compiled in only when a profiler is
  installed, so the unprofiled closures are untouched.
"""

import copy

import pytest

from repro.minic.sema import analyze
from repro.obs.profiler import CycleProfiler
from repro.opt.pipeline import optimize
from repro.reuse.pipeline import PipelineConfig, ReusePipeline
from repro.runtime.compiler import compile_program
from repro.runtime.governor import GovernorPolicy
from repro.runtime.machine import Machine
from repro.workloads.registry import ALL_WORKLOADS

# Same prefix trick as the fusion/governor differentials: every workload
# polls __input_avail, so a prefix keeps the full sweep fast.
_INPUT_PREFIX = 1024

_cache: dict[str, tuple] = {}


def _pipeline(workload):
    if workload.name not in _cache:
        inputs = workload.default_inputs()[:_INPUT_PREFIX]
        config = PipelineConfig(
            min_executions=workload.min_executions,
            memory_budget_bytes=workload.memory_budget_bytes,
            governor=workload.governor or GovernorPolicy(),
        )
        result = ReusePipeline(workload.source, config).run(inputs)
        _cache[workload.name] = (result, inputs)
    return _cache[workload.name]


def _measure(result, opt_level, inputs, governed, profiled):
    program = copy.deepcopy(result.program)
    analyze(program)
    optimize(program, opt_level)
    machine = Machine(opt_level)
    machine.set_inputs(list(inputs))
    profiler = None
    if profiled:
        profiler = CycleProfiler(machine)
        machine.cycle_profiler = profiler
    for seg_id, table in result.build_tables(governed=governed).items():
        machine.install_table(seg_id, table)
    compile_program(program, machine).run("main")
    profile = profiler.finalize() if profiler is not None else None
    return machine.metrics(), profile


def _attributed_total(profile):
    return sum(
        node.body_cycles + node.overhead_cycles
        for _, node in profile.root.walk()
    )


@pytest.mark.parametrize("governed", [False, True], ids=["static", "governed"])
@pytest.mark.parametrize("opt_level", ["O0", "O3"])
@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_attribution_conserves_cycles(workload, opt_level, governed):
    result, inputs = _pipeline(workload)
    plain, _ = _measure(result, opt_level, inputs, governed, profiled=False)
    profiled, profile = _measure(result, opt_level, inputs, governed, profiled=True)
    # conservation: the tree tiles the run, bit-exactly
    assert _attributed_total(profile) == profiled.cycles
    assert profile.total_cycles == profiled.cycles
    # zero observer effect: the profiled run is the same run
    assert profiled == plain
    # the per-segment aggregation conserves the intrinsic counts
    for seg_id, att in profile.segments().items():
        assert att.hits + att.misses + att.bypassed == att.executions, seg_id
        stats = profiled.table_stats.get(seg_id)
        if stats is not None and not governed:
            assert att.hits == stats.hits, seg_id
