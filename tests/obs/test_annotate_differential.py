"""Line-level attribution must conserve cycles and observe nothing.

Three pinned properties of the ``profile="lines"`` mode behind
``repro annotate``:

* **Line conservation** — bucketing every simulated cycle by source
  line tiles the run: ``CycleProfile.line_total()`` reproduces
  ``Metrics.cycles`` bit-exactly, on both backends, at O0 and O3, and
  on the VM's dispatch engine as well as its default translate engine.
* **Backend agreement** — the closure tree and the bytecode VM charge
  the *same lines the same cycles* (the line marks sit at charge-flush
  boundaries, so the per-line dicts match bit-for-bit), and their
  source maps locate every reuse site on the same lines.
* **Zero observer effect** — recording a :class:`SourceMap` never
  changes the emitted bytecode, and a line-mode run produces the same
  metrics (cycles, checksum, outputs) as a plain or tree-profiled run.
"""

import pytest

from repro import api
from repro.experiments.adaptive import workload_config
from repro.workloads import get_workload

# a loop-segment workload and a function-segment workload keep the sweep
# representative but cheap; the full 14-workload reconciliation is the
# acceptance sweep behind ``repro annotate`` itself
WORKLOADS = ("UNEPIC", "G721_encode")

_cache: dict[tuple, api.RunResult] = {}


def _line_run(name: str, opt: str, backend: str, engine=None, monkeypatch=None):
    key = (name, opt, backend, engine)
    if key not in _cache:
        if engine is not None:
            monkeypatch.setenv("REPRO_VM_ENGINE", engine)
        workload = get_workload(name)
        program = api.compile(
            workload.source,
            api.CompileOptions(
                opt=opt,
                config=workload_config(workload),
                profile="lines",
                backend=backend,
            ),
        )
        inputs = workload.default_inputs()
        program.profile(inputs)
        _cache[key] = program.run(inputs)
    return _cache[key]


@pytest.mark.parametrize("backend", ["closures", "vm"])
@pytest.mark.parametrize("opt", ["O0", "O3"])
@pytest.mark.parametrize("name", WORKLOADS)
def test_line_attribution_conserves_cycles(name, opt, backend):
    result = _line_run(name, opt, backend)
    profile = result.profile()
    assert profile.lines, "line mode must populate per-line buckets"
    assert profile.line_total() == result.metrics.cycles
    # and the tree-level conservation still holds underneath
    assert profile.total_cycles == result.metrics.cycles


@pytest.mark.parametrize("opt", ["O0", "O3"])
@pytest.mark.parametrize("name", WORKLOADS)
def test_backends_agree_line_for_line(name, opt):
    closures = _line_run(name, opt, "closures")
    vm = _line_run(name, opt, "vm")
    assert closures.metrics.cycles == vm.metrics.cycles
    assert closures.metrics.output_checksum == vm.metrics.output_checksum
    c_lines = {k: tuple(v) for k, v in closures.profile().lines.items()}
    v_lines = {k: tuple(v) for k, v in vm.profile().lines.items()}
    assert c_lines == v_lines
    # the source maps agree on where every reuse site lives
    assert closures.source_map.backend == "closures"
    assert vm.source_map.backend == "vm"
    assert closures.source_map.sites() == vm.source_map.sites()


def test_dispatch_engine_matches_translate(monkeypatch):
    translate = _line_run("UNEPIC", "O0", "vm")
    dispatch = _line_run("UNEPIC", "O0", "vm", engine="dispatch",
                         monkeypatch=monkeypatch)
    assert dispatch.profile().line_total() == dispatch.metrics.cycles
    assert dispatch.metrics.cycles == translate.metrics.cycles
    assert (
        {k: tuple(v) for k, v in dispatch.profile().lines.items()}
        == {k: tuple(v) for k, v in translate.profile().lines.items()}
    )


def test_source_map_emission_does_not_change_bytecode():
    from repro.minic.parser import parse_program
    from repro.minic.sema import analyze
    from repro.runtime.machine import Machine
    from repro.runtime.srcmap import SourceMap
    from repro.runtime.vm.vm import compile_vm_program

    source = get_workload("UNEPIC").source

    def _compile(with_map):
        program = parse_program(source)
        analyze(program)
        machine = Machine("O0", backend="vm")
        if with_map:
            machine.source_map = SourceMap()
        vm_program = compile_vm_program(program, machine)
        return {
            name: (tuple(fn.code), tuple(fn.consts))
            for name, fn in vm_program.functions.items()
        }

    assert _compile(with_map=False) == _compile(with_map=True)


@pytest.mark.parametrize("backend", ["closures", "vm"])
def test_line_mode_has_no_observer_effect(backend):
    workload = get_workload("UNEPIC")
    inputs = workload.default_inputs()
    results = {}
    for profile in (False, True, "lines"):
        program = api.compile(
            workload.source,
            api.CompileOptions(
                config=workload_config(workload),
                profile=profile,
                backend=backend,
            ),
        )
        program.profile(inputs)
        result = program.run(inputs)
        results[profile] = (
            result.metrics.cycles,
            result.metrics.output_checksum,
            result.value,
        )
    assert results[False] == results[True] == results["lines"]


def test_rejects_unknown_profile_mode():
    with pytest.raises(api.ConfigError):
        api.compile(
            "int main(void) { return 0; }", api.CompileOptions(profile="bogus")
        )
