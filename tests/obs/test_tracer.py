"""Tests for the structured tracer (spans, events, pool transport)."""

import threading

import pytest

from repro.obs import Span, Tracer, get_tracer, set_tracer
from repro.obs.tracer import (
    _NULL_SPAN,
    assemble_tree,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)
from repro.runtime.machine import Machine


class FakeClock:
    """Deterministic monotonic + wall clocks for exact timing assertions."""

    def __init__(self, start: float = 1000.0, step: float = 0.001) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def make_tracer(**kwargs) -> Tracer:
    clock = FakeClock()
    kwargs.setdefault("clock", clock)
    kwargs.setdefault("wall", clock)
    kwargs.setdefault("pid", 42)
    kwargs.setdefault("enabled", True)
    return Tracer(**kwargs)


class TestDisabledTracer:
    def test_span_returns_shared_null_context(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is _NULL_SPAN
        assert tracer.span("b", category="x", foo=1) is _NULL_SPAN

    def test_null_span_enters_as_none(self):
        tracer = Tracer(enabled=False)
        with tracer.span("a") as span:
            assert span is None
        assert tracer.spans == []

    def test_event_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.event("cache.hit", key="k")
        assert tracer.events == []

    def test_absorb_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.absorb({"spans": [], "events": []})
        assert tracer.spans == []


class TestSpans:
    def test_nesting_sets_parent(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id

    def test_sibling_spans_share_parent(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id

    def test_duration_from_injected_clock(self):
        tracer = make_tracer()
        with tracer.span("timed") as span:
            pass
        # FakeClock advances 1 ms per read; enter + exit = one step apart
        # (float subtraction may round one microsecond down)
        assert span.dur_us in (999, 1000)

    def test_span_args_recorded(self):
        tracer = make_tracer()
        with tracer.span("s", category="c", workload="RASTA", n=3) as span:
            span.args["late"] = True
        assert span.category == "c"
        assert span.args["workload"] == "RASTA"
        assert span.args["n"] == 3
        assert span.args["late"] is True

    def test_machine_cycle_attribution(self):
        tracer = make_tracer()
        machine = Machine("O0")
        with tracer.span("work", machine=machine) as span:
            machine.counters[0] += 10  # charge some ALU ops
        assert span.args["cycles_begin"] == 0
        assert span.args["cycles"] == machine.cycles
        assert span.args["cycles"] > 0

    def test_exception_recorded_and_propagated(self):
        tracer = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom") as span:
                raise ValueError("no")
        assert span.args["error"] == "ValueError"
        assert tracer._stack == []

    def test_event_parented_to_open_span(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            tracer.event("cache.hit", category="cache", key="k")
        (event,) = tracer.events
        assert event["parent_id"] == outer.span_id
        assert event["args"] == {"key": "k"}


class TestTransport:
    def test_serialize_round_trip(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("tick")
        payload = tracer.serialize()
        assert [s["name"] for s in payload["spans"]] == ["outer", "inner"]
        assert payload["events"][0]["name"] == "tick"

    def test_absorb_remaps_ids_and_reparents_roots(self):
        worker = make_tracer(pid=43)
        with worker.span("w.root"):
            with worker.span("w.child"):
                worker.event("w.event")
        payload = worker.serialize()

        coordinator = make_tracer()
        with coordinator.span("compare_many") as parent:
            coordinator.absorb(payload, parent)
        by_name = {s.name: s for s in coordinator.spans}
        root = by_name["w.root"]
        child = by_name["w.child"]
        # worker roots hang under the coordinating span; children follow
        assert root.parent_id == parent.span_id
        assert child.parent_id == root.span_id
        # ids were remapped into the coordinator's space (no collisions)
        ids = [s.span_id for s in coordinator.spans]
        assert len(ids) == len(set(ids))
        # worker identity (pid) survives for the multi-process timeline
        assert root.pid == 43
        (event,) = coordinator.events
        assert event["parent_id"] == child.span_id

    def test_absorb_without_parent_keeps_roots(self):
        worker = make_tracer()
        with worker.span("w"):
            pass
        coordinator = make_tracer()
        coordinator.absorb(worker.serialize())
        assert coordinator.spans[0].parent_id is None

    def test_absorb_none_payload(self):
        tracer = make_tracer()
        tracer.absorb(None)
        assert tracer.spans == []


class TestProcessLocal:
    def test_set_tracer_returns_previous(self):
        mine = Tracer(enabled=True)
        previous = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            set_tracer(previous)

    def test_default_tracer_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        previous = set_tracer(None)
        try:
            assert get_tracer().enabled is False
        finally:
            set_tracer(previous)

    @pytest.mark.parametrize("value", ["0", "", "false", "off", "no", " 0 ", "FALSE"])
    def test_falsy_env_values_leave_tracing_disabled(self, monkeypatch, value):
        # "REPRO_TRACE=0" must mean off, not "set, therefore on"
        monkeypatch.setenv("REPRO_TRACE", value)
        previous = set_tracer(None)
        try:
            assert get_tracer().enabled is False
        finally:
            set_tracer(previous)

    def test_clear_resets_ids(self):
        tracer = make_tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.spans == []
        with tracer.span("b") as span:
            pass
        assert span.span_id == 1


class TestTraceparent:
    def test_round_trip(self):
        trace_id = new_trace_id()
        span_id = new_span_id()
        parsed = parse_traceparent(format_traceparent(trace_id, span_id))
        assert parsed == (trace_id, span_id)

    def test_ids_well_formed(self):
        assert len(new_trace_id()) == 32
        int(new_trace_id(), 16)  # pure hex
        assert 0 < new_span_id() < 2**64

    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "not-a-traceparent",
            "00-abc-def-01",                                  # wrong lengths
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",        # all-zero trace
            "00-" + "1" * 32 + "-" + "0" * 16 + "-01",        # all-zero span
            "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",        # forbidden version
            "00-" + "x" * 32 + "-" + "2" * 16 + "-01",        # non-hex
            "00-" + "1" * 32 + "-" + "2" * 16,                # missing flags
        ],
    )
    def test_malformed_means_untraced(self, value):
        assert parse_traceparent(value) is None

    def test_case_and_whitespace_tolerated(self):
        header = "  00-" + "A" * 32 + "-" + "B" * 16 + "-01  "
        parsed = parse_traceparent(header)
        assert parsed == ("a" * 32, int("b" * 16, 16))


class TestTraceContext:
    def test_spans_stamped_with_trace_id(self):
        tracer = make_tracer(trace_id="ab" * 16)
        with tracer.span("s"):
            tracer.event("e")
        assert tracer.spans[0].trace_id == "ab" * 16
        assert tracer.events[0]["trace_id"] == "ab" * 16
        assert tracer.spans[0].to_dict()["trace_id"] == "ab" * 16

    def test_remote_parent_adopts_roots(self):
        tracer = make_tracer(remote_parent=777)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        tracer.event("loose")  # no open span: parented to the remote too
        assert tracer.spans[0].parent_id == 777
        assert tracer.spans[1].parent_id == tracer.spans[0].span_id
        assert tracer.events[0]["parent_id"] == 777

    def test_current_span_id_tracks_stack(self):
        tracer = make_tracer(remote_parent=777)
        assert tracer.current_span_id() == 777
        with tracer.span("s") as span:
            assert tracer.current_span_id() == span.span_id
        assert tracer.current_span_id() == 777


class TestAssembleTree:
    def _payload(self):
        tracer = make_tracer(trace_id="cd" * 16, remote_parent=777)
        with tracer.span("http.request"):
            with tracer.span("session.run"):
                tracer.event("cache.hit")
            with tracer.span("machine.run"):
                pass
        return tracer.serialize()

    def test_full_reassembly(self):
        tree = assemble_tree(self._payload(), remote_parent=777)
        assert tree["trace_id"] == "cd" * 16
        assert tree["span_count"] == 3 and tree["event_count"] == 1
        assert tree["orphans"] == [] and tree["orphan_events"] == []
        (root,) = tree["roots"]
        assert root["name"] == "http.request"
        assert [c["name"] for c in root["children"]] == [
            "session.run", "machine.run",
        ]
        assert root["children"][0]["events"][0]["name"] == "cache.hit"

    def test_unknown_parent_is_orphan(self):
        payload = self._payload()
        payload["spans"][1]["parent_id"] = 999999  # sever session.run
        tree = assemble_tree(payload, remote_parent=777)
        assert [o["name"] for o in tree["orphans"]] == ["session.run"]
        # the event parented under the orphan still attaches to it
        assert tree["orphan_events"] == []

    def test_without_remote_parent_roots_become_orphans(self):
        # remote_parent undeclared: the root references an unseen parent
        tree = assemble_tree(self._payload())
        assert [o["name"] for o in tree["orphans"]] == ["http.request"]

    def test_empty_payload(self):
        tree = assemble_tree({"spans": [], "events": []})
        assert tree["roots"] == [] and tree["span_count"] == 0


class TestThreadLocalOverride:
    def test_override_is_per_thread(self):
        mine = Tracer(enabled=True, trace_id="ee" * 16)
        previous = set_tracer(mine)
        seen = {}
        try:
            def probe():
                seen["other"] = get_tracer()

            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
            assert get_tracer() is mine
            # the other thread never sees this thread's override
            assert seen["other"] is not mine
        finally:
            set_tracer(previous)


class TestSpanDict:
    def test_to_dict_fields(self):
        span = Span(
            span_id=7, parent_id=3, name="n", category="c",
            start_us=123, dur_us=45, pid=9, args={"k": 1},
        )
        assert span.to_dict() == {
            "span_id": 7,
            "parent_id": 3,
            "name": "n",
            "category": "c",
            "start_us": 123,
            "dur_us": 45,
            "pid": 9,
            "args": {"k": 1},
        }
