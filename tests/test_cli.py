"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
int tab[8] = {5, 3, 8, 1, 9, 2, 7, 4};

static int kernel(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 6; i++)
        r += tab[i] * ((v + i) & 31) + v % (i + 2);
    return r;
}

int main(void) {
    int acc = 0;
    while (__input_avail())
        acc += kernel(__input_int());
    __output_int(acc);
    return acc;
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


class TestRun:
    def test_run_prints_metrics(self, program_file, capsys):
        rc = main(["run", program_file, "--inputs", "1,2,3,1,2,3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cycles:" in out
        assert "energy:" in out
        assert "checksum" in out

    def test_run_o3_fewer_cycles(self, program_file, capsys):
        main(["run", program_file, "--inputs", "1,2,3"])
        o0 = capsys.readouterr().out
        main(["run", program_file, "--opt", "O3", "--inputs", "1,2,3"])
        o3 = capsys.readouterr().out
        cycles0 = int(o0.split("cycles: ")[1].split()[0])
        cycles3 = int(o3.split("cycles: ")[1].split()[0])
        assert cycles3 < cycles0

    def test_inputs_file(self, program_file, tmp_path, capsys):
        stream = tmp_path / "inputs.txt"
        stream.write_text("4 5 6 4 5 6")
        rc = main(["run", program_file, "--inputs-file", str(stream)])
        assert rc == 0
        assert "output: 1 values" in capsys.readouterr().out


class TestTransform:
    def test_transform_prints_source_and_speedup(self, program_file, capsys):
        inputs = ",".join(["7", "9", "7", "9"] * 30)
        rc = main(["transform", program_file, "--inputs", inputs, "--min-executions", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "__reuse_probe" in out
        assert "speedup:" in out
        assert "outputs match: True" in out

    def test_no_measure(self, program_file, capsys):
        inputs = ",".join(["7", "9"] * 40)
        rc = main(
            [
                "transform",
                program_file,
                "--inputs",
                inputs,
                "--min-executions",
                "8",
                "--no-measure",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "speedup" not in out


class TestWorkloads:
    def test_lists_all_fourteen(self, capsys):
        rc = main(["workloads"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("[primary]") == 7
        assert out.count("[variant]") == 7
        assert "GNUGO" in out


class TestReport:
    def test_table3_for_one_workload(self, capsys):
        rc = main(["report", "--table", "3", "--workload", "RASTA"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 3" in out
        assert "RASTA" in out

    def test_missing_selector_errors(self, capsys):
        rc = main(["report"])
        assert rc == 2


class TestTrace:
    def test_trace_emits_chrome_jsonl_and_ledger(self, program_file, tmp_path, capsys):
        import json

        inputs = ",".join(["7", "9", "7", "9"] * 30)
        rc = main(
            [
                "trace", program_file,
                "--inputs", inputs,
                "--min-executions", "8",
                "--out-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        # the printed ledger table names every candidate's fate
        assert "Segment" in out and "Stage" in out

        with open(tmp_path / "prog.trace.json") as f:
            chrome = json.load(f)
        names = {e["name"] for e in chrome["traceEvents"]}
        assert {"pipeline.run", "pipeline.prefilter", "profile.freq",
                "profile.value", "pipeline.transform"} <= names
        assert {e["ph"] for e in chrome["traceEvents"]} <= {"X", "i", "M"}

        with open(tmp_path / "prog.trace.jsonl") as f:
            docs = [json.loads(line) for line in f]
        assert any(d["type"] == "span" for d in docs)

        with open(tmp_path / "prog.ledger.json") as f:
            ledger = json.load(f)
        for seg in ledger["segments"]:
            if seg["selected"]:
                continue
            # every non-selected candidate has a rejecting verdict that
            # names the stage and carries a margin or a reason
            rejecting = [v for v in seg["verdicts"] if not v["passed"]]
            assert rejecting, f"segment {seg['seg_id']} has no rejection"
            v = rejecting[0]
            assert v["stage"]
            assert v["margin"] is not None or v["detail"].get("reason")

    def test_trace_why_query(self, program_file, tmp_path, capsys):
        inputs = ",".join(["7", "9"] * 40)
        rc = main(
            [
                "trace", program_file,
                "--inputs", inputs,
                "--min-executions", "8",
                "--out-dir", str(tmp_path),
                "--why", "kernel@anything",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "kernel#" in out
        assert "feasibility" in out

    def test_trace_does_not_leak_process_tracer(self, program_file, tmp_path):
        from repro.obs import get_tracer

        inputs = ",".join(["7", "9"] * 20)
        main(["trace", program_file, "--inputs", inputs,
              "--min-executions", "8", "--out-dir", str(tmp_path)])
        assert get_tracer().enabled is False


class TestStats:
    def test_stats_for_file(self, program_file, capsys):
        inputs = ",".join(["7", "9", "7", "9"] * 30)
        rc = main(
            ["stats", program_file, "--inputs", inputs, "--min-executions", "8"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Reuse table telemetry" in out
        assert "EmptyMiss" in out and "Evictions" in out and "OccHWM" in out
        assert "Hit-ratio over time" in out

    def test_stats_for_workload(self, capsys):
        rc = main(["stats", "G721_encode"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Reuse table telemetry" in out

    def test_stats_nothing_transformed(self, tmp_path, capsys):
        path = tmp_path / "empty.c"
        path.write_text("int main(void) { return 0; }")
        rc = main(["stats", str(path)])
        assert rc == 1
        assert "nothing was transformed" in capsys.readouterr().out


class TestUnknownWorkloadHardening:
    """Every workload-taking command exits 2 (not a traceback) on an
    unknown name, and the error lists the registered workloads so the
    user can correct the spelling."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["annotate", "NOSUCH"],
            ["disasm", "NOSUCH"],
            ["stats", "NOSUCH"],
            ["trace", "NOSUCH"],
            ["report", "--table", "3", "--workload", "NOSUCH"],
        ],
        ids=["annotate", "disasm", "stats", "trace", "report"],
    )
    def test_unknown_workload_exits_two_and_lists_names(self, argv, capsys):
        rc = main(argv)
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown workload 'NOSUCH'" in err
        # valid names are suggested in the message
        assert "UNEPIC" in err and "GNUGO" in err and "G721_encode" in err


class TestAnnotate:
    def test_annotate_workload_reconciles(self, capsys):
        rc = main(["annotate", "UNEPIC"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "backend: closures" in out
        # header shows cycles and attributed totals; they must agree
        header = out.splitlines()[1]
        cycles = int(header.split("cycles")[1].split()[0])
        attributed = int(header.split("attributed")[1].split()[0])
        assert cycles == attributed > 0
        assert "probe:s0" in out and "end:s0" in out
        assert "reuse sites" in out

    def test_annotate_both_backends_writes_html(self, tmp_path, capsys):
        html_path = tmp_path / "ann.html"
        rc = main(["annotate", "UNEPIC", "--backend", "both",
                   "--html", str(html_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "backend: closures" in out and "backend: vm" in out
        html = html_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert 'data-backend="closures"' in html
        assert 'data-backend="vm"' in html
        assert "reproShow" in html

    def test_annotate_file_target(self, program_file, capsys):
        inputs = ",".join(["7", "9", "7", "9"] * 30)
        rc = main(["annotate", program_file, "--inputs", inputs,
                   "--min-executions", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "kernel" in out


class TestDisasm:
    def test_disasm_workload_interleaves_source(self, capsys):
        rc = main(["disasm", "UNEPIC"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "function collapse_pyr" in out
        assert "; line" in out          # source interleave comments
        assert "PROBE" in out           # reuse ops present by default
        assert "CHARGE" in out

    def test_disasm_no_reuse_has_no_probes(self, capsys):
        rc = main(["disasm", "UNEPIC", "--no-reuse"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PROBE" not in out
        assert "; line" in out


class TestStatsLatency:
    def test_stats_repeat_reports_quantiles(self, capsys):
        rc = main(["stats", "UNEPIC", "--repeat", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Session run latency" in out
        assert "runs 3" in out
        assert "p50" in out and "p90" in out and "p99" in out


class TestReportEndToEnd:
    def test_table4_counts(self, capsys):
        rc = main(["report", "--table", "4", "--workload", "RASTA"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 4" in out
        assert "RASTA" in out

    def test_table6_speedups(self, capsys):
        rc = main(["report", "--table", "6", "--workload", "G721_encode"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 6" in out
        assert "Harmonic Mean" in out


class TestPerfEndToEnd:
    """``repro perf record|check|report`` against a temp store/baseline.

    One workload (UNEPIC) keeps the measuring cheap; the record fixture
    runs once per module and the gate is exercised clean and with an
    injected regression (a tampered baseline row).
    """

    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("perf")
        baseline = root / "baseline.json"
        db = root / "store"
        rc = main([
            "perf", "record", "--workload", "UNEPIC",
            "--db", str(db), "--update-baseline", "--baseline", str(baseline),
        ])
        assert rc == 0
        return baseline, db

    def test_record_writes_store_and_baseline(self, recorded):
        import json

        baseline, db = recorded
        doc = json.loads(baseline.read_text())
        assert "UNEPIC@O0@static" in doc["rows"]
        lines = (db / "runs.jsonl").read_text().splitlines()
        assert len(lines) == 1
        row = json.loads(lines[0])
        assert row["segments"], "rows carry the per-segment attribution"

    def test_check_clean_exits_zero(self, recorded, capsys):
        baseline, _ = recorded
        rc = main(["perf", "check", "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK: 1 row(s)" in out

    def test_check_injected_regression_exits_nonzero(
        self, recorded, tmp_path, capsys
    ):
        import json

        baseline, _ = recorded
        doc = json.loads(baseline.read_text())
        doc["rows"]["UNEPIC@O0@static"]["cycles"] -= 1
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(doc))
        rc = main(["perf", "check", "--baseline", str(tampered)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out and "exceeds baseline" in out

    def test_check_unmatched_subset_exits_two(self, recorded, capsys):
        baseline, _ = recorded
        rc = main([
            "perf", "check", "--baseline", str(baseline),
            "--workload", "GNUGO",
        ])
        capsys.readouterr()
        assert rc == 2

    def test_report_prints_ledger_tree_and_flamegraph(self, tmp_path, capsys):
        folded = tmp_path / "unepic.folded"
        rc = main(["perf", "report", "UNEPIC", "--flamegraph", str(folded)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Measured vs ledger" in out
        assert "Cycle attribution" in out
        assert "seg:0" in out
        assert folded.read_text().startswith("run ")


class TestAnomalyGateEndToEnd:
    """``repro perf check --anomaly`` with no committed baseline anywhere:
    the gate judges a fresh measurement purely against the perf store's
    own history.  Stationary history must stay green; a story where the
    history sits 10% below what the code measures today must flag a
    regression."""

    @pytest.fixture(scope="class")
    def recorded_row(self, tmp_path_factory):
        import json

        root = tmp_path_factory.mktemp("anomaly")
        db = root / "store"
        rc = main(["perf", "record", "--workload", "UNEPIC", "--db", str(db)])
        assert rc == 0
        line = (db / "runs.jsonl").read_text().splitlines()[0]
        return json.loads(line)

    def _store_with_history(self, tmp_path, row, cycles):
        import json

        db = tmp_path / "store"
        db.mkdir()
        history = dict(row, cycles=cycles)
        (db / "runs.jsonl").write_text(
            "".join(json.dumps(history) + "\n" for _ in range(5))
        )
        return db

    def test_stationary_history_exits_zero(self, recorded_row, tmp_path, capsys):
        db = self._store_with_history(tmp_path, recorded_row, recorded_row["cycles"])
        rc = main(["perf", "check", "--anomaly", "--db", str(db)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "consistent with history" in out

    def test_injected_regression_exits_one(self, recorded_row, tmp_path, capsys):
        # history 10% below today's deterministic measurement: the fresh
        # run reads as a +11% cycle regression, from history alone
        lowered = int(recorded_row["cycles"] * 0.9)
        db = self._store_with_history(tmp_path, recorded_row, lowered)
        rc = main(["perf", "check", "--anomaly", "--db", str(db)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out and "REGRESSION" in out

    def test_report_only_always_exits_zero(self, recorded_row, tmp_path, capsys):
        lowered = int(recorded_row["cycles"] * 0.9)
        db = self._store_with_history(tmp_path, recorded_row, lowered)
        rc = main(["perf", "check", "--anomaly", "--report-only", "--db", str(db)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "would exit 1" in out

    def test_empty_store_exits_two(self, tmp_path, capsys):
        rc = main(["perf", "check", "--anomaly", "--db", str(tmp_path / "empty")])
        capsys.readouterr()
        assert rc == 2

    def test_record_appends_fresh_rows(self, recorded_row, tmp_path, capsys):
        db = self._store_with_history(tmp_path, recorded_row, recorded_row["cycles"])
        rc = main(["perf", "check", "--anomaly", "--record", "--db", str(db)])
        capsys.readouterr()
        assert rc == 0
        lines = (db / "runs.jsonl").read_text().splitlines()
        assert len(lines) == 6


class TestDashCommand:
    def test_dash_writes_self_contained_html(self, tmp_path, capsys):
        out_path = tmp_path / "dash.html"
        rc = main([
            "dash", "--workload", "UNEPIC",
            "--db", str(tmp_path / "nostore"), "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "dashboard written" in out
        html = out_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "UNEPIC@O0@static" in html
        assert "repro_machine_cycles" in html  # embedded OpenMetrics
        assert "Cycle attribution" in html
        # the annotated-source panel and the session-latency block ride along
        assert "Annotated source" in html
        assert 'data-backend="closures"' in html and 'data-backend="vm"' in html
        assert "Session run latency" in html
