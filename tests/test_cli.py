"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
int tab[8] = {5, 3, 8, 1, 9, 2, 7, 4};

static int kernel(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 6; i++)
        r += tab[i] * ((v + i) & 31) + v % (i + 2);
    return r;
}

int main(void) {
    int acc = 0;
    while (__input_avail())
        acc += kernel(__input_int());
    __output_int(acc);
    return acc;
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


class TestRun:
    def test_run_prints_metrics(self, program_file, capsys):
        rc = main(["run", program_file, "--inputs", "1,2,3,1,2,3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cycles:" in out
        assert "energy:" in out
        assert "checksum" in out

    def test_run_o3_fewer_cycles(self, program_file, capsys):
        main(["run", program_file, "--inputs", "1,2,3"])
        o0 = capsys.readouterr().out
        main(["run", program_file, "--opt", "O3", "--inputs", "1,2,3"])
        o3 = capsys.readouterr().out
        cycles0 = int(o0.split("cycles: ")[1].split()[0])
        cycles3 = int(o3.split("cycles: ")[1].split()[0])
        assert cycles3 < cycles0

    def test_inputs_file(self, program_file, tmp_path, capsys):
        stream = tmp_path / "inputs.txt"
        stream.write_text("4 5 6 4 5 6")
        rc = main(["run", program_file, "--inputs-file", str(stream)])
        assert rc == 0
        assert "output: 1 values" in capsys.readouterr().out


class TestTransform:
    def test_transform_prints_source_and_speedup(self, program_file, capsys):
        inputs = ",".join(["7", "9", "7", "9"] * 30)
        rc = main(["transform", program_file, "--inputs", inputs, "--min-executions", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "__reuse_probe" in out
        assert "speedup:" in out
        assert "outputs match: True" in out

    def test_no_measure(self, program_file, capsys):
        inputs = ",".join(["7", "9"] * 40)
        rc = main(
            [
                "transform",
                program_file,
                "--inputs",
                inputs,
                "--min-executions",
                "8",
                "--no-measure",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "speedup" not in out


class TestWorkloads:
    def test_lists_all_fourteen(self, capsys):
        rc = main(["workloads"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("[primary]") == 7
        assert out.count("[variant]") == 7
        assert "GNUGO" in out


class TestReport:
    def test_table3_for_one_workload(self, capsys):
        rc = main(["report", "--table", "3", "--workload", "RASTA"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 3" in out
        assert "RASTA" in out

    def test_missing_selector_errors(self, capsys):
        rc = main(["report"])
        assert rc == 2


class TestTrace:
    def test_trace_emits_chrome_jsonl_and_ledger(self, program_file, tmp_path, capsys):
        import json

        inputs = ",".join(["7", "9", "7", "9"] * 30)
        rc = main(
            [
                "trace", program_file,
                "--inputs", inputs,
                "--min-executions", "8",
                "--out-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        # the printed ledger table names every candidate's fate
        assert "Segment" in out and "Stage" in out

        with open(tmp_path / "prog.trace.json") as f:
            chrome = json.load(f)
        names = {e["name"] for e in chrome["traceEvents"]}
        assert {"pipeline.run", "pipeline.prefilter", "profile.freq",
                "profile.value", "pipeline.transform"} <= names
        assert {e["ph"] for e in chrome["traceEvents"]} <= {"X", "i", "M"}

        with open(tmp_path / "prog.trace.jsonl") as f:
            docs = [json.loads(line) for line in f]
        assert any(d["type"] == "span" for d in docs)

        with open(tmp_path / "prog.ledger.json") as f:
            ledger = json.load(f)
        for seg in ledger["segments"]:
            if seg["selected"]:
                continue
            # every non-selected candidate has a rejecting verdict that
            # names the stage and carries a margin or a reason
            rejecting = [v for v in seg["verdicts"] if not v["passed"]]
            assert rejecting, f"segment {seg['seg_id']} has no rejection"
            v = rejecting[0]
            assert v["stage"]
            assert v["margin"] is not None or v["detail"].get("reason")

    def test_trace_why_query(self, program_file, tmp_path, capsys):
        inputs = ",".join(["7", "9"] * 40)
        rc = main(
            [
                "trace", program_file,
                "--inputs", inputs,
                "--min-executions", "8",
                "--out-dir", str(tmp_path),
                "--why", "kernel@anything",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "kernel#" in out
        assert "feasibility" in out

    def test_trace_does_not_leak_process_tracer(self, program_file, tmp_path):
        from repro.obs import get_tracer

        inputs = ",".join(["7", "9"] * 20)
        main(["trace", program_file, "--inputs", inputs,
              "--min-executions", "8", "--out-dir", str(tmp_path)])
        assert get_tracer().enabled is False


class TestStats:
    def test_stats_for_file(self, program_file, capsys):
        inputs = ",".join(["7", "9", "7", "9"] * 30)
        rc = main(
            ["stats", program_file, "--inputs", inputs, "--min-executions", "8"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Reuse table telemetry" in out
        assert "EmptyMiss" in out and "Evictions" in out and "OccHWM" in out
        assert "Hit-ratio over time" in out

    def test_stats_for_workload(self, capsys):
        rc = main(["stats", "G721_encode"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Reuse table telemetry" in out

    def test_stats_nothing_transformed(self, tmp_path, capsys):
        path = tmp_path / "empty.c"
        path.write_text("int main(void) { return 0; }")
        rc = main(["stats", str(path)])
        assert rc == 1
        assert "nothing was transformed" in capsys.readouterr().out


class TestReportEndToEnd:
    def test_table4_counts(self, capsys):
        rc = main(["report", "--table", "4", "--workload", "RASTA"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 4" in out
        assert "RASTA" in out

    def test_table6_speedups(self, capsys):
        rc = main(["report", "--table", "6", "--workload", "G721_encode"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 6" in out
        assert "Harmonic Mean" in out
