"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
int tab[8] = {5, 3, 8, 1, 9, 2, 7, 4};

static int kernel(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 6; i++)
        r += tab[i] * ((v + i) & 31) + v % (i + 2);
    return r;
}

int main(void) {
    int acc = 0;
    while (__input_avail())
        acc += kernel(__input_int());
    __output_int(acc);
    return acc;
}
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


class TestRun:
    def test_run_prints_metrics(self, program_file, capsys):
        rc = main(["run", program_file, "--inputs", "1,2,3,1,2,3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cycles:" in out
        assert "energy:" in out
        assert "checksum" in out

    def test_run_o3_fewer_cycles(self, program_file, capsys):
        main(["run", program_file, "--inputs", "1,2,3"])
        o0 = capsys.readouterr().out
        main(["run", program_file, "--opt", "O3", "--inputs", "1,2,3"])
        o3 = capsys.readouterr().out
        cycles0 = int(o0.split("cycles: ")[1].split()[0])
        cycles3 = int(o3.split("cycles: ")[1].split()[0])
        assert cycles3 < cycles0

    def test_inputs_file(self, program_file, tmp_path, capsys):
        stream = tmp_path / "inputs.txt"
        stream.write_text("4 5 6 4 5 6")
        rc = main(["run", program_file, "--inputs-file", str(stream)])
        assert rc == 0
        assert "output: 1 values" in capsys.readouterr().out


class TestTransform:
    def test_transform_prints_source_and_speedup(self, program_file, capsys):
        inputs = ",".join(["7", "9", "7", "9"] * 30)
        rc = main(["transform", program_file, "--inputs", inputs, "--min-executions", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "__reuse_probe" in out
        assert "speedup:" in out
        assert "outputs match: True" in out

    def test_no_measure(self, program_file, capsys):
        inputs = ",".join(["7", "9"] * 40)
        rc = main(
            [
                "transform",
                program_file,
                "--inputs",
                inputs,
                "--min-executions",
                "8",
                "--no-measure",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "speedup" not in out


class TestWorkloads:
    def test_lists_all_eleven(self, capsys):
        rc = main(["workloads"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("[primary]") == 7
        assert out.count("[variant]") == 4
        assert "GNUGO" in out


class TestReport:
    def test_table3_for_one_workload(self, capsys):
        rc = main(["report", "--table", "3", "--workload", "RASTA"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 3" in out
        assert "RASTA" in out

    def test_missing_selector_errors(self, capsys):
        rc = main(["report"])
        assert rc == 2
