"""The governor must be a pure observer on stationary inputs.

A governed table in the ``active`` state charges exactly the same
simulated cycles as a plain :class:`~repro.runtime.hashtable.ReuseTable`
— the governor only *reads* the probe stream until it has evidence of
drift.  On each workload's own stationary default stream that evidence
never arrives, so a governed run must produce bit-identical metrics to a
static run (with the governor's telemetry snapshot normalized away) and
zero state transitions, for every registered workload at O0 and O3.

This is the differential that licenses installing governed tables by
default in deployments: the adaptive machinery is free until it fires.
"""

import copy
import dataclasses

import pytest

from repro.minic.sema import analyze
from repro.opt.pipeline import optimize
from repro.reuse.pipeline import PipelineConfig, ReusePipeline
from repro.runtime.compiler import compile_program
from repro.runtime.governor import GovernorPolicy
from repro.runtime.machine import Machine
from repro.workloads.registry import ALL_WORKLOADS

# Same prefix trick as the fusion and observability differentials: every
# workload polls __input_avail, so a prefix keeps the sweep fast.  All
# prefixed streams stay stationary (the drift variants shift later in
# their *alternate* streams, which this test never runs).
_INPUT_PREFIX = 1024

_cache: dict[str, tuple] = {}


def _pipeline(workload):
    if workload.name not in _cache:
        inputs = workload.default_inputs()[:_INPUT_PREFIX]
        config = PipelineConfig(
            min_executions=workload.min_executions,
            memory_budget_bytes=workload.memory_budget_bytes,
            governor=workload.governor or GovernorPolicy(),
        )
        result = ReusePipeline(workload.source, config).run(inputs)
        _cache[workload.name] = (result, inputs)
    return _cache[workload.name]


def _measure(result, opt_level, inputs, governed):
    program = copy.deepcopy(result.program)
    analyze(program)
    optimize(program, opt_level)
    machine = Machine(opt_level)
    machine.set_inputs(list(inputs))
    for seg_id, table in result.build_tables(governed=governed).items():
        machine.install_table(seg_id, table)
    compile_program(program, machine).run("main")
    return machine.metrics()


@pytest.mark.parametrize("opt_level", ["O0", "O3"])
@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_governed_noop_on_stationary_inputs(workload, opt_level):
    result, inputs = _pipeline(workload)
    if not result.selected:
        pytest.skip("nothing transformed; no tables to govern")
    static = _measure(result, opt_level, inputs, governed=False)
    governed = _measure(result, opt_level, inputs, governed=True)
    # the governor never fired: no disables, resizes, or flushes
    for seg_id, snap in governed.governor.items():
        assert snap["state"] == "active", (seg_id, snap)
        assert snap["transitions"] == [], (seg_id, snap)
        assert snap["bypassed_executions"] == 0, (seg_id, snap)
    assert governed.governor  # governed tables do report telemetry
    assert static.governor == {}
    # with the telemetry normalized away, the runs are bit-identical:
    # cycles, seconds, joules, checksum, per-segment TableStats (incl.
    # the sampled hit-ratio series), merged membership
    assert dataclasses.replace(governed, governor={}) == static
