"""Tests for the optimizer passes: folding, simplification, CSE, DCE,
and the end-to-end O3 pipeline (semantic preservation + cost reduction)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minic import astnodes as ast
from repro.minic import frontend, format_program
from repro.minic.parser import parse_expression
from repro.opt.cse import CSEPass
from repro.opt.dce import dce_program
from repro.opt.fold import fold_expr, fold_program
from repro.opt.pipeline import optimize
from repro.opt.simplify import is_pure, simplify_program
from repro.runtime import Machine, compile_program

from tests.support import run_plain


def fold_src(src):
    return fold_expr(parse_expression(src))


class TestFold:
    def test_int_arithmetic(self):
        assert fold_src("2 + 3 * 4").value == 14
        assert fold_src("(1 << 4) | 3").value == 19
        assert fold_src("-7 / 2").value == -3
        assert fold_src("-7 % 2").value == -1

    def test_wrapping(self):
        assert fold_src("2147483647 + 1").value == -(2**31)

    def test_comparisons(self):
        assert fold_src("3 < 5").value == 1
        assert fold_src("3 == 4").value == 0

    def test_float_arithmetic(self):
        e = fold_src("1.5 * 2.0")
        assert isinstance(e, ast.FloatLit)
        assert e.value == pytest.approx(3.0)

    def test_mixed_promotes_to_float(self):
        e = fold_src("3 / 2.0")
        assert isinstance(e, ast.FloatLit)
        assert e.value == pytest.approx(1.5)

    def test_division_by_zero_not_folded(self):
        e = fold_src("1 / 0")
        assert isinstance(e, ast.Binary)

    def test_logical_short_circuit_folding(self):
        assert fold_src("0 && x").value == 0
        assert fold_src("1 || x").value == 1
        e = fold_src("1 && x")
        assert isinstance(e, ast.Logical)  # depends on x

    def test_ternary_folding(self):
        e = fold_src("1 ? a : b")
        assert isinstance(e, ast.Name) and e.name == "a"

    def test_unary(self):
        assert fold_src("-(3)").value == -3
        assert fold_src("!0").value == 1
        assert fold_src("~0").value == -1

    def test_partial_fold_in_tree(self):
        e = fold_src("x + (2 * 3)")
        assert isinstance(e, ast.Binary)
        assert isinstance(e.rhs, ast.IntLit) and e.rhs.value == 6


class TestSimplify:
    def _simplify_program_text(self, src):
        prog = frontend(src)
        fold_program(prog)
        simplify_program(prog)
        return prog, format_program(prog)

    def test_add_zero_removed(self):
        _, text = self._simplify_program_text("int f(int x) { return x + 0; }")
        assert "return x;" in text

    def test_mul_one_removed(self):
        _, text = self._simplify_program_text("int f(int x) { return 1 * x; }")
        assert "return x;" in text

    def test_mul_zero_pure(self):
        _, text = self._simplify_program_text("int f(int x) { return x * 0; }")
        assert "return 0;" in text

    def test_mul_zero_impure_kept(self):
        src = """
        int g(void) { return 1; }
        int f(void) { return g() * 0; }
        """
        _, text = self._simplify_program_text(src)
        assert "g()" in text

    def test_strength_reduction_int(self):
        _, text = self._simplify_program_text("int f(int x) { return x * 8; }")
        assert "x << 3" in text

    def test_no_strength_reduction_float(self):
        _, text = self._simplify_program_text("float f(float x) { return x * 2; }")
        assert "<<" not in text

    def test_double_negation(self):
        _, text = self._simplify_program_text("int f(int x) { return - -x; }")
        assert "return x;" in text

    def test_is_pure(self):
        assert is_pure(parse_expression("a + b[i] * 2"))
        assert not is_pure(parse_expression("a = 1"))
        assert not is_pure(parse_expression("f(x)"))
        assert not is_pure(parse_expression("i++"))


class TestDCE:
    def test_pure_expression_statement_removed(self):
        prog = frontend("int f(int x) { x + 1; return x; }")
        assert dce_program(prog) > 0
        assert len(prog.function("f").body.stmts) == 1

    def test_if_true_replaced_by_branch(self):
        prog = frontend("int f(void) { if (1) return 5; else return 6; }")
        fold_program(prog)
        dce_program(prog)
        text = format_program(prog)
        assert "if" not in text
        assert "return 5;" in text

    def test_if_false_no_else_removed(self):
        prog = frontend("int f(int x) { if (0) x = 1; return x; }")
        fold_program(prog)
        dce_program(prog)
        assert "if" not in format_program(prog)

    def test_while_false_removed(self):
        prog = frontend("int f(int x) { while (0) x = 1; return x; }")
        fold_program(prog)
        dce_program(prog)
        assert "while" not in format_program(prog)

    def test_unreachable_after_return_removed(self):
        prog = frontend("int f(int x) { return x; x = 1; x = 2; }")
        removed = dce_program(prog)
        assert removed == 2
        assert len(prog.function("f").body.stmts) == 1

    def test_write_only_local_removed(self):
        prog = frontend("int f(int x) { int t = x * 2; t = t + 1; return x; }")
        # t = t + 1 reads t, so t is "read" — nothing removed on pass 1
        # for the compound statement, but a plain dead store goes:
        prog2 = frontend("int f(int x) { int t; t = x * 2; return x; }")
        dce_program(prog2)
        text = format_program(prog2)
        assert "t = x" not in text

    def test_impure_rhs_of_dead_store_kept(self):
        prog = frontend(
            """
            int g(void) { return 1; }
            int f(void) { int t; t = g(); return 0; }
            """
        )
        dce_program(prog)
        assert "g()" in format_program(prog)

    def test_for_with_false_cond_keeps_init(self):
        prog = frontend("int f(int x) { for (x = 5; 0; x++) { } return x; }")
        fold_program(prog)
        dce_program(prog)
        text = format_program(prog)
        assert "for" not in text
        assert "x = 5" in text


class TestCSE:
    def test_repeated_index_subexpression(self):
        prog = frontend(
            """
            int a[8];
            int f(int i, int b, int c) { return a[i] * b + a[i] * c; }
            """
        )
        cse = CSEPass(prog)
        cse.run()
        assert cse.eliminated == 1
        text = format_program(prog)
        assert "__cse0" in text
        assert text.count("a[i]") == 1

    def test_assignment_rhs_processed(self):
        prog = frontend(
            """
            int a[8];
            void f(int i) { int r; r = (a[i] + 1) * (a[i] + 1); }
            """
        )
        cse = CSEPass(prog)
        cse.run()
        assert cse.eliminated == 1

    def test_small_expressions_not_hoisted(self):
        prog = frontend("int f(int x) { return x + x; }")
        cse = CSEPass(prog)
        cse.run()
        assert cse.eliminated == 0

    def test_impure_statement_skipped(self):
        prog = frontend(
            """
            int g(int v) { return v; }
            int f(int i) { return g(i + 1000) + g(i + 1000); }
            """
        )
        cse = CSEPass(prog)
        cse.run()
        # the two calls may have (and here do have) side-effect potential
        assert "__cse" not in format_program(prog)

    def test_conditionally_evaluated_not_hoisted(self):
        prog = frontend(
            "int f(int p, int i, int a) { return p ? (a + i) * (a + i) : 0; }"
        )
        CSEPass(prog).run()
        assert "__cse" not in format_program(prog)

    def test_semantics_preserved(self):
        src = """
        int a[4] = {5, 6, 7, 8};
        int f(int i) { return (a[i] + 2) * (a[i] + 2) + (a[i] + 2); }
        int main(void) { return f(1) + f(3); }
        """
        before, _ = run_plain(src)
        prog = frontend(src)
        CSEPass(prog).run()
        after, _ = run_plain(format_program(prog))
        assert before == after


class TestPipeline:
    QUAN = """
    int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};
    int quan(int val) {
        int i;
        for (i = 0; i < 15; i++)
            if (val < power2[i])
                break;
        return (i);
    }
    int main(void) {
        int s = 0;
        for (int v = 0; v < 2000; v += 7)
            s += quan(v);
        return s;
    }
    """

    def _run_opt(self, src, level):
        prog = frontend(src)
        optimize(prog, level)
        machine = Machine(level)
        compiled = compile_program(prog, machine)
        result = compiled.run("main")
        return result, machine

    def test_o3_preserves_result(self):
        r0, _ = self._run_opt(self.QUAN, "O0")
        r3, _ = self._run_opt(self.QUAN, "O3")
        assert r0 == r3

    def test_o3_reduces_cycles(self):
        _, m0 = self._run_opt(self.QUAN, "O0")
        _, m3 = self._run_opt(self.QUAN, "O3")
        assert m3.cycles < m0.cycles

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            optimize(frontend("int main(void) { return 0; }"), "O2")

    def test_o0_is_identity(self):
        prog = frontend(self.QUAN)
        text_before = format_program(prog)
        optimize(prog, "O0")
        assert format_program(prog) == text_before

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=8),
        st.integers(min_value=2, max_value=9),
    )
    def test_differential_o0_vs_o3(self, values, mod):
        """Property: optimization never changes program output."""
        body = "".join(
            f"s += f(__input_int() % {mod});\n" for _ in values
        )
        src = f"""
        int tab[10] = {{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}};
        int f(int x) {{
            int r = 0;
            if (x < 0) x = -x;
            for (int i = 0; i <= x; i++)
                r += tab[i] * 2 + i * 4 + 0;
            return r * 1 + 0;
        }}
        int main(void) {{
            int s = 0;
            {body}
            __output_int(s);
            return s;
        }}
        """
        r0, m0 = run_plain(src, inputs=values)
        prog = frontend(src)
        optimize(prog, "O3")
        machine = Machine("O3")
        machine.set_inputs(values)
        compiled = compile_program(prog, machine)
        r3 = compiled.run("main")
        assert r0 == r3
        assert m0.output_checksum == machine.output_checksum
