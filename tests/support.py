"""Shared test helpers.

``run_plain`` preserves the semantics of the deprecated
``repro.runtime.run_source``: compile and interpret mini-C without ever
running the optimizer (``opt_level`` only selects the cost table).  Tests
that need exactly those semantics use this helper; the facade
(``repro.compile``) is *not* equivalent because it optimizes at O3.
"""

from repro.minic import frontend
from repro.runtime import Machine, compile_program


def run_plain(source: str, entry: str = "main", opt_level: str = "O0", inputs=()):
    """Compile and run mini-C source; returns (result, metrics)."""
    program = frontend(source)
    machine = Machine(opt_level)
    machine.set_inputs(list(inputs))
    result = compile_program(program, machine).run(entry)
    return result, machine.metrics()
