#!/usr/bin/env python3
"""Quickstart: memoize a mini-C function with the computation-reuse
pipeline and measure the effect.

Run:  python examples/quickstart.py
"""

from repro import Machine, PipelineConfig, ReusePipeline, compile_program, format_program
from repro.minic import frontend

# A program with an expensive pure kernel called on repetitive values —
# exactly the value-locality situation the paper targets.
SOURCE = """
int weights[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};

static int score(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 16; i++)
        r += weights[i] * ((v >> (i & 7)) & 31) + v % (i + 2);
    return r;
}

int main(void) {
    int total = 0;
    while (__input_avail())
        total += score(__input_int());
    __output_int(total);
    return total;
}
"""

# A value stream with high repetition (reuse rate ~ 1 - 5/600).
INPUTS = [17, 42, 99, 17, 256, 42, 17, 99, 4096, 256] * 60


def run_program(program, inputs, tables=None):
    machine = Machine("O0")
    machine.set_inputs(list(inputs))
    for seg_id, table in (tables or {}).items():
        machine.install_table(seg_id, table)
    compile_program(program, machine).run("main")
    return machine


def main():
    # 1. run the paper's pipeline: analyses, profiling, cost-benefit
    #    selection, and the source-to-source transformation
    pipeline = ReusePipeline(SOURCE, PipelineConfig(min_executions=32))
    result = pipeline.run(INPUTS)

    print("=== pipeline summary ===")
    print(f"segments analyzed:    {result.counts['analyzed']}")
    print(f"segments profiled:    {result.counts['profiled']}")
    print(f"segments transformed: {result.counts['transformed']}")
    for segment in result.selected:
        print(
            f"  -> {segment.describe()}\n"
            f"     reuse rate R = {segment.reuse_rate:.3f}, "
            f"granularity C = {segment.measured_granularity:.0f} cycles, "
            f"overhead O = {segment.overhead:.0f} cycles, "
            f"gain per execution = {segment.gain:.0f} cycles"
        )

    # 2. the transformation is source-to-source: inspect the result
    print("\n=== transformed source ===")
    print(format_program(result.program))

    # 3. measure original vs transformed on the simulated StrongARM
    original = run_program(frontend(SOURCE), INPUTS)
    transformed = run_program(result.program, INPUTS, result.build_tables())

    assert original.output_checksum == transformed.output_checksum
    print("=== measurement (simulated SA-1110 @ 206 MHz) ===")
    print(f"original:    {original.seconds * 1e3:8.3f} ms   {original.energy_joules:.5f} J")
    print(f"transformed: {transformed.seconds * 1e3:8.3f} ms   {transformed.energy_joules:.5f} J")
    print(f"speedup:     {original.seconds / transformed.seconds:.2f}x")
    print(
        "energy save: "
        f"{(1 - transformed.energy_joules / original.energy_joules) * 100:.1f}%"
    )


if __name__ == "__main__":
    main()
