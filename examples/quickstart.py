#!/usr/bin/env python3
"""Quickstart: memoize a mini-C function with the computation-reuse
pipeline and measure the effect — all through the stable ``repro`` facade.

Run:  python examples/quickstart.py
"""

import repro

# A program with an expensive pure kernel called on repetitive values —
# exactly the value-locality situation the paper targets.
SOURCE = """
int weights[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};

static int score(int v) {
    int r = 0;
    int i;
    for (i = 0; i < 16; i++)
        r += weights[i] * ((v >> (i & 7)) & 31) + v % (i + 2);
    return r;
}

int main(void) {
    int total = 0;
    while (__input_avail())
        total += score(__input_int());
    __output_int(total);
    return total;
}
"""

# A value stream with high repetition (reuse rate ~ 1 - 5/600).
INPUTS = [17, 42, 99, 17, 256, 42, 17, 99, 4096, 256] * 60


def main():
    # 1. compile through the facade: the paper's pipeline (analyses,
    #    profiling, cost-benefit selection, source-to-source transform)
    #    runs on the first call that needs it
    program = repro.compile(
        SOURCE,
        repro.CompileOptions(config=repro.PipelineConfig(min_executions=32)),
    )
    result = program.profile(INPUTS)

    print("=== pipeline summary ===")
    print(f"segments analyzed:    {result.counts['analyzed']}")
    print(f"segments profiled:    {result.counts['profiled']}")
    print(f"segments transformed: {result.counts['transformed']}")
    for segment in result.selected:
        print(
            f"  -> {segment.describe()}\n"
            f"     reuse rate R = {segment.reuse_rate:.3f}, "
            f"granularity C = {segment.measured_granularity:.0f} cycles, "
            f"overhead O = {segment.overhead:.0f} cycles, "
            f"gain per execution = {segment.gain:.0f} cycles"
        )

    # 2. the transformation is source-to-source: inspect the result
    print("\n=== transformed source ===")
    print(program.transformed_source())

    # 3. measure original vs transformed on the simulated StrongARM
    original = repro.compile(SOURCE, repro.CompileOptions(reuse=False)).run(INPUTS)
    transformed = program.run(INPUTS)

    assert original.output_checksum == transformed.output_checksum
    print("=== measurement (simulated SA-1110 @ 206 MHz) ===")
    print(f"original:    {original.seconds * 1e3:8.3f} ms   {original.energy_joules:.5f} J")
    print(f"transformed: {transformed.seconds * 1e3:8.3f} ms   {transformed.energy_joules:.5f} J")
    print(f"speedup:     {transformed.speedup_vs(original):.2f}x")
    print(
        "energy save: "
        f"{(1 - transformed.energy_joules / original.energy_joules) * 100:.1f}%"
    )


if __name__ == "__main__":
    main()
