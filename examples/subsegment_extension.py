#!/usr/bin/env python3
"""The sub-segment extension (the paper's §5 future work) in action.

When the expensive kernel is written *inline* inside an I/O loop, the
published scheme has no candidate: the loop body performs I/O and cannot
be memoized as a whole.  The extension searches the body for its most
cost-effective clean statement range and memoizes just that.

Run:  python examples/subsegment_extension.py
"""

import repro
from repro.workloads.inputs import unepic_coeffs

SOURCE = """
int main(void) {
    int checksum = 0;
    while (__input_avail()) {
        int v = __input_int();
        int mag = (v > 0) ? v : -v;
        int r = 0;
        int k;
        for (k = 0; k < 20; k++) {
            r += ((mag + k) * (mag + 13)) >> (k & 7);
            r += (mag * 21) / (k + 1);
        }
        if (v < 0)
            r = -r;
        checksum += r & 65535;
        __output_int(checksum & 255);
    }
    __output_int(checksum);
    return checksum;
}
"""


def measure(program, inputs):
    original = repro.compile(SOURCE, repro.CompileOptions(reuse=False)).run(inputs)
    transformed = program.run(inputs)
    assert original.output_checksum == transformed.output_checksum
    return transformed.speedup_vs(original)


def main():
    inputs = unepic_coeffs(n=5000)

    base = repro.compile(
        SOURCE,
        repro.CompileOptions(config=repro.PipelineConfig(min_executions=16)),
    )
    print("published scheme:")
    print(f"  transformed segments: {len(base.profile(inputs).selected)}")
    print(f"  speedup: {measure(base, inputs):.2f}\n")

    ext = repro.compile(
        SOURCE,
        repro.CompileOptions(
            config=repro.PipelineConfig(min_executions=16, enable_subsegments=True)
        ),
    )
    print("with sub-segment candidates (enable_subsegments=True):")
    for segment in ext.profile(inputs).selected:
        print(f"  selected: {segment.describe()}  R={segment.reuse_rate:.3f}")
    print(f"  speedup: {measure(ext, inputs):.2f}\n")

    print("the memoized sub-block inside main's loop:")
    print(ext.transformed_source())


if __name__ == "__main__":
    main()
