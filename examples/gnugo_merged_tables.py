#!/usr/bin/env python3
"""Hash-table merging on the GNU Go workload (section 2.5).

``accumulate_influence`` holds eight code segments with identical input
variables.  Without merging, eight separate tables blow a handheld-sized
memory budget and segments must be dropped; the merged table (one key,
a bit vector, eight output slots) fits and keeps the full speedup.

Run:  python examples/gnugo_merged_tables.py
"""

import repro
from repro.reuse import merged_size_bytes, unmerged_size_bytes
from repro.workloads import get_workload


def measure(workload, config):
    inputs = workload.default_inputs()
    program = repro.compile(workload.source, repro.CompileOptions(config=config))
    result = program.profile(inputs)

    baseline = repro.compile(workload.source, repro.CompileOptions(reuse=False)).run(inputs)
    transformed = program.run(inputs)
    assert baseline.output_checksum == transformed.output_checksum
    return transformed.speedup_vs(baseline), result


def main():
    workload = get_workload("GNUGO")
    budget = workload.memory_budget_bytes
    print(f"memory budget for reuse tables: {budget // 1024} KB\n")

    merged_cfg = repro.PipelineConfig(
        min_executions=workload.min_executions, memory_budget_bytes=budget
    )
    unmerged_cfg = repro.PipelineConfig(
        min_executions=workload.min_executions,
        memory_budget_bytes=budget,
        enable_merging=False,
    )

    speedup_m, result_m = measure(workload, merged_cfg)
    speedup_u, result_u = measure(workload, unmerged_cfg)

    # size accounting for the eight segments, shared capacity
    members = result_m.merged[next(iter(result_m.merged))]
    capacity = max(m.distinct_inputs * 4 for m in members)
    print("=== table sizes for the eight segments ===")
    print(f"eight separate tables: {unmerged_size_bytes(members, capacity) // 1024} KB")
    print(f"one merged table:      {merged_size_bytes(members, capacity) // 1024} KB")

    print("\n=== with merging (section 2.5) ===")
    print(f"segments transformed: {len(result_m.selected)} (dropped: {len(result_m.dropped_for_memory)})")
    print(f"whole-program speedup: {speedup_m:.2f} (paper: >1.2 with merging)")

    print("\n=== without merging, same budget ===")
    print(
        f"segments transformed: {len(result_u.selected)} "
        f"(dropped for memory: {len(result_u.dropped_for_memory)})"
    )
    print(f"whole-program speedup: {speedup_u:.2f}")
    print(
        "\n(the paper's unmerged version ran out of memory on the iPAQ "
        "outright; our budgeted pipeline degrades by shedding segments)"
    )


if __name__ == "__main__":
    main()
