#!/usr/bin/env python3
"""Hash-table merging on the GNU Go workload (section 2.5).

``accumulate_influence`` holds eight code segments with identical input
variables.  Without merging, eight separate tables blow a handheld-sized
memory budget and segments must be dropped; the merged table (one key,
a bit vector, eight output slots) fits and keeps the full speedup.

Run:  python examples/gnugo_merged_tables.py
"""

from repro import Machine, PipelineConfig, compile_program
from repro.minic import frontend
from repro.reuse import ReusePipeline, merged_size_bytes, unmerged_size_bytes
from repro.workloads import get_workload


def measure(workload, config):
    inputs = workload.default_inputs()
    result = ReusePipeline(workload.source, config).run(inputs)

    mo = Machine("O0")
    mo.set_inputs(list(inputs))
    compile_program(frontend(workload.source), mo).run("main")

    mt = Machine("O0")
    mt.set_inputs(list(inputs))
    for seg_id, table in result.build_tables().items():
        mt.install_table(seg_id, table)
    compile_program(result.program, mt).run("main")
    assert mo.output_checksum == mt.output_checksum
    return mo.seconds / mt.seconds, result


def main():
    workload = get_workload("GNUGO")
    budget = workload.memory_budget_bytes
    print(f"memory budget for reuse tables: {budget // 1024} KB\n")

    merged_cfg = PipelineConfig(
        min_executions=workload.min_executions, memory_budget_bytes=budget
    )
    unmerged_cfg = PipelineConfig(
        min_executions=workload.min_executions,
        memory_budget_bytes=budget,
        enable_merging=False,
    )

    speedup_m, result_m = measure(workload, merged_cfg)
    speedup_u, result_u = measure(workload, unmerged_cfg)

    # size accounting for the eight segments, shared capacity
    members = result_m.merged[next(iter(result_m.merged))]
    capacity = max(m.distinct_inputs * 4 for m in members)
    print("=== table sizes for the eight segments ===")
    print(f"eight separate tables: {unmerged_size_bytes(members, capacity) // 1024} KB")
    print(f"one merged table:      {merged_size_bytes(members, capacity) // 1024} KB")

    print("\n=== with merging (section 2.5) ===")
    print(f"segments transformed: {len(result_m.selected)} (dropped: {len(result_m.dropped_for_memory)})")
    print(f"whole-program speedup: {speedup_m:.2f} (paper: >1.2 with merging)")

    print("\n=== without merging, same budget ===")
    print(
        f"segments transformed: {len(result_u.selected)} "
        f"(dropped for memory: {len(result_u.dropped_for_memory)})"
    )
    print(f"whole-program speedup: {speedup_u:.2f}")
    print(
        "\n(the paper's unmerged version ran out of memory on the iPAQ "
        "outright; our budgeted pipeline degrades by shedding segments)"
    )


if __name__ == "__main__":
    main()
