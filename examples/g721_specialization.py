#!/usr/bin/env python3
"""The paper's flagship example: G.721's ``quan`` function.

Demonstrates the full section 2.4 story on the real workload:

* the original ``quan(val, table, size)`` fails the O/C pre-filter
  (three inputs, one of them a 15-word table, against a tiny search
  loop);
* code specialization binds ``table`` to the invariant ``power2`` and
  ``size`` to the literal 15, leaving one integer input;
* the specialized version passes the filter, profiles a high reuse rate,
  and is transformed into a table lookup (Figure 2(b));
* the whole encoder speeds up and saves energy.

Run:  python examples/g721_specialization.py
"""

import repro
from repro.minic.pretty import format_function
from repro.workloads import get_workload


def main():
    workload = get_workload("G721_encode")
    inputs = workload.default_inputs()
    config = repro.PipelineConfig(min_executions=workload.min_executions)

    programs = {
        level: repro.compile(
            workload.source, repro.CompileOptions(opt=level, config=config)
        )
        for level in ("O0", "O3")
    }
    result = programs["O0"].profile(inputs)

    print("=== specialization (section 2.4) ===")
    for record in result.specializations:
        bindings = ", ".join(b.describe() for b in record.bindings)
        print(
            f"{record.original} -> {record.specialized} "
            f"[{bindings}] rewrote {record.call_sites} call sites"
        )

    print("\n=== the transformed specialized quan (Figure 2(b)) ===")
    for fn in result.program.functions:
        if fn.name.startswith("quan__s"):
            print(format_function(fn))
            break

    headline = max(result.selected, key=lambda s: s.gain * s.executions)
    profile = result.profiles[headline.seg_id]
    print("\n=== value-set profile of the memoized segment ===")
    print(f"executions N       = {profile.executions}")
    print(f"distinct inputs    = {profile.distinct_inputs}")
    print(f"reuse rate R       = {profile.reuse_rate:.4f}")
    print(f"granularity C      = {profile.mean_cycles:.0f} cycles/execution")
    print(f"hashing overhead O = {headline.overhead:.0f} cycles/probe")
    print(f"expected gain      = R*C - O = {headline.gain:.0f} cycles/execution")
    print("most frequent inputs:", profile.histogram()[:5])

    print("\n=== measurement ===")
    for level in ("O0", "O3"):
        original = repro.compile(
            workload.source, repro.CompileOptions(opt=level, reuse=False)
        ).run(inputs)
        transformed = programs[level].run(inputs)

        assert original.output_checksum == transformed.output_checksum
        print(
            f"{level}: {original.seconds:.4f}s -> {transformed.seconds:.4f}s "
            f"(speedup {transformed.speedup_vs(original):.2f}, paper "
            f"{workload.paper.speedup_o0 if level == 'O0' else workload.paper.speedup_o3})"
        )


if __name__ == "__main__":
    main()
