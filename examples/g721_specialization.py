#!/usr/bin/env python3
"""The paper's flagship example: G.721's ``quan`` function.

Demonstrates the full section 2.4 story on the real workload:

* the original ``quan(val, table, size)`` fails the O/C pre-filter
  (three inputs, one of them a 15-word table, against a tiny search
  loop);
* code specialization binds ``table`` to the invariant ``power2`` and
  ``size`` to the literal 15, leaving one integer input;
* the specialized version passes the filter, profiles a high reuse rate,
  and is transformed into a table lookup (Figure 2(b));
* the whole encoder speeds up and saves energy.

Run:  python examples/g721_specialization.py
"""

from repro import Machine, PipelineConfig, compile_program
from repro.minic.pretty import format_function
from repro.reuse import ReusePipeline
from repro.workloads import get_workload


def main():
    workload = get_workload("G721_encode")
    inputs = workload.default_inputs()

    pipeline = ReusePipeline(
        workload.source, PipelineConfig(min_executions=workload.min_executions)
    )
    result = pipeline.run(inputs)

    print("=== specialization (section 2.4) ===")
    for record in result.specializations:
        bindings = ", ".join(b.describe() for b in record.bindings)
        print(
            f"{record.original} -> {record.specialized} "
            f"[{bindings}] rewrote {record.call_sites} call sites"
        )

    print("\n=== the transformed specialized quan (Figure 2(b)) ===")
    for fn in result.program.functions:
        if fn.name.startswith("quan__s"):
            print(format_function(fn))
            break

    headline = max(result.selected, key=lambda s: s.gain * s.executions)
    profile = result.profiles[headline.seg_id]
    print("\n=== value-set profile of the memoized segment ===")
    print(f"executions N       = {profile.executions}")
    print(f"distinct inputs    = {profile.distinct_inputs}")
    print(f"reuse rate R       = {profile.reuse_rate:.4f}")
    print(f"granularity C      = {profile.mean_cycles:.0f} cycles/execution")
    print(f"hashing overhead O = {headline.overhead:.0f} cycles/probe")
    print(f"expected gain      = R*C - O = {headline.gain:.0f} cycles/execution")
    print("most frequent inputs:", profile.histogram()[:5])

    print("\n=== measurement ===")
    for level in ("O0", "O3"):
        from repro.minic.parser import parse_program
        from repro.minic.sema import analyze
        from repro.opt.pipeline import optimize
        import copy

        original = analyze(parse_program(workload.source))
        optimize(original, level)
        mo = Machine(level)
        mo.set_inputs(list(inputs))
        compile_program(original, mo).run("main")

        transformed = copy.deepcopy(result.program)
        analyze(transformed)
        optimize(transformed, level)
        mt = Machine(level)
        mt.set_inputs(list(inputs))
        for seg_id, table in result.build_tables().items():
            mt.install_table(seg_id, table)
        compile_program(transformed, mt).run("main")

        assert mo.output_checksum == mt.output_checksum
        print(
            f"{level}: {mo.seconds:.4f}s -> {mt.seconds:.4f}s "
            f"(speedup {mo.seconds / mt.seconds:.2f}, paper "
            f"{workload.paper.speedup_o0 if level == 'O0' else workload.paper.speedup_o3})"
        )


if __name__ == "__main__":
    main()
