#!/usr/bin/env python3
"""Explore the paper's cost-benefit model (section 2.2) numerically, then
validate one of its predictions against an actual simulated run.

Run:  python examples/cost_model_explorer.py
"""

import repro
from repro.reuse.cost_model import cost_with_reuse, gain, is_beneficial

SOURCE_TEMPLATE = """
int table[16] = {1, 2, 4, 8, 16, 32, 64, 128, 1, 2, 4, 8, 16, 32, 64, 128};

static int kernel(int v) {
    int r = 0;
    int i;
    for (i = 0; i < %(iters)d; i++)
        r += table[i & 15] * ((v + i) & 255) + v %% (i + 2);
    return r;
}

int main(void) {
    int acc = 0;
    while (__input_avail())
        acc += kernel(__input_int());
    __output_int(acc);
    return acc;
}
"""


def stream_with_reuse_rate(rate: float, n: int = 600) -> list[int]:
    """A value stream whose distinct-ratio approximates 1 - rate."""
    n_distinct = max(1, round(n * (1.0 - rate)))
    values = [(37 * i) % 100_000 for i in range(n_distinct)]
    stream = [values[i % n_distinct] for i in range(n)]
    return stream


def main():
    print("=== formula (1)-(3): when does reuse pay? ===")
    print(f"{'C':>8} {'O':>6} {'R':>6} {'cost(1)':>10} {'gain(2)':>10} {'win?':>5}")
    for c, o, r in [
        (1.28, 0.12, 0.994),   # Table 3: G721_encode
        (13859, 49.4, 0.098),  # Table 3: MPEG2_encode
        (333.7, 59.5, 0.996),  # Table 3: RASTA
        (100, 10, 0.05),       # below the R > O/C threshold
        (100, 10, 0.11),       # just above
        (50, 60, 1.00),        # O > C: can never win
    ]:
        print(
            f"{c:8g} {o:6g} {r:6.3f} {cost_with_reuse(c, o, r):10.2f} "
            f"{gain(c, o, r):10.2f} {'yes' if is_beneficial(c, o, r) else 'no':>5}"
        )

    print("\n=== prediction vs simulation across reuse rates ===")
    source = SOURCE_TEMPLATE % {"iters": 24}
    print(f"{'target R':>9} {'measured R':>11} {'predicted gain':>15} {'speedup':>8}")
    for rate in (0.0, 0.3, 0.6, 0.9, 0.98):
        inputs = stream_with_reuse_rate(rate)
        program = repro.compile(
            source,
            repro.CompileOptions(
                config=repro.PipelineConfig(min_executions=16, enable_cost_filter=False)
            ),
        )
        result = program.profile(inputs)
        segment = max(result.selected, key=lambda s: s.gain, default=None)
        if segment is None:
            print(f"{rate:9.2f}  (nothing profitable)")
            continue

        original = repro.compile(source, repro.CompileOptions(reuse=False)).run(inputs)
        transformed = program.run(inputs)
        assert original.output_checksum == transformed.output_checksum

        print(
            f"{rate:9.2f} {segment.reuse_rate:11.3f} "
            f"{segment.gain:15.1f} {transformed.speedup_vs(original):8.2f}"
        )
    print(
        "\nNote how the measured speedup crosses 1.0 exactly where "
        "formula (3)'s gain crosses zero."
    )


if __name__ == "__main__":
    main()
