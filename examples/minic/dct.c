/* A toy 4x4 integer transform with block-level reuse.
   Try:  python -m repro run examples/minic/dct.c --inputs-file <pixels>  */

int coef[4][4] = {{4, 4, 4, 4}, {5, 2, -2, -5}, {4, -4, -4, 4}, {2, -5, 5, -2}};
int blk[16];

static void transform(int *b)
{
    int tmp[16];
    int i;
    int j;
    int k;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 4; j++) {
            int s = 0;
            for (k = 0; k < 4; k++)
                s += coef[i][k] * b[k * 4 + j];
            tmp[i * 4 + j] = s >> 3;
        }
    for (i = 0; i < 16; i++)
        b[i] = tmp[i];
}

int main(void)
{
    int checksum = 0;
    while (__input_avail()) {
        int i;
        for (i = 0; i < 16; i++)
            blk[i] = __input_int();
        transform(blk);
        for (i = 0; i < 16; i++)
            checksum += blk[i];
        __output_int(checksum & 255);
    }
    __output_int(checksum);
    return checksum;
}
