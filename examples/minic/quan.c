/* The paper's Figure 4: the original G.721 quan with three inputs.
   Try:  python -m repro transform examples/minic/quan.c \
             --inputs 5,100,3000,5,100,3000,12000,5,100,3000,5,100 \
             --min-executions 4
   and watch specialization bind table/size before memoization. */

int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};

static int quan(int val, int *table, int size)
{
    int i;
    for (i = 0; i < size; i++)
        if (val < table[i])
            break;
    return (i);
}

int main(void)
{
    int s = 0;
    while (__input_avail())
        s += quan(__input_int(), power2, 15);
    __output_int(s);
    return s;
}
