"""Legacy setup shim (the environment has no `wheel`, so editable installs
go through `setup.py develop`). All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
