"""The stable public facade of the repro package.

The package grew three layers — the reuse pipeline, the cost-model
runtime, and the experiment harness — each with its own entry points.
This module is the one supported way in::

    import repro

    program = repro.compile(source)           # reuse pipeline, lazy profile
    result = program.run(inputs)              # RunResult: value + metrics
    print(result.cycles, result.speedup_vs(baseline))

    plain = repro.compile(source, reuse=False)  # no reuse transformation
    plain.run(inputs)

    with repro.Session(governed=True) as session:   # warmed tables + disk cache
        for stream in streams:
            session.run(source, stream)

Everything here is a thin veneer over :class:`~repro.reuse.pipeline.ReusePipeline`,
:class:`~repro.runtime.machine.Machine`, and the observability layer; the
facade adds lifecycle (lazy profiling, per-opt program memoization, table
warming, disk caching) and one stable result type.  The legacy entry
point ``repro.runtime.run_source`` remains as a deprecated shim.

Input-literal parsing for the CLI also lives here
(:func:`parse_input_literal` / :func:`parse_input_stream`): one parser for
``--inputs`` and ``--inputs-file`` that accepts ints, floats, negative
numbers, and scientific notation.
"""

from __future__ import annotations

import copy
import math
import time
from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence, Union

from .errors import ConfigError
from .minic import format_program, frontend
from .obs import DecisionLedger, Tracer, set_tracer
from .obs.metrics import (
    ExpositionServer,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .obs.profiler import CycleProfile, CycleProfiler, ledger_costs
from .opt.pipeline import optimize
from .reuse.pipeline import PipelineConfig, PipelineResult, ReusePipeline
from .runtime.compiler import compile_program
from .runtime.governor import GovernorPolicy
from .runtime.machine import Machine, Metrics
from .runtime.srcmap import SourceMap

__all__ = [
    "CompiledProgram",
    "RunResult",
    "Session",
    "compile",
    "parse_input_literal",
    "parse_input_stream",
    "GovernorPolicy",
    "PipelineConfig",
]

_OPT_LEVELS = ("O0", "O3")


# -- input literals ----------------------------------------------------------


def parse_input_literal(token: str) -> Union[int, float]:
    """Parse one numeric input literal.

    Accepts decimal ints, floats with or without a dot, sign prefixes,
    and scientific notation ("1e5", "-2.5e-3" — these parse as floats).
    Raises :class:`~repro.errors.ConfigError` on anything else, including
    non-finite values.
    """
    tok = token.strip()
    if not tok:
        raise ConfigError("empty input literal")
    try:
        return int(tok)
    except ValueError:
        pass
    try:
        value = float(tok)
    except ValueError:
        raise ConfigError(f"invalid input literal {token!r}") from None
    if not math.isfinite(value):
        raise ConfigError(f"non-finite input literal {token!r}")
    return value


def parse_input_stream(text: str) -> list:
    """Parse a whole input stream: literals separated by commas and/or
    whitespace (the one parser behind ``--inputs`` and ``--inputs-file``)."""
    values = [parse_input_literal(tok) for tok in text.replace(",", " ").split()]
    registry = get_registry()
    if registry is not None:
        registry.counter(
            "repro_inputs_parsed", "Input literals parsed from streams."
        ).inc(len(values))
    return values


def _resolve_metrics(metrics) -> Optional[MetricsRegistry]:
    """``metrics=`` argument → registry: None/False off, True a fresh
    registry, an existing :class:`MetricsRegistry` shared as-is."""
    if metrics is None or metrics is False:
        return None
    if metrics is True:
        return MetricsRegistry()
    if isinstance(metrics, MetricsRegistry):
        return metrics
    raise ConfigError(
        f"metrics must be a bool or MetricsRegistry, got {type(metrics).__name__}"
    )


# -- results -----------------------------------------------------------------


@dataclass
class RunResult:
    """Everything one measured execution produced.

    ``value`` is the entry function's return value; ``metrics`` the full
    :class:`~repro.runtime.machine.Metrics` (cycles, simulated seconds,
    energy, output checksum, per-table telemetry, governor snapshots);
    ``ledger`` the pipeline's decision ledger (None for ``reuse=False``
    programs); ``trace`` the tracer handle when the program was compiled
    with ``trace=True``.
    """

    value: object
    metrics: Metrics
    governor: dict = field(default_factory=dict)
    ledger: Optional[DecisionLedger] = None
    trace: Optional[Tracer] = None
    cycle_profile: Optional[CycleProfile] = None
    source_map: Optional[SourceMap] = None

    @property
    def cycles(self) -> int:
        return self.metrics.cycles

    @property
    def seconds(self) -> float:
        return self.metrics.seconds

    @property
    def energy_joules(self) -> float:
        return self.metrics.energy_joules

    @property
    def output_checksum(self) -> int:
        return self.metrics.output_checksum

    @property
    def table_stats(self) -> dict:
        return self.metrics.table_stats

    def governor_transitions(self) -> dict:
        """{segment id: transition list} for every governed segment that
        changed state (or resized/flushed) during this run."""
        return {
            seg_id: snap["transitions"]
            for seg_id, snap in self.governor.items()
            if snap["transitions"]
        }

    def speedup_vs(self, baseline: "RunResult") -> float:
        return baseline.metrics.seconds / self.metrics.seconds

    def profile(self) -> CycleProfile:
        """The run's cycle-attribution profile
        (:class:`~repro.obs.profiler.CycleProfile`): the attribution
        tree, the per-segment measured ``C``/``O``/``R``, and the
        measured-vs-ledger report.  Requires the program to have been
        compiled with ``profile=True``."""
        if self.cycle_profile is None:
            raise ConfigError(
                "no cycle profile on this run; compile with profile=True"
            )
        return self.cycle_profile


# -- compiled programs -------------------------------------------------------


class CompiledProgram:
    """A program prepared for (repeated) measured execution.

    With ``reuse=True`` (the default) the reuse pipeline runs lazily: the
    first :meth:`run` profiles on its own inputs unless ``profile_inputs``
    were given or :meth:`profile` was called.  With ``reuse=False`` the
    program executes unmodified (optimized when ``opt="O3"``).

    Construct through :func:`repro.compile` or
    :meth:`Session.compile`; the constructor is considered internal.
    """

    def __init__(
        self,
        source: str,
        *,
        opt: str = "O0",
        reuse: bool = True,
        config: Optional[PipelineConfig] = None,
        governed: bool = False,
        trace: bool = False,
        profile=False,
        profile_inputs: Optional[Sequence] = None,
        metrics=None,
        backend: Optional[str] = None,
        _cache=None,
        _persist_tables: bool = False,
    ) -> None:
        if opt not in _OPT_LEVELS:
            raise ConfigError(f"unknown opt level {opt!r}; choose from {_OPT_LEVELS}")
        if profile not in (True, False, "lines"):
            raise ConfigError(
                f"profile must be a bool or 'lines', got {profile!r}"
            )
        if config is not None and not isinstance(config, PipelineConfig):
            raise ConfigError(
                f"config must be a PipelineConfig, got {type(config).__name__}"
            )
        if backend is not None and backend not in Machine.BACKENDS:
            raise ConfigError(
                f"unknown backend {backend!r}; expected one of {Machine.BACKENDS}"
            )
        self.source = source
        self.opt = opt
        self.backend = backend
        self.reuse = reuse
        self.config = config or PipelineConfig()
        self.governed = governed
        self.profiled = bool(profile)
        self.profile_lines = profile == "lines"
        self.tracer: Optional[Tracer] = Tracer(enabled=True) if trace else None
        self.registry: Optional[MetricsRegistry] = _resolve_metrics(metrics)
        self._profile_inputs = (
            list(profile_inputs) if profile_inputs is not None else None
        )
        self._cache = _cache
        self._persist_tables = _persist_tables
        self._tables: Optional[dict] = None
        self.result: Optional[PipelineResult] = None
        self._programs: dict[str, object] = {}  # opt level -> executable AST
        if not reuse:
            program = frontend(source)
            if opt == "O3":
                optimize(program, "O3")
            self._programs[opt] = program

    # -- lifecycle -----------------------------------------------------------

    def _traced(self):
        """Context manager installing this program's tracer and metrics
        registry (when attached) as the process-local instruments."""

        class _Scope:
            def __init__(self, tracer, registry):
                self._tracer = tracer
                self._registry = registry
                self._previous = None
                self._previous_registry = None

            def __enter__(self):
                if self._tracer is not None:
                    self._previous = set_tracer(self._tracer)
                if self._registry is not None:
                    self._previous_registry = set_registry(self._registry)

            def __exit__(self, *exc):
                if self._registry is not None:
                    set_registry(self._previous_registry)
                if self._tracer is not None:
                    set_tracer(self._previous)
                return False

        return _Scope(self.tracer, self.registry)

    def profile(self, inputs: Sequence = ()) -> PipelineResult:
        """Run the reuse pipeline on ``inputs`` (idempotent; a second call
        returns the first result).  Uses the attached disk cache when the
        program came from a caching :class:`Session`."""
        if not self.reuse:
            raise ConfigError("profile() on a reuse=False program")
        if self.result is not None:
            return self.result
        inputs = list(inputs)
        key = None
        if self._cache is not None:
            from .experiments.cache import cache_key

            key = cache_key("pipeline", self.source, asdict(self.config), inputs)
            cached = self._cache.load_pipeline(key)
            if cached is not None:
                self.result = cached
                return cached
        with self._traced():
            result = ReusePipeline(self.source, self.config).run(inputs)
        if self._cache is not None and key is not None:
            self._cache.store_pipeline(key, result)
        self.result = result
        return result

    @property
    def ledger(self) -> Optional[DecisionLedger]:
        return self.result.ledger if self.result is not None else None

    def transformed_source(self) -> str:
        """The transformed program, pretty-printed as mini-C (the paper's
        source-to-source property).  Requires a completed :meth:`profile`."""
        if self.result is None:
            raise ConfigError("transformed_source() before profile()/run()")
        return format_program(self.result.program)

    def _program_for(self, opt: str):
        program = self._programs.get(opt)
        if program is None:
            # optimize a private copy so the pipeline's program stays O0
            from .minic.sema import analyze

            program = copy.deepcopy(self.result.program)
            analyze(program)
            optimize(program, opt)
            self._programs[opt] = program
        return program

    def _tables_for_run(self) -> dict:
        if self._persist_tables:
            if self._tables is None:
                self._tables = self.result.build_tables(governed=self.governed)
            return self._tables
        return self.result.build_tables(governed=self.governed)

    # -- execution -----------------------------------------------------------

    def run(self, inputs: Sequence = (), *, entry: Optional[str] = None) -> RunResult:
        """One measured execution; returns a :class:`RunResult`.

        For ``reuse=True`` programs the first call profiles on these
        inputs unless profiling already happened.  Session-bound programs
        keep their (warmed) tables across calls; standalone programs
        build fresh tables per run.
        """
        inputs = list(inputs)
        if self.reuse and self.result is None:
            self.profile(
                self._profile_inputs if self._profile_inputs is not None else inputs
            )
        entry = entry or (self.config.entry if self.reuse else "main")
        machine = Machine(self.opt, backend=self.backend)
        machine.set_inputs(inputs)
        tables = {}
        if self.reuse:
            tables = self._tables_for_run()
            for seg_id, table in tables.items():
                machine.install_table(seg_id, table)
            program = self._program_for(self.opt)
        else:
            program = self._programs[self.opt]
        profiler = None
        source_map = None
        if self.profiled:
            # install before compile_program: the attribution hooks are a
            # compile-time decision (zero overhead when absent)
            profiler = CycleProfiler(
                machine,
                seg_costs=ledger_costs(self.result) if self.reuse else None,
                lines=self.profile_lines,
            )
            machine.cycle_profiler = profiler
        if self.profile_lines:
            # line mode also records the SourceMap so per-line cycles can
            # be joined with probe/commit sites and per-pc bytecode lines
            source_map = SourceMap()
            machine.source_map = source_map
        # likewise a compile-time decision: without a registry the closures
        # are byte-identical to un-metered ones
        machine.metrics_registry = self.registry
        with self._traced():
            value = compile_program(program, machine).run(entry)
        metrics = machine.metrics()
        machine.publish_metrics()
        if self.governed:
            self._record_governor_verdicts(metrics)
        return RunResult(
            value=value,
            metrics=metrics,
            governor=metrics.governor,
            ledger=self.ledger,
            trace=self.tracer,
            cycle_profile=profiler.finalize() if profiler is not None else None,
            source_map=source_map,
        )

    def disassemble(self):
        """Compile for the VM backend — without running — and return
        ``(vm_program, source_map)``: the per-function bytecode plus the
        pc → source-line table behind ``repro disasm``.  For ``reuse=True``
        programs, :meth:`profile` (or a first :meth:`run`) must have
        produced the transformed program already."""
        if self.reuse and self.result is None:
            raise ConfigError("disassemble() before profile()/run()")
        machine = Machine(self.opt, backend="vm")
        machine.source_map = SourceMap()
        if self.reuse:
            program = self._program_for(self.opt)
        else:
            program = self._programs[self.opt]
        vm_program = compile_program(program, machine)
        return vm_program, machine.source_map

    def _record_governor_verdicts(self, metrics: Metrics) -> None:
        """Append the online governor's runtime verdicts to the decision
        ledger: the compile-time gates decided to build each table, the
        ``governor`` stage records whether the run kept it profitable."""
        ledger = self.ledger
        if ledger is None:
            return
        for seg_id, snap in sorted(metrics.governor.items()):
            if seg_id not in ledger.records:
                continue
            ledger.record(
                seg_id,
                "governor",
                snap["state"] != "disabled",
                state=snap["state"],
                disables=snap["disables"],
                reenables=snap["reenables"],
                resizes=snap["resizes"],
                flushes=snap["flushes"],
                bypassed=snap["bypassed_executions"],
                transitions=len(snap["transitions"]),
            )


def compile(
    source: str,
    *,
    opt: str = "O0",
    reuse: bool = True,
    config: Optional[PipelineConfig] = None,
    governed: bool = False,
    trace: bool = False,
    profile=False,
    profile_inputs: Optional[Sequence] = None,
    metrics=None,
    backend: Optional[str] = None,
) -> CompiledProgram:
    """Prepare mini-C ``source`` for measured execution on the simulated
    StrongARM; the stable entry point of the package.

    Args:
        opt: cost table and optimizer level, "O0" or "O3".
        reuse: apply the paper's computation-reuse pipeline (profiling
            happens lazily on the first :meth:`CompiledProgram.run`).
        config: pipeline knobs (:class:`~repro.reuse.pipeline.PipelineConfig`);
            validated at construction.
        governed: install tables managed by the online reuse governor
            (:mod:`repro.runtime.governor`) instead of static tables.
        trace: record pipeline and run spans into
            :attr:`CompiledProgram.tracer` for export.
        profile: attach a cycle-attribution profiler
            (:mod:`repro.obs.profiler`) to every run; the profile is
            returned via :meth:`RunResult.profile`.  Attribution is
            exact — per-node cycles sum bit-identically to
            ``Metrics.cycles`` — and a profiled run's metrics are
            bit-identical to an unprofiled one's.  Pass ``"lines"`` for
            line-level attribution: the profile additionally buckets
            cycles by source line (``CycleProfile.lines``) and the run
            records a :class:`~repro.runtime.srcmap.SourceMap`
            (:attr:`RunResult.source_map`) joining lines to probe and
            commit sites — the data behind ``repro annotate``.
        profile_inputs: profile on this stream instead of the first run's.
        metrics: publish live metrics into a
            :class:`~repro.obs.metrics.MetricsRegistry` — ``True`` for a
            fresh registry (on :attr:`CompiledProgram.registry`), or pass
            a registry shared across programs.  Like ``profile``, the
            metered closures exist only when a registry is installed, so
            an un-metered program's metrics stay bit-identical.
        backend: execution backend for measured runs — ``"closures"``
            (the closure-tree oracle) or ``"vm"`` (the register-bytecode
            VM, same simulated cycles/outputs/metrics, substantially
            faster wall-clock).  ``None`` defers to ``REPRO_BACKEND``
            and then the closure default.
    """
    return CompiledProgram(
        source,
        opt=opt,
        reuse=reuse,
        config=config,
        governed=governed,
        trace=trace,
        profile=profile,
        profile_inputs=profile_inputs,
        metrics=metrics,
        backend=backend,
    )


# -- sessions ----------------------------------------------------------------


class Session:
    """Repeated runs sharing warmed reuse tables and the disk cache.

    A session-bound :class:`CompiledProgram` keeps its reuse tables
    across :meth:`CompiledProgram.run` calls — entries committed by one
    run serve hits to the next, which is the deployment story the online
    governor targets.  With ``cache=True`` (or a path, or an
    :class:`~repro.experiments.cache.ExperimentCache`) profiling results
    persist to disk under ``.repro_cache/`` exactly like the experiment
    harness's.

    Usable as a context manager; ``close()`` drops table references.
    """

    def __init__(
        self,
        *,
        opt: str = "O0",
        config: Optional[PipelineConfig] = None,
        governed: bool = False,
        trace: bool = False,
        cache=None,
        metrics=None,
        backend: Optional[str] = None,
    ) -> None:
        if opt not in _OPT_LEVELS:
            raise ConfigError(f"unknown opt level {opt!r}; choose from {_OPT_LEVELS}")
        if backend is not None and backend not in Machine.BACKENDS:
            raise ConfigError(
                f"unknown backend {backend!r}; expected one of {Machine.BACKENDS}"
            )
        self.opt = opt
        self.backend = backend
        self.config = config
        self.governed = governed
        self.trace = trace
        self.cache = self._resolve_cache(cache)
        self.registry: Optional[MetricsRegistry] = _resolve_metrics(metrics)
        self._server: Optional[ExpositionServer] = None
        self._programs: dict[tuple[str, bool], CompiledProgram] = {}

    @staticmethod
    def _resolve_cache(cache):
        if cache is None or cache is False:
            return None
        from .experiments.cache import ExperimentCache

        if isinstance(cache, ExperimentCache):
            return cache
        if cache is True:
            return ExperimentCache()
        return ExperimentCache(cache)

    def compile(
        self,
        source: str,
        *,
        reuse: bool = True,
        config: Optional[PipelineConfig] = None,
        profile_inputs: Optional[Sequence] = None,
    ) -> CompiledProgram:
        """Like :func:`repro.compile`, but the program shares this
        session's settings, disk cache, and keeps warmed tables.
        Compiling the same source twice returns the same program."""
        memo = (source, reuse)
        program = self._programs.get(memo)
        if program is None:
            program = CompiledProgram(
                source,
                opt=self.opt,
                reuse=reuse,
                config=config or self.config,
                governed=self.governed,
                trace=self.trace,
                profile_inputs=profile_inputs,
                metrics=self.registry,
                backend=self.backend,
                _cache=self.cache,
                _persist_tables=True,
            )
            self._programs[memo] = program
        return program

    def run(self, source: str, inputs: Sequence = ()) -> RunResult:
        """Compile (memoized) and run in one call."""
        start = time.perf_counter() if self.registry is not None else 0.0
        result = self.compile(source).run(inputs)
        if self.registry is not None:
            elapsed = time.perf_counter() - start
            self.registry.counter("repro_session_runs", "Session runs completed.").inc()
            self.registry.counter(
                "repro_session_inputs", "Input values consumed by session runs."
            ).inc(len(list(inputs)))
            self.registry.counter(
                "repro_session_wall_seconds", "Wall-clock seconds spent in session runs."
            ).inc(elapsed)
            self.registry.histogram(
                "repro_session_run_seconds",
                "Per-run wall-clock seconds.",
                buckets=(0.001, 0.01, 0.1, 1.0, 10.0, 100.0),
            ).observe(elapsed)
        return result

    def serve_metrics(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> ExpositionServer:
        """Start (or return) the background OpenMetrics HTTP endpoint
        serving this session's registry; requires ``metrics=``.  The
        server is a daemon thread and is shut down by :meth:`close`."""
        if self.registry is None:
            raise ConfigError("serve_metrics() on a Session without metrics=")
        if self._server is None:
            self._server = ExpositionServer(self.registry, host=host, port=port)
            self._server.start()
        return self._server

    def close(self) -> None:
        if self._server is not None:
            self._server.close()
            self._server = None
        self._programs.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
