"""The stable public facade of the repro package.

The package grew three layers — the reuse pipeline, the cost-model
runtime, and the experiment harness — each with its own entry points.
This module is the one supported way in::

    import repro

    program = repro.compile(source)           # reuse pipeline, lazy profile
    result = program.run(inputs)              # RunResult: value + metrics
    print(result.cycles, result.speedup_vs(baseline))

    plain = repro.compile(source, repro.CompileOptions(reuse=False))
    plain.run(inputs)

    options = repro.CompileOptions(governed=True)
    with repro.Session(options) as session:   # warmed tables + disk cache
        for stream in streams:
            session.run(source, stream)

    All compile-time knobs travel in one frozen :class:`CompileOptions`
    value (per-run knobs in :class:`RunOptions`); the old loose keywords
    keep working behind a :class:`DeprecationWarning` shim.

Everything here is a thin veneer over :class:`~repro.reuse.pipeline.ReusePipeline`,
:class:`~repro.runtime.machine.Machine`, and the observability layer; the
facade adds lifecycle (lazy profiling, per-opt program memoization, table
warming, disk caching) and one stable result type.  The legacy entry
point ``repro.runtime.run_source`` remains as a deprecated shim.

Input-literal parsing for the CLI also lives here
(:func:`parse_input_literal` / :func:`parse_input_stream`): one parser for
``--inputs`` and ``--inputs-file`` that accepts ints, floats, negative
numbers, and scientific notation.
"""

from __future__ import annotations

import copy
import hashlib
import json
import math
import threading
import time
import warnings
from dataclasses import asdict, dataclass, field, replace
from typing import Optional, Sequence, Union

from .errors import ConfigError
from .minic import format_program, frontend
from .obs import DecisionLedger, Tracer, get_tracer, set_tracer
from .obs.metrics import (
    ExpositionServer,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .obs.profiler import CycleProfile, CycleProfiler, ledger_costs
from .opt.pipeline import optimize
from .reuse.pipeline import PipelineConfig, PipelineResult, ReusePipeline
from .runtime.compiler import compile_program
from .runtime.governor import GovernorPolicy
from .runtime.machine import Machine, Metrics
from .runtime.srcmap import SourceMap

__all__ = [
    "CompileOptions",
    "RunOptions",
    "CompiledProgram",
    "RunResult",
    "Session",
    "compile",
    "parse_input_literal",
    "parse_input_stream",
    "GovernorPolicy",
    "PipelineConfig",
]

_OPT_LEVELS = ("O0", "O3")


# -- options -----------------------------------------------------------------


@dataclass(frozen=True)
class CompileOptions:
    """Every compile-time knob of the facade in one frozen value.

    Replaces the keyword sprawl of the original ``repro.compile(...)`` /
    ``Session(...)`` signatures: construct once, pass everywhere, share
    freely (the value is immutable).  Validation happens at construction
    so a bad option fails at the call site, not deep inside a profiling
    run.  Use :meth:`replace` for a tweaked copy and
    :meth:`content_key` for a content-addressed cache key (what the
    serving layer keys its per-tenant program caches on).
    """

    opt: str = "O0"
    reuse: bool = True
    config: Optional[PipelineConfig] = None
    governed: bool = False
    trace: bool = False
    profile: Union[bool, str] = False
    profile_inputs: Optional[tuple] = None
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.opt not in _OPT_LEVELS:
            raise ConfigError(f"unknown opt level {self.opt!r}; choose from {_OPT_LEVELS}")
        if self.profile not in (True, False, "lines"):
            raise ConfigError(f"profile must be a bool or 'lines', got {self.profile!r}")
        if self.config is not None and not isinstance(self.config, PipelineConfig):
            raise ConfigError(
                f"config must be a PipelineConfig, got {type(self.config).__name__}"
            )
        if self.backend is not None and self.backend not in Machine.BACKENDS:
            raise ConfigError(
                f"unknown backend {self.backend!r}; expected one of {Machine.BACKENDS}"
            )
        if self.profile_inputs is not None:
            # tolerate any sequence at the call site; store immutably
            object.__setattr__(self, "profile_inputs", tuple(self.profile_inputs))

    def replace(self, **changes) -> "CompileOptions":
        """A copy with ``changes`` applied (and re-validated)."""
        return replace(self, **changes)

    def content_key(self, source: str) -> str:
        """Content hash identifying the compiled artifact: the source
        text plus every option that can change what the pipeline builds
        (opt level, reuse on/off, governed tables, backend, the full
        :class:`PipelineConfig`, and any pinned profiling inputs).
        Pure observers (``trace``, ``profile``) are excluded — they are
        proven not to change outputs or simulated cycles."""
        config = self.config if self.config is not None else PipelineConfig()
        payload = {
            "source": source,
            "opt": self.opt,
            "reuse": self.reuse,
            "governed": self.governed,
            "backend": self.backend,
            "config": asdict(config),
            "profile_inputs": list(self.profile_inputs)
            if self.profile_inputs is not None
            else None,
        }
        blob = json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class RunOptions:
    """Per-run knobs of :meth:`CompiledProgram.run` (frozen, shareable).

    ``entry`` overrides the entry function (default: the pipeline
    config's entry for reuse programs, ``main`` otherwise).
    """

    entry: Optional[str] = None

    def __post_init__(self) -> None:
        if self.entry is not None and (
            not self.entry or not isinstance(self.entry, str)
        ):
            raise ConfigError(
                f"entry must be a non-empty function name, got {self.entry!r}"
            )


_COMPILE_LEGACY_KEYS = (
    "opt",
    "reuse",
    "config",
    "governed",
    "trace",
    "profile",
    "profile_inputs",
    "backend",
)


def _options_from_legacy(
    where: str, options: Optional[CompileOptions], legacy: dict, allowed=_COMPILE_LEGACY_KEYS
) -> CompileOptions:
    """Resolve the ``options=`` value against deprecated loose keywords.

    The old keyword surface keeps working — ``repro.compile(src,
    opt="O3")`` builds the equivalent :class:`CompileOptions` — but
    warns; mixing both spellings is an error, not a merge."""
    if legacy:
        unknown = sorted(set(legacy) - set(allowed))
        if unknown:
            raise ConfigError(f"{where}() got unexpected keyword(s): {', '.join(unknown)}")
        if options is not None:
            raise ConfigError(
                f"{where}() takes options= or legacy keywords, not both"
            )
        named = ", ".join(f"{key}=..." for key in sorted(legacy))
        warnings.warn(
            f"repro.{where}({named}) keyword arguments are deprecated; "
            f"pass options=repro.CompileOptions(...)",
            DeprecationWarning,
            stacklevel=3,
        )
        return CompileOptions(**legacy)
    if options is None:
        return CompileOptions()
    if not isinstance(options, CompileOptions):
        raise ConfigError(
            f"options must be a CompileOptions, got {type(options).__name__}"
        )
    return options


# -- input literals ----------------------------------------------------------


def parse_input_literal(token: str) -> Union[int, float]:
    """Parse one numeric input literal.

    Accepts decimal ints, floats with or without a dot, sign prefixes,
    and scientific notation ("1e5", "-2.5e-3" — these parse as floats).
    Raises :class:`~repro.errors.ConfigError` on anything else, including
    non-finite values.
    """
    tok = token.strip()
    if not tok:
        raise ConfigError("empty input literal")
    try:
        return int(tok)
    except ValueError:
        pass
    try:
        value = float(tok)
    except ValueError:
        raise ConfigError(f"invalid input literal {token!r}") from None
    if not math.isfinite(value):
        raise ConfigError(f"non-finite input literal {token!r}")
    return value


def parse_input_stream(text: str) -> list:
    """Parse a whole input stream: literals separated by commas and/or
    whitespace (the one parser behind ``--inputs`` and ``--inputs-file``)."""
    values = [parse_input_literal(tok) for tok in text.replace(",", " ").split()]
    registry = get_registry()
    if registry is not None:
        registry.counter(
            "repro_inputs_parsed", "Input literals parsed from streams."
        ).inc(len(values))
    return values


def _resolve_metrics(metrics) -> Optional[MetricsRegistry]:
    """``metrics=`` argument → registry: None/False off, True a fresh
    registry, an existing :class:`MetricsRegistry` shared as-is."""
    if metrics is None or metrics is False:
        return None
    if metrics is True:
        return MetricsRegistry()
    if isinstance(metrics, MetricsRegistry):
        return metrics
    raise ConfigError(
        f"metrics must be a bool or MetricsRegistry, got {type(metrics).__name__}"
    )


# -- results -----------------------------------------------------------------


@dataclass
class RunResult:
    """Everything one measured execution produced.

    ``value`` is the entry function's return value; ``metrics`` the full
    :class:`~repro.runtime.machine.Metrics` (cycles, simulated seconds,
    energy, output checksum, per-table telemetry, governor snapshots);
    ``ledger`` the pipeline's decision ledger (None for ``reuse=False``
    programs); ``trace`` the tracer handle when the program was compiled
    with ``trace=True``.
    """

    value: object
    metrics: Metrics
    governor: dict = field(default_factory=dict)
    ledger: Optional[DecisionLedger] = None
    trace: Optional[Tracer] = None
    cycle_profile: Optional[CycleProfile] = None
    source_map: Optional[SourceMap] = None

    @property
    def cycles(self) -> int:
        return self.metrics.cycles

    @property
    def seconds(self) -> float:
        return self.metrics.seconds

    @property
    def energy_joules(self) -> float:
        return self.metrics.energy_joules

    @property
    def output_checksum(self) -> int:
        return self.metrics.output_checksum

    @property
    def table_stats(self) -> dict:
        return self.metrics.table_stats

    def governor_transitions(self) -> dict:
        """{segment id: transition list} for every governed segment that
        changed state (or resized/flushed) during this run."""
        return {
            seg_id: snap["transitions"]
            for seg_id, snap in self.governor.items()
            if snap["transitions"]
        }

    def speedup_vs(self, baseline: "RunResult") -> float:
        return baseline.metrics.seconds / self.metrics.seconds

    def profile(self) -> CycleProfile:
        """The run's cycle-attribution profile
        (:class:`~repro.obs.profiler.CycleProfile`): the attribution
        tree, the per-segment measured ``C``/``O``/``R``, and the
        measured-vs-ledger report.  Requires the program to have been
        compiled with ``profile=True``."""
        if self.cycle_profile is None:
            raise ConfigError(
                "no cycle profile on this run; compile with profile=True"
            )
        return self.cycle_profile


# -- compiled programs -------------------------------------------------------


class CompiledProgram:
    """A program prepared for (repeated) measured execution.

    With ``reuse=True`` (the default) the reuse pipeline runs lazily: the
    first :meth:`run` profiles on its own inputs unless ``profile_inputs``
    were given or :meth:`profile` was called.  With ``reuse=False`` the
    program executes unmodified (optimized when ``opt="O3"``).

    Construct through :func:`repro.compile` or
    :meth:`Session.compile`; the constructor is considered internal and
    takes the consolidated :class:`CompileOptions` value.
    """

    def __init__(
        self,
        source: str,
        options: Optional[CompileOptions] = None,
        *,
        metrics=None,
        _cache=None,
        _persist_tables: bool = False,
    ) -> None:
        options = options if options is not None else CompileOptions()
        if not isinstance(options, CompileOptions):
            raise ConfigError(
                f"options must be a CompileOptions, got {type(options).__name__}"
            )
        self.source = source
        self.options = options
        self.opt = options.opt
        self.backend = options.backend
        self.reuse = options.reuse
        self.config = options.config or PipelineConfig()
        self.governed = options.governed
        self.profiled = bool(options.profile)
        self.profile_lines = options.profile == "lines"
        self.tracer: Optional[Tracer] = Tracer(enabled=True) if options.trace else None
        self.registry: Optional[MetricsRegistry] = _resolve_metrics(metrics)
        self._profile_inputs = (
            list(options.profile_inputs)
            if options.profile_inputs is not None
            else None
        )
        self._cache = _cache
        self._persist_tables = _persist_tables
        self._tables: Optional[dict] = None
        self.result: Optional[PipelineResult] = None
        self._programs: dict[str, object] = {}  # opt level -> executable AST
        # one lock makes lazy profiling and table building safe under
        # concurrent run() calls (the serving layer shares one compiled
        # program — and its warmed tables — across worker threads)
        self._lock = threading.Lock()
        if not self.reuse:
            program = frontend(source)
            if self.opt == "O3":
                optimize(program, "O3")
            self._programs[self.opt] = program

    # -- lifecycle -----------------------------------------------------------

    def _traced(self):
        """Context manager installing this program's tracer and metrics
        registry (when attached) as the process-local instruments."""

        class _Scope:
            def __init__(self, tracer, registry):
                self._tracer = tracer
                self._registry = registry
                self._previous = None
                self._previous_registry = None

            def __enter__(self):
                if self._tracer is not None:
                    self._previous = set_tracer(self._tracer)
                if self._registry is not None:
                    self._previous_registry = set_registry(self._registry)

            def __exit__(self, *exc):
                if self._registry is not None:
                    set_registry(self._previous_registry)
                if self._tracer is not None:
                    set_tracer(self._previous)
                return False

        return _Scope(self.tracer, self.registry)

    def profile(self, inputs: Sequence = ()) -> PipelineResult:
        """Run the reuse pipeline on ``inputs`` (idempotent; a second call
        returns the first result).  Uses the attached disk cache when the
        program came from a caching :class:`Session`."""
        if not self.reuse:
            raise ConfigError("profile() on a reuse=False program")
        if self.result is not None:
            return self.result
        with self._lock:
            if self.result is not None:
                return self.result
            inputs = list(inputs)
            key = None
            if self._cache is not None:
                from .experiments.cache import cache_key

                key = cache_key("pipeline", self.source, asdict(self.config), inputs)
                cached = self._cache.load_pipeline(key)
                if cached is not None:
                    self.result = cached
                    return cached
            with self._traced():
                result = ReusePipeline(self.source, self.config).run(inputs)
            if self._cache is not None and key is not None:
                self._cache.store_pipeline(key, result)
            self.result = result
            return result

    @property
    def ledger(self) -> Optional[DecisionLedger]:
        return self.result.ledger if self.result is not None else None

    def transformed_source(self) -> str:
        """The transformed program, pretty-printed as mini-C (the paper's
        source-to-source property).  Requires a completed :meth:`profile`."""
        if self.result is None:
            raise ConfigError("transformed_source() before profile()/run()")
        return format_program(self.result.program)

    def _program_for(self, opt: str):
        program = self._programs.get(opt)
        if program is None:
            with self._lock:
                program = self._programs.get(opt)
                if program is None:
                    # optimize a private copy so the pipeline's program
                    # stays O0
                    from .minic.sema import analyze

                    program = copy.deepcopy(self.result.program)
                    analyze(program)
                    optimize(program, opt)
                    self._programs[opt] = program
        return program

    def _tables_for_run(self) -> dict:
        if self._persist_tables:
            if self._tables is None:
                with self._lock:
                    if self._tables is None:
                        self._tables = self.result.build_tables(
                            governed=self.governed
                        )
            return self._tables
        return self.result.build_tables(governed=self.governed)

    # -- execution -----------------------------------------------------------

    def run(
        self,
        inputs: Sequence = (),
        options: Optional[RunOptions] = None,
        *,
        entry: Optional[str] = None,
    ) -> RunResult:
        """One measured execution; returns a :class:`RunResult`.

        For ``reuse=True`` programs the first call profiles on these
        inputs unless profiling already happened.  Session-bound programs
        keep their (warmed) tables across calls; standalone programs
        build fresh tables per run.  Per-run knobs travel in a
        :class:`RunOptions` value; the loose ``entry=`` keyword remains
        as a deprecated shim.
        """
        if entry is not None:
            if options is not None:
                raise ConfigError("run() takes options= or entry=, not both")
            warnings.warn(
                "repro.CompiledProgram.run(entry=...) is deprecated; "
                "pass options=repro.RunOptions(entry=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            options = RunOptions(entry=entry)
        elif options is None:
            options = RunOptions()
        elif not isinstance(options, RunOptions):
            raise ConfigError(
                f"options must be a RunOptions, got {type(options).__name__}"
            )
        entry = options.entry
        inputs = list(inputs)
        if self.reuse and self.result is None:
            self.profile(
                self._profile_inputs if self._profile_inputs is not None else inputs
            )
        entry = entry or (self.config.entry if self.reuse else "main")
        machine = Machine(self.opt, backend=self.backend)
        machine.set_inputs(inputs)
        tables = {}
        if self.reuse:
            tables = self._tables_for_run()
            for seg_id, table in tables.items():
                machine.install_table(seg_id, table)
            program = self._program_for(self.opt)
        else:
            program = self._programs[self.opt]
        profiler = None
        source_map = None
        if self.profiled:
            # install before compile_program: the attribution hooks are a
            # compile-time decision (zero overhead when absent)
            profiler = CycleProfiler(
                machine,
                seg_costs=ledger_costs(self.result) if self.reuse else None,
                lines=self.profile_lines,
            )
            machine.cycle_profiler = profiler
        if self.profile_lines:
            # line mode also records the SourceMap so per-line cycles can
            # be joined with probe/commit sites and per-pc bytecode lines
            source_map = SourceMap()
            machine.source_map = source_map
        # likewise a compile-time decision: without a registry the closures
        # are byte-identical to un-metered ones
        machine.metrics_registry = self.registry
        with self._traced():
            # the ambient tracer — the program's own (installed by
            # _traced) or a service request's thread-local one — gets a
            # machine.run span carrying the run's reuse telemetry, so a
            # request's span tree reaches from HTTP down to table probes
            tracer = get_tracer()
            with tracer.span(
                "machine.run",
                category="api",
                machine=machine,
                opt=self.opt,
                backend=self.backend,
                entry=entry,
                reuse=self.reuse,
                governed=self.governed,
            ) as span:
                value = compile_program(program, machine).run(entry)
                metrics = machine.metrics()
                if span is not None:
                    self._annotate_run_span(span, metrics, tables)
        machine.publish_metrics()
        if self.governed:
            self._record_governor_verdicts(metrics)
        return RunResult(
            value=value,
            metrics=metrics,
            governor=metrics.governor,
            ledger=self.ledger,
            trace=self.tracer,
            cycle_profile=profiler.finalize() if profiler is not None else None,
            source_map=source_map,
        )

    def disassemble(self):
        """Compile for the VM backend — without running — and return
        ``(vm_program, source_map)``: the per-function bytecode plus the
        pc → source-line table behind ``repro disasm``.  For ``reuse=True``
        programs, :meth:`profile` (or a first :meth:`run`) must have
        produced the transformed program already."""
        if self.reuse and self.result is None:
            raise ConfigError("disassemble() before profile()/run()")
        machine = Machine(self.opt, backend="vm")
        machine.source_map = SourceMap()
        if self.reuse:
            program = self._program_for(self.opt)
        else:
            program = self._programs[self.opt]
        vm_program = compile_program(program, machine)
        return vm_program, machine.source_map

    def _annotate_run_span(self, span, metrics: Metrics, tables: dict) -> None:
        """Attach per-table probe telemetry, governor end states, and
        ledger verdicts to an open ``machine.run`` span."""
        if tables:
            span.args["tables"] = {
                str(seg_id): {
                    "probes": table.stats.probes,
                    "hits": table.stats.hits,
                    "evictions": table.stats.evictions,
                }
                for seg_id, table in sorted(tables.items())
            }
        if metrics.governor:
            span.args["governor"] = {
                str(seg_id): snap["state"]
                for seg_id, snap in sorted(metrics.governor.items())
            }
        ledger = self.ledger
        if ledger is not None and ledger.records:
            span.args["ledger"] = {
                record.label: record.selected
                for record in ledger.records.values()
            }

    def _record_governor_verdicts(self, metrics: Metrics) -> None:
        """Append the online governor's runtime verdicts to the decision
        ledger: the compile-time gates decided to build each table, the
        ``governor`` stage records whether the run kept it profitable."""
        ledger = self.ledger
        if ledger is None:
            return
        for seg_id, snap in sorted(metrics.governor.items()):
            if seg_id not in ledger.records:
                continue
            ledger.record(
                seg_id,
                "governor",
                snap["state"] != "disabled",
                state=snap["state"],
                disables=snap["disables"],
                reenables=snap["reenables"],
                resizes=snap["resizes"],
                flushes=snap["flushes"],
                bypassed=snap["bypassed_executions"],
                transitions=len(snap["transitions"]),
            )


def compile(
    source: str,
    options: Optional[CompileOptions] = None,
    *,
    metrics=None,
    **legacy,
) -> CompiledProgram:
    """Prepare mini-C ``source`` for measured execution on the simulated
    StrongARM; the stable entry point of the package.

    Args:
        options: the consolidated compile-time knobs
            (:class:`CompileOptions`) — opt level, reuse on/off,
            :class:`~repro.reuse.pipeline.PipelineConfig`, governed
            tables, tracing, cycle profiling, pinned profiling inputs,
            and the execution backend.  ``None`` means the defaults
            (``O0``, reuse on, static tables, closures-or-``REPRO_BACKEND``).
        metrics: publish live metrics into a
            :class:`~repro.obs.metrics.MetricsRegistry` — ``True`` for a
            fresh registry (on :attr:`CompiledProgram.registry`), or pass
            a registry shared across programs.  The metered closures
            exist only when a registry is installed, so an un-metered
            program's metrics stay bit-identical.  Kept out of
            :class:`CompileOptions` because a registry is live shared
            state, not a compile-time constant.
        **legacy: the pre-:class:`CompileOptions` loose keywords
            (``opt=``, ``reuse=``, ``config=``, ``governed=``,
            ``trace=``, ``profile=``, ``profile_inputs=``,
            ``backend=``).  They still work but emit a
            :class:`DeprecationWarning`; mixing them with ``options=``
            is a :class:`~repro.errors.ConfigError`.
    """
    return CompiledProgram(
        source,
        _options_from_legacy("compile", options, legacy),
        metrics=metrics,
    )


# -- sessions ----------------------------------------------------------------


class Session:
    """Repeated runs sharing warmed reuse tables and the disk cache.

    A session-bound :class:`CompiledProgram` keeps its reuse tables
    across :meth:`CompiledProgram.run` calls — entries committed by one
    run serve hits to the next, which is the deployment story the online
    governor targets.  With ``cache=True`` (or a path, or an
    :class:`~repro.experiments.cache.ExperimentCache`) profiling results
    persist to disk under ``.repro_cache/`` exactly like the experiment
    harness's.

    Lifecycle: usable as a context manager.  :meth:`close` is
    idempotent — it stops the metrics endpoint (if one was started) and
    drops every memoized program and its tables; a closed session
    rejects further compiles and runs, so pools can recycle sessions
    without leaking the exposition thread.  :meth:`evict` releases one
    program; :meth:`run_program` runs a session-compiled program while
    keeping the session's latency/throughput metrics flowing — the
    entry points the multi-tenant service (:mod:`repro.service`) pools
    sessions through.
    """

    def __init__(
        self,
        options: Optional[CompileOptions] = None,
        *,
        cache=None,
        metrics=None,
        **legacy,
    ) -> None:
        self.options = _options_from_legacy(
            "Session",
            options,
            legacy,
            allowed=("opt", "config", "governed", "trace", "backend"),
        )
        self.opt = self.options.opt
        self.backend = self.options.backend
        self.config = self.options.config
        self.governed = self.options.governed
        self.trace = self.options.trace
        self.cache = self._resolve_cache(cache)
        self.registry: Optional[MetricsRegistry] = _resolve_metrics(metrics)
        self._server: Optional[ExpositionServer] = None
        self._programs: dict[tuple, CompiledProgram] = {}
        self._lock = threading.Lock()
        self._closed = False

    @staticmethod
    def _resolve_cache(cache):
        if cache is None or cache is False:
            return None
        from .experiments.cache import ExperimentCache

        if isinstance(cache, ExperimentCache):
            return cache
        if cache is True:
            return ExperimentCache()
        return ExperimentCache(cache)

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self, what: str) -> None:
        if self._closed:
            raise ConfigError(f"{what} on a closed Session")

    def _memo_key(self, source: str, options: CompileOptions) -> tuple:
        # content_key covers everything semantic; trace/profile are pure
        # observers excluded from it, but two programs differing only in
        # observers must not share one memo slot
        return (options.content_key(source), options.trace, options.profile)

    def _compile_options(self, legacy: dict) -> CompileOptions:
        """The session's base options with per-compile legacy overrides
        (``reuse``/``config``/``profile_inputs``) applied."""
        base = self.options
        if legacy.get("config") is None:
            legacy.pop("config", None)
        return base.replace(**legacy) if legacy else base

    def compile(
        self,
        source: str,
        options: Optional[CompileOptions] = None,
        **legacy,
    ) -> CompiledProgram:
        """Like :func:`repro.compile`, but the program shares this
        session's settings, disk cache, and keeps warmed tables.
        Compiling the same source (and options) twice returns the same
        program.  ``options`` overrides the session's defaults for this
        program; the old loose keywords (``reuse=``, ``config=``,
        ``profile_inputs=``) remain as a deprecated shim."""
        self._check_open("compile()")
        if legacy:
            unknown = sorted(set(legacy) - {"reuse", "config", "profile_inputs"})
            if unknown:
                raise ConfigError(
                    f"Session.compile() got unexpected keyword(s): {', '.join(unknown)}"
                )
            if options is not None:
                raise ConfigError(
                    "Session.compile() takes options= or legacy keywords, not both"
                )
            named = ", ".join(f"{key}=..." for key in sorted(legacy))
            warnings.warn(
                f"repro.Session.compile({named}) keyword arguments are deprecated; "
                f"pass options=repro.CompileOptions(...)",
                DeprecationWarning,
                stacklevel=2,
            )
            options = self._compile_options(legacy)
        elif options is None:
            options = self.options
        elif not isinstance(options, CompileOptions):
            raise ConfigError(
                f"options must be a CompileOptions, got {type(options).__name__}"
            )
        memo = self._memo_key(source, options)
        program = self._programs.get(memo)
        if program is None:
            with self._lock:
                program = self._programs.get(memo)
                if program is None:
                    program = CompiledProgram(
                        source,
                        options,
                        metrics=self.registry,
                        _cache=self.cache,
                        _persist_tables=True,
                    )
                    self._programs[memo] = program
        return program

    def evict(self, source: str, options: Optional[CompileOptions] = None) -> bool:
        """Drop the memoized program for ``source`` (and its warmed
        tables); returns whether one was held.  The service's program
        caches call this when recycling tenant capacity."""
        options = options if options is not None else self.options
        with self._lock:
            return self._programs.pop(self._memo_key(source, options), None) is not None

    def run_program(
        self,
        program: CompiledProgram,
        inputs: Sequence = (),
        options: Optional[RunOptions] = None,
    ) -> RunResult:
        """Run a session-compiled program, publishing the session's run
        counters and latency histogram (when the session is metered)."""
        self._check_open("run_program()")
        start = time.perf_counter() if self.registry is not None else 0.0
        with get_tracer().span(
            "session.run",
            category="api",
            opt=program.opt,
            backend=program.backend,
            governed=program.governed,
        ):
            result = program.run(inputs, options)
        if self.registry is not None:
            elapsed = time.perf_counter() - start
            self.registry.counter("repro_session_runs", "Session runs completed.").inc()
            self.registry.counter(
                "repro_session_inputs", "Input values consumed by session runs."
            ).inc(len(list(inputs)))
            self.registry.counter(
                "repro_session_wall_seconds", "Wall-clock seconds spent in session runs."
            ).inc(elapsed)
            self.registry.histogram(
                "repro_session_run_seconds",
                "Per-run wall-clock seconds.",
                buckets=(0.001, 0.01, 0.1, 1.0, 10.0, 100.0),
            ).observe(elapsed)
        return result

    def run(self, source: str, inputs: Sequence = ()) -> RunResult:
        """Compile (memoized) and run in one call."""
        self._check_open("run()")
        return self.run_program(self.compile(source), inputs)

    def serve_metrics(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> ExpositionServer:
        """Start (or return) the background OpenMetrics HTTP endpoint
        serving this session's registry; requires ``metrics=``.  The
        server binds an ephemeral port for ``port=0`` (read the real one
        from ``.port``), runs as a daemon thread, and is stopped —
        idempotently — by :meth:`close`."""
        self._check_open("serve_metrics()")
        if self.registry is None:
            raise ConfigError("serve_metrics() on a Session without metrics=")
        if self._server is None:
            self._server = ExpositionServer(self.registry, host=host, port=port)
            self._server.start()
        return self._server

    def close(self) -> None:
        """Stop the metrics endpoint and drop every memoized program.
        Idempotent: closing twice (or closing a session that never
        served metrics) is a no-op."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            self._server = None
        with self._lock:
            self._programs.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
