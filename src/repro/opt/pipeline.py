"""Optimization pipelines modelling GCC -O0 and -O3.

``optimize(program, "O0")`` is the identity; ``optimize(program, "O3")``
runs constant folding, algebraic simplification / strength reduction,
per-statement CSE, and dead-code elimination to a fixed point.  Combined
with the O3 cost table (register-allocated locals, cheaper calls), this
reproduces the paper's observation that reuse speedups shrink — but do
not vanish — under aggressive optimization.

The pipeline operates on a resolved AST in place and leaves it resolved.
"""

from __future__ import annotations

from ..minic import astnodes as ast
from ..minic.sema import analyze
from .cse import CSEPass
from .dce import dce_program
from .fold import fold_program
from .simplify import simplify_program

MAX_ITERATIONS = 4


def optimize(program: ast.Program, level: str = "O0") -> ast.Program:
    """Optimize ``program`` in place for the given level ("O0" or "O3")."""
    if level == "O0":
        return program
    if level != "O3":
        raise ValueError(f"unknown optimization level {level!r}")
    for _ in range(MAX_ITERATIONS):
        fold_program(program)
        simplify_program(program)
        removed = dce_program(program)
        if removed == 0:
            break
    CSEPass(program).run()
    fold_program(program)
    simplify_program(program)
    dce_program(program)
    analyze(program)
    return program
