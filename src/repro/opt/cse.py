"""Per-statement common-subexpression elimination.

A *pure* subexpression (no calls, assignments, inc/dec) occurring two or
more times within one statement is evaluated once into a compiler
temporary hoisted immediately before the statement::

    r = a[i] * b + a[i] * c;   ==>   int __cse0 = a[i];
                                     r = __cse0 * b + __cse0 * c;

Scoping the analysis to a single statement keeps the transformation
trivially sound (there is no intervening redefinition to reason about)
while still capturing the common wins in expression-heavy code such as
the DCT kernels.
"""

from __future__ import annotations

from ..minic import astnodes as ast
from ..minic.sema import Typer, analyze
from ..minic.types import Type
from .simplify import is_pure

_TEMP_PREFIX = "__cse"


def expr_fingerprint(expr: ast.Expr):
    """A structural key for expression equivalence (symbol-identity based,
    so shadowed names never collide)."""
    if isinstance(expr, ast.IntLit):
        return ("int", expr.value)
    if isinstance(expr, ast.FloatLit):
        return ("float", expr.value)
    if isinstance(expr, ast.Name):
        return ("name", expr.symbol.uid if expr.symbol else expr.name)
    if isinstance(expr, ast.Unary):
        return ("unary", expr.op, expr_fingerprint(expr.operand))
    if isinstance(expr, ast.Binary):
        return ("bin", expr.op, expr_fingerprint(expr.lhs), expr_fingerprint(expr.rhs))
    if isinstance(expr, ast.Logical):
        return ("log", expr.op, expr_fingerprint(expr.lhs), expr_fingerprint(expr.rhs))
    if isinstance(expr, ast.Index):
        return ("idx", expr_fingerprint(expr.base), expr_fingerprint(expr.index))
    if isinstance(expr, ast.Ternary):
        return (
            "tern",
            expr_fingerprint(expr.cond),
            expr_fingerprint(expr.then),
            expr_fingerprint(expr.els),
        )
    # calls/assignments are impure: give each occurrence a unique key
    return ("unique", id(expr))


def _expr_size(expr: ast.Expr) -> int:
    return sum(1 for _ in ast.walk(expr))


class CSEPass:
    def __init__(self, program: ast.Program, min_size: int = 3) -> None:
        self.program = program
        self.typer = Typer(program)
        self.min_size = min_size
        self._counter = 0
        self.eliminated = 0

    def run(self) -> ast.Program:
        for fn in self.program.functions:
            self._block(fn.body)
        analyze(self.program)
        return self.program

    def _fresh(self) -> str:
        name = f"{_TEMP_PREFIX}{self._counter}"
        self._counter += 1
        return name

    def _block(self, block: ast.Block) -> None:
        new_stmts: list[ast.Stmt] = []
        for stmt in block.stmts:
            prefix: list[ast.Stmt] = []
            self._stmt(stmt, prefix)
            new_stmts.extend(prefix)
            new_stmts.append(stmt)
        block.stmts = new_stmts

    def _stmt(self, stmt: ast.Stmt, prefix: list[ast.Stmt]) -> None:
        if isinstance(stmt, ast.ExprStmt):
            stmt.expr = self._cse_expr(stmt.expr, prefix)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            stmt.value = self._cse_expr(stmt.value, prefix)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if decl.init is not None:
                    decl.init = self._cse_expr(decl.init, prefix)
        elif isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.If):
            self._block(stmt.then)
            if stmt.els is not None:
                self._block(stmt.els)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            self._block(stmt.body)
        elif isinstance(stmt, ast.For):
            self._block(stmt.body)

    def _cse_expr(self, expr: ast.Expr, prefix: list[ast.Stmt]) -> ast.Expr:
        # An assignment's right-hand side can be processed on its own: the
        # hoisted evaluation still happens before the store, with nothing
        # in between.
        if isinstance(expr, ast.Assign):
            expr.value = self._cse_expr(expr.value, prefix)
            return expr
        # Otherwise the whole expression must be pure for single-evaluation
        # hoisting to be sound (an inner assignment could change an operand
        # between the original occurrences).
        if not is_pure(expr):
            return expr
        counts: dict = {}
        self._count(expr, counts)
        # pick repeated subexpressions, largest first; skip ones nested in
        # an already-chosen candidate
        candidates = [
            (fp, occurrences)
            for fp, occurrences in counts.items()
            if len(occurrences) >= 2 and _expr_size(occurrences[0]) >= self.min_size
        ]
        if not candidates:
            return expr
        candidates.sort(key=lambda item: -_expr_size(item[1][0]))
        replaced: dict = {}
        for fp, occurrences in candidates:
            if fp in replaced:
                continue
            sample = occurrences[0]
            try:
                t: Type = self.typer.type_of(sample)
            except Exception:
                continue
            if not t.is_scalar:
                continue
            name = self._fresh()
            decl = ast.VarDecl(name=name, type=t, init=sample, line=sample.line)
            prefix.append(ast.DeclStmt(decls=[decl], line=sample.line))
            replaced[fp] = name
            self.eliminated += len(occurrences) - 1
            # only take the single largest candidate per statement; nested
            # candidates would need occurrence bookkeeping inside the
            # hoisted initializer
            break
        if not replaced:
            return expr
        return self._rewrite(expr, replaced)

    def _count(self, expr: ast.Expr, counts: dict) -> None:
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.Name)):
            return
        # conditionally-evaluated subtrees must not be hoisted
        if isinstance(expr, (ast.Logical, ast.Ternary)):
            return
        fp = expr_fingerprint(expr)
        counts.setdefault(fp, []).append(expr)
        for child in expr.children():
            if isinstance(child, ast.Expr):
                self._count(child, counts)

    def _rewrite(self, expr: ast.Expr, replaced: dict) -> ast.Expr:
        fp = expr_fingerprint(expr)
        if fp in replaced:
            return ast.Name(name=replaced[fp], line=expr.line)
        if isinstance(expr, ast.Unary):
            expr.operand = self._rewrite(expr.operand, replaced)
        elif isinstance(expr, (ast.Binary, ast.Logical)):
            expr.lhs = self._rewrite(expr.lhs, replaced)
            expr.rhs = self._rewrite(expr.rhs, replaced)
        elif isinstance(expr, ast.Index):
            expr.base = self._rewrite(expr.base, replaced)
            expr.index = self._rewrite(expr.index, replaced)
        elif isinstance(expr, ast.Ternary):
            expr.cond = self._rewrite(expr.cond, replaced)
        return expr


def cse_program(program: ast.Program, min_size: int = 3) -> ast.Program:
    return CSEPass(program, min_size=min_size).run()
