"""Optimizer passes (the -O3 pipeline)."""

from .cse import CSEPass, cse_program, expr_fingerprint
from .dce import dce_function, dce_program
from .fold import fold_expr, fold_program, fold_stmt
from .pipeline import optimize
from .simplify import is_pure, simplify_expr, simplify_program

__all__ = [
    "CSEPass",
    "cse_program",
    "expr_fingerprint",
    "dce_function",
    "dce_program",
    "fold_expr",
    "fold_stmt",
    "fold_program",
    "optimize",
    "is_pure",
    "simplify_expr",
    "simplify_program",
]
