"""Dead-code elimination.

Four in-place cleanups, iterated to a fixed point by the pipeline:

* side-effect-free expression statements are dropped;
* ``if (0)`` / ``if (1)`` with literal conditions are replaced by the
  live branch; ``while (0)`` disappears; ``for (...; 0; ...)`` keeps only
  its init;
* statements after a ``return``/``break``/``continue`` in the same block
  are unreachable and dropped;
* assignments (and initializers) to *write-only locals* — locals never
  read anywhere in the function — are removed; impure right-hand sides
  are preserved as expression statements.
"""

from __future__ import annotations

from ..minic import astnodes as ast
from .simplify import is_pure


def _read_symbols(fn: ast.Function) -> set:
    """Symbols read (as opposed to only written) anywhere in the function.

    Any appearance that is not a pure store counts as a read: an
    address-taken or array symbol is always treated as read (stores
    through pointers may be loads elsewhere)."""
    reads: set = set()

    def visit(expr: ast.Expr) -> None:
        if isinstance(expr, ast.Name):
            if expr.symbol is not None:
                reads.add(expr.symbol)
            return
        if isinstance(expr, ast.Assign):
            # the *direct* target name of a simple assignment is a write,
            # not a read; compound assignments read the target
            if not (isinstance(expr.target, ast.Name) and expr.op == "="):
                visit(expr.target)
            visit(expr.value)
            return
        for child in expr.children():
            if isinstance(child, ast.Expr):
                visit(child)

    for node in ast.walk(fn.body):
        if isinstance(node, ast.ExprStmt):
            visit(node.expr)
        elif isinstance(node, ast.DeclStmt):
            for decl in node.decls:
                if decl.init is not None:
                    visit(decl.init)
        elif isinstance(node, ast.Return) and node.value is not None:
            visit(node.value)
        elif isinstance(node, (ast.If, ast.While, ast.DoWhile)):
            visit(node.cond)
        elif isinstance(node, ast.For):
            if node.cond is not None:
                visit(node.cond)
            if node.step is not None:
                visit(node.step)
    return reads


def _is_write_only_store(expr: ast.Expr, reads: set) -> bool:
    """`x = pure` where local x is never read."""
    if not isinstance(expr, ast.Assign) or expr.op != "=":
        return False
    target = expr.target
    if not isinstance(target, ast.Name) or target.symbol is None:
        return False
    symbol = target.symbol
    if symbol.kind not in ("local", "param") or symbol.address_taken:
        return False
    if symbol in reads:
        return False
    return True


def _terminates(stmt: ast.Stmt) -> bool:
    return isinstance(stmt, (ast.Return, ast.Break, ast.Continue))


class DCE:
    def __init__(self, fn: ast.Function) -> None:
        self.fn = fn
        self.removed = 0

    def run(self) -> int:
        self._reads = _read_symbols(self.fn)
        self._block(self.fn.body)
        return self.removed

    def _block(self, block: ast.Block) -> None:
        new_stmts: list[ast.Stmt] = []
        terminated = False
        for stmt in block.stmts:
            if terminated:
                self.removed += 1  # unreachable after return/break/continue
                continue
            stmt = self._stmt(stmt)
            if stmt is None:
                self.removed += 1
                continue
            new_stmts.append(stmt)
            if _terminates(stmt):
                terminated = True
        block.stmts = new_stmts

    def _stmt(self, stmt: ast.Stmt):
        if isinstance(stmt, ast.ExprStmt):
            if is_pure(stmt.expr) and not isinstance(stmt.expr, (ast.Assign, ast.IncDec)):
                return None
            if _is_write_only_store(stmt.expr, self._reads):
                value = stmt.expr.value
                if is_pure(value):
                    return None
                return ast.ExprStmt(expr=value, line=stmt.line)
            return stmt
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if (
                    decl.init is not None
                    and decl.symbol is not None
                    and decl.symbol not in self._reads
                    and not decl.symbol.address_taken
                    and is_pure(decl.init)
                ):
                    decl.init = None
                    self.removed += 1
            return stmt
        if isinstance(stmt, ast.Block):
            self._block(stmt)
            return stmt if stmt.stmts else None
        if isinstance(stmt, ast.If):
            self._block(stmt.then)
            if stmt.els is not None:
                self._block(stmt.els)
                if not stmt.els.stmts:
                    stmt.els = None
            if isinstance(stmt.cond, ast.IntLit):
                branch = stmt.then if stmt.cond.value else stmt.els
                self.removed += 1
                return branch  # may be None (dead branch, no else)
            if not stmt.then.stmts and stmt.els is None and is_pure(stmt.cond):
                return None
            return stmt
        if isinstance(stmt, ast.While):
            self._block(stmt.body)
            if isinstance(stmt.cond, ast.IntLit) and stmt.cond.value == 0:
                self.removed += 1
                return None
            return stmt
        if isinstance(stmt, ast.DoWhile):
            self._block(stmt.body)
            return stmt
        if isinstance(stmt, ast.For):
            self._block(stmt.body)
            if (
                stmt.cond is not None
                and isinstance(stmt.cond, ast.IntLit)
                and stmt.cond.value == 0
            ):
                self.removed += 1
                return stmt.init  # init still executes; may be None
            return stmt
        return stmt


def dce_function(fn: ast.Function) -> int:
    """Run DCE on one function; returns the number of removals."""
    return DCE(fn).run()


def dce_program(program: ast.Program) -> int:
    return sum(dce_function(fn) for fn in program.functions)
