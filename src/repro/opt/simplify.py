"""Algebraic simplification and strength reduction.

Identity eliminations (``x+0``, ``x*1``, ``x|0``, ...) and strength
reduction of multiplications by powers of two into shifts.  Annihilating
rewrites (``x*0 -> 0``, ``x&0 -> 0``) apply only when ``x`` is *pure* —
free of calls, assignments, increments, and I/O — so side effects are
never dropped.  Divisions are never strength-reduced: ``x/2`` and
``x>>1`` disagree for negative ``x`` under C99 truncation.
"""

from __future__ import annotations

from ..minic import astnodes as ast


def is_pure(expr: ast.Expr) -> bool:
    """Free of side effects (calls, assignments, inc/dec)."""
    for node in ast.walk(expr):
        if isinstance(node, (ast.Assign, ast.IncDec, ast.Call)):
            return False
    return True


def _is_int_const(expr: ast.Expr, value: int) -> bool:
    return isinstance(expr, ast.IntLit) and expr.value == value


def _power_of_two_log(value: int) -> int:
    """log2(value) if value is a positive power of two, else -1."""
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return -1


def _is_int_expr(expr: ast.Expr, typer) -> bool:
    if typer is None:
        return False
    try:
        from ..minic.types import INT

        return typer.type_of(expr) == INT
    except Exception:
        return False


def simplify_expr(expr: ast.Expr, typer=None) -> ast.Expr:
    simplify = lambda e: simplify_expr(e, typer)
    if isinstance(expr, ast.Binary):
        expr.lhs = simplify(expr.lhs)
        expr.rhs = simplify(expr.rhs)
        op, lhs, rhs = expr.op, expr.lhs, expr.rhs
        # identities -----------------------------------------------------
        if op == "+":
            if _is_int_const(rhs, 0):
                return lhs
            if _is_int_const(lhs, 0):
                return rhs
        elif op == "-":
            if _is_int_const(rhs, 0):
                return lhs
        elif op == "*":
            if _is_int_const(rhs, 1):
                return lhs
            if _is_int_const(lhs, 1):
                return rhs
            if _is_int_const(rhs, 0) and is_pure(lhs):
                return ast.IntLit(value=0, line=expr.line)
            if _is_int_const(lhs, 0) and is_pure(rhs):
                return ast.IntLit(value=0, line=expr.line)
            # strength reduction: x * 2^k -> x << k (integers only:
            # float multiplies and pointer scaling must not become shifts)
            if isinstance(rhs, ast.IntLit) and _is_int_expr(lhs, typer):
                k = _power_of_two_log(rhs.value)
                if k > 0:
                    return ast.Binary(
                        op="<<", lhs=lhs, rhs=ast.IntLit(value=k, line=expr.line), line=expr.line
                    )
            if isinstance(lhs, ast.IntLit) and _is_int_expr(rhs, typer):
                k = _power_of_two_log(lhs.value)
                if k > 0:
                    return ast.Binary(
                        op="<<", lhs=rhs, rhs=ast.IntLit(value=k, line=expr.line), line=expr.line
                    )
        elif op == "/":
            if _is_int_const(rhs, 1):
                return lhs
        elif op in ("<<", ">>"):
            if _is_int_const(rhs, 0):
                return lhs
        elif op == "|":
            if _is_int_const(rhs, 0):
                return lhs
            if _is_int_const(lhs, 0):
                return rhs
        elif op == "^":
            if _is_int_const(rhs, 0):
                return lhs
            if _is_int_const(lhs, 0):
                return rhs
        elif op == "&":
            if _is_int_const(rhs, 0) and is_pure(lhs):
                return ast.IntLit(value=0, line=expr.line)
            if _is_int_const(lhs, 0) and is_pure(rhs):
                return ast.IntLit(value=0, line=expr.line)
        return expr
    if isinstance(expr, ast.Unary):
        expr.operand = simplify_expr(expr.operand, typer)
        # double negation
        if expr.op == "-" and isinstance(expr.operand, ast.Unary) and expr.operand.op == "-":
            return expr.operand.operand
        if expr.op == "~" and isinstance(expr.operand, ast.Unary) and expr.operand.op == "~":
            return expr.operand.operand
        return expr
    if isinstance(expr, ast.Logical):
        expr.lhs = simplify_expr(expr.lhs, typer)
        expr.rhs = simplify_expr(expr.rhs, typer)
        return expr
    if isinstance(expr, ast.Ternary):
        expr.cond = simplify_expr(expr.cond, typer)
        expr.then = simplify_expr(expr.then, typer)
        expr.els = simplify_expr(expr.els, typer)
        return expr
    if isinstance(expr, ast.Assign):
        expr.target = simplify_expr(expr.target, typer)
        expr.value = simplify_expr(expr.value, typer)
        return expr
    if isinstance(expr, ast.Call):
        expr.args = [simplify_expr(a, typer) for a in expr.args]
        return expr
    if isinstance(expr, ast.Index):
        expr.base = simplify_expr(expr.base, typer)
        expr.index = simplify_expr(expr.index, typer)
        return expr
    return expr


def simplify_stmt(stmt: ast.Stmt, typer=None) -> None:
    if isinstance(stmt, ast.ExprStmt):
        stmt.expr = simplify_expr(stmt.expr, typer)
    elif isinstance(stmt, ast.DeclStmt):
        for decl in stmt.decls:
            if decl.init is not None:
                decl.init = simplify_expr(decl.init, typer)
    elif isinstance(stmt, ast.Block):
        for s in stmt.stmts:
            simplify_stmt(s, typer)
    elif isinstance(stmt, ast.If):
        stmt.cond = simplify_expr(stmt.cond, typer)
        simplify_stmt(stmt.then, typer)
        if stmt.els is not None:
            simplify_stmt(stmt.els, typer)
    elif isinstance(stmt, ast.While):
        stmt.cond = simplify_expr(stmt.cond, typer)
        simplify_stmt(stmt.body, typer)
    elif isinstance(stmt, ast.DoWhile):
        stmt.cond = simplify_expr(stmt.cond, typer)
        simplify_stmt(stmt.body, typer)
    elif isinstance(stmt, ast.For):
        if stmt.init is not None:
            simplify_stmt(stmt.init, typer)
        if stmt.cond is not None:
            stmt.cond = simplify_expr(stmt.cond, typer)
        if stmt.step is not None:
            stmt.step = simplify_expr(stmt.step, typer)
        simplify_stmt(stmt.body, typer)
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            stmt.value = simplify_expr(stmt.value, typer)


def simplify_program(program: ast.Program) -> ast.Program:
    from ..minic.sema import Typer

    typer = Typer(program)
    for fn in program.functions:
        simplify_stmt(fn.body, typer)
    return program
