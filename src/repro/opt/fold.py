"""Constant folding.

Folds literal-only subexpressions using C99 arithmetic semantics (the
same helpers the runtime uses, so folding can never change behaviour).
Division/modulo by a literal zero is left unfolded — the runtime raises
at execution time, matching the unoptimized program.
"""

from __future__ import annotations


from ..minic import astnodes as ast
from ..runtime.values import c_div, c_mod, c_shl, c_shr, wrap32


def _lit_value(expr: ast.Expr):
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    return None


def _make_lit(value, line: int) -> ast.Expr:
    if isinstance(value, float):
        return ast.FloatLit(value=value, line=line)
    return ast.IntLit(value=wrap32(value), line=line)


_INT_OPS = {
    "+": lambda a, b: wrap32(a + b),
    "-": lambda a, b: wrap32(a - b),
    "*": lambda a, b: wrap32(a * b),
    "/": c_div,
    "%": c_mod,
    "<<": c_shl,
    ">>": c_shr,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}

_FLOAT_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}

_CMP_OPS = {
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
}


def fold_expr(expr: ast.Expr) -> ast.Expr:
    """Fold ``expr`` bottom-up; returns the (possibly new) expression."""
    if isinstance(expr, ast.Unary):
        expr.operand = fold_expr(expr.operand)
        v = _lit_value(expr.operand)
        if v is None:
            return expr
        if expr.op == "-":
            return _make_lit(-v, expr.line)
        if expr.op == "!":
            return ast.IntLit(value=0 if v else 1, line=expr.line)
        if expr.op == "~" and isinstance(v, int):
            return ast.IntLit(value=wrap32(~v), line=expr.line)
        return expr
    if isinstance(expr, ast.Binary):
        expr.lhs = fold_expr(expr.lhs)
        expr.rhs = fold_expr(expr.rhs)
        a = _lit_value(expr.lhs)
        b = _lit_value(expr.rhs)
        if a is None or b is None:
            return expr
        if expr.op in _CMP_OPS:
            return ast.IntLit(value=_CMP_OPS[expr.op](a, b), line=expr.line)
        both_int = isinstance(a, int) and isinstance(b, int)
        if both_int and expr.op in _INT_OPS:
            if expr.op in ("/", "%") and b == 0:
                return expr  # defer the trap to run time
            return _make_lit(_INT_OPS[expr.op](a, b), expr.line)
        if not both_int and expr.op in _FLOAT_OPS:
            if expr.op == "/" and b == 0:
                return expr
            return _make_lit(_FLOAT_OPS[expr.op](float(a), float(b)), expr.line)
        return expr
    if isinstance(expr, ast.Logical):
        expr.lhs = fold_expr(expr.lhs)
        a = _lit_value(expr.lhs)
        if a is not None:
            if expr.op == "&&":
                if not a:
                    return ast.IntLit(value=0, line=expr.line)
                expr.rhs = fold_expr(expr.rhs)
                b = _lit_value(expr.rhs)
                if b is not None:
                    return ast.IntLit(value=1 if b else 0, line=expr.line)
                return expr
            # "||"
            if a:
                return ast.IntLit(value=1, line=expr.line)
            expr.rhs = fold_expr(expr.rhs)
            b = _lit_value(expr.rhs)
            if b is not None:
                return ast.IntLit(value=1 if b else 0, line=expr.line)
            return expr
        expr.rhs = fold_expr(expr.rhs)
        return expr
    if isinstance(expr, ast.Ternary):
        expr.cond = fold_expr(expr.cond)
        expr.then = fold_expr(expr.then)
        expr.els = fold_expr(expr.els)
        c = _lit_value(expr.cond)
        if c is not None:
            return expr.then if c else expr.els
        return expr
    if isinstance(expr, ast.Assign):
        expr.value = fold_expr(expr.value)
        expr.target = fold_expr(expr.target)
        return expr
    if isinstance(expr, ast.Call):
        expr.args = [fold_expr(a) for a in expr.args]
        return expr
    if isinstance(expr, ast.Index):
        expr.base = fold_expr(expr.base)
        expr.index = fold_expr(expr.index)
        return expr
    if isinstance(expr, ast.IncDec):
        return expr
    return expr


def fold_stmt(stmt: ast.Stmt) -> None:
    """Fold all expressions inside a statement, in place."""
    if isinstance(stmt, ast.ExprStmt):
        stmt.expr = fold_expr(stmt.expr)
    elif isinstance(stmt, ast.DeclStmt):
        for decl in stmt.decls:
            if decl.init is not None:
                decl.init = fold_expr(decl.init)
    elif isinstance(stmt, ast.Block):
        for s in stmt.stmts:
            fold_stmt(s)
    elif isinstance(stmt, ast.If):
        stmt.cond = fold_expr(stmt.cond)
        fold_stmt(stmt.then)
        if stmt.els is not None:
            fold_stmt(stmt.els)
    elif isinstance(stmt, ast.While):
        stmt.cond = fold_expr(stmt.cond)
        fold_stmt(stmt.body)
    elif isinstance(stmt, ast.DoWhile):
        stmt.cond = fold_expr(stmt.cond)
        fold_stmt(stmt.body)
    elif isinstance(stmt, ast.For):
        if stmt.init is not None:
            fold_stmt(stmt.init)
        if stmt.cond is not None:
            stmt.cond = fold_expr(stmt.cond)
        if stmt.step is not None:
            stmt.step = fold_expr(stmt.step)
        fold_stmt(stmt.body)
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            stmt.value = fold_expr(stmt.value)


def fold_program(program: ast.Program) -> ast.Program:
    for fn in program.functions:
        fold_stmt(fn.body)
    return program
