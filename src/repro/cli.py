"""Command-line interface.

::

    python -m repro run program.c --inputs 1,2,3 --opt O3
    python -m repro transform program.c --inputs-file stream.txt
    python -m repro trace program.c --why quan
    python -m repro stats G721_encode --opt O3
    python -m repro workloads
    python -m repro report --table 6 --workload G721_encode --workload RASTA
    python -m repro report --figure 14 --workload UNEPIC

``run`` executes a mini-C file on the simulated StrongARM and prints the
metrics; ``transform`` runs the full reuse pipeline and prints the
memoized source plus the before/after comparison; ``trace`` runs the
pipeline with tracing on and exports a Chrome trace, a JSONL span log,
and the segment decision ledger; ``stats`` prints the runtime
reuse-table telemetry of a transformed execution; ``report`` regenerates
any of the paper's tables/figures for a subset of workloads.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .minic import format_program, frontend
from .reuse import PipelineConfig, ReusePipeline
from .runtime import Machine, compile_program


def _parse_inputs(args) -> list:
    if getattr(args, "inputs_file", None):
        with open(args.inputs_file) as f:
            return [
                float(tok) if "." in tok else int(tok)
                for tok in f.read().split()
            ]
    if getattr(args, "inputs", None):
        return [
            float(tok) if "." in tok else int(tok)
            for tok in args.inputs.split(",")
            if tok.strip()
        ]
    return []


def _read_source(path: str) -> str:
    with open(path) as f:
        return f.read()


def cmd_run(args) -> int:
    source = _read_source(args.file)
    inputs = _parse_inputs(args)
    program = frontend(source)
    if args.opt == "O3":
        from .opt.pipeline import optimize

        optimize(program, "O3")
    machine = Machine(args.opt)
    machine.set_inputs(inputs)
    result = compile_program(program, machine).run(args.entry)
    metrics = machine.metrics()
    print(f"result: {result}")
    print(f"cycles: {metrics.cycles}")
    print(f"time:   {metrics.seconds:.6f} s (simulated SA-1110 @ 206 MHz)")
    print(f"energy: {metrics.energy_joules:.6f} J")
    print(f"output: {metrics.output_count} values, checksum {metrics.output_checksum:#010x}")
    return 0


def cmd_transform(args) -> int:
    source = _read_source(args.file)
    inputs = _parse_inputs(args)
    config = PipelineConfig(min_executions=args.min_executions)
    result = ReusePipeline(source, config).run(inputs)

    counts = result.counts
    print(
        f"// segments: {counts['analyzed']} analyzed, "
        f"{counts['profiled']} profiled, {counts['transformed']} transformed"
    )
    for record in result.specializations:
        bindings = ", ".join(b.describe() for b in record.bindings)
        print(f"// specialized {record.original} -> {record.specialized} [{bindings}]")
    for segment in result.selected:
        print(
            f"// {segment.describe()}: R={segment.reuse_rate:.3f} "
            f"C={segment.measured_granularity:.0f}cy O={segment.overhead:.0f}cy "
            f"gain={segment.gain:.0f}cy/exec"
        )
    print(format_program(result.program))

    if not args.no_measure and result.selected:
        machine_o = Machine("O0")
        machine_o.set_inputs(list(inputs))
        compile_program(frontend(source), machine_o).run(args.entry)
        machine_t = Machine("O0")
        machine_t.set_inputs(list(inputs))
        for seg_id, table in result.build_tables().items():
            machine_t.install_table(seg_id, table)
        compile_program(result.program, machine_t).run(args.entry)
        match = machine_o.output_checksum == machine_t.output_checksum
        print(f"// original:    {machine_o.seconds:.6f} s")
        print(f"// transformed: {machine_t.seconds:.6f} s")
        print(f"// speedup:     {machine_o.seconds / machine_t.seconds:.2f}x")
        print(f"// outputs match: {match}")
        if not match:
            return 1
    return 0


def cmd_trace(args) -> int:
    """Run the reuse pipeline with tracing on and export the evidence:
    a Chrome trace (``<stem>.trace.json``), the span/event log
    (``<stem>.trace.jsonl``), and the decision ledger
    (``<stem>.ledger.json``), plus the ledger table on stdout."""
    import json
    from pathlib import Path

    from .obs import Tracer, set_tracer, write_chrome_trace, write_jsonl

    source = _read_source(args.file)
    inputs = _parse_inputs(args)
    config = PipelineConfig(min_executions=args.min_executions)
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        result = ReusePipeline(source, config).run(inputs)
    finally:
        set_tracer(previous)

    out_dir = Path(args.out_dir or ".")
    out_dir.mkdir(parents=True, exist_ok=True)
    base = out_dir / Path(args.file).stem
    chrome_path = f"{base}.trace.json"
    jsonl_path = f"{base}.trace.jsonl"
    ledger_path = f"{base}.ledger.json"
    write_chrome_trace(tracer, chrome_path)
    write_jsonl(tracer, jsonl_path)
    with open(ledger_path, "w", encoding="utf-8") as f:
        json.dump(result.ledger.to_json(), f, indent=1, sort_keys=True)
        f.write("\n")

    counts = result.counts
    print(
        f"// segments: {counts['analyzed']} analyzed, "
        f"{counts['profiled']} profiled, {counts['transformed']} transformed"
    )
    print(f"// chrome trace: {chrome_path} ({len(tracer.spans)} spans)")
    print(f"// span log:     {jsonl_path}")
    print(f"// ledger:       {ledger_path}")
    print()
    if args.why:
        print(result.ledger.why(args.why))
    else:
        print(result.ledger.render())
    return 0


def cmd_stats(args) -> int:
    """Transform a program (or a registered workload), execute it with its
    reuse tables installed, and print the runtime table telemetry."""
    import os

    from .experiments.report import render_hit_ratio_series, render_reuse_stats

    if os.path.exists(args.target):
        source = _read_source(args.target)
        inputs = _parse_inputs(args)
        config = PipelineConfig(min_executions=args.min_executions)
    else:
        from .workloads import get_workload

        workload = get_workload(args.target)
        source = workload.source
        inputs = _parse_inputs(args) or workload.default_inputs()
        config = PipelineConfig(
            min_executions=workload.min_executions,
            memory_budget_bytes=workload.memory_budget_bytes,
        )
    result = ReusePipeline(source, config).run(inputs)
    if not result.selected:
        print("nothing was transformed; no reuse tables to report")
        return 1
    program = result.program
    if args.opt == "O3":
        from .opt.pipeline import optimize

        optimize(program, "O3")
    machine = Machine(args.opt)
    machine.set_inputs(list(inputs))
    for seg_id, table in result.build_tables().items():
        machine.install_table(seg_id, table)
    compile_program(program, machine).run("main")
    metrics = machine.metrics()
    print(render_reuse_stats(metrics.table_stats, metrics.merged_members))
    print()
    print(render_hit_ratio_series(metrics.table_stats))
    return 0


def cmd_workloads(args) -> int:
    from .workloads import ALL_WORKLOADS

    for workload in ALL_WORKLOADS:
        kind = "variant" if workload.is_variant else "primary"
        print(f"{workload.name:16} [{kind}] {workload.description}")
    return 0


def _selected_workloads(args):
    from .workloads import ALL_WORKLOADS, get_workload

    if args.workload:
        return [get_workload(name) for name in args.workload]
    return ALL_WORKLOADS


def cmd_report(args) -> int:
    from .experiments import (
        ExperimentRunner,
        energy_table,
        figure14,
        figure15,
        render_energy,
        render_speedups,
        render_sweep,
        render_table3,
        render_table4,
        render_table5,
        render_table10,
        speedup_table,
        table3,
        table4,
        table5,
        table10,
    )

    runner = ExperimentRunner()
    workloads = _selected_workloads(args)
    if args.table == 3:
        print(render_table3(table3(runner, workloads)))
    elif args.table == 4:
        print(render_table4(table4(runner, workloads)))
    elif args.table == 5:
        print(render_table5(table5(runner, workloads)))
    elif args.table in (6, 7):
        level = "O0" if args.table == 6 else "O3"
        rows, mean = speedup_table(runner, level, workloads)
        print(render_speedups(rows, mean, level, args.table))
    elif args.table in (8, 9):
        level = "O0" if args.table == 8 else "O3"
        print(render_energy(energy_table(runner, level, workloads), level, args.table))
    elif args.table == 10:
        rows, mean = table10(runner, workloads)
        print(render_table10(rows, mean))
    elif args.figure in (14, 15):
        fig = figure14 if args.figure == 14 else figure15
        level = "O0" if args.figure == 14 else "O3"
        print(render_sweep(fig(runner, workloads), level, args.figure))
    else:
        print("specify --table {3..10} or --figure {14,15}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Computation-reuse compiler scheme (Ding & Li, CGO 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a mini-C file on the simulated machine")
    p_run.add_argument("file")
    p_run.add_argument("--opt", choices=("O0", "O3"), default="O0")
    p_run.add_argument("--entry", default="main")
    p_run.add_argument("--inputs", help="comma-separated input stream")
    p_run.add_argument("--inputs-file", help="whitespace-separated input stream file")
    p_run.set_defaults(func=cmd_run)

    p_tr = sub.add_parser("transform", help="apply the reuse pipeline to a mini-C file")
    p_tr.add_argument("file")
    p_tr.add_argument("--entry", default="main")
    p_tr.add_argument("--inputs", help="comma-separated profiling input stream")
    p_tr.add_argument("--inputs-file")
    p_tr.add_argument("--min-executions", type=int, default=32)
    p_tr.add_argument("--no-measure", action="store_true")
    p_tr.set_defaults(func=cmd_transform)

    p_trace = sub.add_parser(
        "trace", help="trace the reuse pipeline and dump the decision ledger"
    )
    p_trace.add_argument("file")
    p_trace.add_argument("--inputs", help="comma-separated profiling input stream")
    p_trace.add_argument("--inputs-file")
    p_trace.add_argument("--min-executions", type=int, default=32)
    p_trace.add_argument(
        "--out-dir", help="directory for the trace/ledger files (default: .)"
    )
    p_trace.add_argument(
        "--why",
        help="print the decision history of one segment "
        "(id, function name, or function@workload)",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_stats = sub.add_parser(
        "stats", help="runtime reuse-table telemetry for a file or workload"
    )
    p_stats.add_argument("target", help="mini-C file path or workload name")
    p_stats.add_argument("--opt", choices=("O0", "O3"), default="O0")
    p_stats.add_argument("--inputs", help="comma-separated input stream")
    p_stats.add_argument("--inputs-file")
    p_stats.add_argument("--min-executions", type=int, default=32)
    p_stats.set_defaults(func=cmd_stats)

    p_wl = sub.add_parser("workloads", help="list the benchmark workloads")
    p_wl.set_defaults(func=cmd_workloads)

    p_rep = sub.add_parser("report", help="regenerate a paper table/figure")
    p_rep.add_argument("--table", type=int)
    p_rep.add_argument("--figure", type=int)
    p_rep.add_argument(
        "--workload", action="append", help="restrict to workload (repeatable)"
    )
    p_rep.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
