"""Command-line interface.

::

    python -m repro run program.c --inputs 1,2,3 --opt O3
    python -m repro transform program.c --inputs-file stream.txt
    python -m repro trace program.c --why quan
    python -m repro stats G721_encode --opt O3
    python -m repro stats GNUGO_drift --governed --alternate
    python -m repro annotate UNEPIC --opt O0 --backend both --html unepic.html
    python -m repro disasm GNUGO --opt O3
    python -m repro workloads
    python -m repro perf record --workload UNEPIC --update-baseline
    python -m repro perf report GNUGO --flamegraph gnugo.folded
    python -m repro perf check --baseline PERF_BASELINE.json
    python -m repro perf check --anomaly --report-only
    python -m repro dash --workload UNEPIC --out repro-dash.html
    python -m repro report --table 6 --workload G721_encode --workload RASTA
    python -m repro report --figure 14 --workload UNEPIC
    python -m repro serve --port 8080
    python -m repro loadgen --smoke --out BENCH_service.json

``run`` executes a mini-C file on the simulated StrongARM and prints the
metrics; ``transform`` runs the full reuse pipeline and prints the
memoized source plus the before/after comparison; ``trace`` runs the
pipeline with tracing on and exports a Chrome trace, a JSONL span log,
and the segment decision ledger; ``stats`` prints the runtime
reuse-table telemetry of a transformed execution (``--governed`` adds
the online governor's state and transitions, ``--alternate`` runs on a
workload's alternate/shifted input stream, ``--repeat`` runs the
session several times and reports p50/p90/p99 run latency);
``annotate`` prints the line-level cycle & reuse annotation — the
simulator's ``perf annotate`` — and optionally writes the heat-shaded
HTML page; ``disasm`` dumps the VM bytecode interleaved with the
source lines it compiled from; ``perf`` records
cycle-attribution profiles into the append-only perf store, renders the
measured-vs-ledger report, and gates CI against a committed baseline
(``check`` exits non-zero on any cycle or checksum regression;
``check --anomaly`` judges against the store's own history instead, so
no baseline needs committing); ``dash`` renders the whole observability
surface — live metrics registry, ledger verdicts, attribution trees,
perf trends, anomaly flags — into one static HTML file; ``report``
regenerates any of the paper's tables/figures for a subset of
workloads; ``serve`` starts the multi-tenant compile-and-run HTTP
service (:mod:`repro.service`) and ``loadgen`` load-tests it —
concurrent client sessions over the registered workloads with every
served output verified against a direct facade run, writing the
latency/throughput report to ``BENCH_service.json``.

Every command goes through the stable facade (:mod:`repro.api`); this
module contains no pipeline or machine wiring of its own.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import api
from .errors import ReproError


def _parse_inputs(args) -> list:
    if getattr(args, "inputs_file", None):
        with open(args.inputs_file) as f:
            return api.parse_input_stream(f.read())
    if getattr(args, "inputs", None):
        return api.parse_input_stream(args.inputs)
    return []


def _read_source(path: str) -> str:
    with open(path) as f:
        return f.read()


def _resolve_workload(name: str):
    """``get_workload`` with CLI-grade errors: an unknown name becomes a
    :class:`~repro.errors.ConfigError` (exit code 2) that lists the
    registered workloads instead of a raw traceback."""
    from .workloads import ALL_WORKLOADS, get_workload

    try:
        return get_workload(name)
    except KeyError:
        names = ", ".join(w.name for w in ALL_WORKLOADS)
        raise api.ConfigError(
            f"unknown workload {name!r}; registered workloads: {names}"
        ) from None


def _resolve_target(args):
    """Shared file-or-workload resolution for the single-target commands
    (``stats``, ``trace``, ``annotate``, ``disasm``).

    A target path that exists on disk is a mini-C file; anything else
    must name a registered workload.  Returns ``(source, profile
    inputs, run inputs or None, pipeline config, title)``."""
    import os

    run_inputs = None
    if os.path.exists(args.target):
        if getattr(args, "alternate", False):
            raise api.ConfigError("--alternate requires a registered workload")
        source = _read_source(args.target)
        inputs = _parse_inputs(args)
        config = api.PipelineConfig(
            min_executions=getattr(args, "min_executions", 32)
        )
        title = args.target
    else:
        from .experiments.adaptive import workload_config

        workload = _resolve_workload(args.target)
        source = workload.source
        inputs = _parse_inputs(args) or workload.default_inputs()
        if getattr(args, "alternate", False):
            run_inputs = workload.alternate_inputs()
        config = workload_config(workload)
        title = workload.name
    return source, inputs, run_inputs, config, title


def cmd_run(args) -> int:
    source = _read_source(args.file)
    inputs = _parse_inputs(args)
    options = api.CompileOptions(opt=args.opt, reuse=False, backend=args.backend)
    result = api.compile(source, options).run(inputs, api.RunOptions(entry=args.entry))
    metrics = result.metrics
    print(f"result: {result.value}")
    print(f"cycles: {metrics.cycles}")
    print(f"time:   {metrics.seconds:.6f} s (simulated SA-1110 @ 206 MHz)")
    print(f"energy: {metrics.energy_joules:.6f} J")
    print(f"output: {metrics.output_count} values, checksum {metrics.output_checksum:#010x}")
    return 0


def cmd_transform(args) -> int:
    source = _read_source(args.file)
    inputs = _parse_inputs(args)
    config = api.PipelineConfig(min_executions=args.min_executions)
    program = api.compile(source, api.CompileOptions(config=config))
    result = program.profile(inputs)

    counts = result.counts
    print(
        f"// segments: {counts['analyzed']} analyzed, "
        f"{counts['profiled']} profiled, {counts['transformed']} transformed"
    )
    for record in result.specializations:
        bindings = ", ".join(b.describe() for b in record.bindings)
        print(f"// specialized {record.original} -> {record.specialized} [{bindings}]")
    for segment in result.selected:
        print(
            f"// {segment.describe()}: R={segment.reuse_rate:.3f} "
            f"C={segment.measured_granularity:.0f}cy O={segment.overhead:.0f}cy "
            f"gain={segment.gain:.0f}cy/exec"
        )
    print(program.transformed_source())

    if not args.no_measure and result.selected:
        run_options = api.RunOptions(entry=args.entry)
        original = api.compile(
            source, api.CompileOptions(reuse=False)
        ).run(inputs, run_options)
        transformed = program.run(inputs, run_options)
        match = original.output_checksum == transformed.output_checksum
        print(f"// original:    {original.seconds:.6f} s")
        print(f"// transformed: {transformed.seconds:.6f} s")
        print(f"// speedup:     {transformed.speedup_vs(original):.2f}x")
        print(f"// outputs match: {match}")
        if not match:
            return 1
    return 0


def cmd_trace(args) -> int:
    """Run the reuse pipeline with tracing on and export the evidence:
    a Chrome trace (``<stem>.trace.json``), the span/event log
    (``<stem>.trace.jsonl``), and the decision ledger
    (``<stem>.ledger.json``), plus the ledger table on stdout."""
    import json
    from pathlib import Path

    from .obs import write_chrome_trace, write_jsonl

    source, inputs, _run_inputs, config, title = _resolve_target(args)
    program = api.compile(source, api.CompileOptions(config=config, trace=True))
    result = program.profile(inputs)
    tracer = program.tracer

    out_dir = Path(args.out_dir or ".")
    out_dir.mkdir(parents=True, exist_ok=True)
    base = out_dir / Path(title).stem
    chrome_path = f"{base}.trace.json"
    jsonl_path = f"{base}.trace.jsonl"
    ledger_path = f"{base}.ledger.json"
    write_chrome_trace(tracer, chrome_path)
    write_jsonl(tracer, jsonl_path)
    with open(ledger_path, "w", encoding="utf-8") as f:
        json.dump(result.ledger.to_json(), f, indent=1, sort_keys=True)
        f.write("\n")

    counts = result.counts
    print(
        f"// segments: {counts['analyzed']} analyzed, "
        f"{counts['profiled']} profiled, {counts['transformed']} transformed"
    )
    print(f"// chrome trace: {chrome_path} ({len(tracer.spans)} spans)")
    print(f"// span log:     {jsonl_path}")
    print(f"// ledger:       {ledger_path}")
    print()
    if args.why:
        print(result.ledger.why(args.why))
    else:
        print(result.ledger.render())
    return 0


def cmd_stats(args) -> int:
    """Transform a program (or a registered workload), execute it with its
    reuse tables installed, and print the runtime table telemetry.

    ``--governed`` installs governor-managed tables and reports the
    governor's state machine; ``--alternate`` runs a registered workload
    on its alternate (typically distribution-shifted) input stream while
    still profiling on the default stream — the combination demonstrates
    the governor reacting to a shift the profile never saw.  Runs go
    through a metered :class:`~repro.api.Session` (tables stay warm
    across ``--repeat`` runs) and the report closes with the session's
    p50/p90/p99 run-latency quantiles.
    """
    from .experiments.report import (
        render_governor,
        render_hit_ratio_series,
        render_reuse_stats,
    )
    from .obs.render import render_session_latency

    source, inputs, run_inputs, config, _title = _resolve_target(args)
    session = api.Session(
        api.CompileOptions(opt=args.opt, config=config, governed=args.governed),
        metrics=True,
    )
    program = session.compile(source)
    program.profile(inputs)
    if not program.result.selected:
        print("nothing was transformed; no reuse tables to report")
        return 1
    result = None
    for _ in range(max(1, args.repeat)):
        result = session.run(source, run_inputs if run_inputs is not None else inputs)
    metrics = result.metrics
    print(render_reuse_stats(metrics.table_stats, metrics.merged_members))
    print()
    print(render_hit_ratio_series(metrics.table_stats))
    if args.governed:
        print()
        print(render_governor(metrics.governor))
    print()
    print(render_session_latency(session.registry.snapshot()))
    return 0


def cmd_annotate(args) -> int:
    """Line-level cycle & reuse annotation — the simulator's
    ``perf annotate``.

    Compiles the target in line-attribution mode (``profile="lines"``),
    runs it, and joins per-line body/overhead cycles with the source
    map's reuse-site locations and the ledger's estimates.  ``--backend
    both`` annotates on the closure tree and the bytecode VM (the two
    must agree line-for-line); ``--html`` also writes the heat-shaded
    single-file HTML page."""
    from .obs.annotate import build_annotation, render_html, render_text

    source, inputs, _run_inputs, config, title = _resolve_target(args)
    backends = ("closures", "vm") if args.backend == "both" else (args.backend,)
    annotations = []
    for backend in backends:
        program = api.compile(
            source,
            api.CompileOptions(
                opt=args.opt, config=config, profile="lines", backend=backend
            ),
        )
        program.profile(inputs)
        result = program.run(inputs)
        annotations.append(
            build_annotation(
                source,
                result.profile(),
                result.source_map,
                title=f"{title}@{args.opt}",
            )
        )
    for i, annotation in enumerate(annotations):
        if i:
            print()
        print(render_text(annotation))
    if args.html:
        with open(args.html, "w", encoding="utf-8") as f:
            f.write(render_html(annotations))
        print(f"\nannotated HTML: {args.html}")
    return 0


def cmd_disasm(args) -> int:
    """Dump the VM bytecode of a workload (or file) interleaved with the
    source lines it compiled from, including per-line breakdowns of
    fused CHARGE groups.  By default the reuse-transformed program is
    shown (probes and all); ``--no-reuse`` disassembles the original."""
    from .obs.annotate import render_disasm

    source, inputs, _run_inputs, config, _title = _resolve_target(args)
    program = api.compile(
        source,
        api.CompileOptions(opt=args.opt, config=config, reuse=not args.no_reuse),
    )
    if not args.no_reuse:
        program.profile(inputs)
    vm_program, source_map = program.disassemble()
    print(render_disasm(source, vm_program, source_map))
    return 0


def cmd_perf_record(args) -> int:
    from .experiments.perf import record_workloads
    from .obs.perfdb import PerfDB, write_baseline

    names = args.workload or _default_perf_workloads()
    db = PerfDB(args.db)
    rows = record_workloads(
        names,
        opts=args.opt or ["O0"],
        variants=args.variant or ["static"],
        db=db,
    )
    for row in rows:
        print(
            f"recorded {row['workload']}@{row['opt']}@{row['variant']}: "
            f"{row['cycles']} cycles, checksum {row['output_checksum']:#010x}"
        )
    if args.update_baseline:
        write_baseline(args.baseline, rows, tolerance_pct=args.tolerance)
        print(f"baseline written: {args.baseline} ({len(rows)} rows)")
    print(f"store: {db.path}")
    return 0


def cmd_perf_report(args) -> int:
    from pathlib import Path

    from .experiments.perf import measure_workload
    from .experiments.report import render_perf_history
    from .obs.perfdb import PerfDB

    row, result = measure_workload(
        args.target, opt=args.opt_level, variant=args.variant_name
    )
    profile = result.profile()
    print(profile.measured_vs_ledger())
    print()
    print(profile.render(max_depth=args.depth))
    if args.flamegraph:
        Path(args.flamegraph).write_text(profile.collapsed() + "\n", encoding="utf-8")
        print(f"\ncollapsed stacks: {args.flamegraph}")
    if args.history:
        db = PerfDB(args.db)
        print()
        print(
            render_perf_history(
                db.rows(args.target, args.opt_level, args.variant_name) + [row]
            )
        )
    return 0


def cmd_perf_check(args) -> int:
    from .experiments.perf import check_workloads
    from .obs.perfdb import PerfDB

    if args.anomaly:
        return _perf_check_anomaly(args)
    db = PerfDB(args.db) if args.record else None
    regressions, rows = check_workloads(
        args.baseline, workloads=args.workload or None, db=db
    )
    for row in rows:
        print(
            f"measured {row['workload']}@{row['opt']}@{row['variant']}: "
            f"{row['cycles']} cycles, checksum {row['output_checksum']:#010x}"
        )
    if not rows:
        print("no baseline rows matched the selected workloads", file=sys.stderr)
        return 2
    if regressions:
        print(f"\n{len(regressions)} regression(s) against {args.baseline}:")
        for regression in regressions:
            print(f"  FAIL {regression.describe()}")
        return 1
    print(f"\nOK: {len(rows)} row(s) within baseline {args.baseline}")
    return 0


def _perf_check_anomaly(args) -> int:
    """The baseline-free gate: judge fresh measurements against the perf
    store's own history (EWMA/MAD drift + changepoints).  Same exit
    contract as the baseline gate — 0 clean, 1 regression, 2 nothing to
    judge — except ``--report-only`` prints the verdict and exits 0."""
    from .experiments.perf import anomaly_check_workloads
    from .obs.anomaly import AnomalyPolicy
    from .obs.perfdb import PerfDB

    db = PerfDB(args.db)
    policy = AnomalyPolicy(min_history=args.min_history)
    anomalies, rows = anomaly_check_workloads(
        db, workloads=args.workload or None, policy=policy, record=args.record
    )
    for row in rows:
        print(
            f"measured {row['workload']}@{row['opt']}@{row['variant']}: "
            f"{row['cycles']} cycles, checksum {row['output_checksum']:#010x}"
        )
    if not rows:
        print("perf store has no history for the selected workloads", file=sys.stderr)
        code = 2
    else:
        regressions = [a for a in anomalies if a.regression]
        for anomaly in anomalies:
            marker = "FAIL" if anomaly.regression else "note"
            print(f"  {marker} {anomaly.describe()}")
        if regressions:
            print(f"\n{len(regressions)} anomalous regression(s) against history")
            code = 1
        else:
            print(f"\nOK: {len(rows)} row(s) consistent with history")
            code = 0
    if args.report_only:
        print(f"report-only: would exit {code}")
        return 0
    return code


def _default_perf_workloads() -> list[str]:
    # the two representative workloads the CI gate measures: one loop
    # segment (UNEPIC) and one function segment workload (GNU Go)
    return ["UNEPIC", "GNUGO"]


def cmd_dash(args) -> int:
    """Build the static-HTML dashboard: fresh measurements, aggregated
    metrics registry, perf-store trends, and history anomaly verdicts in
    one self-contained file."""
    import datetime
    import json
    import os

    from .experiments.dash import write_dashboard
    from .obs.perfdb import PerfDB

    names = args.workload or _default_perf_workloads()
    db = PerfDB(args.db)
    generated = datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%d %H:%M:%S UTC"
    )
    service_bench = None
    if args.service_bench and os.path.exists(args.service_bench):
        with open(args.service_bench, encoding="utf-8") as f:
            service_bench = json.load(f)
    path = write_dashboard(
        args.out,
        names,
        opts=args.opt or ["O0"],
        variants=args.variant or ["static"],
        db=db if db.path.exists() else None,
        generated=generated,
        service_bench=service_bench,
    )
    print(f"dashboard written: {path}")
    return 0


def cmd_serve(args) -> int:
    """Run the multi-tenant compile-and-run service until interrupted."""
    import time

    from .service import ServiceConfig, ServiceThread

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_pending=args.max_pending,
        request_timeout=args.request_timeout,
        drain_grace=args.drain_grace,
        trace=args.trace,
        trace_capacity=args.trace_capacity,
        log_capacity=args.log_capacity,
    )
    server = ServiceThread(config).start()
    try:
        print(f"repro service listening on {server.url}")
        print("endpoints: POST /v1/compile, POST /v1/run; "
              "GET /v1/stats, /metrics, /healthz, /v1/trace, /v1/events")
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("\ndraining...", file=sys.stderr)
    finally:
        server.close()
    return 0


def cmd_tail(args) -> int:
    """Follow a running service's structured event log (``GET
    /v1/events``), rendering one text line per record.

    Long-polls with a server-side ``wait`` so an idle service costs one
    request per ``--interval`` seconds, not a busy loop.  ``--once``
    drains whatever the ring currently holds and exits — the shape the
    CI smoke step uses against the live loadgen server."""
    import asyncio

    from .obs.render import render_event_line
    from .service.client import ServiceClient

    async def tail() -> int:
        client = ServiceClient(args.host, args.port)
        since = args.since
        try:
            while True:
                wait = 0.0 if args.once else args.interval
                reply = await client.events(
                    since=since, wait=wait, level=args.level, limit=args.limit
                )
                if reply.status != 200:
                    print(f"error: {reply.status} {reply.payload}", file=sys.stderr)
                    return 1
                payload = reply.payload
                for record in payload["records"]:
                    print(render_event_line(record))
                if payload.get("dropped"):
                    print(
                        f"... {payload['dropped']} records dropped "
                        "(ring overran the cursor)",
                        file=sys.stderr,
                    )
                since = payload["next_seq"]
                if args.once:
                    return 0
        finally:
            await client.close()

    try:
        return asyncio.run(tail())
    except KeyboardInterrupt:
        return 0


def cmd_loadgen(args) -> int:
    """Load-test the service and write the latency/verification report.

    Exits non-zero when any request failed (after retries) or any served
    output diverged from the direct facade run — the CI contract."""
    import json

    from .service import LoadgenConfig, run_loadgen, smoke_config

    if args.smoke:
        config = smoke_config(out=args.out, trace_out=args.trace_out)
    else:
        config = LoadgenConfig(
            sessions=args.sessions,
            runs_per_session=args.runs_per_session,
            tenants=args.tenants,
            workloads=tuple(args.workload) if args.workload else None,
            input_prefix=args.input_prefix,
            chunk=args.chunk,
            max_pending=args.max_pending,
            request_timeout=args.request_timeout,
            out=args.out,
            trace=args.trace or args.trace_out is not None,
            trace_out=args.trace_out,
        )
    report = run_loadgen(config, host=args.host, port=args.port)
    totals, latency = report["totals"], report["latency"]["run"]
    print(
        f"sessions: {totals['sessions']}  requests: {totals['requests']}  "
        f"runs: {totals['runs']}  errors: {totals['errors']}"
    )
    if latency.get("count"):
        print(
            f"run latency: p50 {latency['p50_ms']:.1f} ms, "
            f"p90 {latency['p90_ms']:.1f} ms, p99 {latency['p99_ms']:.1f} ms"
        )
    print(
        f"throughput: {totals['throughput_rps']:.1f} req/s over "
        f"{totals['wall_seconds']:.1f} s  "
        f"(429 retries: {totals['retries_backpressure']}, "
        f"evictions: {totals['retries_evicted']})"
    )
    verification = report["verification"]
    print(
        f"verification: {verification['checked']} outputs checked, "
        f"{verification['mismatches']} mismatches"
    )
    tracing = report.get("tracing")
    if tracing is not None:
        print(
            f"tracing: {tracing['traced_runs']} traced runs, "
            f"{len(tracing['slowest'])} span trees fetched, "
            f"{tracing['orphan_spans']} orphan spans"
        )
        if args.trace_render:
            from .obs.render import render_trace_tree

            blocks = [render_trace_tree(entry) for entry in tracing["slowest"]]
            with open(args.trace_render, "w", encoding="utf-8") as f:
                f.write("\n\n".join(blocks) + "\n")
            print(f"slowest-request render written: {args.trace_render}")
    if config.out:
        print(f"report written: {config.out}")
    if not report["ok"]:
        for err in report["errors"][:10]:
            print(f"  FAIL {err}", file=sys.stderr)
        print(json.dumps(report["verification"]), file=sys.stderr)
        return 1
    return 0


def cmd_workloads(args) -> int:
    from .workloads import ALL_WORKLOADS

    for workload in ALL_WORKLOADS:
        kind = "variant" if workload.is_variant else "primary"
        print(f"{workload.name:16} [{kind}] {workload.description}")
    return 0


def _selected_workloads(args):
    from .workloads import ALL_WORKLOADS

    if args.workload:
        return [_resolve_workload(name) for name in args.workload]
    return ALL_WORKLOADS


def cmd_report(args) -> int:
    from .experiments import (
        ExperimentRunner,
        energy_table,
        figure14,
        figure15,
        render_energy,
        render_speedups,
        render_sweep,
        render_table3,
        render_table4,
        render_table5,
        render_table10,
        speedup_table,
        table3,
        table4,
        table5,
        table10,
    )

    runner = ExperimentRunner()
    workloads = _selected_workloads(args)
    if args.table == 3:
        print(render_table3(table3(runner, workloads)))
    elif args.table == 4:
        print(render_table4(table4(runner, workloads)))
    elif args.table == 5:
        print(render_table5(table5(runner, workloads)))
    elif args.table in (6, 7):
        level = "O0" if args.table == 6 else "O3"
        rows, mean = speedup_table(runner, level, workloads)
        print(render_speedups(rows, mean, level, args.table))
    elif args.table in (8, 9):
        level = "O0" if args.table == 8 else "O3"
        print(render_energy(energy_table(runner, level, workloads), level, args.table))
    elif args.table == 10:
        rows, mean = table10(runner, workloads)
        print(render_table10(rows, mean))
    elif args.figure in (14, 15):
        fig = figure14 if args.figure == 14 else figure15
        level = "O0" if args.figure == 14 else "O3"
        print(render_sweep(fig(runner, workloads), level, args.figure))
    else:
        print("specify --table {3..10} or --figure {14,15}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Computation-reuse compiler scheme (Ding & Li, CGO 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a mini-C file on the simulated machine")
    p_run.add_argument("file")
    p_run.add_argument("--opt", choices=("O0", "O3"), default="O0")
    p_run.add_argument(
        "--backend",
        choices=("closures", "vm"),
        default=None,
        help="execution backend (default: REPRO_BACKEND or closures)",
    )
    p_run.add_argument("--entry", default="main")
    p_run.add_argument("--inputs", help="comma-separated input stream")
    p_run.add_argument("--inputs-file", help="whitespace-separated input stream file")
    p_run.set_defaults(func=cmd_run)

    p_tr = sub.add_parser("transform", help="apply the reuse pipeline to a mini-C file")
    p_tr.add_argument("file")
    p_tr.add_argument("--entry", default="main")
    p_tr.add_argument("--inputs", help="comma-separated profiling input stream")
    p_tr.add_argument("--inputs-file")
    p_tr.add_argument("--min-executions", type=int, default=32)
    p_tr.add_argument("--no-measure", action="store_true")
    p_tr.set_defaults(func=cmd_transform)

    p_trace = sub.add_parser(
        "trace", help="trace the reuse pipeline and dump the decision ledger"
    )
    p_trace.add_argument("target", help="mini-C file path or workload name")
    p_trace.add_argument("--inputs", help="comma-separated profiling input stream")
    p_trace.add_argument("--inputs-file")
    p_trace.add_argument("--min-executions", type=int, default=32)
    p_trace.add_argument(
        "--out-dir", help="directory for the trace/ledger files (default: .)"
    )
    p_trace.add_argument(
        "--why",
        help="print the decision history of one segment "
        "(id, function name, or function@workload)",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_stats = sub.add_parser(
        "stats", help="runtime reuse-table telemetry for a file or workload"
    )
    p_stats.add_argument("target", help="mini-C file path or workload name")
    p_stats.add_argument("--opt", choices=("O0", "O3"), default="O0")
    p_stats.add_argument("--inputs", help="comma-separated input stream")
    p_stats.add_argument("--inputs-file")
    p_stats.add_argument("--min-executions", type=int, default=32)
    p_stats.add_argument(
        "--governed",
        action="store_true",
        help="install governor-managed tables and report governor state",
    )
    p_stats.add_argument(
        "--alternate",
        action="store_true",
        help="run a registered workload on its alternate (shifted) inputs "
        "while profiling on the default stream",
    )
    p_stats.add_argument(
        "--repeat", type=int, default=1,
        help="session runs to execute (tables stay warm between runs)",
    )
    p_stats.set_defaults(func=cmd_stats)

    p_ann = sub.add_parser(
        "annotate",
        help="line-level cycle & reuse annotation (the perf-annotate view)",
    )
    p_ann.add_argument("target", help="mini-C file path or workload name")
    p_ann.add_argument("--opt", choices=("O0", "O3"), default="O0")
    p_ann.add_argument(
        "--backend",
        choices=("closures", "vm", "both"),
        default="closures",
        help="backend(s) to annotate; 'both' adds an HTML selector",
    )
    p_ann.add_argument(
        "--html", help="also write the heat-shaded HTML page to this path"
    )
    p_ann.add_argument("--inputs", help="comma-separated input stream")
    p_ann.add_argument("--inputs-file")
    p_ann.add_argument("--min-executions", type=int, default=32)
    p_ann.set_defaults(func=cmd_annotate)

    p_dis = sub.add_parser(
        "disasm", help="VM bytecode interleaved with the source lines"
    )
    p_dis.add_argument("target", help="mini-C file path or workload name")
    p_dis.add_argument("--opt", choices=("O0", "O3"), default="O0")
    p_dis.add_argument(
        "--no-reuse", action="store_true",
        help="disassemble the untransformed program (no probes)",
    )
    p_dis.add_argument("--inputs", help="comma-separated profiling input stream")
    p_dis.add_argument("--inputs-file")
    p_dis.add_argument("--min-executions", type=int, default=32)
    p_dis.set_defaults(func=cmd_disasm)

    p_wl = sub.add_parser("workloads", help="list the benchmark workloads")
    p_wl.set_defaults(func=cmd_workloads)

    p_perf = sub.add_parser(
        "perf", help="cycle-attribution profiles, perf store, regression gate"
    )
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)

    p_rec = perf_sub.add_parser(
        "record", help="measure workloads and append rows to the perf store"
    )
    p_rec.add_argument(
        "--workload", action="append",
        help="workload to measure (repeatable; default: UNEPIC, GNUGO)",
    )
    p_rec.add_argument(
        "--opt", action="append", choices=("O0", "O3"),
        help="opt level (repeatable; default: O0)",
    )
    p_rec.add_argument(
        "--variant", action="append", choices=("static", "governed"),
        help="table variant (repeatable; default: static)",
    )
    p_rec.add_argument("--db", default=".repro_perf", help="perf store directory")
    p_rec.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the committed baseline from these measurements",
    )
    p_rec.add_argument("--baseline", default="PERF_BASELINE.json")
    p_rec.add_argument(
        "--tolerance", type=float, default=0.0,
        help="default cycle tolerance (%%) written into the baseline",
    )
    p_rec.set_defaults(func=cmd_perf_record)

    p_prep = perf_sub.add_parser(
        "report", help="measured-vs-ledger table and attribution tree for a workload"
    )
    p_prep.add_argument("target", help="workload name")
    p_prep.add_argument("--opt-level", choices=("O0", "O3"), default="O0")
    p_prep.add_argument(
        "--variant-name", choices=("static", "governed"), default="static"
    )
    p_prep.add_argument(
        "--depth", type=int, default=6, help="attribution tree depth limit"
    )
    p_prep.add_argument(
        "--flamegraph", help="write collapsed-stack lines to this path"
    )
    p_prep.add_argument(
        "--history", action="store_true",
        help="append the perf-store cycle history for this configuration",
    )
    p_prep.add_argument("--db", default=".repro_perf", help="perf store directory")
    p_prep.set_defaults(func=cmd_perf_report)

    p_chk = perf_sub.add_parser(
        "check", help="re-measure the baseline configurations; exit 1 on regression"
    )
    p_chk.add_argument("--baseline", default="PERF_BASELINE.json")
    p_chk.add_argument(
        "--workload", action="append",
        help="restrict the gate to these workloads (repeatable)",
    )
    p_chk.add_argument(
        "--record", action="store_true",
        help="also append the measured rows to the perf store",
    )
    p_chk.add_argument("--db", default=".repro_perf", help="perf store directory")
    p_chk.add_argument(
        "--anomaly", action="store_true",
        help="judge against the perf store's own history instead of a "
        "committed baseline (EWMA/MAD drift + changepoint detection)",
    )
    p_chk.add_argument(
        "--report-only", action="store_true",
        help="with --anomaly: print the verdict but always exit 0",
    )
    p_chk.add_argument(
        "--min-history", type=int, default=4,
        help="with --anomaly: minimum stored runs before judging a configuration",
    )
    p_chk.set_defaults(func=cmd_perf_check)

    p_dash = sub.add_parser(
        "dash", help="build the self-contained HTML observability dashboard"
    )
    p_dash.add_argument(
        "--workload", action="append",
        help="workload to include (repeatable; default: UNEPIC, GNUGO)",
    )
    p_dash.add_argument(
        "--opt", action="append", choices=("O0", "O3"),
        help="opt level (repeatable; default: O0)",
    )
    p_dash.add_argument(
        "--variant", action="append", choices=("static", "governed"),
        help="table variant (repeatable; default: static)",
    )
    p_dash.add_argument("--db", default=".repro_perf", help="perf store directory")
    p_dash.add_argument("--out", default="repro-dash.html", help="output HTML path")
    p_dash.add_argument(
        "--service-bench", default="BENCH_service.json",
        help="loadgen report to embed as the service panel (skipped if absent)",
    )
    p_dash.set_defaults(func=cmd_dash)

    p_srv = sub.add_parser(
        "serve", help="start the multi-tenant compile-and-run HTTP service"
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: bind an ephemeral port and print it)",
    )
    p_srv.add_argument(
        "--workers", type=int, default=0,
        help="worker threads executing runs (default: cpu count + 2)",
    )
    p_srv.add_argument(
        "--max-pending", type=int, default=64,
        help="in-flight bound before requests get 429 + Retry-After",
    )
    p_srv.add_argument(
        "--request-timeout", type=float, default=30.0,
        help="seconds before an admitted request gets 504",
    )
    p_srv.add_argument(
        "--drain-grace", type=float, default=10.0,
        help="seconds to wait for in-flight requests on shutdown",
    )
    p_srv.add_argument(
        "--trace", choices=("auto", "all", "off"), default="auto",
        help="request tracing: auto traces requests carrying a "
             "traceparent header, all traces everything, off disables",
    )
    p_srv.add_argument(
        "--trace-capacity", type=int, default=256,
        help="assembled span trees kept for GET /v1/trace/<id> (LRU)",
    )
    p_srv.add_argument(
        "--log-capacity", type=int, default=2048,
        help="structured event-log ring size (0 disables /v1/events)",
    )
    p_srv.set_defaults(func=cmd_serve)

    p_tail = sub.add_parser(
        "tail", help="follow a running service's structured event log"
    )
    p_tail.add_argument("--host", default="127.0.0.1")
    p_tail.add_argument("--port", type=int, required=True)
    p_tail.add_argument(
        "--since", type=int, default=0,
        help="start cursor (0: everything still in the ring)",
    )
    p_tail.add_argument(
        "--level", choices=("debug", "info", "warning", "error"),
        default="info", help="minimum record level to show",
    )
    p_tail.add_argument("--limit", type=int, default=500,
                        help="max records per poll")
    p_tail.add_argument(
        "--interval", type=float, default=10.0,
        help="long-poll wait per request when following",
    )
    p_tail.add_argument(
        "--once", action="store_true",
        help="drain the current ring contents and exit",
    )
    p_tail.set_defaults(func=cmd_tail)

    p_lg = sub.add_parser(
        "loadgen", help="load-test the service; verify served outputs bit-for-bit"
    )
    p_lg.add_argument(
        "--smoke", action="store_true",
        help="the bounded CI shape (32 sessions, 4 workloads, both backends)",
    )
    p_lg.add_argument(
        "--sessions", type=int, default=1000,
        help="concurrent client sessions to drive",
    )
    p_lg.add_argument("--runs-per-session", type=int, default=4)
    p_lg.add_argument("--tenants", type=int, default=2)
    p_lg.add_argument(
        "--workload", action="append",
        help="workload to include (repeatable; default: all registered)",
    )
    p_lg.add_argument("--input-prefix", type=int, default=256)
    p_lg.add_argument("--chunk", type=int, default=64)
    p_lg.add_argument("--max-pending", type=int, default=256)
    p_lg.add_argument("--request-timeout", type=float, default=60.0)
    p_lg.add_argument(
        "--host", default=None,
        help="target an already-running service instead of booting one",
    )
    p_lg.add_argument("--port", type=int, default=None)
    p_lg.add_argument(
        "--out", default=None, help="write the JSON report (BENCH_service.json)"
    )
    p_lg.add_argument(
        "--trace", action="store_true",
        help="send traceparent on every request and fetch the slowest "
             "requests' span trees into the report",
    )
    p_lg.add_argument(
        "--trace-out", default=None,
        help="write per-run trace records + slowest span trees as JSONL "
             "(implies --trace)",
    )
    p_lg.add_argument(
        "--trace-render", default=None,
        help="write the slowest-request span trees as a text render",
    )
    p_lg.set_defaults(func=cmd_loadgen)

    p_rep = sub.add_parser("report", help="regenerate a paper table/figure")
    p_rep.add_argument("--table", type=int)
    p_rep.add_argument("--figure", type=int)
    p_rep.add_argument(
        "--workload", action="append", help="restrict to workload (repeatable)"
    )
    p_rep.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
