"""Live metrics registry with OpenMetrics exposition.

The tracer answers "what happened during this run"; the perf store
answers "how did runs change across commits".  This module answers the
deployment question in between: *what is the runtime doing right now?*
A :class:`MetricsRegistry` holds named metric families — Counter, Gauge,
Histogram — each fanning out into labeled children, and the runtime
publishes into it from three places:

* the :class:`~repro.runtime.machine.Machine` and the reuse intrinsics
  (probes/hits/misses/bypasses per segment, op tallies, cycles);
* the :class:`~repro.runtime.governor.SegmentGovernor` (state
  transitions, windowed gain — the live view of R·C−O);
* the :class:`~repro.api.Session` facade (runs, wall time, inputs).

Design constraints, mirroring the rest of :mod:`repro.obs`:

1. **No registry, no cost.**  Like the cycle profiler, the metered
   closures are a *compile-time* decision: ``compile_program`` consults
   ``machine.metrics_registry`` and emits the counting wrappers only
   when one is installed, so an un-metered run executes byte-identical
   closures (enforced by ``tests/obs/test_metrics_differential.py``).
2. **Zero dependencies.**  The exposition endpoint is a stdlib
   ``http.server`` thread; the text format is OpenMetrics, hand-rolled
   and round-trip tested (:func:`render_openmetrics` /
   :func:`parse_openmetrics`).
3. **Atomic snapshots.**  Writers are lock-free on the hot path (plain
   attribute adds under the GIL); :meth:`MetricsRegistry.snapshot` takes
   the registry lock only to produce a consistent plain-dict copy, and
   :meth:`MetricsRegistry.delta_since` diffs two snapshots for
   incremental shipping.

Counter children additionally support :meth:`CounterChild.advance_to`,
a monotone raise-to-total: end-of-run publication from lifetime table
statistics and live per-probe increments land on the *same* counters
without double counting (whichever view saw more probes wins).
"""

from __future__ import annotations

import re
import threading
from typing import Optional, Sequence

from ..errors import ConfigError

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "CounterChild",
    "GaugeChild",
    "HistogramChild",
    "ExpositionServer",
    "OPENMETRICS_CONTENT_TYPE",
    "render_openmetrics",
    "parse_openmetrics",
    "histogram_quantiles",
    "get_registry",
    "set_registry",
]

OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

# simulated-cycle scale: sub-thousand to hundreds of millions
DEFAULT_BUCKETS = (
    1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigError(f"invalid metric name {name!r}")
    return name


# -- children ----------------------------------------------------------------


class CounterChild:
    """One labeled monotone counter."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: dict) -> None:
        self.labels = labels
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ConfigError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def advance_to(self, total) -> None:
        """Raise the counter to ``total`` if it is below it (no-op
        otherwise).  Lets end-of-run totals and live increments coexist
        on one counter: publishing a lifetime total over counts already
        streamed in never double-counts and never goes backwards."""
        if total > self.value:
            self.value = total


class GaugeChild:
    """One labeled point-in-time value."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: dict) -> None:
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount


class HistogramChild:
    """One labeled cumulative histogram (fixed upper bounds)."""

    __slots__ = ("labels", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, labels: dict, bounds: Sequence[float]) -> None:
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.count = 0
        self.sum = 0

    def observe(self, value) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1


# -- families ----------------------------------------------------------------


class _Family:
    """A named metric with a fixed label-name set and labeled children.

    The first :meth:`labels` call fixes which label names the family
    takes (OpenMetrics forbids mixed label sets within a family);
    subsequent calls must match.  Children are memoized per label-value
    tuple, so hot paths resolve their child once and call ``inc`` on it.
    """

    kind = "untyped"
    _child_cls: type = CounterChild

    def __init__(self, name: str, help: str, lock: threading.RLock) -> None:
        self.name = _check_name(name)
        self.help = help
        self._lock = lock
        self._label_names: Optional[tuple[str, ...]] = None
        self._children: dict[tuple, object] = {}

    def labels(self, **labels):
        key = tuple(sorted(labels.items()))
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is not None:
                return child
            names = tuple(sorted(labels))
            for label in names:
                if not _LABEL_RE.match(label):
                    raise ConfigError(f"invalid label name {label!r}")
            if self._label_names is None:
                self._label_names = names
            elif names != self._label_names:
                raise ConfigError(
                    f"metric {self.name!r} takes labels {self._label_names}, "
                    f"got {names}"
                )
            child = self._make_child({k: str(v) for k, v in sorted(labels.items())})
            self._children[key] = child
            return child

    def _make_child(self, labels: dict):
        return self._child_cls(labels)

    # unlabeled convenience: a family used without labels has exactly one
    # child with the empty label set
    def _solo(self):
        return self.labels()


class Counter(_Family):
    kind = "counter"
    _child_cls = CounterChild

    def inc(self, amount=1) -> None:
        self._solo().inc(amount)

    def advance_to(self, total) -> None:
        self._solo().advance_to(total)


class Gauge(_Family):
    kind = "gauge"
    _child_cls = GaugeChild

    def set(self, value) -> None:
        self._solo().set(value)

    def inc(self, amount=1) -> None:
        self._solo().inc(amount)

    def dec(self, amount=1) -> None:
        self._solo().dec(amount)


class Histogram(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.RLock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, lock)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ConfigError(f"histogram buckets must be sorted and distinct: {buckets}")
        self.bounds = bounds

    def _make_child(self, labels: dict):
        return HistogramChild(labels, self.bounds)

    def observe(self, value) -> None:
        self._solo().observe(value)


_FAMILY_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


# -- the registry ------------------------------------------------------------


class MetricsRegistry:
    """Process-embeddable metrics store: named families of labeled
    children, snapshottable atomically and renderable as OpenMetrics.

    Threading model: child mutation is a plain attribute add (atomic
    enough under the GIL for single-writer runtimes); family/child
    *creation* and :meth:`snapshot` serialize on one re-entrant lock so
    the exposition thread always reads a consistent view.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    # -- family accessors (get-or-create) -----------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self._family(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._family(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = Histogram(name, help, self._lock, buckets)
                    self._families[name] = family
        if not isinstance(family, Histogram):
            raise ConfigError(
                f"metric {name!r} already registered as a {family.kind}"
            )
        return family

    def _family(self, cls: type, name: str, help: str) -> _Family:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = cls(name, help, self._lock)
                    self._families[name] = family
        if type(family) is not cls:
            raise ConfigError(
                f"metric {name!r} already registered as a {family.kind}"
            )
        return family

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A consistent, JSON-safe copy of every family and child:
        ``{"families": {name: {"kind", "help", "samples": [...]}}}``.

        Counter/gauge samples are ``{"labels": {...}, "value": n}``;
        histogram samples carry cumulative ``buckets`` (pairs of
        ``[upper_bound, count]``, ``+Inf`` implied by ``count``), plus
        ``count`` and ``sum``."""
        with self._lock:
            families = {}
            for name in sorted(self._families):
                family = self._families[name]
                samples = []
                for key in sorted(family._children):
                    child = family._children[key]
                    if isinstance(child, HistogramChild):
                        samples.append(
                            {
                                "labels": dict(child.labels),
                                "buckets": [
                                    [bound, count]
                                    for bound, count in zip(
                                        child.bounds, child.bucket_counts
                                    )
                                ],
                                "count": child.count,
                                "sum": child.sum,
                            }
                        )
                    else:
                        samples.append(
                            {"labels": dict(child.labels), "value": child.value}
                        )
                families[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "samples": samples,
                }
            return {"families": families}

    def delta_since(self, previous: Optional[dict]) -> dict:
        """Snapshot-shaped diff against an earlier :meth:`snapshot`.

        Counters and histograms report the increase since ``previous``
        (samples with no change are dropped); gauges report their
        current value when it changed.  ``previous=None`` returns the
        full snapshot.  This is the streaming half of the registry: ship
        the delta, keep the snapshot as the new cursor."""
        current = self.snapshot()
        if previous is None:
            return current
        prev_families = previous.get("families", {})
        families = {}
        for name, family in current["families"].items():
            prev_samples = {
                _label_key(s["labels"]): s
                for s in prev_families.get(name, {}).get("samples", ())
            }
            kept = []
            for sample in family["samples"]:
                prev = prev_samples.get(_label_key(sample["labels"]))
                if family["kind"] == "gauge":
                    if prev is None or prev["value"] != sample["value"]:
                        kept.append(dict(sample))
                elif family["kind"] == "histogram":
                    base_count = prev["count"] if prev else 0
                    if sample["count"] != base_count:
                        prev_buckets = dict(prev["buckets"]) if prev else {}
                        kept.append(
                            {
                                "labels": dict(sample["labels"]),
                                "buckets": [
                                    [bound, count - prev_buckets.get(bound, 0)]
                                    for bound, count in sample["buckets"]
                                ],
                                "count": sample["count"] - base_count,
                                "sum": sample["sum"] - (prev["sum"] if prev else 0),
                            }
                        )
                else:
                    base = prev["value"] if prev else 0
                    if sample["value"] != base:
                        kept.append(
                            {
                                "labels": dict(sample["labels"]),
                                "value": sample["value"] - base,
                            }
                        )
            if kept:
                families[name] = {
                    "kind": family["kind"],
                    "help": family["help"],
                    "samples": kept,
                }
        return {"families": families}

    def render_openmetrics(self) -> str:
        return render_openmetrics(self.snapshot())


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def histogram_quantiles(sample: dict, quantiles: Sequence[float]) -> dict:
    """Estimate quantiles from one snapshot histogram sample.

    ``sample`` is the dict shape :meth:`MetricsRegistry.snapshot` emits
    for a histogram child (cumulative ``buckets`` as ``[bound, count]``
    pairs plus total ``count``).  Within the bucket holding the target
    rank the value is linearly interpolated between the bucket's bounds
    (the first bucket's lower edge is 0), the convention of Prometheus's
    ``histogram_quantile``; ranks that land in the implicit ``+Inf``
    bucket clamp to the highest finite bound.  Returns ``{q: value}``;
    an empty histogram yields 0.0 for every quantile.
    """
    buckets = [(float(b), int(c)) for b, c in sample.get("buckets", ())]
    count = sample.get("count", 0)
    out: dict = {}
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if count == 0 or not buckets:
            out[q] = 0.0
            continue
        rank = q * count
        prev_bound, prev_cum = 0.0, 0
        for bound, cum in buckets:
            if cum >= rank:
                if cum == prev_cum:
                    out[q] = bound
                else:
                    frac = (rank - prev_cum) / (cum - prev_cum)
                    out[q] = prev_bound + (bound - prev_bound) * frac
                break
            prev_bound, prev_cum = bound, cum
        else:
            out[q] = buckets[-1][0]
    return out


# -- OpenMetrics text format -------------------------------------------------


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_value(value) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _parse_value(text: str):
    try:
        return int(text)
    except ValueError:
        return float(text)


def _label_str(labels: dict, extra: Optional[tuple] = None) -> str:
    items = sorted(labels.items())
    if extra is not None:
        items = items + [extra]
    if not items:
        return ""
    return "{" + ",".join(f'{k}="{_escape(str(v))}"' for k, v in items) + "}"


def render_openmetrics(snapshot: dict) -> str:
    """Serialize a registry snapshot as OpenMetrics text.

    Counters get the mandated ``_total`` sample suffix; histograms emit
    cumulative ``_bucket{le=...}`` series (including ``+Inf``) plus
    ``_count`` and ``_sum``; the exposition ends with ``# EOF``.  Output
    is deterministic: families and label sets render sorted."""
    lines = []
    for name in sorted(snapshot.get("families", {})):
        family = snapshot["families"][name]
        kind = family["kind"]
        lines.append(f"# TYPE {name} {kind}")
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape(family['help'])}")
        for sample in family["samples"]:
            labels = sample["labels"]
            if kind == "counter":
                lines.append(
                    f"{name}_total{_label_str(labels)} "
                    f"{_format_value(sample['value'])}"
                )
            elif kind == "histogram":
                for bound, count in sample["buckets"]:
                    le = _format_value(float(bound))
                    lines.append(
                        f"{name}_bucket{_label_str(labels, ('le', le))} {count}"
                    )
                lines.append(
                    f"{name}_bucket{_label_str(labels, ('le', '+Inf'))} "
                    f"{sample['count']}"
                )
                lines.append(
                    f"{name}_count{_label_str(labels)} {sample['count']}"
                )
                lines.append(
                    f"{name}_sum{_label_str(labels)} {_format_value(sample['sum'])}"
                )
            else:
                lines.append(
                    f"{name}{_label_str(labels)} {_format_value(sample['value'])}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_labels(text: Optional[str]) -> dict:
    if not text:
        return {}
    return {
        name: _unescape(raw) for name, raw in _LABEL_PAIR_RE.findall(text)
    }


def parse_openmetrics(text: str) -> dict:
    """Parse OpenMetrics text back into the snapshot dict shape.

    The inverse of :func:`render_openmetrics` over its own output (the
    round-trip is exact, which the line-format test pins); it also reads
    any plain Prometheus exposition of counters/gauges/histograms."""
    families: dict[str, dict] = {}
    kinds: dict[str, str] = {}
    histograms: dict[str, dict] = {}  # name -> label_key -> partial sample

    def family_for(name: str) -> dict:
        return families.setdefault(
            name, {"kind": kinds.get(name, "gauge"), "help": "", "samples": []}
        )

    for line in text.splitlines():
        line = line.strip()
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            kinds[name] = kind
            family_for(name)["kind"] = kind
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            family_for(name)["help"] = _unescape(help_text)
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ConfigError(f"unparseable exposition line: {line!r}")
        sample_name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        raw_value = match.group("value")

        base = sample_name
        suffix = ""
        for candidate in ("_total", "_bucket", "_count", "_sum"):
            stem = sample_name[: -len(candidate)]
            if sample_name.endswith(candidate) and kinds.get(stem) in (
                "counter",
                "histogram",
            ):
                base, suffix = stem, candidate
                break
        kind = kinds.get(base, "gauge")

        if kind == "histogram":
            le = labels.pop("le", None)
            bucket = histograms.setdefault(base, {}).setdefault(
                _label_key(labels),
                {"labels": labels, "buckets": [], "count": 0, "sum": 0},
            )
            if suffix == "_bucket":
                if le != "+Inf":
                    bucket["buckets"].append(
                        [float(le), _parse_value(raw_value)]
                    )
            elif suffix == "_count":
                bucket["count"] = _parse_value(raw_value)
            elif suffix == "_sum":
                bucket["sum"] = _parse_value(raw_value)
            continue

        family = family_for(base)
        family["samples"].append(
            {"labels": labels, "value": _parse_value(raw_value)}
        )

    for name, by_labels in histograms.items():
        family = family_for(name)
        for key in sorted(by_labels):
            family["samples"].append(by_labels[key])
    return {"families": {name: families[name] for name in sorted(families)}}


# -- the process-local registry ----------------------------------------------

_registry: Optional[MetricsRegistry] = None


def get_registry() -> Optional[MetricsRegistry]:
    """The process-local registry, or None when metrics are off.

    Unlike the tracer there is no always-on default object: publishers
    guard with an ``is not None`` check so disabled metrics cost one
    global read."""
    return _registry


def set_registry(registry: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Install ``registry`` as the process-local registry; returns the
    previous one (pass it back to restore, like
    :func:`repro.obs.tracer.set_tracer`)."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


# -- HTTP exposition ---------------------------------------------------------


class ExpositionServer:
    """Opt-in background OpenMetrics endpoint for long-running sessions.

    A daemon thread runs a stdlib ``ThreadingHTTPServer`` serving
    ``GET /metrics`` (and ``/``) straight from the registry; ``port=0``
    binds an ephemeral port (read it back from :attr:`port`).  Usable as
    a context manager; :meth:`close` shuts the thread down."""

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        self.registry = registry

        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:
                if self.path.split("?")[0] in ("/metrics", "/"):
                    body = outer.registry.render_openmetrics().encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", OPENMETRICS_CONTENT_TYPE)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self.send_response(404)
                    self.send_header("Content-Length", "0")
                    self.end_headers()

            def log_message(self, *_args) -> None:  # silence stderr
                pass

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host = self._httpd.server_address[0]
        self.port = self._httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "ExpositionServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-metrics-exposition",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop the serving thread and release the socket.  Idempotent:
        session pools may close an already-closed server when recycling."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "ExpositionServer":
        return self.start()

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False
