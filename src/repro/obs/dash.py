"""The ``repro dash`` static-HTML dashboard renderer.

One self-contained HTML file aggregating everything the observability
layer knows about a set of workload runs: the live metrics registry
(as an embedded OpenMetrics exposition), the decision ledger's verdicts,
the cycle-attribution tree, the perf store's trend sparklines, and any
history anomalies.  The renderer is *pure* — :func:`render_dashboard`
maps a :class:`DashData` value to a string, with no clocks, no I/O and
no iteration-order dependence — so the output is golden-file pinned
(``tests/obs/test_dash.py``); :mod:`repro.experiments.dash` does the
measuring and assembles the data.

Monospace telemetry (tables, attribution trees, sparklines) is embedded
as ``<pre>`` blocks using the same renderers as the CLI reports
(:mod:`repro.obs.render`), so the dashboard and the terminal always
agree.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field

from .annotate import ANNOTATE_CSS

__all__ = ["DashData", "WorkloadPanel", "render_dashboard", "write_dashboard"]


@dataclass
class WorkloadPanel:
    """Everything the dashboard shows for one measured configuration.

    All ``*_text`` fields are pre-rendered monospace blocks (empty
    string hides the block)."""

    key: str                      # workload@opt@variant
    cycles: int
    seconds: float
    energy_joules: float
    output_checksum: int
    table_text: str = ""          # reuse-table telemetry table
    hit_ratio_text: str = ""      # sampled hit-ratio sparklines
    governor_text: str = ""       # governor state + transitions
    ledger_text: str = ""         # decision ledger verdict table
    measured_vs_ledger: str = ""  # profiler est-vs-measured table
    profile_text: str = ""        # cycle attribution tree
    history_text: str = ""        # perf-store trend (sparkline)
    annotate_html: str = ""       # annotated-source fragment (pre-rendered HTML)
    anomalies: list[str] = field(default_factory=list)  # described anomalies


@dataclass
class DashData:
    """Input of :func:`render_dashboard`."""

    title: str
    generated: str                # caller-supplied timestamp text ("" to omit)
    metrics_text: str             # OpenMetrics exposition of the registry
    session_text: str = ""        # session run-latency quantiles (p50/p90/p99)
    service_text: str = ""        # loadgen report block (BENCH_service.json)
    slowest_text: str = ""        # slowest requests joined to span trees
    panels: list[WorkloadPanel] = field(default_factory=list)


_CSS = """\
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem;
       background: #fafafa; color: #1a1a1a; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #1a1a1a; padding-bottom: .3rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; }
h3 { font-size: .95rem; margin-bottom: .2rem; }
table.summary { border-collapse: collapse; margin: 1rem 0; }
table.summary th, table.summary td { border: 1px solid #bbb; padding: .3rem .6rem;
       text-align: left; font-size: .9rem; }
table.summary th { background: #eee; }
pre { background: #fff; border: 1px solid #ddd; padding: .6rem; overflow-x: auto;
      font-size: .8rem; line-height: 1.25; }
.anomaly { color: #b00020; font-weight: 600; }
.improvement { color: #1b5e20; font-weight: 600; }
.ok { color: #1b5e20; }
.meta { color: #666; font-size: .8rem; }
details > summary { cursor: pointer; font-weight: 600; margin-top: 1.5rem; }
details.annotate > summary { margin-top: .6rem; font-weight: 600; }
details.annotate { background: #fff; border: 1px solid #ddd; padding: .6rem; }
""" + ANNOTATE_CSS


def _e(text) -> str:
    return html.escape(str(text), quote=True)


def _pre_block(title: str, text: str) -> list[str]:
    if not text:
        return []
    return [f"<h3>{_e(title)}</h3>", f"<pre>{_e(text)}</pre>"]


def _anomaly_lines(panel: WorkloadPanel) -> list[str]:
    if not panel.anomalies:
        return ['<p class="ok">No history anomalies.</p>']
    out = []
    for line in panel.anomalies:
        css = "anomaly" if "REGRESSION" in line else "improvement"
        out.append(f'<p class="{css}">{_e(line)}</p>')
    return out


def render_dashboard(data: DashData) -> str:
    """Deterministic HTML for a :class:`DashData`; same input, same
    bytes (the golden-file property)."""
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en">',
        "<head>",
        '<meta charset="utf-8">',
        f"<title>{_e(data.title)}</title>",
        f"<style>{_CSS}</style>",
        "</head>",
        "<body>",
        f"<h1>{_e(data.title)}</h1>",
    ]
    if data.generated:
        parts.append(f'<p class="meta">generated: {_e(data.generated)}</p>')

    # summary table over all panels
    rows = []
    for panel in data.panels:
        if panel.anomalies:
            regressions = sum("REGRESSION" in a for a in panel.anomalies)
            if regressions:
                status = f'<span class="anomaly">{regressions} regression(s)</span>'
            else:
                status = '<span class="improvement">improved</span>'
        else:
            status = '<span class="ok">ok</span>'
        rows.append(
            "<tr>"
            f'<td><a href="#{_e(panel.key)}">{_e(panel.key)}</a></td>'
            f"<td>{panel.cycles}</td>"
            f"<td>{panel.seconds:.6f}</td>"
            f"<td>{panel.energy_joules:.4f}</td>"
            f"<td>{panel.output_checksum:#010x}</td>"
            f"<td>{status}</td>"
            "</tr>"
        )
    parts.append('<table class="summary">')
    parts.append(
        "<tr><th>Configuration</th><th>Cycles</th><th>Seconds</th>"
        "<th>Joules</th><th>Checksum</th><th>History</th></tr>"
    )
    parts.extend(rows)
    parts.append("</table>")

    for panel in data.panels:
        parts.append(f'<h2 id="{_e(panel.key)}">{_e(panel.key)}</h2>')
        parts.extend(_anomaly_lines(panel))
        parts.extend(_pre_block("Perf-store trend", panel.history_text))
        parts.extend(_pre_block("Reuse-table telemetry", panel.table_text))
        parts.extend(_pre_block("Hit-ratio series", panel.hit_ratio_text))
        parts.extend(_pre_block("Governor", panel.governor_text))
        parts.extend(_pre_block("Measured vs ledger", panel.measured_vs_ledger))
        parts.extend(_pre_block("Cycle attribution", panel.profile_text))
        parts.extend(_pre_block("Decision ledger", panel.ledger_text))
        if panel.annotate_html:
            # pre-rendered trusted fragment from obs.annotate — embedded
            # raw (escaping it would destroy the markup)
            parts.append('<details class="annotate">')
            parts.append("<summary>Annotated source (line-level cycles &amp; reuse)</summary>")
            parts.append(panel.annotate_html)
            parts.append("</details>")

    parts.extend(_pre_block("Session run latency", data.session_text))
    parts.extend(_pre_block("Service load test", data.service_text))
    parts.extend(_pre_block("Slowest requests (span trees)", data.slowest_text))
    if data.metrics_text:
        parts.append("<details>")
        parts.append("<summary>Metrics registry (OpenMetrics)</summary>")
        parts.append(f"<pre>{_e(data.metrics_text)}</pre>")
        parts.append("</details>")
    parts.append("</body>")
    parts.append("</html>")
    return "\n".join(parts) + "\n"


def write_dashboard(path: str, data: DashData) -> str:
    """Render and write the dashboard; returns ``path``."""
    text = render_dashboard(data)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    return path
