"""Structured tracing: process-local nested spans and instant events.

The tracer is the timing half of the observability layer (the decision
half is :mod:`repro.obs.ledger`).  Design constraints, in order:

1. **Disabled tracing is free.**  ``Tracer.span()`` on a disabled tracer
   returns one shared no-op context manager — no allocation, no clock
   read — and the process-local default tracer is disabled unless the
   ``REPRO_TRACE`` environment variable turns it on.  Observability must
   never change a measured number; the differential test in
   ``tests/obs/test_noop_differential.py`` enforces that.
2. **Spans nest and travel.**  A span opened while another is active
   becomes its child.  Workers in a process pool trace into their own
   tracer, :meth:`Tracer.serialize` the result, and the coordinator
   :meth:`Tracer.absorb`\\ s the payload, re-parenting the worker's root
   spans under the coordinating span (see
   :meth:`repro.experiments.runner.ExperimentRunner.compare_many`).
3. **Two time axes.**  Every span records wall-clock (epoch-based, so
   spans from different processes land on one Chrome-trace timeline) and,
   when a :class:`~repro.runtime.machine.Machine` is passed, the
   simulated-cycle interval it covered (``cycles_begin``/``cycles``
   in the span args).

4. **Requests travel too.**  A tracer may carry a 128-bit ``trace_id``
   and a ``remote_parent`` span id taken from a W3C-style
   ``traceparent`` header (:func:`format_traceparent` /
   :func:`parse_traceparent`): root spans recorded by such a tracer are
   parented under the remote caller's span, so the service can hand a
   request's spans back as one tree (:func:`assemble_tree`) that starts
   at the client.

Clocks and the pid are injectable so exporter tests can be golden-file
exact.  :func:`set_tracer` installs a *thread-local* override above the
shared process default, so concurrent service requests trace into
isolated tracers without seeing each other's spans.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = [
    "Span",
    "Tracer",
    "assemble_tree",
    "format_traceparent",
    "get_tracer",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "set_tracer",
]


@dataclass
class Span:
    """One completed (or still-open) traced interval."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start_us: int  # wall clock, microseconds since the epoch
    dur_us: int = 0
    pid: int = 0
    args: dict = field(default_factory=dict)
    trace_id: Optional[str] = None

    def to_dict(self) -> dict:
        doc = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_us": self.start_us,
            "dur_us": self.dur_us,
            "pid": self.pid,
            "args": self.args,
        }
        # keep untraced exports byte-stable (golden files predate trace ids)
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        return doc


class _NullSpan:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager for one live span on an enabled tracer."""

    __slots__ = ("_tracer", "_span", "_machine", "_t0")

    def __init__(self, tracer: "Tracer", span: Span, machine) -> None:
        self._tracer = tracer
        self._span = span
        self._machine = machine
        self._t0 = 0.0

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        span.start_us = int(tracer._wall() * 1_000_000)
        if self._machine is not None:
            span.args["cycles_begin"] = self._machine.cycles
        tracer._stack.append(span.span_id)
        tracer.spans.append(span)
        self._t0 = tracer._clock()
        return span

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        tracer = self._tracer
        span = self._span
        span.dur_us = max(0, int((tracer._clock() - self._t0) * 1_000_000))
        if self._machine is not None:
            span.args["cycles"] = self._machine.cycles - span.args["cycles_begin"]
        if exc_type is not None:
            span.args["error"] = exc_type.__name__
        if tracer._stack and tracer._stack[-1] == span.span_id:
            tracer._stack.pop()
        return False


# -- trace context (W3C-style traceparent) -------------------------------------


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex digits."""
    return os.urandom(16).hex()


def new_span_id() -> int:
    """A fresh non-zero 64-bit span id (for synthetic client-side spans)."""
    while True:
        span_id = int.from_bytes(os.urandom(8), "big")
        if span_id:
            return span_id


def format_traceparent(trace_id: str, span_id: int) -> str:
    """Render the W3C ``traceparent`` header value ``00-<trace>-<span>-01``."""
    return f"00-{trace_id}-{span_id & 0xFFFFFFFFFFFFFFFF:016x}-01"


def parse_traceparent(value: Optional[str]) -> Optional[tuple[str, int]]:
    """Parse a ``traceparent`` header into ``(trace_id, parent_span_id)``.

    Returns None on anything malformed (wrong shape, non-hex, all-zero
    ids) — a bad header means "untraced", never an error.
    """
    if not value or not isinstance(value, str):
        return None
    parts = value.strip().lower().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_hex, flags = parts
    if len(version) != 2 or len(trace_id) != 32 or len(span_hex) != 16 or len(flags) != 2:
        return None
    try:
        int(version, 16)
        int(flags, 16)
        trace_val = int(trace_id, 16)
        span_val = int(span_hex, 16)
    except ValueError:
        return None
    if version == "ff" or trace_val == 0 or span_val == 0:
        return None
    return trace_id, span_val


class Tracer:
    """Collects spans and events for one process (or one request).

    Args:
        enabled: when False every tracing entry point is a no-op.
        clock: monotonic clock used for durations (injectable for tests).
        wall: epoch clock used for timestamps (injectable for tests).
        pid: process id recorded on spans (injectable for tests).
        trace_id: optional 32-hex request trace id stamped on every span
            and event (see :func:`parse_traceparent`).
        remote_parent: optional span id of the remote caller's span; root
            spans recorded here are parented under it so the assembled
            tree starts at the client.
    """

    def __init__(
        self,
        enabled: bool = False,
        clock: Callable[[], float] = time.perf_counter,
        wall: Callable[[], float] = time.time,
        pid: Optional[int] = None,
        trace_id: Optional[str] = None,
        remote_parent: Optional[int] = None,
    ) -> None:
        self.enabled = enabled
        self.trace_id = trace_id
        self.remote_parent = remote_parent
        self.spans: list[Span] = []
        self.events: list[dict] = []
        self._clock = clock
        self._wall = wall
        self._pid = os.getpid() if pid is None else pid
        self._stack: list[int] = []
        self._next_id = 1

    # -- recording -----------------------------------------------------------

    def span(self, name: str, category: str = "pipeline", machine=None, **args):
        """Open a nested span; use as a context manager.

        ``machine`` adds simulated-cycle attribution: the span's args gain
        ``cycles_begin`` and ``cycles`` (the cycle interval covered).
        Extra keyword arguments become span args verbatim.
        """
        if not self.enabled:
            return _NULL_SPAN
        span = Span(
            span_id=self._alloc_id(),
            parent_id=self._stack[-1] if self._stack else self.remote_parent,
            name=name,
            category=category,
            start_us=0,
            pid=self._pid,
            args=dict(args),
            trace_id=self.trace_id,
        )
        return _SpanContext(self, span, machine)

    def event(self, name: str, category: str = "event", **args) -> None:
        """Record an instant event (e.g. a cache hit) at the current time."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "category": category,
            "ts_us": int(self._wall() * 1_000_000),
            "parent_id": self._stack[-1] if self._stack else self.remote_parent,
            "pid": self._pid,
            "args": dict(args),
        }
        if self.trace_id is not None:
            event["trace_id"] = self.trace_id
        self.events.append(event)

    def current_span_id(self) -> Optional[int]:
        """The innermost open span's id, or the remote parent, or None."""
        if self._stack:
            return self._stack[-1]
        return self.remote_parent

    def _alloc_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    # -- cross-process transport ----------------------------------------------

    def serialize(self) -> dict:
        """Plain-data payload for shipping spans out of a worker process."""
        return {
            "spans": [s.to_dict() for s in self.spans],
            "events": list(self.events),
        }

    def absorb(self, payload: Optional[dict], parent: Optional[Span] = None) -> None:
        """Merge a :meth:`serialize` payload from another tracer.

        Span ids are remapped into this tracer's id space; spans that were
        roots in the worker are re-parented under ``parent`` (when given),
        which stitches a worker's trace beneath the coordinator's span.
        """
        if not payload or not self.enabled:
            return
        remap: dict[int, int] = {}
        parent_id = parent.span_id if parent is not None else None
        for doc in payload.get("spans", ()):
            new_id = self._alloc_id()
            remap[doc["span_id"]] = new_id
            old_parent = doc.get("parent_id")
            self.spans.append(
                Span(
                    span_id=new_id,
                    parent_id=remap.get(old_parent, parent_id),
                    name=doc["name"],
                    category=doc["category"],
                    start_us=doc["start_us"],
                    dur_us=doc["dur_us"],
                    pid=doc["pid"],
                    args=dict(doc.get("args", {})),
                    trace_id=doc.get("trace_id"),
                )
            )
        for event in payload.get("events", ()):
            event = dict(event)
            event["parent_id"] = remap.get(event.get("parent_id"), parent_id)
            self.events.append(event)

    # -- maintenance -----------------------------------------------------------

    def clear(self) -> None:
        self.spans = []
        self.events = []
        self._stack = []
        self._next_id = 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<Tracer {state} spans={len(self.spans)} events={len(self.events)}>"


# -- span-tree assembly --------------------------------------------------------


def assemble_tree(payload: dict, remote_parent: Optional[int] = None) -> dict:
    """Assemble a :meth:`Tracer.serialize` payload into one nested tree.

    Each node is the span's :meth:`Span.to_dict` plus ``children`` (spans
    whose parent is this span, in recording order) and ``events``
    (instant events parented here, in recording order).

    ``remote_parent`` names the caller-side span id that root spans were
    parented under (see :class:`Tracer`); spans referencing it are roots
    of the local tree.  Spans whose parent is neither recorded locally
    nor the declared remote parent land in ``orphans`` — a non-empty
    orphan list means the trace failed to reassemble completely, which
    the round-trip differential tests treat as a bug.
    """
    spans = payload.get("spans", ())
    events = payload.get("events", ())
    nodes: dict[int, dict] = {}
    trace_id = None
    for doc in spans:
        node = dict(doc)
        node["children"] = []
        node["events"] = []
        nodes[node["span_id"]] = node
        if trace_id is None:
            trace_id = node.get("trace_id")
    roots: list[dict] = []
    orphans: list[dict] = []
    for doc in spans:
        node = nodes[doc["span_id"]]
        parent = doc.get("parent_id")
        if parent is None or parent == remote_parent:
            roots.append(node)
        elif parent in nodes:
            nodes[parent]["children"].append(node)
        else:
            orphans.append(node)
    orphan_events: list[dict] = []
    for event in events:
        parent = event.get("parent_id")
        if parent in nodes:
            nodes[parent]["events"].append(dict(event))
        else:
            orphan_events.append(dict(event))
    return {
        "trace_id": trace_id,
        "remote_parent": remote_parent,
        "roots": roots,
        "orphans": orphans,
        "orphan_events": orphan_events,
        "span_count": len(nodes),
        "event_count": len(events),
    }


# -- the process-local tracer --------------------------------------------------

_ENV_TRACE = "REPRO_TRACE"
_ENV_TRACE_DIR = "REPRO_TRACE_DIR"
_DEFAULT_TRACE_DIR = ".repro_trace"

_default_tracer: Optional[Tracer] = None
_default_lock = threading.Lock()
_tls = threading.local()


def get_tracer() -> Tracer:
    """The current tracer: this thread's override, else the process default.

    The process default is created on first use and is disabled unless
    ``REPRO_TRACE`` is set to a truthy value (``1``, ``chrome``,
    ``jsonl``, or ``both``); when enabled from the environment, the
    trace is exported at interpreter exit into ``REPRO_TRACE_DIR``
    (default ``.repro_trace/``) in the requested format(s).
    """
    tracer = getattr(_tls, "tracer", None)
    if tracer is not None:
        return tracer
    global _default_tracer
    if _default_tracer is None:
        with _default_lock:
            if _default_tracer is None:
                _default_tracer = _from_env()
    return _default_tracer


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as *this thread's* tracer; returns the old override.

    The override shadows the shared process default for the calling
    thread only, which is what lets the service trace concurrent
    requests into isolated tracers.  Passing ``None`` clears the
    override so the thread falls back to the environment default
    (callers restoring a previous tracer can pass the value this
    function returned without checking it)."""
    previous = getattr(_tls, "tracer", None)
    _tls.tracer = tracer
    return previous


def _from_env() -> Tracer:
    value = os.environ.get(_ENV_TRACE, "").strip().lower()
    if value in ("", "0", "false", "off", "no"):
        return Tracer(enabled=False)
    tracer = Tracer(enabled=True)
    formats = ("chrome", "jsonl") if value in ("1", "true", "on", "yes", "both") else (value,)

    import atexit

    def _dump(tracer=tracer, formats=formats) -> None:
        from .export import write_chrome_trace, write_jsonl

        if not (tracer.spans or tracer.events):
            return
        directory = os.environ.get(_ENV_TRACE_DIR) or _DEFAULT_TRACE_DIR
        os.makedirs(directory, exist_ok=True)
        stem = os.path.join(directory, f"repro-{tracer._pid}")
        if "chrome" in formats:
            write_chrome_trace(tracer, stem + ".trace.json")
        if "jsonl" in formats:
            write_jsonl(tracer, stem + ".trace.jsonl")

    atexit.register(_dump)
    return tracer
