"""Structured tracing: process-local nested spans and instant events.

The tracer is the timing half of the observability layer (the decision
half is :mod:`repro.obs.ledger`).  Design constraints, in order:

1. **Disabled tracing is free.**  ``Tracer.span()`` on a disabled tracer
   returns one shared no-op context manager — no allocation, no clock
   read — and the process-local default tracer is disabled unless the
   ``REPRO_TRACE`` environment variable turns it on.  Observability must
   never change a measured number; the differential test in
   ``tests/obs/test_noop_differential.py`` enforces that.
2. **Spans nest and travel.**  A span opened while another is active
   becomes its child.  Workers in a process pool trace into their own
   tracer, :meth:`Tracer.serialize` the result, and the coordinator
   :meth:`Tracer.absorb`\\ s the payload, re-parenting the worker's root
   spans under the coordinating span (see
   :meth:`repro.experiments.runner.ExperimentRunner.compare_many`).
3. **Two time axes.**  Every span records wall-clock (epoch-based, so
   spans from different processes land on one Chrome-trace timeline) and,
   when a :class:`~repro.runtime.machine.Machine` is passed, the
   simulated-cycle interval it covered (``cycles_begin``/``cycles``
   in the span args).

Clocks and the pid are injectable so exporter tests can be golden-file
exact.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Span", "Tracer", "get_tracer", "set_tracer"]


@dataclass
class Span:
    """One completed (or still-open) traced interval."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start_us: int  # wall clock, microseconds since the epoch
    dur_us: int = 0
    pid: int = 0
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_us": self.start_us,
            "dur_us": self.dur_us,
            "pid": self.pid,
            "args": self.args,
        }


class _NullSpan:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager for one live span on an enabled tracer."""

    __slots__ = ("_tracer", "_span", "_machine", "_t0")

    def __init__(self, tracer: "Tracer", span: Span, machine) -> None:
        self._tracer = tracer
        self._span = span
        self._machine = machine
        self._t0 = 0.0

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        span.start_us = int(tracer._wall() * 1_000_000)
        if self._machine is not None:
            span.args["cycles_begin"] = self._machine.cycles
        tracer._stack.append(span.span_id)
        tracer.spans.append(span)
        self._t0 = tracer._clock()
        return span

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        tracer = self._tracer
        span = self._span
        span.dur_us = max(0, int((tracer._clock() - self._t0) * 1_000_000))
        if self._machine is not None:
            span.args["cycles"] = self._machine.cycles - span.args["cycles_begin"]
        if exc_type is not None:
            span.args["error"] = exc_type.__name__
        if tracer._stack and tracer._stack[-1] == span.span_id:
            tracer._stack.pop()
        return False


class Tracer:
    """Collects spans and events for one process.

    Args:
        enabled: when False every tracing entry point is a no-op.
        clock: monotonic clock used for durations (injectable for tests).
        wall: epoch clock used for timestamps (injectable for tests).
        pid: process id recorded on spans (injectable for tests).
    """

    def __init__(
        self,
        enabled: bool = False,
        clock: Callable[[], float] = time.perf_counter,
        wall: Callable[[], float] = time.time,
        pid: Optional[int] = None,
    ) -> None:
        self.enabled = enabled
        self.spans: list[Span] = []
        self.events: list[dict] = []
        self._clock = clock
        self._wall = wall
        self._pid = os.getpid() if pid is None else pid
        self._stack: list[int] = []
        self._next_id = 1

    # -- recording -----------------------------------------------------------

    def span(self, name: str, category: str = "pipeline", machine=None, **args):
        """Open a nested span; use as a context manager.

        ``machine`` adds simulated-cycle attribution: the span's args gain
        ``cycles_begin`` and ``cycles`` (the cycle interval covered).
        Extra keyword arguments become span args verbatim.
        """
        if not self.enabled:
            return _NULL_SPAN
        span = Span(
            span_id=self._alloc_id(),
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            category=category,
            start_us=0,
            pid=self._pid,
            args=dict(args),
        )
        return _SpanContext(self, span, machine)

    def event(self, name: str, category: str = "event", **args) -> None:
        """Record an instant event (e.g. a cache hit) at the current time."""
        if not self.enabled:
            return
        self.events.append(
            {
                "name": name,
                "category": category,
                "ts_us": int(self._wall() * 1_000_000),
                "parent_id": self._stack[-1] if self._stack else None,
                "pid": self._pid,
                "args": dict(args),
            }
        )

    def _alloc_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    # -- cross-process transport ----------------------------------------------

    def serialize(self) -> dict:
        """Plain-data payload for shipping spans out of a worker process."""
        return {
            "spans": [s.to_dict() for s in self.spans],
            "events": list(self.events),
        }

    def absorb(self, payload: Optional[dict], parent: Optional[Span] = None) -> None:
        """Merge a :meth:`serialize` payload from another tracer.

        Span ids are remapped into this tracer's id space; spans that were
        roots in the worker are re-parented under ``parent`` (when given),
        which stitches a worker's trace beneath the coordinator's span.
        """
        if not payload or not self.enabled:
            return
        remap: dict[int, int] = {}
        parent_id = parent.span_id if parent is not None else None
        for doc in payload.get("spans", ()):
            new_id = self._alloc_id()
            remap[doc["span_id"]] = new_id
            old_parent = doc.get("parent_id")
            self.spans.append(
                Span(
                    span_id=new_id,
                    parent_id=remap.get(old_parent, parent_id),
                    name=doc["name"],
                    category=doc["category"],
                    start_us=doc["start_us"],
                    dur_us=doc["dur_us"],
                    pid=doc["pid"],
                    args=dict(doc.get("args", {})),
                )
            )
        for event in payload.get("events", ()):
            event = dict(event)
            event["parent_id"] = remap.get(event.get("parent_id"), parent_id)
            self.events.append(event)

    # -- maintenance -----------------------------------------------------------

    def clear(self) -> None:
        self.spans = []
        self.events = []
        self._stack = []
        self._next_id = 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<Tracer {state} spans={len(self.spans)} events={len(self.events)}>"


# -- the process-local tracer --------------------------------------------------

_ENV_TRACE = "REPRO_TRACE"
_ENV_TRACE_DIR = "REPRO_TRACE_DIR"
_DEFAULT_TRACE_DIR = ".repro_trace"

_tracer: Optional[Tracer] = None


def get_tracer() -> Tracer:
    """The process-local tracer, created on first use.

    Disabled unless ``REPRO_TRACE`` is set to a truthy value (``1``,
    ``chrome``, ``jsonl``, or ``both``); when enabled from the
    environment, the trace is exported at interpreter exit into
    ``REPRO_TRACE_DIR`` (default ``.repro_trace/``) in the requested
    format(s).
    """
    global _tracer
    if _tracer is None:
        _tracer = _from_env()
    return _tracer


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as the process-local tracer; returns the old one.

    Passing ``None`` resets to the lazily-created environment default
    (callers restoring a previous tracer can pass the value this function
    returned without checking it)."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


def _from_env() -> Tracer:
    value = os.environ.get(_ENV_TRACE, "").strip().lower()
    if value in ("", "0", "false", "off", "no"):
        return Tracer(enabled=False)
    tracer = Tracer(enabled=True)
    formats = ("chrome", "jsonl") if value in ("1", "true", "on", "yes", "both") else (value,)

    import atexit

    def _dump(tracer=tracer, formats=formats) -> None:
        from .export import write_chrome_trace, write_jsonl

        if not (tracer.spans or tracer.events):
            return
        directory = os.environ.get(_ENV_TRACE_DIR) or _DEFAULT_TRACE_DIR
        os.makedirs(directory, exist_ok=True)
        stem = os.path.join(directory, f"repro-{tracer._pid}")
        if "chrome" in formats:
            write_chrome_trace(tracer, stem + ".trace.json")
        if "jsonl" in formats:
            write_jsonl(tracer, stem + ".trace.jsonl")

    atexit.register(_dump)
    return tracer
