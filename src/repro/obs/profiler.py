"""Hierarchical cycle-attribution profiler for measured runs.

The simulator's cost model is a linear integer dot product: at any point
in a run, ``Machine.cost.cycles_for(machine.counters)`` is the exact
cycle total so far.  The profiler exploits that linearity: at every
attribution boundary (function entry/exit, reuse-segment probe, commit,
end) it snapshots the running total and accrues the delta since the last
snapshot to the node on top of an *attribution stack*.  Because every
cycle charged between two snapshots lands in exactly one node, the
per-node totals sum bit-exactly to ``Metrics.cycles`` — the conservation
property the differential test asserts.

Attribution boundaries are only ever function calls and reuse
intrinsics, both of which are unfusable
(:mod:`repro.runtime.fuse` never fuses across them), so fused and
unfused execution attribute identically.

Segment nodes split their self-cycles into two buckets, following the
paper's accounting identity (formula 3, gain = ``R*C - O``):

* *body* — cycles spent actually executing the memoized region on the
  miss (or governor-bypassed) path;
* *overhead* — the hashing cost ``O``: probe key construction + lookup,
  output restores on a hit, and the commit on a miss.

From the bucket totals the profiler derives the *measured* ``C``
(inclusive body cycles per executed body), ``O`` (overhead per
execution) and ``R`` (hits per execution), which the measured-vs-ledger
report prints next to the compile-time estimates carried by each
:class:`~repro.reuse.transform.TableSpec`; cycles saved by reuse hits
are reconstructed as ``hits x C``.

The hooks are compiled in only when a profiler is installed on the
machine *before* :func:`~repro.runtime.compiler.compile_program` runs
(``machine.cycle_profiler``); with no profiler the generated closures
are byte-identical to the unprofiled ones, so enabling profiling can
never perturb a run it is not watching.

Line attribution (``CycleProfiler(..., lines=True)``) extends the same
scheme one level down: each stack frame carries a *current source line*,
updated by the ``at_line`` hook the backends call at statement starts
and loop-iteration heads, and every tick's delta is added to a per-line
``[body, overhead]`` bucket keyed by the frame's current line.  Because
each delta still lands in exactly one bucket, the per-line totals sum
bit-exactly to ``Metrics.cycles`` too (line 0 collects cycles charged
before the first mark of a function).  Both backends place their marks
at identical counter states — statement starts and per-iteration loop
heads/tails, all of which are flush points in the VM — so the closure
and VM backends agree on per-line totals line for line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "CycleProfiler",
    "CycleProfile",
    "ProfileNode",
    "SegmentAttribution",
    "ledger_costs",
]

_BODY = 0
_OVERHEAD = 1


class ProfileNode:
    """One node of the attribution tree: a function or a reuse segment.

    ``body_cycles`` / ``overhead_cycles`` are *self* cycles (children
    excluded); for function nodes everything lands in ``body_cycles``.
    Children are keyed by ``(kind, name)`` so repeated calls through the
    same path share a node; direct self-recursion folds into one node
    instead of growing a chain per activation.
    """

    __slots__ = (
        "kind",
        "name",
        "count",
        "body_cycles",
        "overhead_cycles",
        "hits",
        "misses",
        "bypassed",
        "children",
    )

    def __init__(self, kind: str, name) -> None:
        self.kind = kind
        self.name = name
        self.count = 0
        self.body_cycles = 0
        self.overhead_cycles = 0
        self.hits = 0
        self.misses = 0
        self.bypassed = 0
        self.children: dict[tuple, "ProfileNode"] = {}

    def child(self, kind: str, name) -> "ProfileNode":
        key = (kind, name)
        node = self.children.get(key)
        if node is None:
            node = ProfileNode(kind, name)
            self.children[key] = node
        return node

    @property
    def self_cycles(self) -> int:
        return self.body_cycles + self.overhead_cycles

    @property
    def total_cycles(self) -> int:
        """Inclusive cycles: self plus everything below."""
        return self.self_cycles + sum(
            c.total_cycles for c in self.children.values()
        )

    @property
    def label(self) -> str:
        return f"seg:{self.name}" if self.kind == "segment" else str(self.name)

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "ProfileNode"]]:
        """Depth-first traversal, children ordered by descending total."""
        yield depth, self
        for child in sorted(
            self.children.values(), key=lambda n: -n.total_cycles
        ):
            yield from child.walk(depth + 1)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "count": self.count,
            "body_cycles": self.body_cycles,
            "overhead_cycles": self.overhead_cycles,
            "hits": self.hits,
            "misses": self.misses,
            "bypassed": self.bypassed,
            "children": [
                c.to_dict()
                for c in sorted(
                    self.children.values(), key=lambda n: -n.total_cycles
                )
            ],
        }


@dataclass
class SegmentAttribution:
    """Aggregated measured numbers for one reuse segment (all tree paths
    through it summed).  ``body_cycles`` is inclusive of nested work on
    the executed path; ``overhead_cycles`` is the hashing cost."""

    seg_id: int
    executions: int = 0
    hits: int = 0
    misses: int = 0
    bypassed: int = 0
    body_cycles: int = 0
    overhead_cycles: int = 0

    @property
    def executed_bodies(self) -> int:
        return self.misses + self.bypassed

    @property
    def measured_granularity(self) -> float:
        """Measured ``C``: inclusive body cycles per executed body."""
        return self.body_cycles / self.executed_bodies if self.executed_bodies else 0.0

    @property
    def measured_overhead(self) -> float:
        """Measured ``O``: overhead cycles per execution."""
        return self.overhead_cycles / self.executions if self.executions else 0.0

    @property
    def measured_reuse_rate(self) -> float:
        """Measured ``R``: hit fraction of all executions."""
        return self.hits / self.executions if self.executions else 0.0

    @property
    def measured_gain(self) -> float:
        """Measured per-execution gain, the runtime analog of formula 3."""
        return (
            self.measured_reuse_rate * self.measured_granularity
            - self.measured_overhead
        )

    def saved_cycles(self, granularity_cycles: Optional[float] = None) -> float:
        """Cycles the hits did not execute: ``hits x C``.  Uses the
        measured granularity unless the compile-time constant is given."""
        c = (
            granularity_cycles
            if granularity_cycles is not None
            else self.measured_granularity
        )
        return self.hits * c


@dataclass
class CycleProfile:
    """The finished attribution tree plus the ledger's estimates."""

    root: ProfileNode
    # segment id -> compile-time estimates; see :func:`ledger_costs`
    seg_costs: dict = field(default_factory=dict)
    # source line -> [body_cycles, overhead_cycles]; None when the run
    # did not track lines (see ``CycleProfiler(..., lines=True)``)
    lines: Optional[dict] = None

    @property
    def total_cycles(self) -> int:
        """Sum of every node's self cycles — the conservation total."""
        return self.root.total_cycles

    def line_total(self) -> int:
        """Sum of every line bucket — equals ``total_cycles`` when line
        tracking was on (the line-level conservation property)."""
        if not self.lines:
            return 0
        return sum(body + overhead for body, overhead in self.lines.values())

    def segments(self) -> dict[int, SegmentAttribution]:
        """Aggregate every segment node (inclusive body) by segment id."""
        out: dict[int, SegmentAttribution] = {}
        for _, node in self.root.walk():
            if node.kind != "segment":
                continue
            att = out.get(node.name)
            if att is None:
                att = out[node.name] = SegmentAttribution(seg_id=node.name)
            att.executions += node.count
            att.hits += node.hits
            att.misses += node.misses
            att.bypassed += node.bypassed
            att.body_cycles += node.body_cycles + sum(
                c.total_cycles for c in node.children.values()
            )
            att.overhead_cycles += node.overhead_cycles
        return out

    # -- exporters ----------------------------------------------------------

    def render(self, max_depth: Optional[int] = None, min_cycles: int = 0) -> str:
        """The profile tree as an aligned text table."""
        headers = ["node", "count", "total", "self", "overhead", "hit/miss/byp"]
        rows = []
        for depth, node in self.root.walk():
            if max_depth is not None and depth > max_depth:
                continue
            if node.total_cycles < min_cycles and depth > 0:
                continue
            hmb = (
                f"{node.hits}/{node.misses}/{node.bypassed}"
                if node.kind == "segment"
                else "-"
            )
            rows.append(
                [
                    "  " * depth + node.label,
                    str(node.count),
                    str(node.total_cycles),
                    str(node.body_cycles),
                    str(node.overhead_cycles),
                    hmb,
                ]
            )
        return "Cycle attribution (self = own body cycles)\n" + _table(headers, rows)

    def collapsed(self) -> str:
        """Collapsed-stack (flamegraph) format: ``a;b;c <self cycles>``
        per line.  Feed to any flamegraph renderer."""
        lines: list[str] = []

        def visit(node: ProfileNode, path: str) -> None:
            here = f"{path};{node.label}" if path else node.label
            if node.self_cycles > 0:
                lines.append(f"{here} {node.self_cycles}")
            for child in sorted(
                node.children.values(), key=lambda n: -n.total_cycles
            ):
                visit(child, here)

        visit(self.root, "")
        return "\n".join(lines)

    def measured_vs_ledger(self) -> str:
        """Compile-time ``C``/``O``/gain next to the measured values, per
        segment — the paper's formulas, checked at run time."""
        segments = self.segments()
        if not segments:
            return "Measured vs ledger: no reuse segments executed"
        headers = [
            "segment",
            "execs",
            "hits",
            "R est",
            "R meas",
            "C est",
            "C meas",
            "O est",
            "O meas",
            "gain est",
            "gain meas",
            "saved cy",
        ]
        rows = []
        for seg_id in sorted(segments):
            att = segments[seg_id]
            est = self.seg_costs.get(seg_id, {})
            func = est.get("function")
            label = f"{seg_id} ({func})" if func else str(seg_id)
            est_c = est.get("C")
            rows.append(
                [
                    label,
                    str(att.executions),
                    str(att.hits),
                    _fmt(est.get("R"), "{:.3f}"),
                    f"{att.measured_reuse_rate:.3f}",
                    _fmt(est_c, "{:.0f}"),
                    f"{att.measured_granularity:.0f}",
                    _fmt(est.get("O"), "{:.0f}"),
                    f"{att.measured_overhead:.1f}",
                    _fmt(est.get("gain"), "{:+.1f}"),
                    f"{att.measured_gain:+.1f}",
                    f"{att.saved_cycles(est_c):.0f}",
                ]
            )
        return (
            "Measured vs ledger (est = compile-time profile, meas = this run)\n"
            + _table(headers, rows)
        )

    def to_dict(self) -> dict:
        """JSON-serializable summary: the tree plus per-segment rows."""
        return {
            "total_cycles": self.total_cycles,
            "lines": (
                {str(line): list(bucket) for line, bucket in sorted(self.lines.items())}
                if self.lines
                else None
            ),
            "tree": self.root.to_dict(),
            "segments": {
                str(seg_id): {
                    "executions": att.executions,
                    "hits": att.hits,
                    "misses": att.misses,
                    "bypassed": att.bypassed,
                    "body_cycles": att.body_cycles,
                    "overhead_cycles": att.overhead_cycles,
                    "measured_granularity": att.measured_granularity,
                    "measured_overhead": att.measured_overhead,
                    "measured_reuse_rate": att.measured_reuse_rate,
                    "measured_gain": att.measured_gain,
                    "saved_cycles": att.saved_cycles(
                        self.seg_costs.get(seg_id, {}).get("C")
                    ),
                }
                for seg_id, att in self.segments().items()
            },
        }


class CycleProfiler:
    """The live attribution stack; install on a machine *before*
    :func:`~repro.runtime.compiler.compile_program`::

        machine = Machine("O0")
        profiler = CycleProfiler(machine, seg_costs=ledger_costs(result))
        machine.cycle_profiler = profiler
        compile_program(program, machine).run("main")
        profile = profiler.finalize()

    Hook protocol (called by the compiled closures):

    * ``enter_function`` / ``exit_function`` around every function body;
    * ``probe_begin`` before a segment's ``__reuse_probe`` evaluates,
      ``probe_end`` after it (with the hit/bypass verdict);
    * ``commit_begin`` before ``__reuse_commit`` (miss path) and
      ``segment_exit`` after it, or ``segment_exit`` after
      ``__reuse_end`` (hit path).

    Boundary charges follow perf convention: a call's CALL/RET cycles and
    the guard's branch land in the *caller*; the probe's key hashing and
    the ``== 0`` test land where they are charged.  Every cycle lands in
    exactly one node either way.
    """

    def __init__(
        self, machine, seg_costs: Optional[dict] = None, lines: bool = False
    ) -> None:
        self._counters = machine.counters
        self._weights = machine.cost.cycles
        self.seg_costs = dict(seg_costs or {})
        self.track_lines = lines
        self._lines: Optional[dict] = {} if lines else None
        self.root = ProfileNode("run", "run")
        self.root.count = 1
        # frame: [node, body/overhead mode, current source line]
        self._stack: list[list] = [[self.root, _BODY, 0]]
        self._last = self._now()
        self._profile: Optional[CycleProfile] = None

    def _now(self) -> int:
        return sum(c * k for c, k in zip(self._counters, self._weights))

    def _tick(self) -> None:
        now = self._now()
        frame = self._stack[-1]
        delta = now - self._last
        if frame[1]:
            frame[0].overhead_cycles += delta
        else:
            frame[0].body_cycles += delta
        if self._lines is not None and delta:
            bucket = self._lines.get(frame[2])
            if bucket is None:
                bucket = self._lines[frame[2]] = [0, 0]
            bucket[frame[1]] += delta
        self._last = now

    # -- line boundaries -----------------------------------------------------

    def at_line(self, line: int) -> None:
        """Mark the current frame as executing ``line`` from here on.
        The delta since the previous boundary still belongs to the
        previous line — ticked before the switch."""
        self._tick()
        self._stack[-1][2] = line

    # -- function boundaries -------------------------------------------------

    def enter_function(self, name: str) -> None:
        self._tick()
        top = self._stack[-1][0]
        if top.kind == "function" and top.name == name:
            node = top  # fold direct self-recursion
        else:
            node = top.child("function", name)
        node.count += 1
        self._stack.append([node, _BODY, 0])

    def exit_function(self) -> None:
        self._tick()
        if len(self._stack) > 1:
            self._stack.pop()

    # -- segment boundaries --------------------------------------------------

    def probe_begin(self, seg_id: int) -> None:
        self._tick()
        parent = self._stack[-1]
        node = parent[0].child("segment", seg_id)
        node.count += 1
        # Inherit the caller's current line: probe/commit overhead and
        # the region body attribute to the segment's source location.
        self._stack.append([node, _OVERHEAD, parent[2]])

    def probe_end(self, seg_id: int, hit: bool, bypassed: bool = False) -> None:
        self._tick()  # the probe itself is overhead
        frame = self._stack[-1]
        if hit:
            frame[0].hits += 1  # stay in overhead: restores + end follow
        elif bypassed:
            frame[0].bypassed += 1
            frame[1] = _BODY
        else:
            frame[0].misses += 1
            frame[1] = _BODY

    def commit_begin(self, seg_id: int) -> None:
        self._tick()  # body cycles up to the commit
        self._stack[-1][1] = _OVERHEAD

    def segment_exit(self, seg_id: int) -> None:
        self._tick()
        if len(self._stack) > 1:
            self._stack.pop()

    # -- lifecycle -----------------------------------------------------------

    def finalize(self) -> CycleProfile:
        """Flush the trailing delta and freeze the tree (idempotent)."""
        if self._profile is None:
            self._tick()
            del self._stack[1:]
            self._profile = CycleProfile(
                root=self.root, seg_costs=self.seg_costs, lines=self._lines
            )
        return self._profile


def ledger_costs(result) -> dict[int, dict]:
    """Compile-time estimates per selected segment, pulled off a
    :class:`~repro.reuse.pipeline.PipelineResult` (duck-typed): the
    ``C``/``O`` constants the transformer emitted into each
    :class:`~repro.reuse.transform.TableSpec` plus the value-profiled
    ``R`` and gain — the numbers the measured-vs-ledger report compares
    against."""
    specs = {
        spec.segment_id: spec for spec in getattr(result, "table_specs", [])
    }
    costs: dict[int, dict] = {}
    for segment in getattr(result, "selected", []):
        spec = specs.get(segment.seg_id)
        costs[segment.seg_id] = {
            "function": getattr(segment, "func_name", None),
            "kind": getattr(segment, "kind", None),
            "C": (
                spec.granularity_cycles
                if spec is not None
                else getattr(segment, "measured_granularity", 0.0)
            ),
            "O": (
                spec.overhead_cycles
                if spec is not None
                else getattr(segment, "overhead", 0.0)
            ),
            "R": getattr(segment, "reuse_rate", 0.0),
            "gain": getattr(segment, "gain", 0.0),
        }
    return costs


def _fmt(value, spec: str) -> str:
    return spec.format(value) if value is not None else "-"


def _table(headers, rows) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)
