"""Annotated-source reports: line-level cycles, reuse verdicts, bytecode.

The cycle profiler's line mode (``CycleProfiler(..., lines=True)``) buckets
every simulated cycle by source line, and the
:class:`~repro.runtime.srcmap.SourceMap` records where each reuse site
(probe / commit / end) and each emitted VM instruction came from.  This
module joins those three observation streams with the source text into
one report — the ``perf annotate`` view of the paper's transformation:

* :func:`build_annotation` — the pure join: source lines × per-line
  body/overhead cycles × reuse-site verdicts (measured hit ratios and
  R/C/O next to the ledger's estimates);
* :func:`render_text` — the aligned terminal table behind
  ``repro annotate <workload>``;
* :func:`render_html` — a deterministic single-file HTML page
  (heat-shaded lines, per-line R/C/O and hit-ratio columns,
  segment-boundary markers, a backend selector when both backends'
  annotations are supplied) that the dashboard embeds as a panel;
* :func:`render_disasm` — VM bytecode interleaved with the source lines
  it compiled from, behind ``repro disasm <workload>``.

Everything here is a pure function of its inputs — no clocks, no
environment — so both renderers are golden-file tested byte-for-byte.
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass, field
from typing import Optional

from ..runtime.costs import CLASS_NAMES
from ..runtime.vm import vm_opcodes as op

__all__ = [
    "ANNOTATE_CSS",
    "Annotation",
    "LineRow",
    "SiteRow",
    "build_annotation",
    "render_text",
    "render_html",
    "render_fragment",
    "render_disasm",
]


# -- the join ----------------------------------------------------------------


@dataclass
class SiteRow:
    """One reuse segment joined across source map, profile, and ledger."""

    seg_id: int
    function: str = ""
    probe_line: int = 0
    commit_line: int = 0
    end_line: int = 0
    executions: int = 0
    hits: int = 0
    misses: int = 0
    bypassed: int = 0
    meas_r: float = 0.0
    meas_c: float = 0.0
    meas_o: float = 0.0
    est_r: Optional[float] = None
    est_c: Optional[float] = None
    est_o: Optional[float] = None

    @property
    def hit_ratio(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0


@dataclass
class LineRow:
    """One source line with its attribution and site markers."""

    line: int
    text: str
    body: int = 0
    overhead: int = 0
    # markers: ("probe"|"commit"|"end", seg_id) in marker order
    markers: list = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.body + self.overhead


@dataclass
class Annotation:
    """A fully joined annotated-source report for one measured run."""

    title: str
    backend: str
    cycles: int          # Metrics.cycles of the run
    attributed: int      # sum of the line buckets (== cycles by conservation)
    prelude: tuple       # (body, overhead) cycles before the first line mark
    rows: list           # LineRow per source line, in order
    sites: list          # SiteRow per segment, by seg_id

    @property
    def max_line_cycles(self) -> int:
        return max((row.total for row in self.rows), default=0)


def build_annotation(
    source: str,
    profile,
    source_map,
    *,
    title: str = "program",
) -> Annotation:
    """Join source text, a line-tracking :class:`CycleProfile`, and the
    run's :class:`SourceMap` into an :class:`Annotation`.

    ``profile.lines`` must be present (run with ``profile="lines"``).
    The returned annotation's ``attributed`` total reconciles bit-exactly
    with the run's ``Metrics.cycles`` — the line-level conservation
    property the differential tests pin.
    """
    lines = profile.lines or {}
    site_map = source_map.sites() if source_map is not None else {}
    seg_atts = profile.segments()
    sites = []
    for seg_id in sorted(set(site_map) | set(seg_atts)):
        fn_name, site = site_map.get(seg_id, ("", {}))
        att = seg_atts.get(seg_id)
        est = profile.seg_costs.get(seg_id, {})
        row = SiteRow(
            seg_id=seg_id,
            function=fn_name,
            probe_line=site.get("probe_line", 0),
            commit_line=site.get("commit_line", 0),
            end_line=site.get("end_line", 0),
            est_r=est.get("R"),
            est_c=est.get("C"),
            est_o=est.get("O"),
        )
        if att is not None:
            row.executions = att.executions
            row.hits = att.hits
            row.misses = att.misses
            row.bypassed = att.bypassed
            row.meas_r = att.measured_reuse_rate
            row.meas_c = att.measured_granularity
            row.meas_o = att.measured_overhead
        sites.append(row)

    markers: dict[int, list] = {}
    for site in sites:
        for kind in ("probe", "commit", "end"):
            line = getattr(site, f"{kind}_line")
            if line > 0:
                markers.setdefault(line, []).append((kind, site.seg_id))

    rows = []
    for number, text in enumerate(source.splitlines(), start=1):
        bucket = lines.get(number, (0, 0))
        rows.append(
            LineRow(
                line=number,
                text=text,
                body=bucket[0],
                overhead=bucket[1],
                markers=markers.get(number, []),
            )
        )
    return Annotation(
        title=title,
        backend=source_map.backend if source_map is not None else "?",
        cycles=profile.total_cycles,
        attributed=profile.line_total(),
        prelude=tuple(lines.get(0, (0, 0))),
        rows=rows,
        sites=sites,
    )


# -- text renderer -----------------------------------------------------------

_HEAT_WIDTH = 6


def _heat_bar(total: int, max_total: int) -> str:
    if max_total <= 0 or total <= 0:
        return ""
    filled = max(1, round(_HEAT_WIDTH * total / max_total))
    return "#" * filled


def _marker_text(markers) -> str:
    return " ".join(f"{kind}:s{seg}" for kind, seg in markers)


def _opt(value, fmt: str) -> str:
    return fmt.format(value) if value is not None else "-"


def render_text(ann: Annotation) -> str:
    """The annotated source as an aligned terminal table."""
    out = [
        f"annotate: {ann.title} (backend: {ann.backend})",
        (
            f"cycles {ann.cycles}  attributed {ann.attributed}  "
            f"prelude {ann.prelude[0] + ann.prelude[1]}"
        ),
        "",
        f"{'line':>5} {'body':>12} {'overhead':>10} {'%tot':>6} "
        f"{'heat':<{_HEAT_WIDTH}} source",
    ]
    max_total = ann.max_line_cycles
    for row in ann.rows:
        pct = 100.0 * row.total / ann.cycles if ann.cycles else 0.0
        marker = _marker_text(row.markers)
        suffix = f"   [{marker}]" if marker else ""
        out.append(
            f"{row.line:>5} {row.body:>12} {row.overhead:>10} {pct:>6.2f} "
            f"{_heat_bar(row.total, max_total):<{_HEAT_WIDTH}} "
            f"| {row.text}{suffix}"
        )
    if ann.sites:
        out.append("")
        out.append("reuse sites (meas = this run, est = ledger):")
        for site in ann.sites:
            where = (
                f"probe@{site.probe_line} commit@{site.commit_line} "
                f"end@{site.end_line}"
            )
            out.append(
                f"  seg {site.seg_id} ({site.function}): {where}  "
                f"exec {site.executions} hits {site.hits} "
                f"misses {site.misses} bypassed {site.bypassed}  "
                f"hit-ratio {site.hit_ratio:.3f}  "
                f"R {site.meas_r:.3f}/{_opt(site.est_r, '{:.3f}')}  "
                f"C {site.meas_c:.0f}/{_opt(site.est_c, '{:.0f}')}  "
                f"O {site.meas_o:.1f}/{_opt(site.est_o, '{:.1f}')}"
            )
    return "\n".join(out) + "\n"


# -- HTML renderer -----------------------------------------------------------

# page chrome for the standalone page; ANNOTATE_CSS (everything from
# ``.selector`` down) is also appended to the dashboard's stylesheet so
# embedded fragments render identically there
ANNOTATE_CSS = """
.selector button { margin-right: 0.5rem; padding: 0.3rem 0.9rem;
  border: 1px solid #bbb; background: #fff; border-radius: 4px; cursor: pointer; }
.selector button.active { background: #2b6cb0; color: #fff; border-color: #2b6cb0; }
table.annotate { border-collapse: collapse; font-family: ui-monospace, monospace;
  font-size: 0.8rem; width: 100%; }
table.annotate th { text-align: right; padding: 0.15rem 0.5rem; color: #555;
  border-bottom: 1px solid #ccc; }
table.annotate th.src { text-align: left; }
table.annotate td { padding: 0.1rem 0.5rem; text-align: right;
  white-space: pre; vertical-align: baseline; }
table.annotate td.src { text-align: left; width: 100%; }
tr.site-probe td { border-top: 2px solid #2b6cb0; }
tr.site-end td { border-bottom: 2px solid #2b6cb0; }
.marker { color: #2b6cb0; font-weight: 600; margin-left: 0.6rem; }
table.sites { border-collapse: collapse; font-size: 0.8rem; margin-top: 1rem; }
table.sites th, table.sites td { border: 1px solid #ddd;
  padding: 0.2rem 0.55rem; text-align: right; }
table.sites th:first-child, table.sites td:first-child { text-align: left; }
"""

_PAGE_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 1.5rem;
       background: #fafafa; color: #222; }
h1 { font-size: 1.2rem; }
.meta { color: #666; font-size: 0.85rem; margin-bottom: 1rem; }
""" + ANNOTATE_CSS

_SELECTOR_JS = """
if (!window.reproShow) {
  window.reproShow = function (uid, backend) {
    document.querySelectorAll(
      '[data-panel="' + uid + '"][data-backend]'
    ).forEach(function (el) {
      el.style.display = el.dataset.backend === backend ? '' : 'none';
    });
    document.querySelectorAll(
      '.selector[data-panel="' + uid + '"] button'
    ).forEach(function (el) {
      el.classList.toggle('active', el.dataset.target === backend);
    });
  };
}
"""


def _heat_style(total: int, max_total: int) -> str:
    if max_total <= 0 or total <= 0:
        return ""
    # white → warm red ramp; intensity is this line's share of the hottest
    frac = total / max_total
    alpha = round(0.08 + 0.72 * frac, 3)
    return f"background: rgba(214, 69, 48, {alpha});"


def _render_backend_section(ann: Annotation, visible: bool, uid: str) -> list[str]:
    max_total = ann.max_line_cycles
    site_by_probe_line = {
        s.probe_line: s for s in ann.sites if s.probe_line > 0
    }
    end_lines = {s.end_line for s in ann.sites if s.end_line > 0}
    display = "" if visible else ' style="display:none"'
    out = [
        f'<section data-panel="{_html.escape(uid)}" '
        f'data-backend="{_html.escape(ann.backend)}"{display}>'
    ]
    out.append(
        f'<p class="meta">backend {_html.escape(ann.backend)} — '
        f"cycles {ann.cycles}, attributed {ann.attributed}, "
        f"prelude {ann.prelude[0] + ann.prelude[1]}</p>"
    )
    out.append('<table class="annotate">')
    out.append(
        "<tr><th>line</th><th>body</th><th>overhead</th><th>%tot</th>"
        "<th>hit-ratio</th><th>R</th><th>C</th><th>O</th>"
        '<th class="src">source</th></tr>'
    )
    for row in ann.rows:
        pct = 100.0 * row.total / ann.cycles if ann.cycles else 0.0
        classes = []
        if any(kind == "probe" for kind, _ in row.markers):
            classes.append("site-probe")
        if row.line in end_lines:
            classes.append("site-end")
        cls = f' class="{" ".join(classes)}"' if classes else ""
        site = site_by_probe_line.get(row.line)
        if site is not None:
            ratio = f"{site.hit_ratio:.3f}"
            r = f"{site.meas_r:.3f}"
            c = f"{site.meas_c:.0f}"
            o = f"{site.meas_o:.1f}"
        else:
            ratio = r = c = o = ""
        marker = _marker_text(row.markers)
        marker_html = (
            f'<span class="marker">{_html.escape(marker)}</span>' if marker else ""
        )
        style = _heat_style(row.total, max_total)
        style_attr = f' style="{style}"' if style else ""
        out.append(
            f"<tr{cls}><td>{row.line}</td><td>{row.body}</td>"
            f"<td>{row.overhead}</td><td>{pct:.2f}</td>"
            f"<td>{ratio}</td><td>{r}</td><td>{c}</td><td>{o}</td>"
            f'<td class="src"{style_attr}>'
            f"{_html.escape(row.text) or '&nbsp;'}{marker_html}</td></tr>"
        )
    out.append("</table>")
    if ann.sites:
        out.append('<table class="sites">')
        out.append(
            "<tr><th>segment</th><th>probe@</th><th>commit@</th><th>end@</th>"
            "<th>exec</th><th>hits</th><th>misses</th><th>bypassed</th>"
            "<th>hit-ratio</th><th>R meas/est</th><th>C meas/est</th>"
            "<th>O meas/est</th></tr>"
        )
        for s in ann.sites:
            out.append(
                f"<tr><td>seg {s.seg_id} ({_html.escape(s.function)})</td>"
                f"<td>{s.probe_line}</td><td>{s.commit_line}</td>"
                f"<td>{s.end_line}</td><td>{s.executions}</td>"
                f"<td>{s.hits}</td><td>{s.misses}</td><td>{s.bypassed}</td>"
                f"<td>{s.hit_ratio:.3f}</td>"
                f"<td>{s.meas_r:.3f} / {_opt(s.est_r, '{:.3f}')}</td>"
                f"<td>{s.meas_c:.0f} / {_opt(s.est_c, '{:.0f}')}</td>"
                f"<td>{s.meas_o:.1f} / {_opt(s.est_o, '{:.1f}')}</td></tr>"
            )
        out.append("</table>")
    out.append("</section>")
    return out


def render_fragment(annotations, uid: str = "annotate") -> str:
    """The annotated-source view as an embeddable HTML fragment.

    The backend selector and its sections are scoped by ``uid``, so
    several fragments (one per dashboard panel) coexist on one page
    without their selectors interfering.  The fragment carries its own
    (idempotent) toggle script but no page chrome or CSS.
    """
    if isinstance(annotations, Annotation):
        annotations = [annotations]
    if not annotations:
        raise ValueError("render_fragment needs at least one Annotation")
    out = []
    if len(annotations) > 1:
        out.append(f'<div class="selector" data-panel="{_html.escape(uid)}">')
        for i, ann in enumerate(annotations):
            active = ' class="active"' if i == 0 else ""
            out.append(
                f"<button{active} data-target=\"{_html.escape(ann.backend)}\" "
                f"onclick=\"reproShow('{_html.escape(uid)}', "
                f"'{_html.escape(ann.backend)}')\">"
                f"{_html.escape(ann.backend)}</button>"
            )
        out.append("</div>")
        out.append(f"<script>{_SELECTOR_JS}</script>")
    for i, ann in enumerate(annotations):
        out.extend(_render_backend_section(ann, visible=i == 0, uid=uid))
    return "\n".join(out)


def render_html(annotations, title: Optional[str] = None) -> str:
    """A deterministic single-file HTML annotated-source page.

    ``annotations`` is a list of :class:`Annotation` (one per backend;
    a lone annotation may be passed bare).  With several backends the
    page gets a selector that toggles between their sections client-side
    — no network, no external assets, stable byte-for-byte output for
    golden tests.
    """
    if isinstance(annotations, Annotation):
        annotations = [annotations]
    if not annotations:
        raise ValueError("render_html needs at least one Annotation")
    page_title = title or annotations[0].title
    out = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>annotate: {_html.escape(page_title)}</title>",
        f"<style>{_PAGE_CSS}</style>",
        "</head><body>",
        f"<h1>annotate: {_html.escape(page_title)}</h1>",
        render_fragment(annotations),
        "</body></html>",
    ]
    return "\n".join(out) + "\n"


# -- bytecode / source interleave --------------------------------------------


def _charge_note(entries) -> str:
    parts = []
    for line, cls, n in entries:
        name = CLASS_NAMES[cls] if 0 <= cls < len(CLASS_NAMES) else str(cls)
        suffix = f"x{n}" if n != 1 else ""
        parts.append(f"{name}{suffix}@{line}")
    return " ".join(parts)


def render_disasm(source: str, vm_program, source_map) -> str:
    """VM bytecode interleaved with the source lines it compiled from.

    For every function: each run of instructions sharing a source line is
    preceded by that line's text, and fused ``CHARGE`` groups carry the
    per-line charge-class breakdown the source map recorded — so the
    block-fusion discipline stays auditable down to single lines.
    """
    src_lines = source.splitlines()
    out = []
    for name in sorted(vm_program.functions):
        fn = vm_program.functions[name]
        fsm = source_map.functions.get(name) if source_map is not None else None
        pc_line = dict(fsm.pc_lines) if fsm is not None else {}
        charge_lines = fsm.charge_lines if fsm is not None else {}
        out.append(f"function {name}  ({len(fn.code)} instructions)")
        last_line = -1
        for pc, ins in enumerate(fn.code):
            line = pc_line.get(pc, 0)
            if line != last_line:
                if 1 <= line <= len(src_lines):
                    out.append(f"  ; line {line:>4}: {src_lines[line - 1].strip()}")
                else:
                    out.append("  ; (synthesized)")
                last_line = line
            marks = []
            if pc in fn.loops:
                marks.append("loop")
            if ins[0] == op.CHARGE and pc in charge_lines:
                note = _charge_note(charge_lines[pc])
                if note:
                    marks.append(note)
            operands = ", ".join(repr(x) for x in ins[1:])
            tag = f"  ; {' '.join(marks)}" if marks else ""
            out.append(
                f"  {pc:4d}  {op.OP_NAMES.get(ins[0], '?'):<12s} {operands}{tag}"
            )
        out.append("")
    return "\n".join(out)
