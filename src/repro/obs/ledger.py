"""The segment decision ledger: why every candidate lived or died.

The reuse pipeline kills candidate segments at seven gates — feasibility,
the static ``O/C`` pre-filter, the execution-frequency filter, the
formula-3 cost-benefit test, the formula-4 nesting comparison, and (after
merging assigns shared tables) the memory-budget eviction.  The ledger
gives every candidate an append-only record of each verdict *with the
numbers behind it*, so "why was ``quan`` rejected?" has a queryable
answer instead of a silent disappearance.

A verdict's ``margin`` is signed distance from the decision boundary in
the units of that stage (positive = passed): ``1 - O/C`` for the
pre-filter, ``executions - min_executions`` for the frequency filter,
``gain`` for formula 3, ``g_self - g_inner`` for nesting.  The margin is
what regression tooling watches: a segment drifting toward a boundary is
visible before it flips.

The ledger is pure bookkeeping on pipeline (not measured-run) data; it is
always on and costs a few dict appends per candidate.  It pickles with
:class:`~repro.reuse.pipeline.PipelineResult`, serializes to JSON, and
renders as an aligned table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Verdict", "SegmentRecord", "DecisionLedger"]

# Stage names, in pipeline order (used for sorting and reports).  The
# "governor" stage is appended after a governed *run*: it records the
# online governor's runtime verdict (still profitable / disabled) and
# transition history next to the compile-time decisions.
STAGES = (
    "feasibility",
    "prefilter",
    "frequency",
    "formula3",
    "nesting",
    "merging",
    "budget",
    "selected",
    "governor",
)


@dataclass
class Verdict:
    """One stage's decision about one segment."""

    stage: str
    passed: bool
    margin: Optional[float] = None
    detail: dict = field(default_factory=dict)

    def describe(self) -> str:
        outcome = "pass" if self.passed else "REJECT"
        margin = "" if self.margin is None else f" margin={self.margin:+.3g}"
        detail = ""
        if self.detail:
            detail = " (" + ", ".join(
                f"{k}={_fmt(v)}" for k, v in sorted(self.detail.items())
            ) + ")"
        return f"{self.stage}: {outcome}{margin}{detail}"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclass
class SegmentRecord:
    """The full decision history of one candidate segment."""

    seg_id: int
    kind: str
    func_name: str
    verdicts: list[Verdict] = field(default_factory=list)

    @property
    def label(self) -> str:
        return f"{self.func_name}#{self.seg_id}"

    @property
    def selected(self) -> bool:
        return any(v.stage == "selected" and v.passed for v in self.verdicts)

    @property
    def rejection(self) -> Optional[Verdict]:
        """The verdict that killed this segment (None if selected)."""
        for verdict in self.verdicts:
            if not verdict.passed:
                return verdict
        return None

    def to_dict(self) -> dict:
        return {
            "seg_id": self.seg_id,
            "kind": self.kind,
            "func_name": self.func_name,
            "selected": self.selected,
            "verdicts": [
                {
                    "stage": v.stage,
                    "passed": v.passed,
                    "margin": v.margin,
                    "detail": v.detail,
                }
                for v in self.verdicts
            ],
        }


class DecisionLedger:
    """Append-only per-segment verdicts for one pipeline run."""

    def __init__(self) -> None:
        self.records: dict[int, SegmentRecord] = {}

    def open(self, segment) -> SegmentRecord:
        """Register a candidate segment (idempotent)."""
        record = self.records.get(segment.seg_id)
        if record is None:
            record = SegmentRecord(
                seg_id=segment.seg_id,
                kind=segment.kind,
                func_name=segment.func_name,
            )
            self.records[segment.seg_id] = record
        return record

    def record(
        self,
        seg_id: int,
        stage: str,
        passed: bool,
        margin: Optional[float] = None,
        **detail,
    ) -> None:
        self.records[seg_id].verdicts.append(
            Verdict(stage=stage, passed=passed, margin=margin, detail=detail)
        )

    # -- queries ---------------------------------------------------------------

    def rejections(self) -> list[tuple[SegmentRecord, Verdict]]:
        """(record, rejecting verdict) for every non-selected candidate,
        in segment order."""
        out = []
        for seg_id in sorted(self.records):
            record = self.records[seg_id]
            verdict = record.rejection
            if verdict is not None:
                out.append((record, verdict))
        return out

    def why(self, query) -> str:
        """Human-readable decision history for a segment.

        ``query`` is a segment id, a function name, or a
        ``function@anything`` string (the suffix is ignored — it names the
        workload in experiment logs).
        """
        matches = self._match(query)
        if not matches:
            known = ", ".join(sorted({r.func_name for r in self.records.values()}))
            return f"no candidate segment matches {query!r} (functions: {known})"
        lines = []
        for record in matches:
            status = "SELECTED" if record.selected else "rejected"
            rejection = record.rejection
            if rejection is not None:
                status = f"rejected at {rejection.stage}"
                if rejection.margin is not None:
                    status += f" (margin {rejection.margin:+.3g})"
            lines.append(f"{record.label} [{record.kind}]: {status}")
            for verdict in record.verdicts:
                lines.append(f"  {verdict.describe()}")
        return "\n".join(lines)

    def _match(self, query) -> list[SegmentRecord]:
        if isinstance(query, int):
            record = self.records.get(query)
            return [record] if record else []
        name = str(query).split("@", 1)[0]
        if name.isdigit():
            record = self.records.get(int(name))
            return [record] if record else []
        return [
            self.records[sid]
            for sid in sorted(self.records)
            if self.records[sid].func_name == name
        ]

    # -- output ----------------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "segments": [self.records[sid].to_dict() for sid in sorted(self.records)]
        }

    def render(self) -> str:
        """Aligned table: one row per candidate, rejecting stage + margin."""
        headers = ["Segment", "Kind", "Outcome", "Stage", "Margin", "Detail"]
        rows = []
        for seg_id in sorted(self.records):
            record = self.records[seg_id]
            rejection = record.rejection
            if record.selected:
                stage, margin, detail = "selected", None, {}
                for v in record.verdicts:
                    if v.stage == "formula3":
                        margin, detail = v.margin, v.detail
                outcome = "selected"
            elif rejection is not None:
                outcome = "rejected"
                stage = rejection.stage
                margin = rejection.margin
                detail = rejection.detail
            else:
                outcome, stage, margin, detail = "pending", "-", None, {}
            detail_text = ", ".join(
                f"{k}={_fmt(v)}" for k, v in sorted(detail.items())
            )
            rows.append(
                [
                    record.label,
                    record.kind,
                    outcome,
                    stage,
                    "" if margin is None else f"{margin:+.4g}",
                    detail_text,
                ]
            )
        widths = [len(h) for h in headers]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells):
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        out = [line(headers), line(["-" * w for w in widths])]
        out.extend(line(row) for row in rows)
        return "\n".join(out)
