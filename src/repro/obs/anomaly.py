"""Baseline-free drift and changepoint detection over perf history.

The committed-baseline gate (:mod:`repro.obs.perfdb`) answers "did this
commit move the numbers against a pinned reference".  This module
answers the question a fleet asks when no one curated a baseline: *does
the latest measurement look like the history of this configuration?*
It consumes the per-(workload, opt, variant) rows of the append-only
perf store and judges the newest cycles and hit-ratio numbers with
robust statistics:

* **EWMA** of the history is the expectation (recent runs weigh more,
  so slow legitimate trends track instead of alarming forever);
* **MAD** (median absolute deviation) scales the deviation into a
  robust z-score — one historical outlier cannot inflate the tolerance
  the way a standard deviation would;
* when the history is *exactly flat* — the common case for this
  deterministic simulator — MAD is zero and the z-score degenerates, so
  a relative-deviation threshold (``flat_tolerance_pct``) takes over;
* a **changepoint scan** (best mean-shift split of the series) dates
  the regression: "cycles stepped up at run 12", not just "today looks
  wrong".

Detection is direction-aware: more cycles or a lower hit ratio is a
*regression* (``Anomaly.regression`` is True, the CI gate exits 1);
movement in the good direction is still reported, as an improvement,
because an unexplained improvement is often a broken measurement.

Storage-only module: no facade or workload imports;
:mod:`repro.experiments.perf` does the measuring for
``repro perf check --anomaly``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import ConfigError
from .perfdb import baseline_key

__all__ = [
    "AnomalyPolicy",
    "Anomaly",
    "ewma",
    "median",
    "mad",
    "robust_zscore",
    "changepoint",
    "judge_cycles",
    "judge_hit_ratio",
    "detect_row_anomalies",
    "detect_store_anomalies",
]

# MAD -> standard-deviation-equivalent scale for normal data
_MAD_SCALE = 1.4826


@dataclass(frozen=True, kw_only=True)
class AnomalyPolicy:
    """Thresholds of the history-only gate."""

    # runs of history required before judging (younger keys are skipped)
    min_history: int = 4
    # EWMA smoothing: weight of the newest history point
    ewma_alpha: float = 0.3
    # robust z-score beyond which a noisy-history deviation is anomalous
    z_threshold: float = 3.5
    # relative deviation (%) that must also be exceeded on noisy history
    cycles_drift_pct: float = 5.0
    # relative deviation (%) tolerated when the history is exactly flat
    # (MAD == 0, the deterministic-simulator common case)
    flat_tolerance_pct: float = 0.5
    # absolute hit-ratio change that counts as drift
    hit_ratio_drift: float = 0.05
    # changepoint scan: minimum samples on each side of a split
    changepoint_min_len: int = 3

    def __post_init__(self) -> None:
        if self.min_history < 2:
            raise ConfigError(f"min_history must be >= 2, got {self.min_history}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.z_threshold <= 0:
            raise ConfigError(f"z_threshold must be > 0, got {self.z_threshold}")
        if self.cycles_drift_pct < 0:
            raise ConfigError(
                f"cycles_drift_pct must be >= 0, got {self.cycles_drift_pct}"
            )
        if self.flat_tolerance_pct < 0:
            raise ConfigError(
                f"flat_tolerance_pct must be >= 0, got {self.flat_tolerance_pct}"
            )
        if not 0.0 < self.hit_ratio_drift <= 1.0:
            raise ConfigError(
                f"hit_ratio_drift must be in (0, 1], got {self.hit_ratio_drift}"
            )
        if self.changepoint_min_len < 2:
            raise ConfigError(
                f"changepoint_min_len must be >= 2, got {self.changepoint_min_len}"
            )


@dataclass
class Anomaly:
    """One metric of one configuration that departed from its history."""

    key: str            # workload@opt@variant
    metric: str         # "cycles" or "hit_ratio[<segment>]"
    value: float        # the judged (latest) measurement
    expected: float     # EWMA of the history
    deviation: float    # value - expected (absolute units)
    deviation_pct: float
    score: Optional[float]  # robust z; None when the history was flat
    regression: bool    # True: the bad direction (gate-failing)
    changepoint_run: Optional[int] = None  # index where the shift started

    def describe(self) -> str:
        tag = "REGRESSION" if self.regression else "improvement"
        score = f" z={self.score:.1f}" if self.score is not None else " (flat history)"
        at = (
            f", shifted at run {self.changepoint_run}"
            if self.changepoint_run is not None
            else ""
        )
        return (
            f"{self.key} {self.metric}: {self.value:g} vs history "
            f"{self.expected:g} ({self.deviation_pct:+.2f}%{score}) "
            f"[{tag}{at}]"
        )


# -- robust statistics -------------------------------------------------------


def ewma(values: Sequence[float], alpha: float = 0.3) -> float:
    """Exponentially weighted moving average, oldest first."""
    if not values:
        raise ConfigError("ewma of an empty series")
    acc = float(values[0])
    for value in values[1:]:
        acc = alpha * value + (1.0 - alpha) * acc
    return acc


def median(values: Sequence[float]) -> float:
    if not values:
        raise ConfigError("median of an empty series")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation from the median."""
    center = median(values)
    return median([abs(v - center) for v in values])


def robust_zscore(value: float, history: Sequence[float]) -> Optional[float]:
    """MAD-scaled z-score of ``value`` against ``history``; None when the
    history has zero spread (judge those with a relative threshold)."""
    spread = mad(history)
    if spread == 0:
        return None
    return (value - median(history)) / (_MAD_SCALE * spread)


def changepoint(
    values: Sequence[float], min_len: int = 3
) -> Optional[tuple[int, float, float]]:
    """Best mean-shift split of a series.

    Returns ``(index, mean_before, mean_after)`` for the split
    maximizing the absolute mean shift, with at least ``min_len``
    samples on each side; None when the series is too short.  The
    caller decides whether the shift is significant."""
    n = len(values)
    if n < 2 * min_len:
        return None
    best: Optional[tuple[float, int, float, float]] = None
    prefix = 0.0
    total = float(sum(values))
    for i in range(1, n):
        prefix += values[i - 1]
        if i < min_len or n - i < min_len:
            continue
        mean_before = prefix / i
        mean_after = (total - prefix) / (n - i)
        shift = abs(mean_after - mean_before)
        if best is None or shift > best[0]:
            best = (shift, i, mean_before, mean_after)
    if best is None:
        return None
    _, index, mean_before, mean_after = best
    return index, mean_before, mean_after


# -- judges ------------------------------------------------------------------


def _dated(values: Sequence[float], policy: AnomalyPolicy) -> Optional[int]:
    """Index where the (history + latest) series shifted, if it did."""
    found = changepoint(values, policy.changepoint_min_len)
    return found[0] if found is not None else None


def judge_cycles(
    key: str,
    history: Sequence[float],
    latest: float,
    policy: Optional[AnomalyPolicy] = None,
) -> Optional[Anomaly]:
    """Judge a cycle measurement against its history (higher is worse).

    Flat history (MAD == 0): any relative deviation beyond
    ``flat_tolerance_pct`` is anomalous.  Noisy history: the robust
    z-score must exceed ``z_threshold`` *and* the relative deviation
    must exceed ``cycles_drift_pct``.  Too-short history: None."""
    policy = policy or AnomalyPolicy()
    if len(history) < policy.min_history:
        return None
    expected = ewma(history, policy.ewma_alpha)
    deviation = latest - expected
    deviation_pct = deviation / expected * 100.0 if expected else 0.0
    score = robust_zscore(latest, history)
    if score is None:
        anomalous = abs(deviation_pct) > policy.flat_tolerance_pct
    else:
        anomalous = (
            abs(score) > policy.z_threshold
            and abs(deviation_pct) > policy.cycles_drift_pct
        )
    if not anomalous:
        return None
    return Anomaly(
        key=key,
        metric="cycles",
        value=latest,
        expected=expected,
        deviation=deviation,
        deviation_pct=deviation_pct,
        score=score,
        regression=deviation > 0,
        changepoint_run=_dated(list(history) + [latest], policy),
    )


def judge_hit_ratio(
    key: str,
    segment: str,
    history: Sequence[float],
    latest: float,
    policy: Optional[AnomalyPolicy] = None,
) -> Optional[Anomaly]:
    """Judge a per-segment hit ratio (lower is worse; absolute units —
    a ratio dropping 0.60 -> 0.54 matters the same from any base)."""
    policy = policy or AnomalyPolicy()
    if len(history) < policy.min_history:
        return None
    expected = ewma(history, policy.ewma_alpha)
    deviation = latest - expected
    if abs(deviation) <= policy.hit_ratio_drift:
        return None
    return Anomaly(
        key=key,
        metric=f"hit_ratio[{segment}]",
        value=latest,
        expected=expected,
        deviation=deviation,
        deviation_pct=deviation / expected * 100.0 if expected else 0.0,
        score=robust_zscore(latest, history),
        regression=deviation < 0,
        changepoint_run=_dated(list(history) + [latest], policy),
    )


# -- perf-store entry points -------------------------------------------------


def detect_row_anomalies(
    history_rows: Sequence[dict],
    current: dict,
    policy: Optional[AnomalyPolicy] = None,
) -> list[Anomaly]:
    """Judge one measured row against that configuration's stored rows.

    ``history_rows`` must all belong to the row's (workload, opt,
    variant); the judged metrics are cycles and every per-segment hit
    ratio the current row carries."""
    policy = policy or AnomalyPolicy()
    key = baseline_key(current["workload"], current["opt"], current["variant"])
    anomalies: list[Anomaly] = []
    cycles_history = [r["cycles"] for r in history_rows if "cycles" in r]
    found = judge_cycles(key, cycles_history, current["cycles"], policy)
    if found is not None:
        anomalies.append(found)
    for segment, ratio in sorted(current.get("hit_ratios", {}).items()):
        series = [
            r["hit_ratios"][segment]
            for r in history_rows
            if segment in r.get("hit_ratios", {})
        ]
        found = judge_hit_ratio(key, segment, series, ratio, policy)
        if found is not None:
            anomalies.append(found)
    return anomalies


def detect_store_anomalies(
    db, workloads: Optional[Sequence[str]] = None,
    policy: Optional[AnomalyPolicy] = None,
) -> list[Anomaly]:
    """Judge the newest stored row of every configuration in a
    :class:`~repro.obs.perfdb.PerfDB` against its predecessors (no fresh
    measuring — the dashboard's view of the store)."""
    policy = policy or AnomalyPolicy()
    anomalies: list[Anomaly] = []
    keys = sorted(
        {
            (r["workload"], r["opt"], r["variant"])
            for r in db.rows()
            if "workload" in r and "opt" in r and "variant" in r
        }
    )
    for workload, opt, variant in keys:
        if workloads is not None and workload not in workloads:
            continue
        rows = db.rows(workload, opt, variant)
        if len(rows) < 2:
            continue
        anomalies.extend(detect_row_anomalies(rows[:-1], rows[-1], policy))
    return anomalies
