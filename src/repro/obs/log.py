"""Structured event log: leveled, rate-limited, ring-buffered JSONL.

The tracer (:mod:`repro.obs.tracer`) answers "where did the time go" for
one request; the event log answers "what happened, in order, across all
requests".  It is the zero-dependency analogue of a logging pipeline:

* **Records are plain dicts** with a monotone ``seq``, a ``ts_us`` wall
  timestamp, a ``level`` (``debug`` < ``info`` < ``warning`` <
  ``error``), a dotted event ``name`` (``service.request``,
  ``governor.transition``, ``perf.verdict``), and free-form ``args``.
* **Trace-correlated.**  :meth:`EventLog.emit` stamps the current
  tracer's ``trace_id`` and innermost span id on every record, so a
  line in the stream links back to the span tree that produced it
  (``GET /v1/trace/<id>``).
* **Ring-buffered.**  A bounded deque holds the most recent records;
  readers poll :meth:`EventLog.since` with the last ``seq`` they saw —
  the cursor survives ring eviction (you learn how many records you
  missed via ``dropped``).
* **Rate-limited per name.**  A token bucket per event name bounds how
  fast any one emitter can fill the ring; suppressed counts are
  attached to the next record that gets through
  (``rate_limited_dropped``), so bursts are visible without flooding.
* **Disabled logging is free.**  Like the tracer, the process-local
  default is ``None`` and every emitter guards with
  ``get_event_log()``; the no-observer-effect differentials pin that
  un-logged runs stay bit-identical.

Waiters (the ``/v1/events`` long-poll) block on a condition variable
that :meth:`emit` notifies, so a tail sees records with no polling lag.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Callable, Optional

from .tracer import get_tracer

__all__ = [
    "EventLog",
    "LEVELS",
    "get_event_log",
    "set_event_log",
]

LEVELS = ("debug", "info", "warning", "error")
_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}


class EventLog:
    """Bounded in-memory structured log with cursor reads.

    Args:
        capacity: ring size (oldest records are evicted past this).
        rate_limit_per_sec: per-event-name sustained emit rate; ``0``
            disables rate limiting.
        rate_limit_burst: per-name token-bucket burst size.
        clock: injectable monotonic clock (rate limiting).
        wall: injectable epoch clock (timestamps).
    """

    def __init__(
        self,
        capacity: int = 2048,
        rate_limit_per_sec: float = 200.0,
        rate_limit_burst: int = 50,
        clock: Callable[[], float] = time.monotonic,
        wall: Callable[[], float] = time.time,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._records: deque[dict] = deque(maxlen=capacity)
        self._cond = threading.Condition()
        self._next_seq = 1
        self._clock = clock
        self._wall = wall
        self._rate = float(rate_limit_per_sec)
        self._burst = max(1, int(rate_limit_burst))
        # name -> [tokens, last_refill, suppressed_count]
        self._buckets: dict[str, list] = {}
        self.emitted = 0
        self.suppressed = 0

    # -- writing ---------------------------------------------------------------

    def emit(
        self,
        name: str,
        level: str = "info",
        trace_id: Optional[str] = None,
        span_id: Optional[int] = None,
        **args,
    ) -> Optional[dict]:
        """Append one record; returns it, or None when rate-limited.

        The current thread's tracer supplies ``trace_id``/``span_id``
        when not given explicitly (callers off the request thread — the
        service's asyncio loop — pass them explicitly instead).
        """
        if level not in _LEVEL_RANK:
            raise ValueError(f"unknown level {level!r}, expected one of {LEVELS}")
        if trace_id is None and span_id is None:
            tracer = get_tracer()
            if tracer.enabled:
                trace_id = tracer.trace_id
                span_id = tracer.current_span_id()
        with self._cond:
            dropped = self._admit(name)
            if dropped is None:
                self.suppressed += 1
                return None
            record = {
                "seq": self._next_seq,
                "ts_us": int(self._wall() * 1_000_000),
                "level": level,
                "name": name,
                "args": dict(args),
            }
            if trace_id is not None:
                record["trace_id"] = trace_id
            if span_id is not None:
                record["span_id"] = span_id
            if dropped:
                record["rate_limited_dropped"] = dropped
            self._next_seq += 1
            self._records.append(record)
            self.emitted += 1
            self._cond.notify_all()
            return record

    def _admit(self, name: str) -> Optional[int]:
        """Token-bucket admission; returns suppressed-count to attach, or
        None when this record must be dropped.  Caller holds the lock."""
        if self._rate <= 0:
            return 0
        now = self._clock()
        bucket = self._buckets.get(name)
        if bucket is None:
            self._buckets[name] = [float(self._burst) - 1.0, now, 0]
            return 0
        tokens, last, suppressed = bucket
        tokens = min(float(self._burst), tokens + (now - last) * self._rate)
        if tokens < 1.0:
            bucket[0] = tokens
            bucket[1] = now
            bucket[2] = suppressed + 1
            return None
        bucket[0] = tokens - 1.0
        bucket[1] = now
        bucket[2] = 0
        return suppressed

    # -- reading ---------------------------------------------------------------

    def since(
        self,
        seq: int = 0,
        level: str = "debug",
        limit: int = 500,
    ) -> dict:
        """Records with ``seq`` greater than the cursor, oldest first.

        Returns ``{"records", "next_seq", "dropped"}`` where ``dropped``
        counts records the ring evicted before the reader caught up and
        ``next_seq`` is the cursor to pass on the next call.
        """
        rank = _LEVEL_RANK.get(level)
        if rank is None:
            raise ValueError(f"unknown level {level!r}, expected one of {LEVELS}")
        with self._cond:
            records = [
                dict(r)
                for r in self._records
                if r["seq"] > seq and _LEVEL_RANK[r["level"]] >= rank
            ][: max(0, limit)]
            oldest = self._records[0]["seq"] if self._records else self._next_seq
            dropped = max(0, oldest - seq - 1) if seq else 0
            next_seq = records[-1]["seq"] if records else max(seq, self._next_seq - 1)
            return {"records": records, "next_seq": next_seq, "dropped": dropped}

    def wait_for(self, seq: int, timeout: float) -> bool:
        """Block until a record newer than ``seq`` exists (True) or the
        timeout elapses (False)."""
        deadline = self._clock() + timeout
        with self._cond:
            while self._next_seq - 1 <= seq:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def snapshot(self) -> list[dict]:
        """All buffered records, oldest first."""
        with self._cond:
            return [dict(r) for r in self._records]

    def to_jsonl(self) -> str:
        """The buffered records as one JSON document per line."""
        return "\n".join(
            json.dumps(record, sort_keys=True) for record in self.snapshot()
        )

    def clear(self) -> None:
        with self._cond:
            self._records.clear()
            self._buckets.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EventLog {len(self._records)}/{self.capacity}"
            f" emitted={self.emitted} suppressed={self.suppressed}>"
        )


# -- the process-local event log -----------------------------------------------
#
# None by default: emitters guard with ``log = get_event_log()`` /
# ``if log is not None``, so un-observed runs never pay for logging
# (the same contract the tracer and metrics registry keep).

_event_log: Optional[EventLog] = None


def get_event_log() -> Optional[EventLog]:
    """The process-local event log, or None when logging is off."""
    return _event_log


def set_event_log(log: Optional[EventLog]) -> Optional[EventLog]:
    """Install ``log`` as the process-local event log; returns the old one."""
    global _event_log
    previous = _event_log
    _event_log = log
    return previous
