"""Shared text renderers for telemetry series (sparklines and trends).

One home for the glyph-based series renderers that both the experiment
reports (:mod:`repro.experiments.report`) and the ``repro dash``
dashboard embed: a monospace sparkline, the per-table hit-ratio series,
and the perf-store cycle trend.  Pure string functions — no I/O, no
imports from the runtime — so the dashboard renderer stays golden-file
deterministic.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = [
    "SPARK_BLOCKS",
    "sparkline",
    "render_event_line",
    "render_hit_ratio_series",
    "render_perf_history",
    "render_service_bench",
    "render_session_latency",
    "render_slowest_requests",
    "render_table",
    "render_trace_tree",
]

SPARK_BLOCKS = " .:-=+*#%@"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """One glyph per value, darker = higher.

    ``lo``/``hi`` pin the scale (ratios want 0..1); left as None they
    come from the series itself.  Two guarded edge cases: an empty
    series renders as the empty string, and a zero-range series (all
    samples equal, or a degenerate pinned scale) renders flat at
    mid-scale instead of dividing by the zero range.
    """
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    top = len(SPARK_BLOCKS) - 1
    if span <= 0:
        return SPARK_BLOCKS[top // 2] * len(values)
    return "".join(
        SPARK_BLOCKS[min(top, max(0, int((v - lo) / span * top + 0.5)))]
        for v in values
    )


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Aligned monospace table (the layout used by every text report)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def render_hit_ratio_series(table_stats: dict) -> str:
    """The sampled hit-ratio time series of each table, as sparklines.

    ``table_stats`` maps segment id -> an object with a
    ``hit_ratio_series()`` method (``TableStats`` or a stand-in).
    """
    lines = ["Hit-ratio over time (sampled; one char per sample)"]
    for seg_id in sorted(table_stats):
        series = table_stats[seg_id].hit_ratio_series()
        if not series:
            lines.append(f"  segment {seg_id}: (no samples)")
            continue
        spark = sparkline([ratio for _, ratio in series], lo=0.0, hi=1.0)
        final = series[-1][1]
        lines.append(f"  segment {seg_id}: |{spark}| final {final * 100:.1f}%")
    return "\n".join(lines)


def _fmt_seconds(value: float) -> str:
    return f"{value * 1000:.2f}ms" if value < 1.0 else f"{value:.2f}s"


def render_session_latency(snapshot: dict) -> str:
    """p50/p90/p99 run latency from the ``repro_session_run_seconds``
    histogram in a registry snapshot (empty string when absent).

    Quantiles come from :func:`repro.obs.metrics.histogram_quantiles` —
    bucket-interpolated, so they are estimates bounded by the histogram's
    bucket layout, exactly like a PromQL ``histogram_quantile``.
    """
    from .metrics import histogram_quantiles

    family = snapshot.get("families", {}).get("repro_session_run_seconds")
    samples = family.get("samples", ()) if family else ()
    if not samples:
        return ""
    lines = ["Session run latency (wall-clock, bucket-interpolated)"]
    for sample in samples:
        qs = histogram_quantiles(sample, (0.5, 0.9, 0.99))
        label = ",".join(f"{k}={v}" for k, v in sorted(sample["labels"].items()))
        where = f"{label}: " if label else ""
        lines.append(
            f"  {where}runs {sample['count']}  "
            f"p50 {_fmt_seconds(qs[0.5])}  p90 {_fmt_seconds(qs[0.9])}  "
            f"p99 {_fmt_seconds(qs[0.99])}  total {_fmt_seconds(sample['sum'])}"
        )
    return "\n".join(lines)


def render_service_bench(report: dict) -> str:
    """The load-generator report (``BENCH_service.json`` shape) as one
    monospace block: totals, exact run-latency percentiles, per-workload
    p50s, and the verification verdict.  Empty string for a report with
    no requests (so the dashboard block hides itself)."""
    totals = report.get("totals", {})
    if not totals.get("requests"):
        return ""
    lines = [
        "Service load test (repro loadgen)",
        f"  sessions {totals.get('sessions', 0)}  "
        f"requests {totals.get('requests', 0)}  "
        f"runs {totals.get('runs', 0)}  "
        f"errors {totals.get('errors', 0)}",
        f"  throughput {totals.get('throughput_rps', 0.0):.1f} req/s  "
        f"wall {totals.get('wall_seconds', 0.0):.2f}s  "
        f"429-retries {totals.get('retries_backpressure', 0)}  "
        f"evictions {totals.get('retries_evicted', 0)}",
    ]
    for kind in ("compile", "run"):
        latency = report.get("latency", {}).get(kind, {})
        if latency.get("count"):
            lines.append(
                f"  {kind}: p50 {latency['p50_ms']:.1f}ms  "
                f"p90 {latency['p90_ms']:.1f}ms  "
                f"p99 {latency['p99_ms']:.1f}ms  "
                f"(n={latency['count']})"
            )
    per_workload = report.get("per_workload", {})
    if per_workload:
        body = [
            [
                name,
                str(stats.get("count", 0)),
                f"{stats.get('p50_ms', 0.0):.1f}",
                f"{stats.get('p90_ms', 0.0):.1f}",
                f"{stats.get('p99_ms', 0.0):.1f}",
            ]
            for name, stats in sorted(per_workload.items())
        ]
        table = render_table(
            ["workload", "runs", "p50 ms", "p90 ms", "p99 ms"], body
        )
        lines.extend("  " + row for row in table.splitlines())
    verification = report.get("verification", {})
    lines.append(
        f"  verified {verification.get('checked', 0)} outputs, "
        f"{verification.get('mismatches', 0)} mismatches "
        f"vs direct facade runs"
    )
    return "\n".join(lines)


def _fmt_span_args(args: dict, limit: int = 5) -> str:
    """The first few scalar span args as ``key=value`` pairs; nested
    dicts (table/governor/ledger attachments) collapse to their size so
    a deep tree still renders one span per line."""
    parts = []
    for key in sorted(args):
        if len(parts) >= limit:
            parts.append("…")
            break
        value = args[key]
        if isinstance(value, dict):
            parts.append(f"{key}[{len(value)}]")
        elif isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def render_trace_tree(record: dict) -> str:
    """One stored trace as an indented monospace tree.

    ``record`` is either a :class:`repro.service.trace.TraceStore`
    record (``{"trace_id", "method", "path", ..., "tree": {...}}``) or a
    bare :func:`repro.obs.tracer.assemble_tree` result.  Each span
    renders as one line — name, duration, category, selected args —
    with its instant events nested as ``· name`` lines.  Orphan spans
    (reassembly failures) are flagged at the bottom because a non-empty
    orphan list is a tracing bug.
    """
    tree = record.get("tree", record)
    head = [f"trace {tree.get('trace_id') or record.get('trace_id') or '-'}"]
    if record.get("method"):
        head.append(f"{record['method']} {record.get('path', '?')}")
    if record.get("workload"):
        head.append(f"workload={record['workload']}")
    if record.get("tenant"):
        head.append(f"tenant={record['tenant']}")
    if record.get("status") is not None:
        head.append(f"status={record['status']}")
    if record.get("duration_ms") is not None:
        head.append(f"{record['duration_ms']:.1f}ms")
    elif record.get("server_ms") is not None:
        head.append(f"server {record['server_ms']:.1f}ms")
    head.append(
        f"({tree.get('span_count', 0)} spans, {tree.get('event_count', 0)} events)"
    )
    lines = ["  ".join(head)]

    def walk(node: dict, depth: int) -> None:
        pad = "  " * depth
        args = _fmt_span_args(node.get("args", {}))
        lines.append(
            f"{pad}{node.get('name', '?')}  {node.get('dur_us', 0) / 1000:.2f}ms"
            f"  [{node.get('category', '-')}]" + (f"  {args}" if args else "")
        )
        for event in node.get("events", ()):
            eargs = _fmt_span_args(event.get("args", {}))
            lines.append(
                f"{pad}  · {event.get('name', '?')}"
                + (f"  {eargs}" if eargs else "")
            )
        for child in node.get("children", ()):
            walk(child, depth + 1)

    for root in tree.get("roots", ()):
        walk(root, 1)
    orphans = tree.get("orphans", ())
    if orphans:
        names = ", ".join(o.get("name", "?") for o in orphans)
        lines.append(f"  !! {len(orphans)} orphan span(s): {names}")
    return "\n".join(lines)


def render_event_line(record: dict) -> str:
    """One structured-log record (:class:`repro.obs.log.EventLog` shape)
    as a single ``repro tail`` text line: UTC time, level, name, args,
    and the trace id suffix when the record is stamped."""
    import datetime

    ts = datetime.datetime.fromtimestamp(
        record.get("ts_us", 0) / 1e6, tz=datetime.timezone.utc
    )
    level = record.get("level", "info").upper()
    args = _fmt_span_args(record.get("args", {}), limit=8)
    line = (
        f"{ts.strftime('%H:%M:%S')}.{ts.microsecond // 1000:03d} "
        f"{level:7} {record.get('name', '?')}"
    )
    if args:
        line += f"  {args}"
    trace_id = record.get("trace_id")
    if trace_id:
        line += f"  trace={trace_id[:16]}"
    if record.get("rate_limited_dropped"):
        line += f"  (+{record['rate_limited_dropped']} suppressed)"
    return line


def render_slowest_requests(tracing: dict) -> str:
    """The loadgen report's ``tracing`` section — the slowest requests
    joined to their assembled span trees — as one monospace block
    (empty string when nothing was traced), the dashboard's
    "explain the slowest request" panel."""
    slowest = tracing.get("slowest", ())
    if not slowest:
        return ""
    lines = [
        f"Slowest requests ({tracing.get('traced_runs', 0)} traced runs, "
        f"{tracing.get('orphan_spans', 0)} orphan spans)"
    ]
    for entry in slowest:
        lines.append("")
        lines.extend("  " + row for row in render_trace_tree(entry).splitlines())
    return "\n".join(lines)


def render_perf_history(rows: Sequence[dict]) -> str:
    """The cycle trend of one perf-store configuration, newest last.

    ``rows`` are :class:`~repro.obs.perfdb.PerfDB` rows of a single
    (workload, opt, variant); the sparkline is min-max normalized over
    the shown window (a flat line means no change)."""
    if not rows:
        return "Perf history: no recorded runs"
    key = f"{rows[0].get('workload')}@{rows[0].get('opt')}@{rows[0].get('variant')}"
    cycles = [row.get("cycles", 0) for row in rows]
    body = [
        [
            str(i),
            row.get("git", "-"),
            str(row.get("code_version", "-")),
            str(row.get("cycles", "-")),
            f"{row.get('output_checksum', 0):#010x}",
        ]
        for i, row in enumerate(rows)
    ]
    return (
        f"Perf history for {key} ({len(rows)} runs)\n"
        + render_table(["Run", "Git", "Code", "Cycles", "Checksum"], body)
        + f"\ntrend |{sparkline(cycles)}| latest {cycles[-1]}"
    )
