"""Persistent performance store and regression gate.

An append-only JSONL database under ``.repro_perf/`` records one row per
measured (workload, opt level, variant) run: cycles, output checksum,
per-segment attribution summary, hit ratios, governor transition counts,
plus the code version and git revision that produced them.  Rows are
plain dicts so the file is greppable and diffable; nothing is ever
rewritten in place.

The regression gate compares a set of current rows against a committed
baseline (``PERF_BASELINE.json``): a run regresses when its cycles
exceed the baseline by more than the row's tolerance, or when its output
checksum changes at all (correctness beats performance).  The simulator
is deterministic, so the default tolerance is zero.

This module is storage and comparison only — it does not import the
facade or the workload registry; :mod:`repro.experiments.perf` does the
measuring.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

__all__ = [
    "PerfDB",
    "Regression",
    "baseline_key",
    "check_rows",
    "load_baseline",
    "write_baseline",
    "git_revision",
]

PERF_DIR = ".repro_perf"
RUNS_FILE = "runs.jsonl"


def baseline_key(workload: str, opt: str, variant: str) -> str:
    """The stable identity of a measured configuration."""
    return f"{workload}@{opt}@{variant}"


def git_revision(repo_dir: Optional[str] = None, timeout: float = 10.0) -> str:
    """Short git revision of the working tree, or ``"unknown"`` outside a
    repository (the store must work in exported tarballs too).

    ``repo_dir`` pins the lookup to a specific working tree (defaults to
    the process cwd — never an implicit parent search); ``timeout``
    bounds the subprocess so a hung git (e.g. stale lock on a network
    filesystem) can't stall measurement."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_dir or os.getcwd(),
            capture_output=True,
            text=True,
            timeout=timeout,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


class PerfDB:
    """Append-only run store: one JSON object per line in
    ``<root>/runs.jsonl``."""

    def __init__(self, root: str = PERF_DIR) -> None:
        self.root = Path(root)

    @property
    def path(self) -> Path:
        return self.root / RUNS_FILE

    def append(self, row: dict) -> dict:
        """Persist one run row (adds a timestamp if missing); returns it."""
        row = dict(row)
        row.setdefault("ts", time.time())
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(json.dumps(row, sort_keys=True) + "\n")
        return row

    def rows(
        self,
        workload: Optional[str] = None,
        opt: Optional[str] = None,
        variant: Optional[str] = None,
    ) -> list[dict]:
        """All stored rows, oldest first, optionally filtered."""
        if not self.path.exists():
            return []
        out = []
        with open(self.path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                if workload is not None and row.get("workload") != workload:
                    continue
                if opt is not None and row.get("opt") != opt:
                    continue
                if variant is not None and row.get("variant") != variant:
                    continue
                out.append(row)
        return out

    def latest(
        self,
        workload: Optional[str] = None,
        opt: Optional[str] = None,
        variant: Optional[str] = None,
    ) -> Optional[dict]:
        rows = self.rows(workload, opt, variant)
        return rows[-1] if rows else None

    def history(self, workload: str, opt: str, variant: str) -> list[int]:
        """The cycle trend of one configuration, oldest first."""
        return [
            row["cycles"]
            for row in self.rows(workload, opt, variant)
            if "cycles" in row
        ]


# -- baseline compare --------------------------------------------------------


@dataclass
class Regression:
    """One baseline comparison that failed."""

    key: str
    kind: str  # "cycles" | "checksum" | "missing"
    measured: object
    expected: object
    limit: Optional[float] = None

    def describe(self) -> str:
        if self.kind == "cycles":
            return (
                f"{self.key}: {self.measured} cycles exceeds baseline "
                f"{self.expected} (limit {self.limit:.0f})"
            )
        if self.kind == "checksum":
            return (
                f"{self.key}: output checksum {self.measured:#010x} != "
                f"baseline {self.expected:#010x}"
            )
        return f"{self.key}: no measurement for baseline row"


def load_baseline(path: str) -> dict:
    """Read a baseline file; returns its dict form
    ``{"default_tolerance_pct": float, "rows": {key: {...}}}``."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    data.setdefault("default_tolerance_pct", 0.0)
    data.setdefault("rows", {})
    return data


def write_baseline(path: str, rows: Iterable[dict], tolerance_pct: float = 0.0) -> dict:
    """Write (or refresh) a baseline from measured run rows."""
    baseline = {
        "default_tolerance_pct": tolerance_pct,
        "rows": {
            baseline_key(r["workload"], r["opt"], r["variant"]): {
                "cycles": r["cycles"],
                "output_checksum": r["output_checksum"],
            }
            for r in rows
        },
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=1, sort_keys=True)
        f.write("\n")
    return baseline


def check_rows(
    current: Iterable[dict], baseline: dict, require_all: bool = False
) -> list[Regression]:
    """Compare measured rows against a baseline.

    By default only baseline rows whose key was measured are judged (the
    gate may run on a workload subset); with ``require_all`` an
    unmeasured baseline row is itself a failure.  A regression is cycles
    above ``baseline * (1 + tolerance_pct/100)`` or any checksum change.
    """
    default_tol = float(baseline.get("default_tolerance_pct", 0.0))
    measured = {
        baseline_key(r["workload"], r["opt"], r["variant"]): r for r in current
    }
    failures: list[Regression] = []
    for key, expected in sorted(baseline.get("rows", {}).items()):
        row = measured.get(key)
        if row is None:
            if require_all:
                failures.append(
                    Regression(
                        key=key,
                        kind="missing",
                        measured=None,
                        expected=expected.get("cycles"),
                    )
                )
            continue
        if (
            "output_checksum" in expected
            and row.get("output_checksum") != expected["output_checksum"]
        ):
            failures.append(
                Regression(
                    key=key,
                    kind="checksum",
                    measured=row.get("output_checksum"),
                    expected=expected["output_checksum"],
                )
            )
            continue
        tol = float(expected.get("tolerance_pct", default_tol))
        limit = expected["cycles"] * (1.0 + tol / 100.0)
        if row["cycles"] > limit:
            failures.append(
                Regression(
                    key=key,
                    kind="cycles",
                    measured=row["cycles"],
                    expected=expected["cycles"],
                    limit=limit,
                )
            )
    return failures
