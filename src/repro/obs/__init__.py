"""Observability: structured tracing, decision ledger, trace exporters.

Zero-dependency and off by default.  Three pillars:

* :class:`Tracer` (:mod:`repro.obs.tracer`) — process-local nested spans
  with wall-clock and simulated-cycle attribution, pool-safe via
  serialize/absorb; enabled explicitly or with ``REPRO_TRACE``.
* :class:`DecisionLedger` (:mod:`repro.obs.ledger`) — per-candidate
  verdicts from every reuse-pipeline stage, with the numbers and margins
  behind each decision.
* Exporters (:mod:`repro.obs.export`) — JSONL and Chrome
  ``chrome://tracing`` trace-event formats.
* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — live Counter /
  Gauge / Histogram families with OpenMetrics exposition and an opt-in
  HTTP endpoint; published by the runtime only when installed.
* :class:`EventLog` (:mod:`repro.obs.log`) — leveled, rate-limited,
  ring-buffered structured JSONL records with trace/span ids stamped on
  every record; ``None`` by default so un-logged runs pay nothing.
* :mod:`repro.obs.anomaly` — baseline-free EWMA/MAD drift and
  changepoint detection over the perf store's history.
* :mod:`repro.obs.dash` — the deterministic static-HTML dashboard
  renderer behind ``repro dash`` (series glyphs shared via
  :mod:`repro.obs.render`).

Runtime reuse telemetry (eviction counts, occupancy high-water marks,
hit-ratio time series) lives with the data structures that produce it in
:mod:`repro.runtime.hashtable` and is surfaced through
``Machine.metrics()`` and the ``repro stats`` CLI.
"""

from .ledger import DecisionLedger, SegmentRecord, Verdict
from .tracer import (
    Span,
    Tracer,
    assemble_tree,
    format_traceparent,
    get_tracer,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    set_tracer,
)
from .log import EventLog, get_event_log, set_event_log
from .export import to_chrome, to_jsonl, write_chrome_trace, write_jsonl
from .profiler import (
    CycleProfile,
    CycleProfiler,
    ProfileNode,
    SegmentAttribution,
    ledger_costs,
)
from .perfdb import PerfDB, Regression, baseline_key, check_rows, load_baseline, write_baseline
from .metrics import (
    ExpositionServer,
    MetricsRegistry,
    get_registry,
    parse_openmetrics,
    render_openmetrics,
    set_registry,
)
from .anomaly import (
    Anomaly,
    AnomalyPolicy,
    detect_row_anomalies,
    detect_store_anomalies,
)
from .render import render_hit_ratio_series, render_perf_history, sparkline
from .dash import DashData, WorkloadPanel, render_dashboard

__all__ = [
    "DecisionLedger",
    "SegmentRecord",
    "Verdict",
    "Span",
    "Tracer",
    "assemble_tree",
    "format_traceparent",
    "get_tracer",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "set_tracer",
    "EventLog",
    "get_event_log",
    "set_event_log",
    "to_chrome",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "CycleProfile",
    "CycleProfiler",
    "ProfileNode",
    "SegmentAttribution",
    "ledger_costs",
    "PerfDB",
    "Regression",
    "baseline_key",
    "check_rows",
    "load_baseline",
    "write_baseline",
    "ExpositionServer",
    "MetricsRegistry",
    "get_registry",
    "parse_openmetrics",
    "render_openmetrics",
    "set_registry",
    "Anomaly",
    "AnomalyPolicy",
    "detect_row_anomalies",
    "detect_store_anomalies",
    "render_hit_ratio_series",
    "render_perf_history",
    "sparkline",
    "DashData",
    "WorkloadPanel",
    "render_dashboard",
]
