"""Trace exporters: JSONL and Chrome ``chrome://tracing`` formats.

Both exporters are deterministic functions of the tracer's recorded data
(stable key order, no environment reads), so tests can golden-file their
output byte-for-byte given a tracer with injected clocks.

* **JSONL** — one JSON object per line, spans first (in start order)
  then events, each tagged with ``"type"``; the format ``jq`` and
  ad-hoc scripts want.
* **Chrome trace-event** — a ``{"traceEvents": [...]}`` document of
  complete (``"ph": "X"``) events for spans and instant (``"ph": "i"``)
  events, loadable in ``chrome://tracing`` and Perfetto.
"""

from __future__ import annotations

import json

from .tracer import Tracer

__all__ = [
    "to_jsonl",
    "to_chrome",
    "write_jsonl",
    "write_chrome_trace",
]


def _dumps(doc: dict) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def to_jsonl(tracer: Tracer) -> str:
    """The trace as JSON-lines text (spans, then events)."""
    lines = []
    for span in tracer.spans:
        doc = span.to_dict()
        doc["type"] = "span"
        lines.append(_dumps(doc))
    for event in tracer.events:
        doc = dict(event)
        doc["type"] = "event"
        lines.append(_dumps(doc))
    return "\n".join(lines) + ("\n" if lines else "")


def to_chrome(tracer: Tracer, process_name: str = "repro") -> dict:
    """The trace as a Chrome trace-event document (a plain dict)."""
    trace_events: list[dict] = []
    pids = sorted({s.pid for s in tracer.spans} | {e["pid"] for e in tracer.events})
    for pid in pids:
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        )
    for span in tracer.spans:
        trace_events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start_us,
                "dur": span.dur_us,
                "pid": span.pid,
                "tid": 0,
                "args": dict(span.args, span_id=span.span_id),
            }
        )
    for event in tracer.events:
        trace_events.append(
            {
                "name": event["name"],
                "cat": event["category"],
                "ph": "i",
                "s": "p",  # process-scoped instant
                "ts": event["ts_us"],
                "pid": event["pid"],
                "tid": 0,
                "args": dict(event["args"]),
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_jsonl(tracer: Tracer, path) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(to_jsonl(tracer))


def write_chrome_trace(tracer: Tracer, path) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(json.dumps(to_chrome(tracer), sort_keys=True, indent=1))
        f.write("\n")
