"""repro — reproduction of "A Compiler Scheme for Reusing Intermediate
Computation Results" (Yonghua Ding and Zhiyuan Li, CGO 2004).

The package implements the paper's profile-guided, software-only
computation-reuse compiler scheme end to end, on a self-contained stack:

* :mod:`repro.minic` — the mini-C frontend the scheme operates on;
* :mod:`repro.ir` / :mod:`repro.analysis` — CFGs, call graph, def-use
  chains, pointer analysis, liveness/upward-exposure, MOD/REF, coverage;
* :mod:`repro.opt` — the -O3 optimizer pipeline;
* :mod:`repro.runtime` — the cycle/energy cost-model interpreter standing
  in for the paper's iPAQ (StrongARM SA-1110 @ 206 MHz) and the reuse
  hash tables;
* :mod:`repro.profiling` — frequency and value-set profilers;
* :mod:`repro.reuse` — the paper's contribution: cost-benefit analysis,
  nesting-graph selection, specialization, table merging, and the
  source-to-source transformation;
* :mod:`repro.workloads` — the seven benchmark programs (+ quan
  variants) with synthetic input generators;
* :mod:`repro.experiments` — regenerates every table and figure.

Quickstart — the stable facade (:mod:`repro.api`)::

    import repro

    program = repro.compile(source)        # reuse pipeline, lazy profiling
    result = program.run(inputs)
    print(result.cycles, result.output_checksum)

    options = repro.CompileOptions(reuse=False)
    baseline = repro.compile(source, options).run(inputs)
    print(result.speedup_vs(baseline))

The lower layers (``ReusePipeline``, ``Machine``, ``compile_program``)
remain importable for tooling that needs the pieces, but
:func:`repro.compile` / :class:`repro.Session` are the supported entry
points.
"""

from .api import (
    CompileOptions,
    CompiledProgram,
    RunOptions,
    RunResult,
    Session,
    compile,
    parse_input_literal,
    parse_input_stream,
)
from .errors import (
    AnalysisError,
    ConfigError,
    InterpError,
    LexError,
    ParseError,
    ReproError,
    SemanticError,
    TransformError,
)
from .minic import format_program, frontend, parse_program
from .reuse import PipelineConfig, PipelineResult, ReusePipeline
from .runtime import Machine, Metrics, ReuseTable, compile_program, run_source
from .runtime.governor import GovernorPolicy
from .workloads import ALL_WORKLOADS, PRIMARY_WORKLOADS, Workload, get_workload

__version__ = "1.0.0"

__all__ = [
    "compile",
    "CompileOptions",
    "RunOptions",
    "CompiledProgram",
    "RunResult",
    "Session",
    "parse_input_literal",
    "parse_input_stream",
    "GovernorPolicy",
    "ReproError",
    "ConfigError",
    "LexError",
    "ParseError",
    "SemanticError",
    "InterpError",
    "AnalysisError",
    "TransformError",
    "frontend",
    "parse_program",
    "format_program",
    "ReusePipeline",
    "PipelineConfig",
    "PipelineResult",
    "Machine",
    "Metrics",
    "ReuseTable",
    "compile_program",
    "run_source",
    "Workload",
    "get_workload",
    "ALL_WORKLOADS",
    "PRIMARY_WORKLOADS",
    "__version__",
]
