"""repro — reproduction of "A Compiler Scheme for Reusing Intermediate
Computation Results" (Yonghua Ding and Zhiyuan Li, CGO 2004).

The package implements the paper's profile-guided, software-only
computation-reuse compiler scheme end to end, on a self-contained stack:

* :mod:`repro.minic` — the mini-C frontend the scheme operates on;
* :mod:`repro.ir` / :mod:`repro.analysis` — CFGs, call graph, def-use
  chains, pointer analysis, liveness/upward-exposure, MOD/REF, coverage;
* :mod:`repro.opt` — the -O3 optimizer pipeline;
* :mod:`repro.runtime` — the cycle/energy cost-model interpreter standing
  in for the paper's iPAQ (StrongARM SA-1110 @ 206 MHz) and the reuse
  hash tables;
* :mod:`repro.profiling` — frequency and value-set profilers;
* :mod:`repro.reuse` — the paper's contribution: cost-benefit analysis,
  nesting-graph selection, specialization, table merging, and the
  source-to-source transformation;
* :mod:`repro.workloads` — the seven benchmark programs (+ quan
  variants) with synthetic input generators;
* :mod:`repro.experiments` — regenerates every table and figure.

Quickstart::

    from repro import ReusePipeline, PipelineConfig, Machine, compile_program
    from repro.minic import frontend

    result = ReusePipeline(source).run(inputs)
    machine = Machine("O0")
    machine.set_inputs(inputs)
    for seg_id, table in result.build_tables().items():
        machine.install_table(seg_id, table)
    compile_program(result.program, machine).run("main")
    print(machine.metrics())
"""

from .errors import (
    AnalysisError,
    InterpError,
    LexError,
    ParseError,
    ReproError,
    SemanticError,
    TransformError,
)
from .minic import format_program, frontend, parse_program
from .reuse import PipelineConfig, PipelineResult, ReusePipeline
from .runtime import Machine, Metrics, ReuseTable, compile_program, run_source
from .workloads import ALL_WORKLOADS, PRIMARY_WORKLOADS, Workload, get_workload

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "LexError",
    "ParseError",
    "SemanticError",
    "InterpError",
    "AnalysisError",
    "TransformError",
    "frontend",
    "parse_program",
    "format_program",
    "ReusePipeline",
    "PipelineConfig",
    "PipelineResult",
    "Machine",
    "Metrics",
    "ReuseTable",
    "compile_program",
    "run_source",
    "Workload",
    "get_workload",
    "ALL_WORKLOADS",
    "PRIMARY_WORKLOADS",
    "__version__",
]
