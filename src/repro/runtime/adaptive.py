"""Adaptive reuse tables: runtime deactivation of unprofitable probing.

A second extension beyond the paper.  The scheme's Achilles heel is an
input whose value locality differs from the profiled run: the transformed
program then pays probe+commit overhead on (almost) every execution and
can run *slower* than the original.  The related hardware work (Connors &
Hwu's compiler-directed reuse) solves this with dynamic activation; we do
the software equivalent:

the table monitors its hit ratio over windows of probes, and when the
ratio stays below the break-even threshold ``O/C`` (computed by the
compiler and baked into the table), probing switches off — a probe then
costs a single flag test.  Periodic re-activation windows let the table
recover if the input's locality returns.

Wrapped around :class:`~repro.runtime.hashtable.ReuseTable`, preserving
its probe/output/finish/commit interface, so the generated code and the
interpreter are unchanged; only the cost accounting of a disabled probe
differs (handled by the interpreter checking :attr:`bypassed`).
"""

from __future__ import annotations

from .hashtable import ReuseTable


class AdaptiveReuseTable(ReuseTable):
    """A reuse table that disables itself when hits cannot pay for probes.

    Args:
        break_even: minimum acceptable hit ratio (the segment's O/C).
        window: probes per monitoring window.
        retry_every: while disabled, re-enable probing after this many
            bypassed executions to re-sample the input's locality.
    """

    def __init__(
        self,
        segment_id: str,
        capacity: int,
        in_words: int,
        out_words: int,
        break_even: float = 0.1,
        window: int = 256,
        retry_every: int = 4096,
    ) -> None:
        super().__init__(segment_id, capacity, in_words, out_words)
        if not 0.0 <= break_even <= 1.0:
            raise ValueError("break_even must be in [0, 1]")
        self.break_even = break_even
        self.window = window
        self.retry_every = retry_every
        self.active = True
        self.deactivations = 0
        self.bypassed_probes = 0
        self._window_probes = 0
        self._window_hits = 0
        self._bypass_count = 0

    # -- runtime interface -------------------------------------------------

    @property
    def bypassed(self) -> bool:
        """True when the upcoming probe should be skipped.

        The interpreter consults this before doing any key-building work;
        a bypassed execution charges only a flag test.  Bookkeeping for
        periodic retry happens here."""
        if self.active:
            return False
        self._bypass_count += 1
        self.bypassed_probes += 1
        if self._bypass_count >= self.retry_every:
            self._reactivate()
            return False
        return True

    def probe(self, key: tuple) -> bool:
        hit = super().probe(key)
        self._window_probes += 1
        if hit:
            self._window_hits += 1
        if self._window_probes >= self.window:
            self._end_window()
        return hit

    # -- monitoring ----------------------------------------------------------

    def _end_window(self) -> None:
        ratio = self._window_hits / self._window_probes
        if ratio < self.break_even:
            self.active = False
            self.deactivations += 1
            self._bypass_count = 0
        self._window_probes = 0
        self._window_hits = 0

    def _reactivate(self) -> None:
        self.active = True
        self._bypass_count = 0
        self._window_probes = 0
        self._window_hits = 0
