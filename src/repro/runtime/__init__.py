"""Runtime: the cycle-cost abstract machine that stands in for the iPAQ.

Typical usage::

    from repro.minic import frontend
    from repro.runtime import Machine, compile_program

    program = frontend(source)
    machine = Machine("O0")
    compiled = compile_program(program, machine)
    compiled.run("main")
    print(machine.metrics())
"""

from .compiler import CompiledFunction, CompiledProgram, compile_program
from .costs import CLOCK_HZ, SUPPLY_VOLTS, CostTable, cost_table
from .hashtable import LRUBuffer, MergedReuseTable, MergedTableView, ReuseTable, TableStats
from .jenkins import hash_key_words, jenkins_one_at_a_time
from .machine import Machine, Metrics
from .values import (
    c_div,
    c_mod,
    c_shl,
    c_shr,
    float_bits,
    key_words,
    to_u32,
    wrap32,
)


def run_source(source: str, entry: str = "main", opt_level: str = "O0", inputs=()):
    """Compile and run mini-C source in one call; returns (result, metrics).

    .. deprecated::
        Use the stable facade instead::

            options = repro.CompileOptions(opt=opt_level, reuse=False)
            result = repro.compile(source, options).run(inputs)

        Note one semantic difference: ``run_source`` never runs the -O3
        optimizer (``opt_level`` only selects the cost table), while the
        facade optimizes at ``opt="O3"``.
    """
    import warnings

    warnings.warn(
        "repro.runtime.run_source is deprecated; use "
        "repro.compile(source, reuse=False).run(inputs)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..minic import frontend

    program = frontend(source)
    machine = Machine(opt_level)
    machine.set_inputs(list(inputs))
    compiled = compile_program(program, machine)
    result = compiled.run(entry)
    return result, machine.metrics()


__all__ = [
    "CompiledFunction",
    "CompiledProgram",
    "compile_program",
    "CostTable",
    "cost_table",
    "CLOCK_HZ",
    "SUPPLY_VOLTS",
    "ReuseTable",
    "MergedReuseTable",
    "MergedTableView",
    "LRUBuffer",
    "TableStats",
    "Machine",
    "Metrics",
    "hash_key_words",
    "jenkins_one_at_a_time",
    "run_source",
    "wrap32",
    "to_u32",
    "c_div",
    "c_mod",
    "c_shl",
    "c_shr",
    "float_bits",
    "key_words",
]
