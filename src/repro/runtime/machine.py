"""The abstract machine that executes compiled mini-C programs.

A :class:`Machine` bundles everything one execution needs:

* the operation tally (``counters``) and the selected cost table;
* global variable storage;
* the program's input stream and output sink (workload data flows
  through the ``__input_*`` / ``__output_*`` intrinsics; the output
  checksum is how we assert that a transformed program computes exactly
  what the original did);
* installed reuse tables (segment id -> table), the runtime side of the
  computation-reuse transformation;
* an optional profiler receiving ``__profile`` / ``__freq`` events;
* an optional cycle-attribution profiler
  (:class:`~repro.obs.profiler.CycleProfiler` on ``cycle_profiler``).
  It must be installed *before* ``compile_program``: the compiler emits
  attribution hooks only when one is present, so an unprofiled run
  executes exactly the closures it always did.

Machines are cheap; experiments create one per (program variant, cost
table, input file) combination.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ConfigError, InterpError
from .costs import CLASS_NAMES, N_CLASSES, CostTable, add_tally, cost_table
from .values import float_bits


@dataclass
class Metrics:
    """Summary of one program execution on a machine.

    ``table_stats`` snapshots the per-segment reuse-table telemetry
    (:class:`~repro.runtime.hashtable.TableStats`) — for merged tables
    this is the *per-member* statistics, so shared-table reports keep
    member identity; ``merged_members`` maps each merged table id to the
    segment ids probing through it.  ``governor`` holds one
    :meth:`~repro.runtime.governor.SegmentGovernor.snapshot` per governed
    segment (state, lifetime counters, transition history); it is empty
    for runs on plain static tables.
    """

    opt_level: str
    cycles: int
    seconds: float
    energy_joules: float
    counts: dict[str, int]
    output_checksum: int
    output_count: int
    table_stats: dict = field(default_factory=dict)
    merged_members: dict = field(default_factory=dict)
    governor: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"[{self.opt_level}] {self.cycles} cycles = {self.seconds:.6f}s, "
            f"{self.energy_joules:.4f}J, outputs={self.output_count} "
            f"(checksum {self.output_checksum:#010x})"
        )


class Machine:
    """Execution context for compiled mini-C programs."""

    #: execution backends ``compile_program`` can target
    BACKENDS = ("closures", "vm")

    def __init__(
        self,
        opt_level: str = "O0",
        capture_output: bool = False,
        fuse: bool = True,
        backend: str | None = None,
    ) -> None:
        self.cost: CostTable = cost_table(opt_level)
        self.counters: list[int] = [0] * N_CLASSES
        # Execution backend: the closure tree (the differential oracle)
        # or the register-bytecode VM.  ``None`` defers to the
        # REPRO_BACKEND environment variable so an unmodified test suite
        # can be pointed at either backend wholesale.
        if backend is None:
            backend = os.environ.get("REPRO_BACKEND", "closures") or "closures"
        if backend not in self.BACKENDS:
            raise ConfigError(
                f"unknown backend {backend!r}; expected one of {self.BACKENDS}"
            )
        self.backend = backend
        # Block-fused cost accounting (repro.runtime.fuse).  Fused and
        # unfused execution produce bit-identical metrics; the flag exists
        # for the differential harness and for debugging.
        self.fuse = fuse
        self.globals: list = []
        self.reuse_tables: dict[int, object] = {}
        self.profiler = None
        # cycle-attribution profiler (repro.obs.profiler.CycleProfiler);
        # consulted at compile time by compile_program/compile_builtin
        self.cycle_profiler = None
        # live metrics registry (repro.obs.metrics.MetricsRegistry); also
        # consulted at compile time — the metered closures exist only
        # when a registry is installed before compile_program
        self.metrics_registry = None
        # debug info (repro.runtime.srcmap.SourceMap): when installed
        # before compile_program, both backends record per-line / per-pc
        # provenance into it.  Pure side table — never alters the
        # compiled artifact (pinned by the no-observer differential).
        self.source_map = None
        self.capture_output = capture_output
        self.captured_outputs: list = []
        self.debug_log: list[int] = []
        self._inputs: Sequence = ()
        self._input_pos = 0
        self._checksum = 0
        self._output_count = 0

    # -- input stream -------------------------------------------------------

    def set_inputs(self, inputs: Sequence) -> None:
        """Install the data the program will read via ``__input_*``."""
        self._inputs = inputs
        self._input_pos = 0

    def next_input(self):
        if self._input_pos >= len(self._inputs):
            raise InterpError("input stream exhausted (program should check __input_avail)")
        value = self._inputs[self._input_pos]
        self._input_pos += 1
        return value

    def input_available(self) -> int:
        return 1 if self._input_pos < len(self._inputs) else 0

    # -- output sink ----------------------------------------------------------

    def emit(self, value) -> None:
        if isinstance(value, float):
            word = float_bits(value)
        else:
            word = value & 0xFFFFFFFF
        self._checksum = (self._checksum * 31 + word) & 0xFFFFFFFF
        self._output_count += 1
        if self.capture_output:
            self.captured_outputs.append(value)

    @property
    def output_checksum(self) -> int:
        return self._checksum

    @property
    def output_count(self) -> int:
        return self._output_count

    # -- reuse tables -----------------------------------------------------------

    def install_table(self, segment_id: int, table) -> None:
        self.reuse_tables[segment_id] = table

    def table_for(self, segment_id: int):
        table = self.reuse_tables.get(segment_id)
        if table is None:
            raise InterpError(f"no reuse table installed for segment {segment_id}")
        return table

    # -- accounting ----------------------------------------------------------------

    def reset_counters(self) -> None:
        # In place: compiled closures and fused regions capture the list.
        self.counters[:] = [0] * N_CLASSES

    def charge_tally(self, delta) -> None:
        """Charge a whole tally vector (see :func:`repro.runtime.costs.add_tally`)."""
        add_tally(self.counters, delta)

    def reset_io(self) -> None:
        self._input_pos = 0
        self._checksum = 0
        self._output_count = 0
        self.captured_outputs = []
        self.debug_log = []

    @property
    def cycles(self) -> int:
        return self.cost.cycles_for(self.counters)

    @property
    def seconds(self) -> float:
        return self.cost.seconds_for(self.counters)

    @property
    def energy_joules(self) -> float:
        return self.cost.energy_joules_for(self.counters)

    def table_telemetry(self) -> tuple[dict, dict]:
        """Per-segment :class:`TableStats` snapshots plus merged-table
        membership (table id -> segment ids), preserving per-member
        identity for segments that share a merged table."""
        table_stats: dict[int, object] = {}
        merged_members: dict[str, list[int]] = {}
        for seg_id in sorted(self.reuse_tables):
            table = self.reuse_tables[seg_id]
            stats = getattr(table, "stats", None)
            if stats is None:
                continue
            table_stats[seg_id] = copy.deepcopy(stats)
            merged = getattr(table, "table", None)  # a MergedTableView?
            if merged is not None:
                merged_members.setdefault(merged.table_id, []).append(seg_id)
        return table_stats, merged_members

    def governor_telemetry(self) -> dict:
        """Per-segment governor snapshots (empty unless governed tables
        are installed); see :class:`~repro.runtime.governor.SegmentGovernor`."""
        snapshots: dict[int, dict] = {}
        for seg_id in sorted(self.reuse_tables):
            governor = getattr(self.reuse_tables[seg_id], "governor", None)
            if governor is not None:
                snapshots[seg_id] = governor.snapshot()
        return snapshots

    def publish_metrics(self, registry=None) -> None:
        """Publish this machine's run aggregates into a metrics registry
        (default: the installed ``metrics_registry``; no-op without one).

        Machine-level tallies (cycles, per-class ops, outputs) are
        per-run increments.  Table and governor statistics are *lifetime*
        totals of the installed tables, so they go through the counters'
        monotone ``advance_to``: live per-probe increments (from the
        metered closures) and end-of-run totals reconcile on the same
        counters without double counting.  One registry should observe
        one table population; publishing unrelated machines into it
        would interleave unrelated lifetimes.
        """
        registry = registry if registry is not None else self.metrics_registry
        if registry is None:
            return
        registry.counter(
            "repro_machine_runs", "Measured executions published."
        ).inc()
        registry.counter(
            "repro_machine_cycles", "Simulated cycles across published runs."
        ).inc(self.cycles)
        registry.counter(
            "repro_machine_outputs", "Values emitted via __output_*."
        ).inc(self.output_count)
        registry.histogram(
            "repro_run_cycles", "Per-run simulated cycle distribution."
        ).observe(self.cycles)
        ops = registry.counter(
            "repro_machine_ops", "Operation tally by cost class."
        )
        for index, name in enumerate(CLASS_NAMES):
            count = self.counters[index]
            if count:
                ops.labels(cls=name).inc(count)
        self._publish_table_metrics(registry)
        self._publish_governor_metrics(registry)

    def _publish_table_metrics(self, registry) -> None:
        probes = registry.counter(
            "repro_reuse_probes", "Reuse-table probes that consulted the table."
        )
        hits = registry.counter("repro_reuse_hits", "Reuse-table probe hits.")
        misses = registry.counter("repro_reuse_misses", "Reuse-table probe misses.")
        collisions = registry.counter(
            "repro_reuse_collisions", "Probe misses on an occupied slot."
        )
        empty = registry.counter(
            "repro_reuse_empty_misses", "Probe misses on an empty slot."
        )
        evictions = registry.counter(
            "repro_reuse_evictions", "Committed entries that displaced a resident."
        )
        occupancy = registry.gauge(
            "repro_table_occupancy", "Occupied reuse-table slots (merged: shared)."
        )
        occupancy_hwm = registry.gauge(
            "repro_table_occupancy_hwm", "Occupancy high-water mark."
        )
        hit_ratio = registry.gauge(
            "repro_table_hit_ratio", "Lifetime hits/probes of the table."
        )
        size_bytes = registry.gauge(
            "repro_table_size_bytes", "Modeled table size (merged: shared)."
        )
        for seg_id in sorted(self.reuse_tables):
            table = self.reuse_tables[seg_id]
            stats = getattr(table, "stats", None)
            if stats is None:
                continue
            label = {"segment": str(seg_id)}
            probes.labels(**label).advance_to(stats.probes)
            hits.labels(**label).advance_to(stats.hits)
            misses.labels(**label).advance_to(stats.misses)
            collisions.labels(**label).advance_to(stats.collisions)
            empty.labels(**label).advance_to(stats.empty_misses)
            evictions.labels(**label).advance_to(stats.evictions)
            occupancy.labels(**label).set(getattr(table, "occupied", 0))
            occupancy_hwm.labels(**label).set(stats.occupancy_hwm)
            hit_ratio.labels(**label).set(stats.hit_ratio)
            size_bytes.labels(**label).set(getattr(table, "size_bytes", 0))

    def _publish_governor_metrics(self, registry) -> None:
        snapshots = self.governor_telemetry()
        if not snapshots:
            return
        lifetime = {
            "repro_governor_disables": ("disables", "Governor disable transitions."),
            "repro_governor_reenables": ("reenables", "Governor re-enable transitions."),
            "repro_governor_resizes": ("resizes", "Governor-driven table resizes."),
            "repro_governor_flushes": ("flushes", "Governor-driven table flushes."),
            "repro_governor_bypassed": (
                "bypassed_executions", "Executions bypassed while disabled.",
            ),
        }
        active = registry.gauge(
            "repro_governor_active",
            "Governor state: 1 active, 0.5 probing, 0 disabled.",
        )
        state_value = {"active": 1.0, "probing": 0.5, "disabled": 0.0}
        for seg_id, snap in snapshots.items():
            label = {"segment": str(seg_id)}
            for metric, (field_name, help_text) in lifetime.items():
                registry.counter(metric, help_text).labels(**label).advance_to(
                    snap[field_name]
                )
            active.labels(**label).set(state_value.get(snap["state"], 0.0))

    def metrics(self) -> Metrics:
        counts = {name: self.counters[i] for i, name in enumerate(CLASS_NAMES)}
        table_stats, merged_members = self.table_telemetry()
        return Metrics(
            opt_level=self.cost.name,
            cycles=self.cycles,
            seconds=self.seconds,
            energy_joules=self.energy_joules,
            counts=counts,
            output_checksum=self.output_checksum,
            output_count=self.output_count,
            table_stats=table_stats,
            merged_members=merged_members,
            governor=self.governor_telemetry(),
        )
