"""Value representation helpers for the mini-C runtime.

The runtime models a 32-bit machine (the paper's StrongARM SA-1110):

* ``int`` is a two's-complement 32-bit integer; arithmetic wraps.
* ``float`` is a Python float (the SA-1110 has no FPU; *cost* of float
  operations models software emulation, but values are IEEE doubles).
* arrays are Python lists (nested lists for multi-dimensional arrays);
* pointers are ``(backing_list, offset)`` pairs, which supports pointer
  arithmetic and aliasing through call arguments;
* address-taken scalars are *boxed*: their frame slot holds a one-element
  list, and ``&x`` yields ``(box, 0)``.
"""

from __future__ import annotations

import struct
from typing import Iterable

from ..errors import InterpError
from ..minic.types import ArrayType, Type

_U32 = 0xFFFFFFFF
_SIGN = 0x80000000
_WRAP = 0x100000000


def wrap32(value: int) -> int:
    """Wrap a Python int to signed 32-bit two's complement."""
    value &= _U32
    return value - _WRAP if value & _SIGN else value


def to_u32(value: int) -> int:
    """Reinterpret a signed 32-bit value as unsigned."""
    return value & _U32


def c_div(a: int, b: int) -> int:
    """C99 integer division (truncates toward zero)."""
    if b == 0:
        raise InterpError("integer division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def c_mod(a: int, b: int) -> int:
    """C99 integer remainder (sign follows the dividend)."""
    if b == 0:
        raise InterpError("integer modulo by zero")
    return a - c_div(a, b) * b


def c_shl(a: int, b: int) -> int:
    return wrap32(a << (b & 31))


def c_shr(a: int, b: int) -> int:
    """Arithmetic right shift (gcc behaviour for signed int)."""
    return a >> (b & 31)


def float_bits(value: float) -> int:
    """The IEEE-754 single-precision bit pattern of ``value`` as an
    unsigned int — used when a float participates in a hash key."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def zero_value(t: Type):
    """The zero-initialized runtime value for a declared type."""
    if isinstance(t, ArrayType):
        return [zero_value(t.elem) for _ in range(t.length)]
    if t.is_pointer:
        return None  # a null pointer
    if getattr(t, "name", "") == "float":
        return 0.0
    return 0


def flatten_value(value) -> Iterable:
    """Flatten a runtime value (scalar or nested array) to scalar words,
    in row-major order — the order used to build hash keys."""
    if isinstance(value, list):
        for item in value:
            yield from flatten_value(item)
    elif isinstance(value, tuple):
        # A pointer: keys are built from the pointed-to storage, which the
        # caller resolves; a raw pointer never reaches key construction.
        raise InterpError("pointer value cannot be flattened into a hash key")
    else:
        yield value


def key_words(value) -> tuple:
    """Build the hash-key words for one input value.

    Integers contribute their 32-bit pattern; floats their IEEE-754 single
    bit pattern; arrays contribute one word per element.
    """
    words = []
    for scalar in flatten_value(value):
        if isinstance(scalar, float):
            words.append(float_bits(scalar))
        else:
            words.append(to_u32(scalar))
    return tuple(words)


def deep_copy_value(value):
    """Copy a runtime value; nested arrays are copied recursively so the
    reuse table never aliases live program storage."""
    if isinstance(value, list):
        return [deep_copy_value(item) for item in value]
    return value


def copy_into(dest: list, src: list) -> None:
    """Copy array contents from ``src`` into existing storage ``dest``."""
    if len(dest) != len(src):
        raise InterpError("array copy with mismatched lengths")
    for i, item in enumerate(src):
        if isinstance(item, list):
            copy_into(dest[i], item)
        else:
            dest[i] = item
