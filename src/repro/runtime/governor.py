"""The online reuse governor: runtime table management beyond the paper.

The paper freezes every reuse decision at compile time from one profiling
run (formulas 3-4).  A deployed program whose input distribution drifts
away from the profile keeps paying the hashing overhead ``O`` on tables
whose observed reuse rate ``R`` has collapsed — the failure mode the
dynamic hardware schemes (Connors & Hwu's reuse buffers, Calder et al.'s
value-profile-guided specialization) handle by monitoring at run time.
This module closes that loop in software.

Each governed table (and each member of a governed merged table) carries
a :class:`SegmentGovernor`: a small state machine fed by the table's own
probe stream.  Over windows of probes it tracks the observed reuse rate
and the per-execution amortized gain ``R_w * C - O`` (the windowed analog
of the paper's formula 3, with the static ``C``/``O`` constants baked in
by the compiler).  The states:

* ``active`` — probing as normal.  When the windowed gain stays negative
  for ``hysteresis`` consecutive windows the governor *disables* the
  table: the guard's ``bypassed`` check falls through to plain execution
  and a probe costs one flag test instead of hash + lookup + commit.
* ``disabled`` — bypassing.  After ``reprobe_after`` bypassed executions
  the governor switches to ``probing`` to re-sample the input's locality.
* ``probing`` — a short trial window of ``probe_window`` real probes.  A
  positive windowed gain *re-enables* the table (back to ``active``);
  a negative one sends it back to ``disabled``.

Orthogonally, a table whose distinct-input working set outgrew its
profile-time capacity shows up as eviction thrash: when a window's
eviction ratio reaches ``resize_evict_ratio`` the governor *resizes* the
table (capacity doubles, entries rehash; growth is bounded by
``max_growth``).  Power-of-two growth keeps previously distinct slots
distinct, so a rehash never introduces collisions.  At the growth bound
the governor *flushes* the table instead (entries clear, statistics
survive), evicting a stale resident set in one step; flushes are
rate-limited to one per ``reprobe_after`` probes.

Everything here is bookkeeping on the Python side of the simulator: a
governed table in the ``active`` state charges exactly the same simulated
cycles as a plain :class:`~repro.runtime.hashtable.ReuseTable`, which is
what the stationary-input differential test asserts.  The first
``warmup_probes`` probes are observed but never judged — a cold table's
miss burst is warmup, not drift.

State transitions are appended to :attr:`SegmentGovernor.transitions`
(surfaced through ``Machine.metrics().governor`` and the decision
ledger's ``governor`` stage) and emitted as tracer events when tracing
is on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError
from ..obs import get_tracer
from ..obs.log import get_event_log
from ..obs.metrics import get_registry
from .hashtable import (
    _BYPASSED,
    SAMPLE_BUDGET,
    MergedReuseTable,
    MergedTableView,
    ReuseTable,
    TableStats,
    pow2_ceil,
)

__all__ = [
    "GovernorPolicy",
    "SegmentGovernor",
    "GovernedReuseTable",
    "GovernedMergedReuseTable",
    "GovernedTableView",
]

ACTIVE = "active"
DISABLED = "disabled"
PROBING = "probing"


@dataclass(frozen=True, kw_only=True)
class GovernorPolicy:
    """Thresholds of the online reuse governor (compile-time constants).

    The pipeline emits one policy into every :class:`TableSpec`; the
    runtime bakes it into the governed table, mirroring how the paper
    bakes ``C`` and ``O`` into the generated guard.
    """

    # probes ignored at the start of each activation: a cold table's miss
    # burst is warmup, not evidence of drift
    warmup_probes: int = 256
    # probes per monitoring window while active
    window: int = 256
    # consecutive unprofitable windows before disabling
    hysteresis: int = 2
    # bypassed executions before a recovery re-probe
    reprobe_after: int = 2048
    # probes in one recovery trial window
    probe_window: int = 64
    # windowed evictions/probes ratio that triggers a resize
    resize_evict_ratio: float = 0.5
    # capacity may grow to at most base_capacity * max_growth
    max_growth: int = 8

    def __post_init__(self) -> None:
        if self.warmup_probes < 0:
            raise ConfigError(f"warmup_probes must be >= 0, got {self.warmup_probes}")
        if self.window < 1:
            raise ConfigError(f"window must be >= 1, got {self.window}")
        if self.hysteresis < 1:
            raise ConfigError(f"hysteresis must be >= 1, got {self.hysteresis}")
        if self.reprobe_after < 1:
            raise ConfigError(f"reprobe_after must be >= 1, got {self.reprobe_after}")
        if self.probe_window < 1:
            raise ConfigError(f"probe_window must be >= 1, got {self.probe_window}")
        if not 0.0 < self.resize_evict_ratio <= 1.0:
            raise ConfigError(
                f"resize_evict_ratio must be in (0, 1], got {self.resize_evict_ratio}"
            )
        if self.max_growth < 1:
            raise ConfigError(f"max_growth must be >= 1, got {self.max_growth}")


class SegmentGovernor:
    """Windowed gain monitor and activation state machine for one segment.

    Args:
        segment_id: the governed segment (for telemetry).
        granularity: the segment's measured per-execution cost ``C``
            in cycles (the pipeline's value-profiling estimate).
        overhead: the segment's hashing overhead upper bound ``O``
            in cycles.
        policy: thresholds; see :class:`GovernorPolicy`.
    """

    def __init__(
        self,
        segment_id: str,
        granularity: float,
        overhead: float,
        policy: Optional[GovernorPolicy] = None,
    ) -> None:
        self.segment_id = segment_id
        self.granularity = max(1.0, float(granularity))
        self.overhead = float(overhead)
        self.policy = policy or GovernorPolicy()
        self.state = ACTIVE
        # lifetime counters (telemetry)
        self.probes_observed = 0
        self.bypassed_executions = 0
        self.windows_closed = 0
        self.disables = 0
        self.reenables = 0
        self.resizes = 0
        self.flushes = 0
        self.transitions: list[dict] = []
        # current window
        self._window_probes = 0
        self._window_hits = 0
        self._window_evictions = 0
        self._negative_windows = 0
        self._bypass_count = 0
        self._warmup_left = self.policy.warmup_probes
        self._last_flush_probe = -self.policy.reprobe_after

    # -- runtime feed -------------------------------------------------------

    def should_bypass(self) -> bool:
        """Consulted by the guard before each probe; True skips the table.

        While disabled, counts bypassed executions and flips to the
        ``probing`` trial after ``reprobe_after`` of them.
        """
        if self.state is not DISABLED:
            return False
        self._bypass_count += 1
        self.bypassed_executions += 1
        if self._bypass_count >= self.policy.reprobe_after:
            self._transition(PROBING, "reprobe")
        return self.state is DISABLED

    def observe(self, hit: bool, evicted: bool = False) -> Optional[dict]:
        """Feed one completed probe; returns the window summary when this
        probe closed a window, else None.  The caller (the governed
        table) reads ``evict_ratio`` off the summary to decide growth."""
        self.probes_observed += 1
        if self._warmup_left > 0:
            self._warmup_left -= 1
            return None
        self._window_probes += 1
        if hit:
            self._window_hits += 1
        if evicted:
            self._window_evictions += 1
        size = self.policy.probe_window if self.state is PROBING else self.policy.window
        if self._window_probes < size:
            return None
        return self._close_window()

    def note_eviction(self) -> None:
        """An eviction observed between probes (commit-side)."""
        if self._warmup_left == 0:
            self._window_evictions += 1

    # -- window / state machine ---------------------------------------------

    def _close_window(self) -> dict:
        probes = self._window_probes
        hit_rate = self._window_hits / probes
        gain = hit_rate * self.granularity - self.overhead
        summary = {
            "probes": probes,
            "hit_rate": hit_rate,
            "gain": gain,
            "evict_ratio": self._window_evictions / probes,
        }
        self.windows_closed += 1
        self._window_probes = 0
        self._window_hits = 0
        self._window_evictions = 0
        registry = get_registry()
        if registry is not None:
            # the live view of the paper's R·C−O, one point per window
            label = {"segment": str(self.segment_id)}
            registry.gauge(
                "repro_governor_window_gain",
                "Windowed amortized gain R_w*C - O (cycles/execution).",
            ).labels(**label).set(gain)
            registry.gauge(
                "repro_governor_window_hit_rate",
                "Hit rate of the last closed governor window.",
            ).labels(**label).set(hit_rate)
        if self.state is PROBING:
            if gain > 0.0:
                self._transition(ACTIVE, "recovered", summary)
            else:
                self._transition(DISABLED, "still_unprofitable", summary)
        elif gain < 0.0:
            self._negative_windows += 1
            if self._negative_windows >= self.policy.hysteresis:
                self._transition(DISABLED, "unprofitable", summary)
        else:
            self._negative_windows = 0
        return summary

    def _transition(self, to: str, reason: str, summary: Optional[dict] = None) -> None:
        entry = {
            "probe": self.probes_observed,
            "from": self.state,
            "to": to,
            "reason": reason,
        }
        if summary is not None:
            entry["hit_rate"] = round(summary["hit_rate"], 6)
            entry["gain"] = round(summary["gain"], 6)
        self.transitions.append(entry)
        if to is DISABLED:
            self.disables += 1
        elif to is ACTIVE and self.state is PROBING:
            self.reenables += 1
        self.state = to
        self._negative_windows = 0
        self._bypass_count = 0
        self._window_probes = 0
        self._window_hits = 0
        self._window_evictions = 0
        get_tracer().event(
            "governor.transition",
            category="governor",
            segment=str(self.segment_id),
            **{k: v for k, v in entry.items() if k != "probe"},
        )
        log = get_event_log()
        if log is not None:
            log.emit(
                "governor.transition",
                level="info",
                segment=str(self.segment_id),
                **{k: v for k, v in entry.items() if k != "probe"},
            )
        registry = get_registry()
        if registry is not None:
            registry.counter(
                "repro_governor_transitions", "Governor state transitions."
            ).labels(segment=str(self.segment_id), to=to, reason=reason).inc()

    def note_resize(self, old_capacity: int, new_capacity: int) -> None:
        self.resizes += 1
        self.transitions.append(
            {
                "probe": self.probes_observed,
                "from": self.state,
                "to": self.state,
                "reason": "resized",
                "capacity": new_capacity,
            }
        )
        # a grown table gets a fresh hysteresis run before any disable
        self._negative_windows = 0
        get_tracer().event(
            "governor.transition",
            category="governor",
            segment=str(self.segment_id),
            reason="resized",
            old_capacity=old_capacity,
            new_capacity=new_capacity,
        )
        log = get_event_log()
        if log is not None:
            log.emit(
                "governor.resize",
                level="info",
                segment=str(self.segment_id),
                old_capacity=old_capacity,
                new_capacity=new_capacity,
            )

    def note_flush(self) -> None:
        self.flushes += 1
        self._last_flush_probe = self.probes_observed
        self.transitions.append(
            {
                "probe": self.probes_observed,
                "from": self.state,
                "to": self.state,
                "reason": "flushed",
            }
        )
        get_tracer().event(
            "governor.transition",
            category="governor",
            segment=str(self.segment_id),
            reason="flushed",
        )
        log = get_event_log()
        if log is not None:
            log.emit(
                "governor.flush",
                level="info",
                segment=str(self.segment_id),
                probe=self.probes_observed,
            )

    def flush_allowed(self) -> bool:
        return self.probes_observed - self._last_flush_probe >= self.policy.reprobe_after

    # -- telemetry ----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable state for ``Machine.metrics().governor``."""
        return {
            "state": self.state,
            "granularity": self.granularity,
            "overhead": self.overhead,
            "probes_observed": self.probes_observed,
            "bypassed_executions": self.bypassed_executions,
            "windows_closed": self.windows_closed,
            "disables": self.disables,
            "reenables": self.reenables,
            "resizes": self.resizes,
            "flushes": self.flushes,
            "transitions": [dict(t) for t in self.transitions],
        }


def _summary_wants_grow(summary: dict, policy: GovernorPolicy) -> bool:
    return summary["evict_ratio"] >= policy.resize_evict_ratio


class GovernedReuseTable(ReuseTable):
    """A :class:`ReuseTable` managed by a :class:`SegmentGovernor`.

    In the ``active`` state behaves bit-identically to the plain table
    (same probes, same statistics, same charged costs); the governor only
    reads the probe stream.  Disabling, re-probing, resizing and flushing
    are Python-side control actions driven by the windowed gain.
    """

    def __init__(
        self,
        segment_id: str,
        capacity: int,
        in_words: int,
        out_words: int,
        *,
        granularity: float = 1.0,
        overhead: float = 0.0,
        policy: Optional[GovernorPolicy] = None,
        sample_budget: int = SAMPLE_BUDGET,
    ) -> None:
        super().__init__(
            segment_id, capacity, in_words, out_words, sample_budget=sample_budget
        )
        self.governor = SegmentGovernor(segment_id, granularity, overhead, policy)
        self.base_capacity = self.capacity
        self.max_capacity = pow2_ceil(self.capacity * self.governor.policy.max_growth)
        self._resize_target: Optional[int] = None
        self._flush_requested = False

    # -- runtime interface --------------------------------------------------

    @property
    def bypassed(self) -> bool:
        return self.governor.should_bypass()

    def probe(self, key: tuple) -> bool:
        hit = super().probe(key)
        summary = self.governor.observe(hit)
        if summary is not None and _summary_wants_grow(summary, self.governor.policy):
            self._request_growth()
        return hit

    def commit(self, outputs: tuple) -> None:
        pending = self._pending[-1]
        evicted = False
        if pending is not _BYPASSED:
            _, index = pending
            stored = self._keys[index]
            evicted = stored is not None and stored != pending[0]
        super().commit(outputs)
        if evicted:
            self.governor.note_eviction()
        self._apply_resize_if_idle()

    def finish(self) -> None:
        super().finish()
        self._apply_resize_if_idle()

    # -- growth / flush -----------------------------------------------------

    def _request_growth(self) -> None:
        if self.capacity < self.max_capacity:
            self._resize_target = min(self.capacity * 2, self.max_capacity)
        elif self.governor.flush_allowed():
            self._flush_requested = True

    def _apply_resize_if_idle(self) -> None:
        # Rehash/flush only with no in-flight probes: pending entries hold
        # indexes whose records a hit path may still read.
        if self._pending:
            return
        if self._resize_target is not None:
            old_capacity, target = self.capacity, self._resize_target
            self._resize_target = None
            self._rehash(target)
            self.governor.note_resize(old_capacity, self.capacity)
        if self._flush_requested:
            self._flush_requested = False
            self.flush()
            self.governor.note_flush()

    def _rehash(self, new_capacity: int) -> None:
        live = [
            (key, out)
            for key, out in zip(self._keys, self._outputs)
            if key is not None
        ]
        self.capacity = pow2_ceil(new_capacity)
        self._mask = self.capacity - 1
        self._keys = [None] * self.capacity
        self._outputs = [None] * self.capacity
        from .jenkins import hash_key_words

        for key, out in live:
            index = hash_key_words(key) & self._mask
            self._keys[index] = key
            self._outputs[index] = out

    def flush(self) -> None:
        """Drop all entries but keep statistics and governor history."""
        self._keys = [None] * self.capacity
        self._outputs = [None] * self.capacity
        self._occupied = 0


class GovernedMergedReuseTable(MergedReuseTable):
    """A :class:`MergedReuseTable` whose members are each governed.

    Every member segment carries its own :class:`SegmentGovernor` (its
    ``C``/``O`` differ even though the key stream is shared); disabling
    one member leaves the others probing.  Growth acts on the shared
    table and is requested by whichever member's window thrashes first.
    """

    def __init__(
        self,
        table_id: str,
        capacity: int,
        in_words: int,
        member_out_words: dict[str, int],
        member_costs: dict[str, tuple[float, float]],
        policy: Optional[GovernorPolicy] = None,
        *,
        sample_budget: int = SAMPLE_BUDGET,
    ) -> None:
        super().__init__(
            table_id, capacity, in_words, member_out_words, sample_budget=sample_budget
        )
        self.policy = policy or GovernorPolicy()
        self.governors: dict[str, SegmentGovernor] = {
            seg: SegmentGovernor(seg, c, o, self.policy)
            for seg, (c, o) in member_costs.items()
        }
        for seg in self.members:
            if seg not in self.governors:
                self.governors[seg] = SegmentGovernor(seg, 1.0, 0.0, self.policy)
        self.base_capacity = self.capacity
        self.max_capacity = pow2_ceil(self.capacity * self.policy.max_growth)
        self._resize_target: Optional[int] = None
        self._flush_requestor: Optional[SegmentGovernor] = None

    def view(self, segment_id: str) -> "GovernedTableView":
        return GovernedTableView(self, self._member_index[segment_id])

    # -- bypass plumbing (sentinel on the shared pending stack) -------------

    def push_bypass(self) -> None:
        self._pending.append(_BYPASSED)

    def pending_bypassed(self) -> bool:
        return bool(self._pending) and self._pending[-1] is _BYPASSED

    def _commit(self, outputs: tuple) -> None:
        pending = self._pending[-1]
        if pending is _BYPASSED:
            self._pending.pop()
            self._apply_resize_if_idle()
            return
        key, index, member = pending
        stored = self._keys[index]
        evicted = stored is not None and stored != key
        super()._commit(outputs)
        if evicted:
            self.governors[self.members[member]].note_eviction()
        self._apply_resize_if_idle()

    def _finish(self) -> None:
        super()._finish()
        self._apply_resize_if_idle()

    # -- governed probe path -------------------------------------------------

    def _governed_probe(self, member: int, key: tuple) -> bool:
        hit = self._probe(member, key)
        governor = self.governors[self.members[member]]
        summary = governor.observe(hit)
        if summary is not None and _summary_wants_grow(summary, self.policy):
            self._request_growth(governor)
        return hit

    def _request_growth(self, governor: SegmentGovernor) -> None:
        if self.capacity < self.max_capacity:
            self._resize_target = min(self.capacity * 2, self.max_capacity)
        elif governor.flush_allowed():
            self._flush_requestor = governor

    def _apply_resize_if_idle(self) -> None:
        if self._pending:
            return
        if self._resize_target is not None:
            old_capacity, target = self.capacity, self._resize_target
            self._resize_target = None
            self._rehash(target)
            for governor in self.governors.values():
                governor.note_resize(old_capacity, self.capacity)
        if self._flush_requestor is not None:
            requestor, self._flush_requestor = self._flush_requestor, None
            self.flush()
            requestor.note_flush()

    def _rehash(self, new_capacity: int) -> None:
        live = [
            (key, bits, outs)
            for key, bits, outs in zip(self._keys, self._bits, self._outputs)
            if key is not None
        ]
        self.capacity = pow2_ceil(new_capacity)
        self._mask = self.capacity - 1
        self._keys = [None] * self.capacity
        self._bits = [0] * self.capacity
        self._outputs = [[None] * len(self.members) for _ in range(self.capacity)]
        from .jenkins import hash_key_words

        for key, bits, outs in live:
            index = hash_key_words(key) & self._mask
            self._keys[index] = key
            self._bits[index] = bits
            self._outputs[index] = outs

    def flush(self) -> None:
        """Drop all entries but keep statistics and governor history."""
        self._keys = [None] * self.capacity
        self._bits = [0] * self.capacity
        self._outputs = [[None] * len(self.members) for _ in range(self.capacity)]
        self._occupied = 0


class GovernedTableView(MergedTableView):
    """Per-member facade over a :class:`GovernedMergedReuseTable`, adding
    the ``bypassed``/``push_bypass``/``pending_bypassed`` guard protocol
    and routing probe observations to the member's governor."""

    @property
    def governor(self) -> SegmentGovernor:
        return self.table.governors[self.table.members[self.member]]

    @property
    def bypassed(self) -> bool:
        return self.governor.should_bypass()

    def push_bypass(self) -> None:
        self.table.push_bypass()

    def pending_bypassed(self) -> bool:
        return self.table.pending_bypassed()

    def probe(self, key: tuple) -> bool:
        return self.table._governed_probe(self.member, key)

    @property
    def stats(self) -> TableStats:
        return self.table.stats_per_member[self.table.members[self.member]]
