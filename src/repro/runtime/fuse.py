"""Block-fused cost accounting: compile straight-line mini-C regions into
single Python functions.

The closure interpreter (:mod:`repro.runtime.compiler`) charges every
dynamic operation individually — one ``ctr[K] += 1`` per executed node.
For regions whose operation classes are fully known at compile time
(no calls and no profiling stubs), that per-op tally traffic is
redundant: the per-class counter delta of a basic block is a static
property of the code.  This module exploits that
by *fusing* such regions: each maximal fusable region is translated to
Python source (three-address style, one temp per sub-expression) and
compiled with :func:`compile`/``exec`` into one function that

* charges each basic block's precomputed tally vector in a single batch
  of ``ctr[K] += n`` updates, and
* executes the region's value computations with no per-op accounting and
  no per-node closure calls.

Accounting is *bit-identical* to the unfused interpreter at every
observable point: charges are batched only within basic blocks, and the
region boundaries are exactly the unfusable constructs — calls (including
every intrinsic and the ``__seg_enter``/``__profile``/``__seg_exit``
profiling stubs), short-circuit operators, and ternaries — which
therefore remain exact charge points.  ``break``/``continue``/``return``
compile to native Python control flow inside generated loops (charging
BRANCH exactly like their closures) and to the interpreter's sentinel
returns at region boundaries.  Segment-
granularity profiling and the zero-cost-stub invariant are preserved.
The only divergence is a run aborted mid-region by an :class:`InterpError`
(e.g. division by zero): the fused region has already charged its block's
vector, the unfused one stops mid-block.  Erroring runs produce no
metrics, so no measured number changes.

Fusion is controlled by ``Machine(fuse=...)``; the differential harness
(``tests/runtime/test_fusion.py``) runs every registered workload both
ways and asserts identical :class:`~repro.runtime.machine.Metrics`.

The same boundary property makes fused execution transparent to the
cycle-attribution profiler (:mod:`repro.obs.profiler`): its attribution
points are function bodies and reuse intrinsics, both unfusable, so a
fused region's batched charges always fall entirely between two
snapshots and land in the same node the unfused charges would.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import InterpError
from ..minic import astnodes as ast
from ..minic.types import FLOAT, ArrayType, PointerType, decay
from .costs import (
    ALU,
    BRANCH,
    CONST,
    DIV,
    FALU,
    FDIV,
    FMUL,
    GLOBAL_RD,
    GLOBAL_WR,
    LOCAL_RD,
    LOCAL_WR,
    MEM_RD,
    MEM_WR,
    MUL,
)
from .values import c_div, c_mod, deep_copy_value, wrap32, zero_value


def _float_div(a: float, b: float) -> float:
    if b == 0:
        raise InterpError("float division by zero")
    return a / b


# ---------------------------------------------------------------------------
# Fusability
# ---------------------------------------------------------------------------

_INT_BINOPS = {"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^"}
_FLOAT_BINOPS = {"+", "-", "*", "/"}
_CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}


def fusable_stmt(stmt: ast.Stmt, fc) -> bool:
    """Can ``stmt`` be compiled into a fused region?

    Fusable statements contain no calls (user functions, intrinsics, or
    profiling stubs) and no short-circuit/ternary operators — every
    operation they will execute on any path has a compile-time-known cost
    class.  ``break``/``continue``/``return`` are fusable: they become
    native Python control flow inside generated loops, or sentinel
    returns at region boundaries.
    """
    if isinstance(stmt, ast.ExprStmt):
        return fusable_expr(stmt.expr, fc)
    if isinstance(stmt, ast.DeclStmt):
        for decl in stmt.decls:
            if decl.symbol is None:
                return False
            if isinstance(decl.symbol.type, ArrayType):
                continue  # template / zero allocation, no dynamic charge
            if decl.init is not None and not fusable_expr(decl.init, fc):
                return False
        return True
    if isinstance(stmt, ast.Block):
        return all(fusable_stmt(s, fc) for s in stmt.stmts)
    if isinstance(stmt, ast.If):
        if not fusable_expr(stmt.cond, fc) or not fusable_stmt(stmt.then, fc):
            return False
        return stmt.els is None or fusable_stmt(stmt.els, fc)
    if isinstance(stmt, ast.While):
        return fusable_expr(stmt.cond, fc) and fusable_stmt(stmt.body, fc)
    if isinstance(stmt, ast.DoWhile):
        return fusable_expr(stmt.cond, fc) and fusable_stmt(stmt.body, fc)
    if isinstance(stmt, ast.For):
        if stmt.cond is not None and not fusable_expr(stmt.cond, fc):
            return False
        if stmt.init is not None and not fusable_stmt(stmt.init, fc):
            return False
        if stmt.step is not None and not fusable_expr(stmt.step, fc):
            return False
        return fusable_stmt(stmt.body, fc)
    if isinstance(stmt, ast.Return):
        return stmt.value is None or fusable_expr(stmt.value, fc)
    if isinstance(stmt, (ast.Break, ast.Continue)):
        # Compiled to a native break/continue inside a generated loop, or
        # to the interpreter's BREAK/CONTINUE sentinel at region top level.
        return True
    # Anything unknown is conservatively left to the closure compiler.
    return False


def fusable_expr(expr: ast.Expr, fc) -> bool:
    if isinstance(expr, (ast.IntLit, ast.FloatLit)):
        return True
    if isinstance(expr, ast.Name):
        return expr.symbol is not None and expr.symbol.kind != "func"
    if isinstance(expr, ast.Index):
        return fusable_expr(expr.base, fc) and fusable_expr(expr.index, fc)
    if isinstance(expr, ast.Unary):
        if expr.op == "&":
            return _fusable_addr_of(expr.operand, fc)
        return fusable_expr(expr.operand, fc)
    if isinstance(expr, ast.IncDec):
        return _fusable_store_target(expr.target, fc) and fusable_expr(
            expr.target, fc
        )
    if isinstance(expr, ast.Binary):
        if not (fusable_expr(expr.lhs, fc) and fusable_expr(expr.rhs, fc)):
            return False
        if expr.op == "," or expr.op in _CMP_OPS:
            return True
        lhs_type = decay(fc.typer.type_of(expr.lhs))
        rhs_type = decay(fc.typer.type_of(expr.rhs))
        if isinstance(lhs_type, PointerType) or isinstance(rhs_type, PointerType):
            return expr.op in ("+", "-")
        if FLOAT in (lhs_type, rhs_type):
            return expr.op in _FLOAT_BINOPS
        return expr.op in _INT_BINOPS
    if isinstance(expr, ast.Assign):
        if not _fusable_store_target(expr.target, fc):
            return False
        if not fusable_expr(expr.value, fc):
            return False
        if expr.op == "=":
            return True
        # compound assignment desugars to load-op-store
        binop = ast.Binary(
            op=expr.op[:-1], lhs=expr.target, rhs=expr.value, line=expr.line
        )
        return fusable_expr(binop, fc)
    # Logical (short-circuit), Ternary, Call: never fused.
    return False


def _fusable_store_target(expr: ast.Expr, fc) -> bool:
    if isinstance(expr, ast.Name):
        return expr.symbol is not None and expr.symbol.kind in (
            "local",
            "param",
            "global",
        )
    if isinstance(expr, ast.Index):
        return fusable_expr(expr.base, fc) and fusable_expr(expr.index, fc)
    if isinstance(expr, ast.Unary) and expr.op == "*":
        return fusable_expr(expr.operand, fc)
    return False


def _binds_break(stmt: ast.Stmt) -> bool:
    """Does ``stmt`` contain a ``break`` binding to the *enclosing* loop?

    Nested loops capture their own ``break``/``continue``, so recursion
    stops at loop boundaries.
    """
    if isinstance(stmt, ast.Break):
        return True
    if isinstance(stmt, ast.Block):
        return any(_binds_break(s) for s in stmt.stmts)
    if isinstance(stmt, ast.If):
        if _binds_break(stmt.then):
            return True
        return stmt.els is not None and _binds_break(stmt.els)
    return False


def _binds_continue(stmt: ast.Stmt) -> bool:
    """Like :func:`_binds_break`, for ``continue``."""
    if isinstance(stmt, ast.Continue):
        return True
    if isinstance(stmt, ast.Block):
        return any(_binds_continue(s) for s in stmt.stmts)
    if isinstance(stmt, ast.If):
        if _binds_continue(stmt.then):
            return True
        return stmt.els is not None and _binds_continue(stmt.els)
    return False


def _fusable_addr_of(expr: ast.Expr, fc) -> bool:
    if isinstance(expr, ast.Name):
        symbol = expr.symbol
        if symbol is None or symbol.kind == "func":
            return False
        if isinstance(symbol.type, ArrayType) or symbol.type.is_pointer:
            return fusable_expr(expr, fc)
        # &scalar: only boxed (address-taken) locals are supported
        return symbol.address_taken and symbol.kind != "global"
    if isinstance(expr, ast.Index):
        return fusable_expr(expr.base, fc) and fusable_expr(expr.index, fc)
    if isinstance(expr, ast.Unary) and expr.op == "*":
        return fusable_expr(expr.operand, fc)
    return False


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


def _w32(atom: str) -> str:
    """Inline signed 32-bit wrap of an integer expression (no call)."""
    return f"((({atom}) & 4294967295) ^ 2147483648) - 2147483648"


class _Emitter:
    """Generates the Python body for one fused region.

    Value computations are emitted in closure-interpreter evaluation
    order (three-address style); operation-class charges accumulate in a
    pending tally and are flushed as batched ``_c[K] += n`` lines at
    basic-block boundaries, so the counter state at every region exit is
    identical to per-op charging.
    """

    def __init__(self, fc) -> None:
        self.fc = fc
        self.lines: list[str] = []
        self.indent = 1
        self.pending: dict[int, int] = {}
        self.consts: list = []
        self._tmp = 0
        self.uses_counters = False
        self.uses_globals = False
        # Stack of generated-loop contexts, innermost last.  Each entry is
        # (wrapped, break_flag): ``wrapped`` means the loop body sits in a
        # one-pass ``for _ in _ONE`` wrapper (so mini-C ``continue`` falls
        # through to the for-step / do-while-condition), and break_flag is
        # the temp a ``break`` sets to escape both wrapper and loop.
        self._loops: list[tuple[bool, Optional[str]]] = []

    # -- infrastructure -----------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def tmp(self) -> str:
        self._tmp += 1
        return f"_t{self._tmp}"

    def const(self, value) -> str:
        self.consts.append(value)
        return f"_K[{len(self.consts) - 1}]"

    def charge(self, cls: int, n: int = 1) -> None:
        self.pending[cls] = self.pending.get(cls, 0) + n

    def flush(self) -> None:
        """Emit the pending tally as batched counter updates."""
        for cls in sorted(self.pending):
            n = self.pending[cls]
            if n:
                self.emit(f"_c[{cls}] += {n}")
                self.uses_counters = True
        self.pending.clear()

    def globals_ref(self, slot: int) -> str:
        self.uses_globals = True
        return f"_g[{slot}]"

    # -- statements ----------------------------------------------------------

    def stmt(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.Block):
            for sub in s.stmts:
                self.stmt(sub)
        elif isinstance(s, ast.ExprStmt):
            self.expr(s.expr)
        elif isinstance(s, ast.DeclStmt):
            self._decl(s)
        elif isinstance(s, ast.If):
            self._if(s)
        elif isinstance(s, ast.While):
            self._while(s)
        elif isinstance(s, ast.DoWhile):
            self._do_while(s)
        elif isinstance(s, ast.For):
            self._for(s)
        elif isinstance(s, ast.Return):
            self._return(s)
        elif isinstance(s, ast.Break):
            self._break()
        elif isinstance(s, ast.Continue):
            self._continue()
        else:  # pragma: no cover - guarded by fusable_stmt
            raise AssertionError(f"cannot fuse statement {type(s).__name__}")

    def _return(self, s: ast.Return) -> None:
        if s.value is None:
            self.flush()
            self.emit("return _Ret(0)")
        else:
            v = self.expr(s.value)
            self.flush()
            self.emit(f"return _Ret({v})")

    def _break(self) -> None:
        self.charge(BRANCH)
        self.flush()
        if not self._loops:
            # Region top level: the enclosing loop is closure-compiled and
            # consumes the interpreter's BREAK sentinel.
            self.emit("return _BRK")
            return
        wrapped, flag = self._loops[-1]
        if wrapped:
            self.emit(f"{flag} = 1")
        self.emit("break")

    def _continue(self) -> None:
        self.charge(BRANCH)
        self.flush()
        if not self._loops:
            self.emit("return _CONT")
            return
        # Unwrapped: only While loops stay unwrapped when a continue binds
        # to them, and there Python continue re-enters at the condition.
        # Wrapped: continue ends the one-pass wrapper, falling through to
        # the for-step / do-while condition.
        self.emit("continue")

    def _loop_body(self, body: ast.Stmt, wrap: bool) -> None:
        """Emit a generated loop's body, wrapping it in a one-pass loop
        when a bound ``continue`` must fall through to trailing step/cond
        code.  Leaves pending charges flushed iff wrapped."""
        if wrap:
            flag = self.tmp() if _binds_break(body) else None
            if flag is not None:
                self.emit(f"{flag} = 0")
            self.emit(f"for {self.tmp()} in _ONE:")
            self.indent += 1
            self._loops.append((True, flag))
            before = len(self.lines)
            self.stmt(body)
            self.flush()
            if len(self.lines) == before:  # pragma: no cover - wrap implies a continue
                self.emit("pass")
            self._loops.pop()
            self.indent -= 1
            if flag is not None:
                self.emit(f"if {flag}: break")
        else:
            self._loops.append((False, None))
            self.stmt(body)
            self._loops.pop()

    def _decl(self, s: ast.DeclStmt) -> None:
        from .compiler import _fill_array

        for decl in s.decls:
            symbol = decl.symbol
            slot = symbol.slot
            boxed = symbol.address_taken and symbol.type.is_scalar
            if isinstance(symbol.type, ArrayType):
                if decl.array_init is not None:
                    template = self.const(_fill_array(symbol.type, decl.array_init))
                    self.emit(f"fr[{slot}] = deep_copy_value({template})")
                else:
                    t = self.const(symbol.type)
                    self.emit(f"fr[{slot}] = zero_value({t})")
            elif decl.init is not None:
                self.charge(LOCAL_WR)
                value = self.expr(decl.init)
                if boxed:
                    self.emit(f"fr[{slot}] = [{value}]")
                else:
                    self.emit(f"fr[{slot}] = {value}")
            else:
                zero = zero_value(symbol.type)
                atom = repr(zero) if zero is None or type(zero) is int else self.const(zero)
                if boxed:
                    self.emit(f"fr[{slot}] = [{atom}]")
                else:
                    self.emit(f"fr[{slot}] = {atom}")

    def _suite(self, body: ast.Stmt) -> None:
        """Emit an indented suite (with its own flushed charges)."""
        self.indent += 1
        before = len(self.lines)
        self.stmt(body)
        self.flush()
        if len(self.lines) == before:
            self.emit("pass")
        self.indent -= 1

    def _if(self, s: ast.If) -> None:
        self.charge(BRANCH)
        cond = self.expr(s.cond)
        self.flush()
        self.emit(f"if {cond}:")
        self._suite(s.then)
        if s.els is not None:
            self.emit("else:")
            self._suite(s.els)

    def _while(self, s: ast.While) -> None:
        self.flush()
        self.emit("while True:")
        self.indent += 1
        self.charge(BRANCH)
        cond = self.expr(s.cond)
        self.flush()
        self.emit(f"if not {cond}: break")
        # No wrapper needed: Python continue re-enters at the condition.
        self._loop_body(s.body, wrap=False)
        self.flush()
        self.indent -= 1

    def _do_while(self, s: ast.DoWhile) -> None:
        self.flush()
        self.emit("while True:")
        self.indent += 1
        self._loop_body(s.body, wrap=_binds_continue(s.body))
        self.charge(BRANCH)
        cond = self.expr(s.cond)
        self.flush()
        self.emit(f"if not {cond}: break")
        self.indent -= 1

    def _for(self, s: ast.For) -> None:
        if s.init is not None:
            self.stmt(s.init)
        self.flush()
        self.emit("while True:")
        self.indent += 1
        before = len(self.lines)
        if s.cond is not None:
            self.charge(BRANCH)
            cond = self.expr(s.cond)
            self.flush()
            self.emit(f"if not {cond}: break")
        self._loop_body(s.body, wrap=_binds_continue(s.body))
        if s.step is not None:
            self.expr(s.step)
        self.flush()
        if len(self.lines) == before:
            self.emit("pass")
        self.indent -= 1

    # -- expressions ---------------------------------------------------------
    #
    # Each method returns an *atom* (a temp name or a literal) after
    # emitting the TAC lines that compute it.  Loads always materialize a
    # temp so later stores cannot reorder against them.

    def expr(self, e: ast.Expr) -> str:
        if isinstance(e, ast.IntLit):
            self.charge(CONST)
            return repr(wrap32(e.value))
        if isinstance(e, ast.FloatLit):
            self.charge(CONST)
            return self.const(e.value)
        if isinstance(e, ast.Name):
            return self._name_load(e)
        if isinstance(e, ast.Index):
            return self._index_load(e)
        if isinstance(e, ast.Unary):
            return self._unary(e)
        if isinstance(e, ast.IncDec):
            return self._incdec(e)
        if isinstance(e, ast.Binary):
            return self._binary(e)
        if isinstance(e, ast.Assign):
            return self._assign(e)
        raise AssertionError(  # pragma: no cover - guarded by fusable_expr
            f"cannot fuse expression {type(e).__name__}"
        )

    def _name_load(self, e: ast.Name) -> str:
        symbol = e.symbol
        slot = symbol.slot
        t = self.tmp()
        if symbol.kind == "global":
            if isinstance(symbol.type, ArrayType):
                self.charge(CONST)
            else:
                self.charge(GLOBAL_RD)
            self.emit(f"{t} = {self.globals_ref(slot)}")
            return t
        if symbol.address_taken and symbol.type.is_scalar:
            self.charge(LOCAL_RD)
            self.emit(f"{t} = fr[{slot}][0]")
            return t
        if isinstance(symbol.type, ArrayType):
            self.charge(CONST)
        else:
            self.charge(LOCAL_RD)
        self.emit(f"{t} = fr[{slot}]")
        return t

    def _index_load(self, e: ast.Index) -> str:
        base_type = decay(self.fc.typer.type_of(e.base))
        elem_is_array = isinstance(base_type, PointerType) and isinstance(
            base_type.elem, ArrayType
        )
        self.charge(ALU if elem_is_array else MEM_RD)
        b = self.expr(e.base)
        i = self.expr(e.index)
        t = self.tmp()
        self.emit(
            f"{t} = {b}[0][{b}[1] + {i}] if type({b}) is tuple else {b}[{i}]"
        )
        return t

    def _store(self, target: ast.Expr, atom: str) -> None:
        if isinstance(target, ast.Name):
            symbol = target.symbol
            slot = symbol.slot
            if symbol.kind == "global":
                self.charge(GLOBAL_WR)
                self.emit(f"{self.globals_ref(slot)} = {atom}")
            elif symbol.address_taken and symbol.type.is_scalar:
                self.charge(LOCAL_WR)
                self.emit(f"fr[{slot}][0] = {atom}")
            else:
                self.charge(LOCAL_WR)
                self.emit(f"fr[{slot}] = {atom}")
        elif isinstance(target, ast.Index):
            self.charge(MEM_WR)
            b = self.expr(target.base)
            i = self.expr(target.index)
            self.emit(f"if type({b}) is tuple:")
            self.emit(f"    {b}[0][{b}[1] + {i}] = {atom}")
            self.emit("else:")
            self.emit(f"    {b}[{i}] = {atom}")
        else:  # *ptr = value
            self.charge(MEM_WR)
            p = self.expr(target.operand)
            self.emit(f"if type({p}) is tuple:")
            self.emit(f"    {p}[0][{p}[1]] = {atom}")
            self.emit("else:")
            self.emit(f"    {p}[0] = {atom}")

    def _addr_of(self, e: ast.Expr) -> str:
        if isinstance(e, ast.Name):
            symbol = e.symbol
            if isinstance(symbol.type, ArrayType) or symbol.type.is_pointer:
                return self.expr(e)  # decays / copies the pointer
            self.charge(ALU)
            t = self.tmp()
            self.emit(f"{t} = fr[{symbol.slot}]")  # the box list is the pointer
            return t
        if isinstance(e, ast.Index):
            self.charge(ALU)
            b = self.expr(e.base)
            i = self.expr(e.index)
            t = self.tmp()
            self.emit(
                f"{t} = ({b}[0], {b}[1] + {i}) if type({b}) is tuple else ({b}, {i})"
            )
            return t
        # &*ptr
        return self.expr(e.operand)

    def _unary(self, e: ast.Unary) -> str:
        if e.op == "&":
            return self._addr_of(e.operand)
        if e.op == "*":
            self.charge(MEM_RD)
            p = self.expr(e.operand)
            t = self.tmp()
            self.emit(f"{t} = {p}[0][{p}[1]] if type({p}) is tuple else {p}[0]")
            return t
        operand_type = decay(self.fc.typer.type_of(e.operand))
        if e.op == "-":
            if operand_type == FLOAT:
                self.charge(FALU)
                o = self.expr(e.operand)
                t = self.tmp()
                self.emit(f"{t} = -{o}")
                return t
            self.charge(ALU)
            o = self.expr(e.operand)
            t = self.tmp()
            self.emit(f"{t} = {_w32(f'-{o}')}")
            return t
        if e.op == "!":
            self.charge(ALU)
            o = self.expr(e.operand)
            t = self.tmp()
            self.emit(f"{t} = 0 if {o} else 1")
            return t
        # "~"
        self.charge(ALU)
        o = self.expr(e.operand)
        t = self.tmp()
        self.emit(f"{t} = ~{o}")
        return t

    def _incdec(self, e: ast.IncDec) -> str:
        target_type = decay(self.fc.typer.type_of(e.target))
        delta = 1 if e.op == "++" else -1
        self.charge(ALU)
        v = self.expr(e.target)  # load (with its own charges)
        nv = self.tmp()
        if isinstance(target_type, PointerType):
            self.emit(
                f"{nv} = ({v}[0], {v}[1] + {delta}) if type({v}) is tuple "
                f"else ({v}, {delta})"
            )
        elif target_type == FLOAT:
            self.emit(f"{nv} = {v} + {delta}")
        else:
            self.emit(f"{nv} = {_w32(f'{v} + {delta}')}")
        self._store(e.target, nv)
        return nv if e.prefix else v

    def _binary(self, e: ast.Binary) -> str:
        if e.op == ",":
            self.expr(e.lhs)
            return self.expr(e.rhs)
        lhs_type = decay(self.fc.typer.type_of(e.lhs))
        rhs_type = decay(self.fc.typer.type_of(e.rhs))
        op = e.op
        # Pointer arithmetic -------------------------------------------------
        if isinstance(lhs_type, PointerType) and op in ("+", "-"):
            self.charge(ALU)
            a = self.expr(e.lhs)
            b = self.expr(e.rhs)
            t = self.tmp()
            if isinstance(rhs_type, PointerType):
                self.emit(
                    f"{t} = ({a}[1] if type({a}) is tuple else 0)"
                    f" - ({b}[1] if type({b}) is tuple else 0)"
                )
                return t
            if op == "-":
                i = self.tmp()
                self.emit(f"{i} = -{b}")
            else:
                i = b
            self.emit(
                f"{t} = ({a}[0], {a}[1] + {i}) if type({a}) is tuple else ({a}, {i})"
            )
            return t
        if isinstance(rhs_type, PointerType) and op == "+":
            self.charge(ALU)
            a = self.expr(e.lhs)
            b = self.expr(e.rhs)
            t = self.tmp()
            self.emit(
                f"{t} = ({b}[0], {b}[1] + {a}) if type({b}) is tuple else ({b}, {a})"
            )
            return t
        # Comparisons --------------------------------------------------------
        if op in _CMP_OPS:
            self.charge(FALU if FLOAT in (lhs_type, rhs_type) else ALU)
            a = self.expr(e.lhs)
            b = self.expr(e.rhs)
            t = self.tmp()
            self.emit(f"{t} = 1 if {a} {op} {b} else 0")
            return t
        # Arithmetic ---------------------------------------------------------
        if FLOAT in (lhs_type, rhs_type):
            cls = {"+": FALU, "-": FALU, "*": FMUL, "/": FDIV}[op]
            self.charge(cls)
            a = self.expr(e.lhs)
            b = self.expr(e.rhs)
            t = self.tmp()
            if op == "/":
                self.emit(f"{t} = _fdiv({a}, {b})")
            else:
                self.emit(f"{t} = {a} {op} {b}")
            return t
        cls = {"*": MUL, "/": DIV, "%": DIV}.get(op, ALU)
        self.charge(cls)
        a = self.expr(e.lhs)
        b = self.expr(e.rhs)
        t = self.tmp()
        if op in ("+", "-", "*"):
            self.emit(f"{t} = {_w32(f'{a} {op} {b}')}")
        elif op == "/":
            self.emit(f"{t} = c_div({a}, {b})")
        elif op == "%":
            self.emit(f"{t} = c_mod({a}, {b})")
        elif op == "<<":
            self.emit(f"{t} = {_w32(f'{a} << ({b} & 31)')}")
        elif op == ">>":
            self.emit(f"{t} = {a} >> ({b} & 31)")
        else:  # & | ^
            self.emit(f"{t} = {a} {op} {b}")
        return t

    def _assign(self, e: ast.Assign) -> str:
        if e.op == "=":
            v = self.expr(e.value)
            self._store(e.target, v)
            return v
        # Compound assignment desugars to load-op-store, exactly as the
        # closure compiler does (the store re-evaluates the target).
        binop = ast.Binary(
            op=e.op[:-1], lhs=e.target, rhs=e.value, line=e.line
        )
        v = self._binary(binop)
        self._store(e.target, v)
        return v


# ---------------------------------------------------------------------------
# Region entry points
# ---------------------------------------------------------------------------

_region_counter = [0]


def _finish(em: _Emitter, fc, result_atom: Optional[str]) -> Callable:
    """Assemble and compile the generated function for one region."""
    em.flush()
    header = []
    if em.uses_counters:
        header.append("    _c = ctr")
    if em.uses_globals:
        header.append("    _g = _m.globals")
    _region_counter[0] += 1
    name = f"_fused_{_region_counter[0]}"
    src = "\n".join(
        [f"def {name}(fr):"]
        + header
        + (em.lines or ["    pass"])
        + [f"    return {result_atom if result_atom is not None else 'None'}"]
    )
    from .compiler import BREAK, CONTINUE, Ret  # circular at import time only

    namespace = {
        "ctr": fc.ctr,
        "_m": fc.machine,
        "_K": tuple(em.consts),
        "c_div": c_div,
        "c_mod": c_mod,
        "_fdiv": _float_div,
        "zero_value": zero_value,
        "deep_copy_value": deep_copy_value,
        "_Ret": Ret,
        "_BRK": BREAK,
        "_CONT": CONTINUE,
        "_ONE": (0,),
    }
    code = compile(src, f"<fused:{fc.fn.name}:{name}>", "exec")
    exec(code, namespace)
    fn = namespace[name]
    fn.fused_source = src  # for debugging / tests
    return fn


def fuse_region(stmts: list[ast.Stmt], fc) -> Callable[[list], Optional[object]]:
    """Compile a fusable statement run into one Python function.

    The returned function has the normal statement-closure signature
    (``frame -> result``): ``None`` for fall-through, or the interpreter's
    ``Ret``/``BREAK``/``CONTINUE`` signals when the region escapes into
    closure-compiled control flow.
    """
    em = _Emitter(fc)
    for s in stmts:
        em.stmt(s)
    return _finish(em, fc, None)


def fuse_expr(expr: ast.Expr, fc) -> Callable[[list], object]:
    """Compile a fusable expression into one Python function returning its
    value — used for large fusable sub-expressions embedded in unfused
    contexts (call arguments, branch conditions, return values)."""
    em = _Emitter(fc)
    atom = em.expr(expr)
    return _finish(em, fc, atom)


# Minimum number of AST nodes before an embedded expression is worth its
# own generated function (below this a plain closure is just as fast).
EXPR_FUSE_THRESHOLD = 4


def expr_fuse_size(expr: ast.Expr) -> int:
    """Node count of an expression, for the embedded-fusion heuristic."""
    return sum(1 for _ in ast.walk(expr))
