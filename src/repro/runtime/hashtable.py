"""Reuse hash tables: the runtime data structure of the paper's scheme.

Two table kinds are provided:

* :class:`ReuseTable` — the software table of section 3.1: direct
  addressing, index = 32-bit key (Jenkins-compressed when the
  concatenated input words exceed one word) modulo the table size,
  replace-on-collision, one (inputs, outputs) record per entry.
* :class:`MergedReuseTable` — the section 2.5 optimization: several code
  segments with identical input variables share one table; a bit vector
  per entry records which segments' outputs are valid for the stored
  input (Table 2 of the paper).

:class:`LRUBuffer` models the small hardware reuse buffers of the prior
hardware proposals; it exists to regenerate Table 5 (hit ratios with 1,
4, 16, 64-entry buffers under LRU replacement).

All tables keep statistics (:class:`TableStats`) that the experiment
harness and the observability layer read: probe/hit/miss/collision
counters with the invariant ``misses == collisions + empty_misses``,
eviction counts, the occupancy high-water mark, and a sampled hit-ratio
time series (a ring buffer whose sampling interval doubles when full;
the budget defaults to :data:`SAMPLE_BUDGET` entries and is configurable
per table through the pipeline's ``stats_sample_budget`` knob).  *Costs*
are charged by the interpreter intrinsics, not here.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from .jenkins import hash_key_words
from .values import deep_copy_value

_WORD_BYTES = 4


# Sentinel on the pending stack for probes skipped by adaptive bypass.
_BYPASSED = object()


def pow2_ceil(n: int) -> int:
    """Smallest power of two >= ``n`` (at least 1).

    Table geometry helper: every reuse table is direct-addressed with a
    power-of-two capacity so the probe mask is ``capacity - 1``.
    """
    size = 1
    while size < n:
        size <<= 1
    return size


def pow2_floor(n: int) -> int:
    """Largest power of two <= ``n`` (at least 1) — used when fitting a
    table under a byte budget."""
    p = 1
    while p * 2 <= n:
        p <<= 1
    return p


# Historical internal name, kept for in-module readers.
_pow2_at_least = pow2_ceil


# Default budget for the hit-ratio time series: once full, every other
# sample is dropped and the sampling interval doubles, so the buffer
# always covers the whole execution at uniform (coarsening) resolution.
SAMPLE_BUDGET = 64


@dataclass
class TableStats:
    probes: int = 0
    hits: int = 0
    misses: int = 0
    collisions: int = 0  # probe landed on an occupied entry with a different key
    empty_misses: int = 0  # probe landed on an entry with no usable record
    evictions: int = 0  # commit replaced a different key's record
    occupancy_hwm: int = 0  # high-water mark of occupied entries
    # [probe count, hit count] pairs sampled over execution (ring buffer
    # with a bounded budget); lists, not tuples, so JSON round-trips exactly
    samples: list = field(default_factory=list)
    sample_interval: int = 1
    # ring-buffer capacity; the halving step needs at least two entries
    sample_budget: int = SAMPLE_BUDGET

    def __post_init__(self) -> None:
        if self.sample_budget < 2:
            raise ValueError(
                f"sample_budget must be >= 2, got {self.sample_budget}"
            )

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.probes if self.probes else 0.0

    def record_probe(self, hit: bool, collision: bool = False) -> None:
        """Count one probe; every miss is either a collision (occupied by
        a different key) or an empty miss, so
        ``misses == collisions + empty_misses`` is an invariant."""
        self.probes += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            if collision:
                self.collisions += 1
            else:
                self.empty_misses += 1
        if self.probes % self.sample_interval == 0:
            self.samples.append([self.probes, self.hits])
            if len(self.samples) >= self.sample_budget:
                del self.samples[::2]
                self.sample_interval *= 2

    def note_occupancy(self, occupied: int) -> None:
        if occupied > self.occupancy_hwm:
            self.occupancy_hwm = occupied

    def hit_ratio_series(self) -> list[tuple[int, float]]:
        """(probe count, cumulative hit ratio) samples over execution."""
        return [(probes, hits / probes) for probes, hits in self.samples]


class ReuseTable:
    """Direct-addressed reuse table for a single code segment.

    Args:
        segment_id: identifier of the transformed code segment.
        capacity: number of entries; rounded up to a power of two.
        in_words: hash-key width in 32-bit words (for size accounting).
        out_words: output record width in words (for size accounting).
        sample_budget: hit-ratio ring-buffer capacity (>= 2).
    """

    def __init__(
        self,
        segment_id: str,
        capacity: int,
        in_words: int,
        out_words: int,
        *,
        sample_budget: int = SAMPLE_BUDGET,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.segment_id = segment_id
        self.capacity = _pow2_at_least(capacity)
        self._mask = self.capacity - 1
        self.in_words = in_words
        self.out_words = out_words
        self._keys: list[Optional[tuple]] = [None] * self.capacity
        self._outputs: list[Optional[tuple]] = [None] * self.capacity
        self.stats = TableStats(sample_budget=sample_budget)
        self._occupied = 0
        # LIFO of (key, index) for in-flight probes; supports recursive
        # segment execution (a probe may occur before the enclosing
        # execution commits).
        self._pending: list[tuple[tuple, int]] = []

    # -- the runtime interface (called by interpreter intrinsics) ---------

    def probe(self, key: tuple) -> bool:
        """Look up ``key``; returns True on a hit.  Either way the probe is
        left pending until :meth:`commit` (miss path) or :meth:`finish`
        (hit path) is called."""
        index = hash_key_words(key) & self._mask
        stored = self._keys[index]
        self._pending.append((key, index))
        if stored == key:
            self.stats.record_probe(True)
            return True
        self.stats.record_probe(False, collision=stored is not None)
        return False

    def output(self, position: int):
        """Read one output value of the entry hit by the pending probe."""
        _, index = self._pending[-1]
        outputs = self._outputs[index]
        assert outputs is not None, "output() without a hit"
        return outputs[position]

    def finish(self) -> None:
        """Close the pending probe on the hit path."""
        self._pending.pop()

    def push_bypass(self) -> None:
        """Mark the next commit as a no-op (adaptive deactivation skipped
        the probe, so there is no pending key to record)."""
        self._pending.append(_BYPASSED)

    def pending_bypassed(self) -> bool:
        """Is the innermost in-flight probe a bypassed one?"""
        return bool(self._pending) and self._pending[-1] is _BYPASSED

    def commit(self, outputs: tuple) -> None:
        """Record outputs for the pending probe's key (miss path).

        On a collision the previously recorded entry is replaced, exactly
        as in section 3.1 of the paper.
        """
        pending = self._pending.pop()
        if pending is _BYPASSED:
            return
        key, index = pending
        stored = self._keys[index]
        if stored is None:
            self._occupied += 1
            self.stats.note_occupancy(self._occupied)
        elif stored != key:
            self.stats.evictions += 1
        self._keys[index] = key
        self._outputs[index] = tuple(deep_copy_value(v) for v in outputs)

    # -- inspection ---------------------------------------------------------

    @property
    def entry_words(self) -> int:
        return self.in_words + self.out_words

    @property
    def size_bytes(self) -> int:
        return self.capacity * self.entry_words * _WORD_BYTES

    @property
    def occupied(self) -> int:
        return self._occupied

    def clear(self) -> None:
        self._keys = [None] * self.capacity
        self._outputs = [None] * self.capacity
        self._pending.clear()
        self._occupied = 0
        self.stats = TableStats(sample_budget=self.stats.sample_budget)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReuseTable {self.segment_id} cap={self.capacity} "
            f"hits={self.stats.hits}/{self.stats.probes}>"
        )


class MergedReuseTable:
    """A reuse table shared by segments with identical input variables.

    Entries store one key, a validity bit vector (bit *i* set when member
    segment *i*'s outputs are recorded for this key), and one output
    record per member segment.
    """

    def __init__(
        self,
        table_id: str,
        capacity: int,
        in_words: int,
        member_out_words: dict[str, int],
        *,
        sample_budget: int = SAMPLE_BUDGET,
    ) -> None:
        self.table_id = table_id
        self.capacity = _pow2_at_least(max(1, capacity))
        self._mask = self.capacity - 1
        self.in_words = in_words
        self.members = list(member_out_words)
        self._member_index = {seg: i for i, seg in enumerate(self.members)}
        self.member_out_words = dict(member_out_words)
        self._keys: list[Optional[tuple]] = [None] * self.capacity
        self._bits: list[int] = [0] * self.capacity
        self._outputs: list[list] = [[None] * len(self.members) for _ in range(self.capacity)]
        self.stats_per_member: dict[str, TableStats] = {
            seg: TableStats(sample_budget=sample_budget) for seg in self.members
        }
        self._occupied = 0
        self._pending: list[tuple[tuple, int, int]] = []  # (key, index, member)

    def view(self, segment_id: str) -> "MergedTableView":
        """The per-segment facade the interpreter binds to a segment id."""
        return MergedTableView(self, self._member_index[segment_id])

    # -- internals used by MergedTableView ----------------------------------

    def _probe(self, member: int, key: tuple) -> bool:
        index = hash_key_words(key) & self._mask
        stats = self.stats_per_member[self.members[member]]
        self._pending.append((key, index, member))
        stored = self._keys[index]
        if stored == key and self._bits[index] & (1 << member):
            stats.record_probe(True)
            return True
        # a matching key whose validity bit is unset is an *empty* miss —
        # the member's output slot holds nothing usable for this key
        stats.record_probe(False, collision=stored is not None and stored != key)
        return False

    def _output(self, position: int):
        _, index, member = self._pending[-1]
        outputs = self._outputs[index][member]
        assert outputs is not None
        return outputs[position]

    def _finish(self) -> None:
        self._pending.pop()

    def _commit(self, outputs: tuple) -> None:
        key, index, member = self._pending.pop()
        stats = self.stats_per_member[self.members[member]]
        stored = self._keys[index]
        if stored != key:
            if stored is None:
                self._occupied += 1
            else:
                # attributed to the committing member, though the evicted
                # records may belong to any member sharing the entry
                stats.evictions += 1
            # Replace the whole entry: other members' outputs belong to the
            # evicted input and must be invalidated.
            self._keys[index] = key
            self._bits[index] = 0
            self._outputs[index] = [None] * len(self.members)
        stats.note_occupancy(self._occupied)
        self._bits[index] |= 1 << member
        self._outputs[index][member] = tuple(deep_copy_value(v) for v in outputs)

    # -- inspection -----------------------------------------------------------

    @property
    def entry_words(self) -> int:
        bitvec_words = (len(self.members) + 31) // 32
        return self.in_words + bitvec_words + sum(self.member_out_words.values())

    @property
    def size_bytes(self) -> int:
        return self.capacity * self.entry_words * _WORD_BYTES

    @property
    def occupied(self) -> int:
        return self._occupied

    @property
    def stats(self) -> TableStats:
        """Aggregated statistics over all member segments.

        Counters sum; ``occupancy_hwm`` takes the max (it tracks the
        shared table).  The hit-ratio time series is per-member only —
        use :attr:`stats_per_member` for it.
        """
        total = TableStats()
        for stats in self.stats_per_member.values():
            total.probes += stats.probes
            total.hits += stats.hits
            total.misses += stats.misses
            total.collisions += stats.collisions
            total.empty_misses += stats.empty_misses
            total.evictions += stats.evictions
            total.occupancy_hwm = max(total.occupancy_hwm, stats.occupancy_hwm)
        return total


@dataclass
class MergedTableView:
    """Adapter giving a :class:`MergedReuseTable` member the same probe /
    output / finish / commit interface as a private :class:`ReuseTable`."""

    table: MergedReuseTable
    member: int

    def probe(self, key: tuple) -> bool:
        return self.table._probe(self.member, key)

    def output(self, position: int):
        return self.table._output(position)

    def finish(self) -> None:
        self.table._finish()

    def commit(self, outputs: tuple) -> None:
        self.table._commit(outputs)

    @property
    def stats(self) -> TableStats:
        return self.table.stats_per_member[self.table.members[self.member]]

    @property
    def in_words(self) -> int:
        return self.table.in_words

    @property
    def occupied(self) -> int:
        return self.table.occupied

    @property
    def size_bytes(self) -> int:
        return self.table.size_bytes


class LRUBuffer:
    """A small fully-associative buffer with LRU replacement.

    Models the hardware reuse buffers of the prior proposals the paper
    compares against (Table 5).  Keys map to opaque outputs; we only track
    hit statistics.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, None] = OrderedDict()
        self.stats = TableStats()

    def access(self, key: tuple) -> bool:
        """Record an access; returns True on hit.  A miss inserts the key,
        evicting the least recently used entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.record_probe(True)
            return True
        self.stats.record_probe(False)
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = None
        self.stats.note_occupancy(len(self._entries))
        return False

    @property
    def hit_ratio(self) -> float:
        return self.stats.hit_ratio
