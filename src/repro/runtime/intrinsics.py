"""Implementations of mini-C built-in (intrinsic) functions.

Each intrinsic is compiled into a closure, like every other expression.
The computation-reuse intrinsics (``__reuse_*``) implement the runtime
half of the paper's transformation: probing, reading, and committing the
per-segment hash tables installed on the machine.  Their cost accounting
follows section 2.1 of the paper — work proportional to the input size on
a probe, proportional to the output size on a hit copy or a miss commit,
plus a fixed per-probe overhead.  A hit and a miss therefore charge the
same number of extra operations, as the paper notes.
"""

from __future__ import annotations

import math

from ..errors import InterpError
from ..minic import astnodes as ast
from ..minic.types import FLOAT, PointerType, decay
from .costs import ALU, FALU, HASH_FIXED, HASH_WORD, IO, MATH
from .values import copy_into, float_bits, to_u32, wrap32

_KIND_INT = 0
_KIND_FLOAT = 1
_KIND_AGGREGATE = 2


def _segment_id(args: list[ast.Expr], name: str) -> int:
    if not args or not isinstance(args[0], ast.IntLit):
        raise InterpError(f"{name}: first argument must be a literal segment id")
    return args[0].value


def _value_kind(fc, expr: ast.Expr) -> int:
    t = decay(fc.typer.type_of(expr))
    if isinstance(t, PointerType):
        return _KIND_AGGREGATE
    if t == FLOAT:
        return _KIND_FLOAT
    return _KIND_INT


def _append_words(words: list[int], value, kind: int) -> None:
    if kind == _KIND_INT:
        words.append(to_u32(value))
    elif kind == _KIND_FLOAT:
        words.append(float_bits(value))
    else:
        _flatten_aggregate(words, value)


def _flatten_aggregate(words: list[int], value) -> None:
    if type(value) is tuple:
        backing, offset = value
        value = backing[offset:]
    if not isinstance(value, list):
        raise InterpError("aggregate key input is not an array")
    for item in value:
        if isinstance(item, list):
            _flatten_aggregate(words, item)
        elif isinstance(item, float):
            words.append(float_bits(item))
        else:
            words.append(to_u32(item))


def _resolve_aggregate(value) -> list:
    if type(value) is tuple:
        backing, offset = value
        if offset == 0:
            return backing
        return backing[offset:]
    if isinstance(value, list):
        return value
    raise InterpError("expected an array value")


def _count_words(value) -> int:
    if isinstance(value, list):
        return sum(_count_words(v) for v in value)
    return 1


def compile_builtin(name: str, args: list[ast.Expr], fc):
    """Compile a call to builtin ``name``; ``fc`` is the function compiler."""
    machine = fc.machine
    ctr = fc.ctr

    # -- computation-reuse runtime ------------------------------------------
    if name == "__reuse_probe":
        seg = _segment_id(args, name)
        fc.record_site(seg, "probe_line")
        builders = [
            (fc.compile_expr(a), _value_kind(fc, a)) for a in args[1:]
        ]

        def run_probe(fr, seg=seg, builders=builders, machine=machine, ctr=ctr):
            table = machine.table_for(seg)
            # adaptive deactivation: a bypassed probe costs one flag test
            if getattr(table, "bypassed", False):
                ctr[ALU] += 1
                table.push_bypass()
                return 0
            words: list[int] = []
            for closure, kind in builders:
                _append_words(words, closure(fr), kind)
            ctr[HASH_FIXED] += 1
            ctr[HASH_WORD] += len(words)
            return 1 if table.probe(tuple(words)) else 0

        cycle_profiler = machine.cycle_profiler
        if cycle_profiler is not None:
            # Attribution wrapper (compiled in only when profiling): the
            # probe opens the segment's attribution frame; its own cost —
            # key construction, hashing, or the bypassed flag test — is
            # overhead.  A bypassed probe returns 0 like a miss; it is
            # told apart by the _BYPASSED sentinel the bypass branch
            # pushed (merged static tables have no bypass protocol, hence
            # the getattr).
            def run_probe_profiled(
                fr, seg=seg, run_probe=run_probe, machine=machine,
                prof=cycle_profiler,
            ):
                prof.probe_begin(seg)
                r = run_probe(fr)
                pending_bypassed = getattr(
                    machine.table_for(seg), "pending_bypassed", None
                )
                prof.probe_end(
                    seg,
                    hit=r == 1,
                    bypassed=pending_bypassed is not None and pending_bypassed(),
                )
                return r

            run_probe = run_probe_profiled

        registry = machine.metrics_registry
        if registry is None:
            return run_probe

        # Metered wrapper, same compile-time gating as the profiler: the
        # labeled counter children are resolved once here, so the hot
        # path is one table lookup plus one integer add per probe.
        label = {"segment": str(seg)}
        probes_c = registry.counter(
            "repro_reuse_probes", "Reuse-table probes that consulted the table."
        ).labels(**label)
        hits_c = registry.counter(
            "repro_reuse_hits", "Reuse-table probe hits."
        ).labels(**label)
        misses_c = registry.counter(
            "repro_reuse_misses", "Reuse-table probe misses."
        ).labels(**label)
        bypassed_c = registry.counter(
            "repro_reuse_bypassed", "Probes skipped by the governor's bypass."
        ).labels(**label)

        def run_probe_metered(
            fr, seg=seg, run_probe=run_probe, machine=machine,
            probes_c=probes_c, hits_c=hits_c, misses_c=misses_c,
            bypassed_c=bypassed_c,
        ):
            r = run_probe(fr)
            pending_bypassed = getattr(
                machine.table_for(seg), "pending_bypassed", None
            )
            if pending_bypassed is not None and pending_bypassed():
                bypassed_c.inc()
            else:
                probes_c.inc()
                if r == 1:
                    hits_c.inc()
                else:
                    misses_c.inc()
            return r

        return run_probe_metered

    if name in ("__reuse_out_i", "__reuse_out_f"):
        seg = _segment_id(args, name)
        if not isinstance(args[1], ast.IntLit):
            raise InterpError(f"{name}: output position must be a literal")
        pos = args[1].value

        def run_out(fr, seg=seg, pos=pos, machine=machine, ctr=ctr):
            ctr[HASH_WORD] += 1
            return machine.table_for(seg).output(pos)

        return run_out

    if name == "__reuse_out_arr":
        seg = _segment_id(args, name)
        if not isinstance(args[1], ast.IntLit):
            raise InterpError(f"{name}: output position must be a literal")
        pos = args[1].value
        dest = fc.compile_expr(args[2])

        def run_out_arr(fr, seg=seg, pos=pos, dest=dest, machine=machine, ctr=ctr):
            stored = machine.table_for(seg).output(pos)
            ctr[HASH_WORD] += _count_words(stored)
            target = dest(fr)
            if type(target) is tuple:
                backing, offset = target
                for i, item in enumerate(stored):
                    backing[offset + i] = item
            else:
                copy_into(target, list(stored) if isinstance(stored, tuple) else stored)
            return 0

        return run_out_arr

    if name == "__reuse_commit":
        seg = _segment_id(args, name)
        fc.record_site(seg, "commit_line")
        outs = [
            (fc.compile_expr(a), _value_kind(fc, a)) for a in args[1:]
        ]

        def run_commit(fr, seg=seg, outs=outs, machine=machine, ctr=ctr):
            table = machine.table_for(seg)
            if getattr(table, "pending_bypassed", None) and table.pending_bypassed():
                ctr[ALU] += 1
                table.commit(())
                return 0
            values = []
            n_words = 0
            for closure, kind in outs:
                v = closure(fr)
                if kind == _KIND_AGGREGATE:
                    v = _resolve_aggregate(v)
                    n_words += _count_words(v)
                else:
                    n_words += 1
                values.append(v)
            ctr[HASH_WORD] += n_words
            machine.table_for(seg).commit(tuple(values))
            return 0

        cycle_profiler = machine.cycle_profiler
        if cycle_profiler is None:
            return run_commit

        # The commit ends the executed body and is itself overhead
        # (output serialization + table write); it closes the frame the
        # probe opened.
        def run_commit_profiled(
            fr, seg=seg, run_commit=run_commit, prof=cycle_profiler
        ):
            prof.commit_begin(seg)
            r = run_commit(fr)
            prof.segment_exit(seg)
            return r

        return run_commit_profiled

    if name == "__reuse_end":
        seg = _segment_id(args, name)
        fc.record_site(seg, "end_line")

        def run_end(fr, seg=seg, machine=machine):
            machine.table_for(seg).finish()
            return 0

        cycle_profiler = machine.cycle_profiler
        if cycle_profiler is None:
            return run_end

        # Hit path: the output restores ran in the overhead phase the
        # probe left open; __reuse_end closes the frame.
        def run_end_profiled(fr, seg=seg, run_end=run_end, prof=cycle_profiler):
            r = run_end(fr)
            prof.segment_exit(seg)
            return r

        return run_end_profiled

    # -- profiling stubs (zero cost) -------------------------------------------
    if name == "__profile":
        seg = _segment_id(args, name)
        builders = [
            (fc.compile_expr(a), _value_kind(fc, a)) for a in args[1:]
        ]
        # Profiling stubs must not perturb the tally: snapshot-and-restore
        # the counters around argument evaluation.
        def run_profile(fr, seg=seg, builders=builders, machine=machine, ctr=ctr):
            profiler = machine.profiler
            if profiler is None:
                return 0
            saved = list(ctr)
            words: list[int] = []
            for closure, kind in builders:
                _append_words(words, closure(fr), kind)
            ctr[:] = saved
            profiler.record(seg, tuple(words))
            return 0

        return run_profile

    if name == "__freq":
        seg = _segment_id(args, name)

        def run_freq(fr, seg=seg, machine=machine):
            profiler = machine.profiler
            if profiler is not None:
                profiler.count_entry(seg)
            return 0

        return run_freq

    if name == "__seg_enter":
        seg = _segment_id(args, name)

        def run_seg_enter(fr, seg=seg, machine=machine):
            profiler = machine.profiler
            if profiler is not None:
                profiler.segment_enter(seg)
            return 0

        return run_seg_enter

    if name == "__seg_exit":
        seg = _segment_id(args, name)

        def run_seg_exit(fr, seg=seg, machine=machine):
            profiler = machine.profiler
            if profiler is not None:
                profiler.segment_exit(seg)
            return 0

        return run_seg_exit

    # -- I/O streams --------------------------------------------------------------
    if name == "__input_int":

        def run_in_i(fr, machine=machine, ctr=ctr):
            ctr[IO] += 1
            return wrap32(int(machine.next_input()))

        return run_in_i

    if name == "__input_float":

        def run_in_f(fr, machine=machine, ctr=ctr):
            ctr[IO] += 1
            return float(machine.next_input())

        return run_in_f

    if name == "__input_avail":
        return lambda fr, machine=machine: machine.input_available()

    if name in ("__output_int", "__output_float"):
        value = fc.compile_expr(args[0])

        def run_out_v(fr, value=value, machine=machine, ctr=ctr):
            ctr[IO] += 1
            machine.emit(value(fr))
            return 0

        return run_out_v

    if name == "__print_int":
        value = fc.compile_expr(args[0])

        def run_print(fr, value=value, machine=machine):
            machine.debug_log.append(value(fr))
            return 0

        return run_print

    if name == "__assert":
        value = fc.compile_expr(args[0])

        def run_assert(fr, value=value):
            if not value(fr):
                raise InterpError("__assert failed")
            return 0

        return run_assert

    # -- casts ---------------------------------------------------------------------
    if name == "__cast_int":
        value = fc.compile_expr(args[0])
        from_float = _value_kind(fc, args[0]) == _KIND_FLOAT
        cls = FALU if from_float else ALU

        def run_cast_i(fr, value=value, ctr=ctr, cls=cls):
            ctr[cls] += 1
            return wrap32(int(value(fr)))

        return run_cast_i

    if name == "__cast_float":
        value = fc.compile_expr(args[0])

        def run_cast_f(fr, value=value, ctr=ctr):
            ctr[FALU] += 1
            return float(value(fr))

        return run_cast_f

    # -- math helpers ---------------------------------------------------------------
    if name == "__abs":
        value = fc.compile_expr(args[0])

        def run_abs(fr, value=value, ctr=ctr):
            ctr[ALU] += 1
            return wrap32(abs(value(fr)))

        return run_abs

    if name == "__fabs":
        value = fc.compile_expr(args[0])

        def run_fabs(fr, value=value, ctr=ctr):
            ctr[FALU] += 1
            return abs(float(value(fr)))

        return run_fabs

    if name in ("__min", "__max"):
        a = fc.compile_expr(args[0])
        b = fc.compile_expr(args[1])
        fn = min if name == "__min" else max

        def run_minmax(fr, a=a, b=b, fn=fn, ctr=ctr):
            ctr[ALU] += 1
            return fn(a(fr), b(fr))

        return run_minmax

    if name in ("__cos", "__sin", "__sqrt", "__floor"):
        value = fc.compile_expr(args[0])
        impl = {
            "__cos": math.cos,
            "__sin": math.sin,
            "__sqrt": _checked_sqrt,
            "__floor": math.floor,
        }[name]

        def run_math(fr, value=value, impl=impl, ctr=ctr):
            ctr[MATH] += 1
            return float(impl(float(value(fr))))

        return run_math

    raise InterpError(f"builtin {name!r} has no implementation")


def _checked_sqrt(x: float) -> float:
    if x < 0:
        raise InterpError("__sqrt of negative value")
    return math.sqrt(x)
