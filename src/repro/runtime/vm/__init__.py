"""Register-bytecode execution backend (``Machine(backend="vm")``).

The package splits along the classic compiler/VM seam:

* :mod:`vm_opcodes` — the instruction set and a disassembler;
* :mod:`vm_compiler` — mini-C AST → flat bytecode with the block-fused
  ``CHARGE`` accounting and observer ops baked into the stream;
* :mod:`vm` — the execution engines (translation and dispatch) plus the
  shared reuse/observer kernels and program-level linking.
"""

from .vm import VMProgram, compile_vm_program, link_program
from .vm_compiler import VMFunction, compile_function
from . import vm_opcodes

__all__ = [
    "VMFunction",
    "VMProgram",
    "compile_function",
    "compile_vm_program",
    "link_program",
    "vm_opcodes",
]
