"""Compiler from resolved mini-C ASTs to the flat register bytecode.

The lowering mirrors the closure compiler (:mod:`repro.runtime.compiler`)
decision for decision: the same typed operator selection, the same
evaluation order, and the same charge classes in the same places.  The
one representational difference is *when* counters are touched — charges
accumulate in a pending tally and are emitted as one ``CHARGE`` op per
basic block (exactly the discipline :mod:`repro.runtime.fuse` proved
bit-identical), flushed before every jump target, call, and observer op.

Charges are recorded *before* their operand subtrees are compiled, because
that is when the closures charge (``ctr[cls] += 1`` precedes operand
evaluation in every ``run_*`` closure).  With calls as flush points this
reproduces the closure backend's counter state at every observation
boundary — function entries/exits, reuse intrinsics, and the
``__seg_enter``/``__seg_exit`` stubs the value-set profiler reads cycles
at — bit-for-bit.

Control flow is emitted under a structural discipline so the translation
engine (:mod:`repro.runtime.vm.vm`) can rebuild native Python loops
without a general CFG analysis: every loop has exactly one backward jump
(its back edge), ``continue`` compiles to a *forward* jump to the loop's
tail (the for-step / do-while-condition / the back edge itself), and
``break`` to a forward jump past the back edge.  Each loop's shape is
recorded in a side table (``VMFunction.loops``) that the dispatch engine
never consults.
"""

from __future__ import annotations

from ...errors import InterpError
from ...minic import astnodes as ast
from ...minic.builtins import BUILTINS
from ...minic.types import FLOAT, ArrayType, PointerType, decay
from ..costs import (
    ALU,
    BRANCH,
    CALL as C_CALL,
    CONST,
    DIV as C_DIV,
    FALU,
    FDIV as C_FDIV,
    FMUL,
    GLOBAL_RD,
    GLOBAL_WR,
    HASH_WORD,
    IO,
    LOCAL_RD,
    LOCAL_WR,
    MATH as C_MATH,
    MEM_RD,
    MEM_WR,
    MUL as C_MUL,
)
from ..fuse import _binds_break, _binds_continue
from ..intrinsics import (
    _KIND_FLOAT,
    _segment_id,
    _value_kind,
)
from ..values import wrap32, zero_value
from . import vm_opcodes as op


class Label:
    """A forward-patchable jump target."""

    __slots__ = ("pc",)

    def __init__(self) -> None:
        self.pc = -1


class VMFunction:
    """One compiled function: flat code, constants, register metadata.

    ``loops`` maps each loop header pc to ``(tail_pc, back_pc, wrapped,
    has_break)`` — the structural side table the translation engine uses
    to rebuild native loops.  ``call`` is installed by the execution
    engine at link time; ``invoke`` keeps the closure backend's
    ``CompiledFunction`` interface so everything downstream (facade,
    experiment runner, tests) works against either backend.
    """

    def __init__(self, fn: ast.Function, index: int) -> None:
        self.name = fn.name
        self.ret_type = fn.ret_type
        self.index = index
        self.param_specs = [
            (p.symbol.slot, p.symbol.address_taken and p.symbol.type.is_scalar)
            for p in fn.params
        ]
        self.code: list[tuple] = []
        self.consts: tuple = ()
        self.frame_size = fn.frame_size  # registers above this are temps
        self.nregs = fn.frame_size
        self.loops: dict[int, tuple] = {}
        self.machine = None
        self.cycle_profiler = None
        self.call = None  # installed by the engine at link time

    def invoke(self, args: tuple):
        return self.call(*args)

    def disassemble(self) -> str:
        return op.disassemble(self.code, self.consts, self.loops)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<vm fn {self.name}>"


class _LoopCtx:
    __slots__ = ("tail", "exit", "head")

    def __init__(self, head: Label, tail: Label, exit: Label) -> None:
        self.head = head
        self.tail = tail
        self.exit = exit


class _FnCompiler:
    """Compiles one function body to bytecode (mirror of _FunctionCompiler)."""

    def __init__(self, fn, vmfn: VMFunction, typer, machine, fn_index: dict) -> None:
        self.fn = fn
        self.vmfn = vmfn
        self.typer = typer
        self.machine = machine
        self.fn_index = fn_index  # name -> function table index
        self.code: list = []
        self.consts: list = []
        self.pending: dict[int, int] = {}
        # Temps are never reused: every expression value gets a fresh slot,
        # so "written once and read once" is decidable by a whole-function
        # census — which is exactly what the translation engine's
        # expression re-fusion keys on.
        self._tmp = fn.frame_size
        self._high = fn.frame_size
        self._loops: list[_LoopCtx] = []
        # (head, tail, back_pc, body_start, wrapped, has_break) per loop
        self._loop_meta: list[tuple] = []
        self.profiled = machine.cycle_profiler is not None
        self.metered = machine.metrics_registry is not None
        # Line-attribution marks (PROF_LINE) exist only when the profiler
        # tracks lines; the SourceMap side table never changes emission.
        self.lined = self.profiled and getattr(
            machine.cycle_profiler, "track_lines", False
        )
        source_map = machine.source_map
        self.srcmap = None if source_map is None else source_map.function(fn.name)
        self.cur_line = 0
        self.pending_lines: dict[tuple[int, int], int] = {}

    # -- emission infrastructure -------------------------------------------

    def emit(self, *ins) -> int:
        self.code.append(ins)
        if self.srcmap is not None:
            self.srcmap.pc_lines.append((len(self.code) - 1, self.cur_line))
        return len(self.code) - 1

    def newtmp(self) -> int:
        r = self._tmp
        self._tmp += 1
        if self._tmp > self._high:
            self._high = self._tmp
        return r

    def newlabel(self) -> Label:
        return Label()

    def bind(self, label: Label) -> None:
        self.flush()
        label.pc = len(self.code)

    def const(self, value) -> int:
        self.consts.append(value)
        return len(self.consts) - 1

    def charge(self, cls: int, n: int = 1) -> None:
        self.pending[cls] = self.pending.get(cls, 0) + n
        if self.srcmap is not None:
            key = (self.cur_line, cls)
            self.pending_lines[key] = self.pending_lines.get(key, 0) + n

    def flush(self) -> None:
        if self.pending:
            pairs = tuple(
                (cls, self.pending[cls]) for cls in sorted(self.pending) if self.pending[cls]
            )
            if pairs:
                pc = self.emit(op.CHARGE, pairs)
                if self.srcmap is not None:
                    self.srcmap.charge_lines[pc] = tuple(
                        (line, cls, n)
                        for (line, cls), n in sorted(self.pending_lines.items())
                        if n
                    )
            self.pending.clear()
            self.pending_lines.clear()

    def record_site(self, seg: int, key: str) -> None:
        """Note a reuse site's source line in the debug side table."""
        if self.srcmap is not None:
            self.srcmap.sites.setdefault(seg, {})[key] = self.cur_line

    def _iter_mark(self, s: ast.Stmt) -> None:
        """Per-iteration line mark at a loop head/tail.  The caller just
        bound a label (pending flushed), so the mark sits at a flush
        point — the same counter state the closure backend's line-mode
        loop variants tick at."""
        if s.line > 0:
            self.cur_line = s.line
            if self.lined:
                self.emit(op.PROF_LINE, s.line)

    # -- top level ----------------------------------------------------------

    def compile(self) -> VMFunction:
        if self.metered:
            calls = self.machine.metrics_registry.counter(
                "repro_function_calls", "Function body invocations."
            ).labels(function=self.fn.name)
            self.emit(op.METER_FUNC, self.const(calls))
        if self.profiled:
            self.emit(op.PROF_ENTER, self.fn.name)
        self.stmt(self.fn.body)
        # Fall-off-the-end epilogue: profiler exit, then the RET charge —
        # the closure backend's invoke() order.
        self.flush()
        if self.profiled:
            self.emit(op.PROF_EXIT)
        self.emit(op.RET0)
        self._assemble()
        return self.vmfn

    def _assemble(self) -> None:
        code = []
        for ins in self.code:
            if ins[0] in (op.JUMP, op.JF, op.JT):
                resolved = tuple(x.pc if isinstance(x, Label) else x for x in ins)
                code.append(resolved)
            else:
                code.append(ins)
        self.vmfn.code = code
        self.vmfn.consts = tuple(self.consts)
        self.vmfn.nregs = self._high
        self.vmfn.loops = {
            head.pc: (tail.pc, back_pc, body_start, wrapped, has_break)
            for head, tail, back_pc, body_start, wrapped, has_break in self._loop_meta
        }

    # -- statements ----------------------------------------------------------

    def stmt(self, s: ast.Stmt) -> None:
        if not isinstance(s, ast.Block) and s.line > 0:
            # Statement-start line mark: flush first (the pending charges
            # belong to the previous statement's line), then mark.  The
            # closure backend wraps each statement closure identically.
            if self.lined:
                self.flush()
            self.cur_line = s.line
            if self.lined:
                self.emit(op.PROF_LINE, s.line)
        if isinstance(s, ast.Block):
            for sub in s.stmts:
                self.stmt(sub)
        elif isinstance(s, ast.ExprStmt):
            self.expr(s.expr)
        elif isinstance(s, ast.DeclStmt):
            self._decl(s)
        elif isinstance(s, ast.If):
            self._if(s)
        elif isinstance(s, ast.While):
            self._while(s)
        elif isinstance(s, ast.DoWhile):
            self._do_while(s)
        elif isinstance(s, ast.For):
            self._for(s)
        elif isinstance(s, ast.Return):
            self._return(s)
        elif isinstance(s, ast.Break):
            self._break()
        elif isinstance(s, ast.Continue):
            self._continue()
        else:
            raise InterpError(f"cannot compile statement {type(s).__name__}")

    def _decl(self, s: ast.DeclStmt) -> None:
        from ..compiler import _fill_array

        for decl in s.decls:
            symbol = decl.symbol
            if symbol is None:
                raise InterpError(f"unresolved declaration {decl.name!r}")
            slot = symbol.slot
            boxed = symbol.address_taken and symbol.type.is_scalar
            if isinstance(symbol.type, ArrayType):
                if decl.array_init is not None:
                    template = _fill_array(symbol.type, decl.array_init)
                    self.emit(op.ALLOC_T, slot, self.const(template))
                else:
                    self.emit(op.ALLOC_Z, slot, self.const(symbol.type))
            elif decl.init is not None:
                self.charge(LOCAL_WR)
                rv = self.expr(decl.init)
                if boxed:
                    self.emit(op.NEWBOX, slot, rv)
                else:
                    self.emit(op.MOV, slot, rv)
            else:
                zero = zero_value(symbol.type)
                if boxed:
                    self.emit(op.NEWBOXI, slot, zero)
                else:
                    self.emit(op.LOADI, slot, zero)

    def _return(self, s: ast.Return) -> None:
        if s.value is None:
            self.flush()
            if self.profiled:
                self.emit(op.PROF_EXIT)
            self.emit(op.RET0)
            return
        rv = self.expr(s.value)
        self.flush()
        if self.profiled:
            self.emit(op.PROF_EXIT)
        self.emit(op.RETV, rv)

    def _break(self) -> None:
        self.charge(BRANCH)
        self.flush()
        if not self._loops:
            raise InterpError("break outside a loop")
        self.emit(op.JUMP, self._loops[-1].exit)

    def _continue(self) -> None:
        self.charge(BRANCH)
        self.flush()
        if not self._loops:
            raise InterpError("continue outside a loop")
        self.emit(op.JUMP, self._loops[-1].tail)

    def _if(self, s: ast.If) -> None:
        self.charge(BRANCH)
        rc = self.expr(s.cond)
        self.flush()
        if s.els is None:
            end = self.newlabel()
            self.emit(op.JF, rc, end)
            self.stmt(s.then)
            self.bind(end)
            return
        els = self.newlabel()
        end = self.newlabel()
        self.emit(op.JF, rc, els)
        self.stmt(s.then)
        self.flush()
        self.emit(op.JUMP, end)
        self.bind(els)
        self.stmt(s.els)
        self.bind(end)

    def _while(self, s: ast.While) -> None:
        head = self.newlabel()
        tail = self.newlabel()
        exit_ = self.newlabel()
        self.bind(head)
        self._iter_mark(s)
        self.charge(BRANCH)
        rc = self.expr(s.cond)
        self.flush()
        self.emit(op.JF, rc, exit_)
        body_start = len(self.code)
        self._loops.append(_LoopCtx(head, tail, exit_))
        self.stmt(s.body)
        self._loops.pop()
        self.bind(tail)  # the back edge itself: continue re-tests the condition
        back_pc = self.emit(op.JUMP, head)
        self.bind(exit_)
        self._loop_meta.append(
            (head, tail, back_pc, body_start, False, _binds_break(s.body))
        )

    def _do_while(self, s: ast.DoWhile) -> None:
        head = self.newlabel()
        tail = self.newlabel()
        exit_ = self.newlabel()
        wrapped = _binds_continue(s.body)
        self.flush()
        self.bind(head)
        body_start = len(self.code)
        self._loops.append(_LoopCtx(head, tail, exit_))
        self.stmt(s.body)
        self._loops.pop()
        self.bind(tail)
        self._iter_mark(s)
        self.charge(BRANCH)
        rc = self.expr(s.cond)
        self.flush()
        back_pc = self.emit(op.JT, rc, head)
        self.bind(exit_)
        self._loop_meta.append(
            (head, tail, back_pc, body_start, wrapped, _binds_break(s.body))
        )

    def _for(self, s: ast.For) -> None:
        if s.init is not None:
            self.stmt(s.init)
        head = self.newlabel()
        tail = self.newlabel()
        exit_ = self.newlabel()
        wrapped = _binds_continue(s.body)
        self.bind(head)
        self._iter_mark(s)
        if s.cond is not None:
            self.charge(BRANCH)
            rc = self.expr(s.cond)
            self.flush()
            self.emit(op.JF, rc, exit_)
        body_start = len(self.code)
        self._loops.append(_LoopCtx(head, tail, exit_))
        self.stmt(s.body)
        self._loops.pop()
        self.bind(tail)
        if s.step is not None:
            self._iter_mark(s)
            self.expr(s.step)
            self.flush()
        back_pc = self.emit(op.JUMP, head)
        self.bind(exit_)
        self._loop_meta.append(
            (head, tail, back_pc, body_start, wrapped, _binds_break(s.body))
        )

    # -- expressions ---------------------------------------------------------
    #
    # Every method returns the register holding the result.  Charges are
    # recorded before operand subtrees are compiled — the closures charge
    # before they evaluate operands, and keeping that order means a call
    # (flush point) inside an operand sees the same counter state.

    def expr(self, e: ast.Expr) -> int:
        if isinstance(e, ast.IntLit):
            self.charge(CONST)
            t = self.newtmp()
            self.emit(op.LOADI, t, wrap32(e.value))
            return t
        if isinstance(e, ast.FloatLit):
            self.charge(CONST)
            t = self.newtmp()
            self.emit(op.LOADI, t, e.value)
            return t
        if isinstance(e, ast.Name):
            return self._name_load(e)
        if isinstance(e, ast.Index):
            return self._index_load(e)
        if isinstance(e, ast.Unary):
            return self._unary(e)
        if isinstance(e, ast.IncDec):
            return self._incdec(e)
        if isinstance(e, ast.Binary):
            return self._binary(e)
        if isinstance(e, ast.Logical):
            return self._logical(e)
        if isinstance(e, ast.Assign):
            return self._assign(e)
        if isinstance(e, ast.Ternary):
            return self._ternary(e)
        if isinstance(e, ast.Call):
            return self._call(e)
        raise InterpError(f"cannot compile expression {type(e).__name__}")

    # -- names ----------------------------------------------------------------

    def _name_load(self, e: ast.Name) -> int:
        symbol = e.symbol
        if symbol is None:
            raise InterpError(f"unresolved name {e.name!r} reached the compiler")
        if symbol.kind == "func":
            fi = self.fn_index.get(symbol.name)
            if fi is None:
                raise InterpError(f"function {symbol.name!r} has no body")
            t = self.newtmp()
            self.emit(op.LOADFN, t, fi)
            return t
        slot = symbol.slot
        t = self.newtmp()
        if symbol.kind == "global":
            self.charge(CONST if isinstance(symbol.type, ArrayType) else GLOBAL_RD)
            self.emit(op.LOADG, t, slot)
            return t
        if symbol.address_taken and symbol.type.is_scalar:
            self.charge(LOCAL_RD)
            self.emit(op.GETBOX, t, slot)
            return t
        self.charge(CONST if isinstance(symbol.type, ArrayType) else LOCAL_RD)
        self.emit(op.MOV, t, slot)
        return t

    def _store(self, target: ast.Expr, rs: int) -> None:
        """Mirror of _compile_store: charge, then evaluate target address."""
        if isinstance(target, ast.Name):
            symbol = target.symbol
            assert symbol is not None
            if symbol.kind == "func":
                raise InterpError("cannot assign to a function")
            slot = symbol.slot
            if symbol.kind == "global":
                self.charge(GLOBAL_WR)
                self.emit(op.STOREG, slot, rs)
            elif symbol.address_taken and symbol.type.is_scalar:
                self.charge(LOCAL_WR)
                self.emit(op.SETBOX, slot, rs)
            else:
                self.charge(LOCAL_WR)
                self.emit(op.MOV, slot, rs)
            return
        if isinstance(target, ast.Index):
            self.charge(MEM_WR)
            rb = self.expr(target.base)
            ri = self.expr(target.index)
            self.emit(op.IDXW, rb, ri, rs)
            return
        if isinstance(target, ast.Unary) and target.op == "*":
            self.charge(MEM_WR)
            rp = self.expr(target.operand)
            self.emit(op.DEREFW, rp, rs)
            return
        raise InterpError("invalid assignment target")

    # -- indexing / pointers ---------------------------------------------------

    def _index_load(self, e: ast.Index) -> int:
        base_type = decay(self.typer.type_of(e.base))
        elem_is_array = isinstance(base_type, PointerType) and isinstance(
            base_type.elem, ArrayType
        )
        self.charge(ALU if elem_is_array else MEM_RD)
        rb = self.expr(e.base)
        ri = self.expr(e.index)
        t = self.newtmp()
        self.emit(op.IDX, t, rb, ri)
        return t

    def _addr_of(self, e: ast.Expr) -> int:
        if isinstance(e, ast.Name):
            symbol = e.symbol
            assert symbol is not None
            if isinstance(symbol.type, ArrayType) or symbol.type.is_pointer:
                return self.expr(e)  # decays / copies the pointer
            if not symbol.address_taken:
                raise InterpError(f"&{symbol.name}: scalar was not marked address-taken")
            if symbol.kind == "global":
                raise InterpError("address-of scalar globals is not supported; use an array")
            self.charge(ALU)
            t = self.newtmp()
            self.emit(op.MOV, t, symbol.slot)  # the box list is the pointer
            return t
        if isinstance(e, ast.Index):
            self.charge(ALU)
            rb = self.expr(e.base)
            ri = self.expr(e.index)
            t = self.newtmp()
            self.emit(op.ADDR, t, rb, ri)
            return t
        if isinstance(e, ast.Unary) and e.op == "*":
            return self.expr(e.operand)
        raise InterpError("cannot take the address of this expression")

    # -- unary -----------------------------------------------------------------

    def _unary(self, e: ast.Unary) -> int:
        if e.op == "&":
            return self._addr_of(e.operand)
        if e.op == "*":
            self.charge(MEM_RD)
            rp = self.expr(e.operand)
            t = self.newtmp()
            self.emit(op.DEREF, t, rp)
            return t
        operand_type = decay(self.typer.type_of(e.operand))
        if e.op == "-":
            if operand_type == FLOAT:
                self.charge(FALU)
                rs = self.expr(e.operand)
                t = self.newtmp()
                self.emit(op.FNEG, t, rs)
                return t
            self.charge(ALU)
            rs = self.expr(e.operand)
            t = self.newtmp()
            self.emit(op.NEG, t, rs)
            return t
        if e.op == "!":
            self.charge(ALU)
            rs = self.expr(e.operand)
            t = self.newtmp()
            self.emit(op.NOT, t, rs)
            return t
        if e.op == "~":
            self.charge(ALU)
            rs = self.expr(e.operand)
            t = self.newtmp()
            self.emit(op.BNOT, t, rs)
            return t
        raise InterpError(f"unknown unary operator {e.op!r}")

    def _incdec(self, e: ast.IncDec) -> int:
        target_type = decay(self.typer.type_of(e.target))
        delta = 1 if e.op == "++" else -1
        self.charge(ALU)
        rv = self.expr(e.target)  # load, with its own charges
        rd = self.newtmp()
        nt = self.newtmp()
        self.emit(op.LOADI, rd, delta)
        if isinstance(target_type, PointerType):
            self.emit(op.PADD, nt, rv, rd)
        elif target_type == FLOAT:
            self.emit(op.FADD, nt, rv, rd)
        else:
            self.emit(op.ADD, nt, rv, rd)
        self._store(e.target, nt)
        return nt if e.prefix else rv

    # -- binary -----------------------------------------------------------------

    _INT_OPS = {
        "+": op.ADD, "-": op.SUB, "*": op.MUL, "/": op.DIV, "%": op.MOD,
        "<<": op.SHL, ">>": op.SHR, "&": op.AND, "|": op.OR, "^": op.XOR,
    }
    _INT_CLS = {"*": C_MUL, "/": C_DIV, "%": C_DIV}
    _FLOAT_OPS = {"+": op.FADD, "-": op.FSUB, "*": op.FMUL, "/": op.FDIV}
    _FLOAT_CLS = {"+": FALU, "-": FALU, "*": FMUL, "/": C_FDIV}
    _CMP_OPS = {
        "==": op.EQ, "!=": op.NE, "<": op.LT, "<=": op.LE, ">": op.GT, ">=": op.GE,
    }

    def _binary(self, e: ast.Binary) -> int:
        if e.op == ",":
            self.expr(e.lhs)
            return self.expr(e.rhs)
        lhs_type = decay(self.typer.type_of(e.lhs))
        rhs_type = decay(self.typer.type_of(e.rhs))
        o = e.op
        # Pointer arithmetic ---------------------------------------------------
        if isinstance(lhs_type, PointerType) and o in ("+", "-"):
            self.charge(ALU)
            ra = self.expr(e.lhs)
            rb = self.expr(e.rhs)
            t = self.newtmp()
            if isinstance(rhs_type, PointerType):
                self.emit(op.PDIFF, t, ra, rb)
            else:
                self.emit(op.PADD if o == "+" else op.PSUB, t, ra, rb)
            return t
        if isinstance(rhs_type, PointerType) and o == "+":
            self.charge(ALU)
            ra = self.expr(e.lhs)  # int side first: closure evaluation order
            rb = self.expr(e.rhs)
            t = self.newtmp()
            self.emit(op.PADD, t, rb, ra)
            return t
        # Comparisons ----------------------------------------------------------
        if o in self._CMP_OPS:
            self.charge(FALU if FLOAT in (lhs_type, rhs_type) else ALU)
            ra = self.expr(e.lhs)
            rb = self.expr(e.rhs)
            t = self.newtmp()
            self.emit(self._CMP_OPS[o], t, ra, rb)
            return t
        # Arithmetic -----------------------------------------------------------
        if FLOAT in (lhs_type, rhs_type):
            if o not in self._FLOAT_OPS:
                raise InterpError(f"operator {o!r} requires integer operands")
            self.charge(self._FLOAT_CLS[o])
            opcode = self._FLOAT_OPS[o]
        else:
            self.charge(self._INT_CLS.get(o, ALU))
            opcode = self._INT_OPS[o]
        ra = self.expr(e.lhs)
        rb = self.expr(e.rhs)
        t = self.newtmp()
        self.emit(opcode, t, ra, rb)
        return t

    def _logical(self, e: ast.Logical) -> int:
        self.charge(BRANCH)
        ra = self.expr(e.lhs)
        self.flush()
        d = self.newtmp()
        short = self.newlabel()
        end = self.newlabel()
        if e.op == "&&":
            self.emit(op.JF, ra, short)
            rb = self.expr(e.rhs)
            self.emit(op.BOOL, d, rb)
            self.flush()
            self.emit(op.JUMP, end)
            self.bind(short)
            self.emit(op.LOADI, d, 0)
            self.bind(end)
        else:
            self.emit(op.JT, ra, short)
            rb = self.expr(e.rhs)
            self.emit(op.BOOL, d, rb)
            self.flush()
            self.emit(op.JUMP, end)
            self.bind(short)
            self.emit(op.LOADI, d, 1)
            self.bind(end)
        return d

    def _ternary(self, e: ast.Ternary) -> int:
        self.charge(BRANCH)
        rc = self.expr(e.cond)
        self.flush()
        d = self.newtmp()
        els = self.newlabel()
        end = self.newlabel()
        self.emit(op.JF, rc, els)
        rt = self.expr(e.then)
        self.emit(op.MOV, d, rt)
        self.flush()
        self.emit(op.JUMP, end)
        self.bind(els)
        re_ = self.expr(e.els)
        self.emit(op.MOV, d, re_)
        self.bind(end)
        return d

    def _assign(self, e: ast.Assign) -> int:
        if e.op == "=":
            rv = self.expr(e.value)
            self._store(e.target, rv)
            return rv
        # Compound assignment desugars to load-op-store (store re-evaluates
        # the target), exactly as the closure compiler does.
        binop = ast.Binary(op=e.op[:-1], lhs=e.target, rhs=e.value, line=e.line)
        rv = self._binary(binop)
        self._store(e.target, rv)
        return rv

    # -- calls -------------------------------------------------------------------

    def _call(self, e: ast.Call) -> int:
        if isinstance(e.func, ast.Name) and e.func.symbol is None:
            name = e.func.name
            if name not in BUILTINS:
                raise InterpError(f"call to unknown builtin {name!r}")
            return self._builtin(name, e.args)
        if isinstance(e.func, ast.Name) and e.func.symbol.kind == "func":
            fi = self.fn_index.get(e.func.name)
            if fi is None:
                raise InterpError(f"function {e.func.name!r} has no body")
            self.charge(C_CALL)
            arg_regs = tuple(self.expr(a) for a in e.args)
            self.flush()
            t = self.newtmp()
            self.emit(op.CALL, t, fi, arg_regs)
            return t
        self.charge(C_CALL)
        rf = self.expr(e.func)
        arg_regs = tuple(self.expr(a) for a in e.args)
        self.flush()
        t = self.newtmp()
        self.emit(op.CALLI, t, rf, arg_regs)
        return t

    # -- reuse/profiling descriptors ----------------------------------------

    def _descriptor(self, e: ast.Expr, name: str) -> tuple:
        """(mode, slot, kind, charge_class) for a probe/commit/profile arg.

        The reuse transformation only ever passes plain variable accesses
        (see ``repro.reuse.transform``), which lets the ops defer the key
        loads — and their charges — to the non-bypassed path, mirroring
        the closure backend's governed-table gate check.  Hand-written
        intrinsic calls may pass anything: literals keep the deferred
        CONST charge (``SRC_CONST`` carries the value itself), and other
        expressions are evaluated eagerly into a temp — their charges
        land in the surrounding block and the op defers nothing for that
        operand (charge class -1).
        """
        if isinstance(e, ast.IntLit):
            return (op.SRC_CONST, wrap32(e.value), _value_kind(self, e), CONST)
        if isinstance(e, ast.FloatLit):
            return (op.SRC_CONST, float(e.value), _value_kind(self, e), CONST)
        if not isinstance(e, ast.Name) or e.symbol is None:
            return (op.SRC_REG, self.expr(e), _value_kind(self, e), -1)
        symbol = e.symbol
        kind = _value_kind(self, e)
        if symbol.kind == "global":
            cls = CONST if isinstance(symbol.type, ArrayType) else GLOBAL_RD
            return (op.SRC_GLOBAL, symbol.slot, kind, cls)
        if symbol.address_taken and symbol.type.is_scalar:
            return (op.SRC_BOX, symbol.slot, kind, LOCAL_RD)
        cls = CONST if isinstance(symbol.type, ArrayType) else LOCAL_RD
        return (op.SRC_REG, symbol.slot, kind, cls)

    # -- builtins ---------------------------------------------------------------

    def _builtin(self, name: str, args: list) -> int:
        if name == "__reuse_probe":
            seg = _segment_id(args, name)
            self.record_site(seg, "probe_line")
            descs = [self._descriptor(a, name) for a in args[1:]]
            meta = tuple((kind, cls) for _, _, kind, cls in descs)
            srcs = tuple((mode, slot) for mode, slot, _, _ in descs)
            self.flush()
            if self.profiled:
                self.emit(op.PROF_PB, seg)
            t = self.newtmp()
            self.emit(op.PROBE, t, seg, meta, srcs)
            if self.profiled:
                self.emit(op.PROF_PE, seg, t)
            if self.metered:
                # Same metrics, registered in the same order as the closure
                # backend so the registry's family ordering is identical.
                registry = self.machine.metrics_registry
                label = {"segment": str(seg)}
                counters = tuple(
                    registry.counter(metric, help_text).labels(**label)
                    for metric, help_text in (
                        ("repro_reuse_probes", "Reuse-table probes that consulted the table."),
                        ("repro_reuse_hits", "Reuse-table probe hits."),
                        ("repro_reuse_misses", "Reuse-table probe misses."),
                        ("repro_reuse_bypassed", "Probes skipped by the governor's bypass."),
                    )
                )
                self.emit(op.METER_PROBE, seg, t, self.const(counters))
            return t

        if name in ("__reuse_out_i", "__reuse_out_f"):
            seg = _segment_id(args, name)
            if not isinstance(args[1], ast.IntLit):
                raise InterpError(f"{name}: output position must be a literal")
            self.charge(HASH_WORD)
            t = self.newtmp()
            self.emit(op.ROUT, t, seg, args[1].value)
            return t

        if name == "__reuse_out_arr":
            seg = _segment_id(args, name)
            if not isinstance(args[1], ast.IntLit):
                raise InterpError(f"{name}: output position must be a literal")
            desc = self._descriptor(args[2], name)
            self.emit(op.ROUT_ARR, seg, args[1].value, (desc[0], desc[1]), desc[3])
            return self.newtmp()

        if name == "__reuse_commit":
            seg = _segment_id(args, name)
            self.record_site(seg, "commit_line")
            descs = [self._descriptor(a, name) for a in args[1:]]
            meta = tuple((kind, cls) for _, _, kind, cls in descs)
            srcs = tuple((mode, slot) for mode, slot, _, _ in descs)
            self.flush()
            if self.profiled:
                self.emit(op.PROF_CB, seg)
            self.emit(op.COMMIT, seg, meta, srcs)
            if self.profiled:
                self.emit(op.PROF_SX, seg)
            return self.newtmp()

        if name == "__reuse_end":
            seg = _segment_id(args, name)
            self.record_site(seg, "end_line")
            self.flush()
            self.emit(op.REND, seg)
            if self.profiled:
                self.emit(op.PROF_SX, seg)
            return self.newtmp()

        if name == "__profile":
            seg = _segment_id(args, name)
            descs = [self._descriptor(a, name) for a in args[1:]]
            kinds = tuple(kind for _, _, kind, _ in descs)
            srcs = tuple((mode, slot) for mode, slot, _, _ in descs)
            self.flush()
            self.emit(op.PROFILE, seg, kinds, srcs)
            return self.newtmp()

        if name in ("__freq", "__seg_enter", "__seg_exit"):
            seg = _segment_id(args, name)
            self.flush()
            opcode = {
                "__freq": op.FREQ, "__seg_enter": op.SEGE, "__seg_exit": op.SEGX,
            }[name]
            self.emit(opcode, seg)
            return self.newtmp()

        if name == "__input_int":
            self.charge(IO)
            t = self.newtmp()
            self.emit(op.INPUT_I, t)
            return t
        if name == "__input_float":
            self.charge(IO)
            t = self.newtmp()
            self.emit(op.INPUT_F, t)
            return t
        if name == "__input_avail":
            t = self.newtmp()
            self.emit(op.INPUT_AV, t)
            return t
        if name in ("__output_int", "__output_float"):
            self.charge(IO)
            rv = self.expr(args[0])
            self.emit(op.OUTPUT, rv)
            return rv
        if name == "__print_int":
            rv = self.expr(args[0])
            self.emit(op.PRINT, rv)
            return rv
        if name == "__assert":
            rv = self.expr(args[0])
            self.emit(op.ASSERT, rv)
            return rv
        if name == "__cast_int":
            from_float = _value_kind(self, args[0]) == _KIND_FLOAT
            self.charge(FALU if from_float else ALU)
            rv = self.expr(args[0])
            t = self.newtmp()
            self.emit(op.CAST_I, t, rv)
            return t
        if name == "__cast_float":
            self.charge(FALU)
            rv = self.expr(args[0])
            t = self.newtmp()
            self.emit(op.CAST_F, t, rv)
            return t
        if name == "__abs":
            self.charge(ALU)
            rv = self.expr(args[0])
            t = self.newtmp()
            self.emit(op.ABS, t, rv)
            return t
        if name == "__fabs":
            self.charge(FALU)
            rv = self.expr(args[0])
            t = self.newtmp()
            self.emit(op.FABS, t, rv)
            return t
        if name in ("__min", "__max"):
            self.charge(ALU)
            ra = self.expr(args[0])
            rb = self.expr(args[1])
            t = self.newtmp()
            self.emit(op.MIN if name == "__min" else op.MAX, t, ra, rb)
            return t
        if name in op.MATH_NAMES:
            self.charge(C_MATH)
            rv = self.expr(args[0])
            t = self.newtmp()
            self.emit(op.MATH, t, rv, op.MATH_NAMES.index(name))
            return t
        raise InterpError(f"builtin {name!r} has no implementation")


def compile_function(fn, typer, machine, fn_index: dict, index: int) -> VMFunction:
    """Compile one mini-C function to a :class:`VMFunction` (unlinked)."""
    vmfn = VMFunction(fn, index)
    vmfn.machine = machine
    vmfn.cycle_profiler = machine.cycle_profiler
    _FnCompiler(fn, vmfn, typer, machine, fn_index).compile()
    return vmfn
