"""Execution engines for the register bytecode.

Two engines run the same :class:`~repro.runtime.vm.vm_compiler.VMFunction`
artifacts:

* **dispatch** — a classic ``while True`` opcode loop over the
  instruction tuples.  Simple, obviously faithful to the opcode
  semantics, and the fallback for anything the translator declines.
* **translate** (the default) — each function's bytecode is translated
  back into one Python function (``compile``/``exec``), with registers
  as Python locals, native ``while``/``if`` control flow rebuilt from
  the compiler's structural jump discipline, single-use temporaries
  re-fused into nested expressions, and direct calls patched in at link
  time.  This is the whole-function generalization of the region fusion
  in :mod:`repro.runtime.fuse` and is where the backend's speedup comes
  from.

``REPRO_VM_ENGINE=dispatch|translate`` selects the engine (default
``translate``); a function the translator cannot reconstruct silently
falls back to dispatch, so the two engines can be mixed per function.

Both engines execute the *reuse and observer ops* through one set of
shared kernels (``k_probe``/``k_commit``/...), each an exact transplant
of the corresponding closure intrinsic in
:mod:`repro.runtime.intrinsics` — same bypass protocol, same charge
order, same hash-word accounting — which is what makes the backends
bit-identical on cycles, metrics, and ledger verdicts.
"""

from __future__ import annotations

import math
import os
import re
from collections import Counter

from ...errors import InterpError
from ..costs import ALU, HASH_FIXED, HASH_WORD, RET
from ..intrinsics import (
    _KIND_AGGREGATE,
    _append_words,
    _checked_sqrt,
    _count_words,
    _resolve_aggregate,
)
from ..values import (
    c_div,
    c_mod,
    c_shl,
    c_shr,
    copy_into,
    deep_copy_value,
    wrap32,
    zero_value,
)
from . import vm_opcodes as op
from .vm_compiler import VMFunction, compile_function

_MATH_IMPLS = (math.cos, math.sin, _checked_sqrt, math.floor)


def _float_div(a: float, b: float) -> float:
    if b == 0:
        raise InterpError("float division by zero")
    return a / b


# ---------------------------------------------------------------------------
# Shared reuse/observer kernels (one implementation for both engines)
# ---------------------------------------------------------------------------
#
# ``vals`` are the already-fetched source values (the descriptors only name
# side-effect-free variable accesses, so fetch order cannot matter); the
# kernels do all the charging, in the closure intrinsics' exact order —
# including charging the key loads only on the non-bypassed path.


def k_probe(machine, ctr, seg, vals, meta):
    table = machine.table_for(seg)
    # adaptive deactivation: a bypassed probe costs one flag test
    if getattr(table, "bypassed", False):
        ctr[ALU] += 1
        table.push_bypass()
        return 0
    words: list[int] = []
    for value, (kind, cls) in zip(vals, meta):
        if cls >= 0:  # cls -1: operand evaluated (and charged) eagerly
            ctr[cls] += 1
        _append_words(words, value, kind)
    ctr[HASH_FIXED] += 1
    ctr[HASH_WORD] += len(words)
    return 1 if table.probe(tuple(words)) else 0


def k_commit(machine, ctr, seg, vals, meta):
    table = machine.table_for(seg)
    if getattr(table, "pending_bypassed", None) and table.pending_bypassed():
        ctr[ALU] += 1
        table.commit(())
        return 0
    values = []
    n_words = 0
    for value, (kind, cls) in zip(vals, meta):
        if cls >= 0:
            ctr[cls] += 1
        if kind == _KIND_AGGREGATE:
            value = _resolve_aggregate(value)
            n_words += _count_words(value)
        else:
            n_words += 1
        values.append(value)
    ctr[HASH_WORD] += n_words
    machine.table_for(seg).commit(tuple(values))
    return 0


def k_out_arr(machine, ctr, seg, pos, dest, cls):
    stored = machine.table_for(seg).output(pos)
    ctr[HASH_WORD] += _count_words(stored)
    if cls >= 0:
        ctr[cls] += 1  # the destination operand's own access charge
    if type(dest) is tuple:
        backing, offset = dest
        for i, item in enumerate(stored):
            backing[offset + i] = item
    else:
        copy_into(dest, list(stored) if isinstance(stored, tuple) else stored)
    return 0


def k_profile(machine, seg, vals, kinds):
    # Zero-cost stub: the closure snapshots and restores the counters
    # around argument evaluation; here the fetches never charge at all.
    profiler = machine.profiler
    if profiler is None:
        return 0
    words: list[int] = []
    for value, kind in zip(vals, kinds):
        _append_words(words, value, kind)
    profiler.record(seg, tuple(words))
    return 0


def k_freq(machine, seg):
    profiler = machine.profiler
    if profiler is not None:
        profiler.count_entry(seg)
    return 0


def k_seg_enter(machine, seg):
    profiler = machine.profiler
    if profiler is not None:
        profiler.segment_enter(seg)
    return 0


def k_seg_exit(machine, seg):
    profiler = machine.profiler
    if profiler is not None:
        profiler.segment_exit(seg)
    return 0


def k_probe_end(machine, prof, seg, r):
    pending_bypassed = getattr(machine.table_for(seg), "pending_bypassed", None)
    prof.probe_end(
        seg, hit=r == 1, bypassed=pending_bypassed is not None and pending_bypassed()
    )


def k_meter_probe(machine, seg, r, counters):
    probes_c, hits_c, misses_c, bypassed_c = counters
    pending_bypassed = getattr(machine.table_for(seg), "pending_bypassed", None)
    if pending_bypassed is not None and pending_bypassed():
        bypassed_c.inc()
    else:
        probes_c.inc()
        if r == 1:
            hits_c.inc()
        else:
            misses_c.inc()


def _icall(target):
    if not isinstance(target, VMFunction):
        raise InterpError("indirect call target is not a function")
    return target.call


def _fetch(machine, regs, srcs):
    vals = []
    for mode, slot in srcs:
        if mode == 0:  # SRC_REG
            vals.append(regs[slot])
        elif mode == 1:  # SRC_BOX
            vals.append(regs[slot][0])
        elif mode == 2:  # SRC_GLOBAL
            vals.append(machine.globals[slot])
        else:  # SRC_CONST: the slot IS the literal value
            vals.append(slot)
    return vals


# ---------------------------------------------------------------------------
# Dispatch engine
# ---------------------------------------------------------------------------


def install_dispatch(vmfn: VMFunction, prog: "VMProgram") -> None:
    """Install a dispatch-loop ``call`` on ``vmfn``."""
    machine = vmfn.machine
    ctr = machine.counters
    code = vmfn.code
    consts = vmfn.consts
    nregs = vmfn.nregs
    param_specs = vmfn.param_specs
    fns = prog.by_index
    prof = vmfn.cycle_profiler
    name = vmfn.name

    def call(*args):
        R = [0] * nregs
        for (slot, boxed), value in zip(param_specs, args):
            R[slot] = [value] if boxed else value
        g = machine.globals
        pc = 0
        while True:
            ins = code[pc]
            o = ins[0]
            if o == op.CHARGE:
                for cls, n in ins[1]:
                    ctr[cls] += n
            elif o == op.MOV:
                R[ins[1]] = R[ins[2]]
            elif o == op.LOADI:
                R[ins[1]] = ins[2]
            elif o == op.ADD:
                R[ins[1]] = wrap32(R[ins[2]] + R[ins[3]])
            elif o == op.SUB:
                R[ins[1]] = wrap32(R[ins[2]] - R[ins[3]])
            elif o == op.MUL:
                R[ins[1]] = wrap32(R[ins[2]] * R[ins[3]])
            elif o == op.DIV:
                R[ins[1]] = c_div(R[ins[2]], R[ins[3]])
            elif o == op.MOD:
                R[ins[1]] = c_mod(R[ins[2]], R[ins[3]])
            elif o == op.SHL:
                R[ins[1]] = c_shl(R[ins[2]], R[ins[3]])
            elif o == op.SHR:
                R[ins[1]] = c_shr(R[ins[2]], R[ins[3]])
            elif o == op.AND:
                R[ins[1]] = R[ins[2]] & R[ins[3]]
            elif o == op.OR:
                R[ins[1]] = R[ins[2]] | R[ins[3]]
            elif o == op.XOR:
                R[ins[1]] = R[ins[2]] ^ R[ins[3]]
            elif o == op.NEG:
                R[ins[1]] = wrap32(-R[ins[2]])
            elif o == op.BNOT:
                R[ins[1]] = ~R[ins[2]]
            elif o == op.NOT:
                R[ins[1]] = 0 if R[ins[2]] else 1
            elif o == op.BOOL:
                R[ins[1]] = 1 if R[ins[2]] else 0
            elif o == op.FADD:
                R[ins[1]] = R[ins[2]] + R[ins[3]]
            elif o == op.FSUB:
                R[ins[1]] = R[ins[2]] - R[ins[3]]
            elif o == op.FMUL:
                R[ins[1]] = R[ins[2]] * R[ins[3]]
            elif o == op.FDIV:
                R[ins[1]] = _float_div(R[ins[2]], R[ins[3]])
            elif o == op.FNEG:
                R[ins[1]] = -R[ins[2]]
            elif o == op.EQ:
                R[ins[1]] = 1 if R[ins[2]] == R[ins[3]] else 0
            elif o == op.NE:
                R[ins[1]] = 1 if R[ins[2]] != R[ins[3]] else 0
            elif o == op.LT:
                R[ins[1]] = 1 if R[ins[2]] < R[ins[3]] else 0
            elif o == op.LE:
                R[ins[1]] = 1 if R[ins[2]] <= R[ins[3]] else 0
            elif o == op.GT:
                R[ins[1]] = 1 if R[ins[2]] > R[ins[3]] else 0
            elif o == op.GE:
                R[ins[1]] = 1 if R[ins[2]] >= R[ins[3]] else 0
            elif o == op.JUMP:
                pc = ins[1]
                continue
            elif o == op.JF:
                if not R[ins[1]]:
                    pc = ins[2]
                    continue
            elif o == op.JT:
                if R[ins[1]]:
                    pc = ins[2]
                    continue
            elif o == op.RETV:
                ctr[RET] += 1
                return R[ins[1]]
            elif o == op.RET0:
                ctr[RET] += 1
                return 0
            elif o == op.LOADG:
                R[ins[1]] = g[ins[2]]
            elif o == op.STOREG:
                g[ins[1]] = R[ins[2]]
            elif o == op.GETBOX:
                R[ins[1]] = R[ins[2]][0]
            elif o == op.SETBOX:
                R[ins[1]][0] = R[ins[2]]
            elif o == op.NEWBOX:
                R[ins[1]] = [R[ins[2]]]
            elif o == op.NEWBOXI:
                R[ins[1]] = [ins[2]]
            elif o == op.ALLOC_Z:
                R[ins[1]] = zero_value(consts[ins[2]])
            elif o == op.ALLOC_T:
                R[ins[1]] = deep_copy_value(consts[ins[2]])
            elif o == op.PADD:
                p = R[ins[2]]
                i = R[ins[3]]
                R[ins[1]] = (p[0], p[1] + i) if type(p) is tuple else (p, i)
            elif o == op.PSUB:
                p = R[ins[2]]
                i = -R[ins[3]]
                R[ins[1]] = (p[0], p[1] + i) if type(p) is tuple else (p, i)
            elif o == op.PDIFF:
                a = R[ins[2]]
                b = R[ins[3]]
                ao = a[1] if type(a) is tuple else 0
                bo = b[1] if type(b) is tuple else 0
                R[ins[1]] = ao - bo
            elif o == op.IDX:
                b = R[ins[2]]
                i = R[ins[3]]
                R[ins[1]] = b[0][b[1] + i] if type(b) is tuple else b[i]
            elif o == op.IDXW:
                b = R[ins[1]]
                i = R[ins[2]]
                if type(b) is tuple:
                    b[0][b[1] + i] = R[ins[3]]
                else:
                    b[i] = R[ins[3]]
            elif o == op.ADDR:
                b = R[ins[2]]
                i = R[ins[3]]
                R[ins[1]] = (b[0], b[1] + i) if type(b) is tuple else (b, i)
            elif o == op.DEREF:
                p = R[ins[2]]
                R[ins[1]] = p[0][p[1]] if type(p) is tuple else p[0]
            elif o == op.DEREFW:
                p = R[ins[1]]
                if type(p) is tuple:
                    p[0][p[1]] = R[ins[2]]
                else:
                    p[0] = R[ins[2]]
            elif o == op.CALL:
                R[ins[1]] = fns[ins[2]].call(*[R[a] for a in ins[3]])
            elif o == op.CALLI:
                R[ins[1]] = _icall(R[ins[2]])(*[R[a] for a in ins[3]])
            elif o == op.LOADFN:
                R[ins[1]] = fns[ins[2]]
            elif o == op.INPUT_I:
                R[ins[1]] = wrap32(int(machine.next_input()))
            elif o == op.INPUT_F:
                R[ins[1]] = float(machine.next_input())
            elif o == op.INPUT_AV:
                R[ins[1]] = machine.input_available()
            elif o == op.OUTPUT:
                machine.emit(R[ins[1]])
            elif o == op.PRINT:
                machine.debug_log.append(R[ins[1]])
            elif o == op.ASSERT:
                if not R[ins[1]]:
                    raise InterpError("__assert failed")
            elif o == op.CAST_I:
                R[ins[1]] = wrap32(int(R[ins[2]]))
            elif o == op.CAST_F:
                R[ins[1]] = float(R[ins[2]])
            elif o == op.ABS:
                R[ins[1]] = wrap32(abs(R[ins[2]]))
            elif o == op.FABS:
                R[ins[1]] = abs(float(R[ins[2]]))
            elif o == op.MIN:
                R[ins[1]] = min(R[ins[2]], R[ins[3]])
            elif o == op.MAX:
                R[ins[1]] = max(R[ins[2]], R[ins[3]])
            elif o == op.MATH:
                R[ins[1]] = float(_MATH_IMPLS[ins[3]](float(R[ins[2]])))
            elif o == op.PROBE:
                R[ins[1]] = k_probe(
                    machine, ctr, ins[2], _fetch(machine, R, ins[4]), ins[3]
                )
            elif o == op.ROUT:
                R[ins[1]] = machine.table_for(ins[2]).output(ins[3])
            elif o == op.ROUT_ARR:
                mode, slot = ins[3]
                dest = (
                    R[slot]
                    if mode == 0
                    else (R[slot][0] if mode == 1 else machine.globals[slot])
                )
                k_out_arr(machine, ctr, ins[1], ins[2], dest, ins[4])
            elif o == op.COMMIT:
                k_commit(machine, ctr, ins[1], _fetch(machine, R, ins[3]), ins[2])
            elif o == op.REND:
                machine.table_for(ins[1]).finish()
            elif o == op.PROFILE:
                if machine.profiler is not None:
                    k_profile(machine, ins[1], _fetch(machine, R, ins[3]), ins[2])
            elif o == op.FREQ:
                k_freq(machine, ins[1])
            elif o == op.SEGE:
                k_seg_enter(machine, ins[1])
            elif o == op.SEGX:
                k_seg_exit(machine, ins[1])
            elif o == op.PROF_ENTER:
                prof.enter_function(name)
            elif o == op.PROF_EXIT:
                prof.exit_function()
            elif o == op.PROF_PB:
                prof.probe_begin(ins[1])
            elif o == op.PROF_PE:
                k_probe_end(machine, prof, ins[1], R[ins[2]])
            elif o == op.PROF_CB:
                prof.commit_begin(ins[1])
            elif o == op.PROF_SX:
                prof.segment_exit(ins[1])
            elif o == op.PROF_LINE:
                prof.at_line(ins[1])
            elif o == op.METER_FUNC:
                consts[ins[1]].inc()
            elif o == op.METER_PROBE:
                k_meter_probe(machine, ins[1], R[ins[2]], consts[ins[3]])
            else:  # pragma: no cover - complete opcode coverage above
                raise InterpError(f"unknown opcode {o}")
            pc += 1

    vmfn.call = call
    vmfn.engine = "dispatch"


# ---------------------------------------------------------------------------
# Translation engine
# ---------------------------------------------------------------------------


class Untranslatable(Exception):
    """The function's control flow defeats structural reconstruction."""


def _w32(atom: str) -> str:
    """Inline signed 32-bit wrap (same template as repro.runtime.fuse)."""
    return f"((({atom}) & 4294967295) ^ 2147483648) - 2147483648"


# Register-operand signatures, used by the translator's use census.
_W1R23 = frozenset(
    (
        op.ADD, op.SUB, op.MUL, op.DIV, op.MOD, op.SHL, op.SHR, op.AND,
        op.OR, op.XOR, op.FADD, op.FSUB, op.FMUL, op.FDIV, op.EQ, op.NE,
        op.LT, op.LE, op.GT, op.GE, op.PADD, op.PSUB, op.PDIFF, op.IDX,
        op.ADDR, op.MIN, op.MAX,
    )
)
_W1R2 = frozenset(
    (
        op.MOV, op.GETBOX, op.NEWBOX, op.NEG, op.BNOT, op.NOT, op.BOOL,
        op.FNEG, op.DEREF, op.CAST_I, op.CAST_F, op.ABS, op.FABS, op.MATH,
    )
)
_W1 = frozenset(
    (
        op.LOADI, op.LOADG, op.NEWBOXI, op.ALLOC_Z, op.ALLOC_T, op.LOADFN,
        op.INPUT_I, op.INPUT_F, op.INPUT_AV, op.PROBE, op.ROUT,
    )
)
_R1 = frozenset((op.RETV, op.OUTPUT, op.PRINT, op.ASSERT, op.JF, op.JT))

# Ops that observe the counters (directly or through an observer that
# reads ``machine.cycles``), leave the function, or touch I/O.  A loop
# containing none of these can defer its CHARGE sites to loop exit:
# nothing inside can tell the difference on a completing run.
_AGG_EXCLUDED = frozenset(
    (
        op.CALL, op.CALLI, op.RETV, op.RET0,
        op.PROBE, op.ROUT, op.ROUT_ARR, op.COMMIT, op.REND,
        op.PROFILE, op.FREQ, op.SEGE, op.SEGX,
        op.PROF_ENTER, op.PROF_EXIT, op.PROF_PB, op.PROF_PE,
        op.PROF_CB, op.PROF_SX, op.PROF_LINE, op.METER_FUNC, op.METER_PROBE,
        op.INPUT_I, op.INPUT_F, op.INPUT_AV, op.OUTPUT, op.PRINT,
    )
)

_CMP_TEMPLATES = {
    op.EQ: "==", op.NE: "!=", op.LT: "<", op.LE: "<=", op.GT: ">", op.GE: ">=",
}


def _reg_uses(code) -> tuple[Counter, Counter]:
    """Static read/write counts per register over one function."""
    reads: Counter = Counter()
    writes: Counter = Counter()
    for ins in code:
        o = ins[0]
        if o in _W1R23:
            writes[ins[1]] += 1
            reads[ins[2]] += 1
            reads[ins[3]] += 1
        elif o in _W1R2:
            writes[ins[1]] += 1
            reads[ins[2]] += 1
        elif o in _W1:
            writes[ins[1]] += 1
        elif o in _R1:
            reads[ins[1]] += 1
        elif o == op.CALL:
            writes[ins[1]] += 1
            for a in ins[3]:
                reads[a] += 1
        elif o == op.CALLI:
            writes[ins[1]] += 1
            reads[ins[2]] += 1
            for a in ins[3]:
                reads[a] += 1
        elif o == op.STOREG:
            reads[ins[2]] += 1
        elif o == op.SETBOX or o == op.DEREFW:
            reads[ins[1]] += 1
            reads[ins[2]] += 1
        elif o == op.IDXW:
            reads[ins[1]] += 1
            reads[ins[2]] += 1
            reads[ins[3]] += 1
        elif o == op.PROF_PE or o == op.METER_PROBE:
            reads[ins[2]] += 1
        # Probe-family source descriptors read registers outside the
        # pending machinery (the translator's ``_vals`` names them
        # directly), so count register operands twice: that pins any
        # eagerly-evaluated temp as a materialized assignment instead of
        # an inlinable pending.
        if o == op.PROBE:
            srcs = ins[4]
        elif o == op.COMMIT or o == op.PROFILE:
            srcs = ins[3]
        elif o == op.ROUT_ARR:
            srcs = (ins[3],)
        else:
            continue
        for mode, slot in srcs:
            if mode == op.SRC_REG or mode == op.SRC_BOX:
                reads[slot] += 2
    return reads, writes


class _Pending:
    """A single-use value computation not yet committed to a statement.

    ``cond`` carries a boolean form (``(a < b)`` rather than
    ``1 if (a < b) else 0``) for use in branch contexts; ``volatile``
    marks side-effecting computations (calls, probes, input reads) that
    may not float across a ``CHARGE``.
    """

    __slots__ = ("reg", "expr", "cond", "volatile")

    def __init__(self, reg, expr, cond=None, volatile=False):
        self.reg = reg
        self.expr = expr
        self.cond = cond
        self.volatile = volatile


# Max width of an inlined operand for templates that repeat it textually
# (pointer/index ops); bounds the size blowup of nested pointer chains.
_REPEATED_CAP = 72

# Max width of any pending expression; wider values are materialized.
_PENDING_CAP = 3000

# Loop-invariant operand hoisting: an operand expression built purely
# from registers the enclosing loop never writes (and from constants and
# earlier hoists) computes the same value on every iteration, so it is
# assigned once to a ``_hN`` local in the loop preamble.  Only total
# pure expressions qualify — after stripping register/hoist references,
# numeric literals, and the ternary keywords, any remaining identifier
# (a call, a memory read through ``[``, a ``c_div`` fallback) rejects
# the expression, so hoisting can never raise where the loop would not.
_HOIST_MIN = 10
_HOIST_MAX_PER_LOOP = 64
_INV_TOKENS = re.compile(
    r"\br\d+\b|\b_h\d+\b|\b\d+(?:\.\d+)?(?:e[+-]?\d+)?\b|\bif\b|\belse\b|\bnot\b"
)
_REG_REF = re.compile(r"\br(\d+)\b")
_NONPURE = re.compile(r"[A-Za-z_\[]")


def _loop_writes(code, head: int, back: int) -> set[int]:
    """Registers written by any instruction in ``code[head..back]``."""
    written: set[int] = set()
    for pc in range(head, back + 1):
        ins = code[pc]
        o = ins[0]
        if o in _W1R23 or o in _W1R2 or o in _W1 or o == op.CALL or o == op.CALLI:
            written.add(ins[1])
    return written


class _HoistScope:
    __slots__ = ("written", "by_expr", "assigns")

    def __init__(self, written: set[int]) -> None:
        self.written = written
        self.by_expr: dict[str, str] = {}
        self.assigns: list[str] = []


class _LoopScope:
    __slots__ = ("tail", "exit", "back", "flag", "in_wrapper")

    def __init__(self, tail: int, exit_: int, back: int) -> None:
        self.tail = tail
        self.exit = exit_
        self.back = back
        self.flag = None
        self.in_wrapper = False


class _Translator:
    """Rebuilds one function's bytecode as Python source.

    Relies on the compiler's jump discipline: all jumps are forward
    except loop back edges, every loop is described in ``vmfn.loops``,
    every if/else and short-circuit join is the ``JUMP`` immediately
    before the false-branch target, and ``break``/``continue`` are
    forward jumps to the recorded loop exit/tail.  Any jump that doesn't
    fit raises :class:`Untranslatable` and the function falls back to
    the dispatch engine.

    Expression re-fusion: a temp register written once and read once
    stays *pending* — its defining expression is inlined into the
    consumer when the pending tail matches the consumer's operands in
    evaluation order (a stack discipline, so runtime evaluation order is
    exactly the bytecode's).  Every emitted statement first flushes the
    pending list, so no pending computation ever floats across a store,
    call, or observer op; only pure pendings may float across a
    ``CHARGE`` (observable solely on erroring runs — the same divergence
    class :mod:`repro.runtime.fuse` documents and accepts).
    """

    def __init__(self, vmfn: VMFunction) -> None:
        self.vmfn = vmfn
        self.code = vmfn.code
        self.loops = vmfn.loops
        self.lines: list[str] = []
        self.indent = 1
        self.uses_globals = False
        self.used_calls: set[int] = set()
        self.used_fnobjs: set[int] = set()
        self._scopes: list[_LoopScope] = []
        self._n = 0  # wrapper/flag name counter
        reads, writes = _reg_uses(vmfn.code)
        base = vmfn.frame_size
        self.inlinable = {
            r for r, n in reads.items() if n == 1 and writes[r] == 1 and r >= base
        }
        # Dead temps (postfix ++/-- in statement position leaves one):
        # their defining copies need not be emitted at all.
        self.unread = {r for r in writes if r >= base and reads[r] == 0}
        self.pending: list[_Pending] = []
        # Inside an aggregated loop this holds the loop's CHARGE sites as
        # (counter_name, ((cls, n), ...)); None means charge directly.
        self._agg: list[tuple[str, tuple]] | None = None
        self._hoists: list[_HoistScope] = []
        self._hn = 0  # hoisted-value name counter

    def w(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    # -- pending-expression machinery ----------------------------------------

    def flush(self) -> None:
        for e in self.pending:
            self.w(f"r{e.reg} = {e.expr}")
        self.pending.clear()

    def consume(self, regs, caps=None):
        """Resolve operand registers to ``[expr, cond, volatile]`` triples.

        Matches operands right-to-left against the pending tail (so
        inlining preserves evaluation order).  If some operand refers to
        a pending def that can't be inlined this way, everything is
        flushed first so a plain register read is always valid.
        """
        out = [[f"r{r}", None, False] for r in regs]
        i = len(self.pending) - 1
        k = len(regs) - 1
        while k >= 0 and i >= 0:
            e = self.pending[i]
            if e.reg != regs[k]:
                break
            # A capped slot is repeated textually by its template: never
            # inline a side-effecting expression there (it would run more
            # than once), and bound pure ones to keep the blowup linear.
            if caps is not None and caps[k] and (
                e.volatile or len(e.expr) > _REPEATED_CAP
            ):
                if e.volatile or any(p.volatile for p in self.pending[:i]):
                    break
                # Pure and too wide to repeat: materialize it here, ahead
                # of its elders (value-safe — a purely-pure pending chain
                # reads only state no pending can write), and keep
                # matching older entries into the other operand slots.
                self.w(f"r{e.reg} = {e.expr}")
                del self.pending[i]
                i -= 1
                k -= 1
                continue
            out[k] = [e.expr, e.cond, e.volatile]
            i -= 1
            k -= 1
        unmatched = {regs[j] for j in range(k + 1)}
        if any(e.reg in unmatched for e in self.pending[: i + 1]):
            self.flush()
            return [[f"r{r}", None, False] for r in regs]
        del self.pending[i + 1 :]
        return out

    def value(self, dest: int, expr: str, cond=None, volatile=False) -> None:
        """Record a value computation: pend it if single-use, else emit.

        Oversized expressions are materialized instead of pended (after
        flushing their elders, so execution order is unchanged) to keep
        the generated source within the parser's nesting comfort zone.
        """
        if dest in self.inlinable and len(expr) < _PENDING_CAP:
            self.pending.append(_Pending(dest, f"({expr})", cond, volatile))
        else:
            self.flush()
            self.w(f"r{dest} = {expr}")

    def stmt(self, line: str) -> None:
        self.flush()
        self.w(line)

    # -- source construction -------------------------------------------------

    def build(self) -> str:
        params = [f"_p{i}" for i in range(len(self.vmfn.param_specs))]
        self.emit_range(0, len(self.code))
        header = []
        for (slot, boxed), p in zip(self.vmfn.param_specs, params):
            header.append(f"    r{slot} = [{p}]" if boxed else f"    r{slot} = {p}")
        if self.uses_globals:
            header.append("    _g = _m.globals")
        name = f"_vm_{self.vmfn.name}"
        src = "\n".join(
            [f"def {name}({', '.join(params)}):"]
            + header
            + (self.lines or ["    pass"])
        )
        return src

    # -- range / structure emission ------------------------------------------

    def emit_range(self, lo: int, hi: int, skip_loop_at: int = -1) -> None:
        code = self.code
        pc = lo
        while pc < hi:
            if pc in self.loops and pc != skip_loop_at:
                pc = self.emit_loop(pc)
                continue
            ins = code[pc]
            o = ins[0]
            if o == op.JUMP:
                self.jump_to(ins[1], pc, hi)
                pc += 1
            elif o == op.JF or o == op.JT:
                pc = self.branch(pc, ins[1], ins[2], o == op.JF, hi)
            else:
                self.emit_ins(ins)
                pc += 1
        self.flush()

    def jump_to(self, t: int, pc: int, hi: int) -> None:
        self.flush()
        if t == hi:
            return  # join: fall through to the end of this range
        scope = self._scopes[-1] if self._scopes else None
        if scope is not None and t == scope.tail:
            # continue-equivalent: reach the loop's tail (step/cond) region
            if scope.in_wrapper:
                self.w("break")  # ends the one-pass wrapper
            elif scope.tail == scope.back:
                self.w("continue")  # while loop: tail IS the back edge
            else:
                raise Untranslatable(f"continue outside wrapper at pc {pc}")
            return
        if scope is not None and t == scope.exit:
            if scope.in_wrapper:
                self.w(f"{scope.flag} = 1")
                self.w("break")
            else:
                self.w("break")
            return
        raise Untranslatable(f"unclassifiable jump {pc} -> {t}")

    def branch(self, pc: int, r: int, t: int, is_jf: bool, hi: int) -> int:
        code = self.code
        ((cexpr, ccond, _),) = self.consume([r])
        truth = ccond or cexpr
        self.flush()
        scope = self._scopes[-1] if self._scopes else None
        if scope is not None and t == scope.exit:
            # A loop condition's exit test (emitted outside the wrapper).
            if scope.in_wrapper:
                raise Untranslatable(f"exit test inside wrapper at pc {pc}")
            self.w(f"if {'not ' if is_jf else ''}{truth}: break")
            return pc + 1
        if t <= pc or t > hi:
            raise Untranslatable(f"branch {pc} -> {t} escapes range")
        join = None
        if t - 1 > pc and code[t - 1][0] == op.JUMP:
            j = code[t - 1][1]
            if t <= j <= hi and (scope is None or j != scope.exit):
                join = j
        if join is not None:
            # Two-armed: the JUMP before the target is the join.
            if is_jf:
                then_range, else_range = (pc + 1, t - 1), (t, join)
            else:
                then_range, else_range = (t, join), (pc + 1, t - 1)
            self.w(f"if {truth}:")
            self._suite(*then_range)
            self.w("else:")
            self._suite(*else_range)
            return join
        self.w(f"if {truth}:" if is_jf else f"if not {truth}:")
        self._suite(pc + 1, t)
        return t

    def _suite(self, lo: int, hi: int, skip_loop_at: int = -1) -> None:
        self.indent += 1
        before = len(self.lines)
        self.emit_range(lo, hi, skip_loop_at=skip_loop_at)
        if len(self.lines) == before:
            self.w("pass")
        self.indent -= 1

    def _aggregatable(self, head: int, back: int) -> bool:
        for pc in range(head, back + 1):
            if self.code[pc][0] in _AGG_EXCLUDED:
                return False
        return True

    def emit_loop(self, head: int) -> int:
        self.flush()
        tail, back, body, wrapped, has_break = self.loops[head]
        exit_ = back + 1
        # Charge aggregation: in a loop free of counter observers, each
        # CHARGE site becomes one ``_sN += 1`` and its classes are summed
        # up once at loop exit — exact for every completing run, whatever
        # path the iterations take, and ~#classes cheaper per block.
        outer_agg = self._agg
        self._agg = [] if self._aggregatable(head, back) else None
        self._hoists.append(_HoistScope(_loop_writes(self.code, head, back)))
        insert_at = len(self.lines)
        self.w("while True:")
        self.indent += 1
        before = len(self.lines)
        scope = _LoopScope(tail, exit_, back)
        self._scopes.append(scope)
        # Condition region (while/for): charge + cond + exit test.
        self.emit_range(head, body, skip_loop_at=head)
        if wrapped:
            # A bound continue must fall through to the step/cond region:
            # run the body in a one-pass wrapper (continue => wrapper
            # break), with a flag to escape both on a mini-C break.
            self._n += 1
            if has_break:
                scope.flag = f"_bf{self._n}"
                self.w(f"{scope.flag} = 0")
            self.w(f"for _w{self._n} in _ONE:")
            scope.in_wrapper = True
            # skip_loop_at: a do-while body starts AT the loop header
            # (there is no condition region), so the body range must not
            # re-enter this same loop.
            self._suite(body, tail, skip_loop_at=head)
            scope.in_wrapper = False
            if scope.flag is not None:
                self.w(f"if {scope.flag}: break")
        else:
            self.emit_range(body, tail, skip_loop_at=head)
        # Tail region: the for step or the do-while condition.
        self.emit_range(tail, back)
        back_ins = self.code[back]
        if back_ins[0] == op.JT:
            ((cexpr, ccond, _),) = self.consume([back_ins[1]])
            self.flush()
            self.w(f"if not {ccond or cexpr}: break")
        elif back_ins[0] != op.JUMP:  # pragma: no cover - compiler discipline
            raise Untranslatable(f"unexpected back edge at pc {back}")
        self._scopes.pop()
        if len(self.lines) == before:
            self.w("pass")  # for(;;); — an empty infinite loop
        self.indent -= 1
        agg, self._agg = self._agg, outer_agg
        pad = "    " * self.indent
        hoist = self._hoists.pop()
        for i, assign in enumerate(hoist.assigns):
            self.lines.insert(insert_at + i, f"{pad}{assign}")
        insert_at += len(hoist.assigns)
        if agg:
            for i, (var, _) in enumerate(agg):
                self.lines.insert(insert_at + i, f"{pad}{var} = 0")
            totals: dict[int, list[str]] = {}
            for var, pairs in agg:
                for cls, k in pairs:
                    totals.setdefault(cls, []).append(
                        var if k == 1 else f"{k} * {var}"
                    )
            for cls in sorted(totals):
                self.w(f"_c[{cls}] += " + " + ".join(totals[cls]))
        return exit_

    # -- instruction emission -------------------------------------------------

    def _src(self, mode: int, slot: int) -> str:
        if mode == op.SRC_REG:
            return f"r{slot}"
        if mode == op.SRC_BOX:
            return f"r{slot}[0]"
        if mode == op.SRC_CONST:
            return repr(slot)
        self.uses_globals = True
        return f"_g[{slot}]"

    def _vals(self, srcs) -> str:
        if not srcs:
            return "()"
        return "(" + ", ".join(self._src(m, s) for m, s in srcs) + ",)"

    def maybe_hoist(self, expr: str, volatile: bool) -> str:
        """Replace a loop-invariant pure operand with a preamble local."""
        if volatile or not self._hoists or len(expr) < _HOIST_MIN:
            return expr
        scope = self._hoists[-1]
        var = scope.by_expr.get(expr)
        if var is not None:
            return var
        if len(scope.assigns) >= _HOIST_MAX_PER_LOOP:
            return expr
        if _NONPURE.search(_INV_TOKENS.sub("", expr)):
            return expr
        if any(int(m) in scope.written for m in _REG_REF.findall(expr)):
            return expr
        self._hn += 1
        var = f"_h{self._hn}"
        scope.assigns.append(f"{var} = {expr}")
        scope.by_expr[expr] = var
        return var

    def _ab(self, ins):
        """Two register operands; the joint volatility taints the result."""
        (a, _, av), (b, _, bv) = self.consume([ins[2], ins[3]])
        return self.maybe_hoist(a, av), self.maybe_hoist(b, bv), av or bv

    def _one(self, ins):
        ((s, _, v),) = self.consume([ins[2]])
        return self.maybe_hoist(s, v), v

    def emit_ins(self, ins) -> None:
        o = ins[0]
        if o == op.CHARGE:
            # Pure pendings may float across counter increments (the
            # accepted erroring-run divergence); side-effecting ones
            # (calls charge inside the callee) must not.
            if any(e.volatile for e in self.pending):
                self.flush()
            if self._agg is not None:
                self._n += 1
                var = f"_s{self._n}"
                self._agg.append((var, ins[1]))
                self.w(f"{var} += 1")
            else:
                for cls, n in ins[1]:
                    self.w(f"_c[{cls}] += {n}")
        elif o == op.MOV:
            if ins[1] in self.unread:
                return  # dead copy; the source stays pending/assigned
            ((s, c, v),) = self.consume([ins[2]])
            self.value(ins[1], s, cond=c, volatile=v)
        elif o == op.LOADI:
            if ins[1] in self.unread:
                return
            self.value(ins[1], repr(ins[2]))
        elif o == op.ADD:
            a, b, v = self._ab(ins)
            self.value(ins[1], _w32(f"{a} + {b}"), volatile=v)
        elif o == op.SUB:
            a, b, v = self._ab(ins)
            self.value(ins[1], _w32(f"{a} - {b}"), volatile=v)
        elif o == op.MUL:
            a, b, v = self._ab(ins)
            self.value(ins[1], _w32(f"{a} * {b}"), volatile=v)
        elif o == op.DIV:
            # int(a / b) is exact C truncation for |operands| < 2**53 (the
            # quotient would need a*b >= 2**53 to round across an integer);
            # the zero check falls back to c_div for the InterpError.  The
            # dividend repeats only across exclusive branches (one runtime
            # evaluation), so just the guarded divisor is capped — but the
            # guard evaluates the divisor first, so a side-effecting
            # dividend takes the plain call form to keep evaluation order.
            (a, _, av), (b, _, _) = self.consume([ins[2], ins[3]], caps=(False, True))
            if av:
                self.value(ins[1], f"c_div({a}, {b})", volatile=True)
            else:
                self.value(ins[1], f"int({a} / {b}) if {b} else c_div({a}, {b})")
        elif o == op.MOD:
            # fmod is exact on integer-valued doubles and the remainder
            # sign follows the dividend — C99 semantics, like c_mod.
            (a, _, av), (b, _, _) = self.consume([ins[2], ins[3]], caps=(False, True))
            if av:
                self.value(ins[1], f"c_mod({a}, {b})", volatile=True)
            else:
                self.value(ins[1], f"int(_fmod({a}, {b})) if {b} else c_mod({a}, {b})")
        elif o == op.SHL:
            a, b, v = self._ab(ins)
            self.value(ins[1], _w32(f"{a} << ({b} & 31)"), volatile=v)
        elif o == op.SHR:
            a, b, v = self._ab(ins)
            self.value(ins[1], f"{a} >> ({b} & 31)", volatile=v)
        elif o == op.AND:
            a, b, v = self._ab(ins)
            self.value(ins[1], f"{a} & {b}", volatile=v)
        elif o == op.OR:
            a, b, v = self._ab(ins)
            self.value(ins[1], f"{a} | {b}", volatile=v)
        elif o == op.XOR:
            a, b, v = self._ab(ins)
            self.value(ins[1], f"{a} ^ {b}", volatile=v)
        elif o == op.NEG:
            s, v = self._one(ins)
            self.value(ins[1], _w32(f"-{s}"), volatile=v)
        elif o == op.BNOT:
            s, v = self._one(ins)
            self.value(ins[1], f"~{s}", volatile=v)
        elif o == op.NOT:
            ((s, c, v),) = self.consume([ins[2]])
            cond = f"(not {c or s})"
            self.value(ins[1], f"1 if {cond} else 0", cond=cond, volatile=v)
        elif o == op.BOOL:
            ((s, c, v),) = self.consume([ins[2]])
            cond = c or f"({s})"
            self.value(ins[1], f"1 if {cond} else 0", cond=cond, volatile=v)
        elif o == op.FADD:
            a, b, v = self._ab(ins)
            self.value(ins[1], f"{a} + {b}", volatile=v)
        elif o == op.FSUB:
            a, b, v = self._ab(ins)
            self.value(ins[1], f"{a} - {b}", volatile=v)
        elif o == op.FMUL:
            a, b, v = self._ab(ins)
            self.value(ins[1], f"{a} * {b}", volatile=v)
        elif o == op.FDIV:
            a, b, v = self._ab(ins)
            self.value(ins[1], f"_fdiv({a}, {b})", volatile=v)
        elif o == op.FNEG:
            s, v = self._one(ins)
            self.value(ins[1], f"-{s}", volatile=v)
        elif o in _CMP_TEMPLATES:
            a, b, v = self._ab(ins)
            cond = f"({a} {_CMP_TEMPLATES[o]} {b})"
            self.value(ins[1], f"1 if {cond} else 0", cond=cond, volatile=v)
        elif o == op.RETV:
            ((s, _, _),) = self.consume([ins[1]])
            self.flush()
            self.w(f"_c[{RET}] += 1")
            self.w(f"return {s}")
        elif o == op.RET0:
            self.flush()
            self.w(f"_c[{RET}] += 1")
            self.w("return 0")
        elif o == op.LOADG:
            self.uses_globals = True
            self.value(ins[1], f"_g[{ins[2]}]")
        elif o == op.STOREG:
            self.uses_globals = True
            ((s, _, _),) = self.consume([ins[2]])
            self.stmt(f"_g[{ins[1]}] = {s}")
        elif o == op.GETBOX:
            s, v = self._one(ins)
            self.value(ins[1], f"{s}[0]", volatile=v)
        elif o == op.SETBOX:
            (b, _, _), (s, _, _) = self.consume([ins[1], ins[2]])
            self.stmt(f"{b}[0] = {s}")
        elif o == op.NEWBOX:
            s, v = self._one(ins)
            self.value(ins[1], f"[{s}]", volatile=v)
        elif o == op.NEWBOXI:
            self.value(ins[1], f"[{ins[2]!r}]")
        elif o == op.ALLOC_Z:
            self.value(ins[1], f"zero_value(_K[{ins[2]}])")
        elif o == op.ALLOC_T:
            self.value(ins[1], f"deep_copy_value(_K[{ins[2]}])")
        elif o == op.PADD:
            (a, _, _), (b, _, _) = self.consume([ins[2], ins[3]], caps=(True, True))
            self.value(
                ins[1],
                f"({a}[0], {a}[1] + {b}) if type({a}) is tuple else ({a}, {b})",
            )
        elif o == op.PSUB:
            (a, _, _), (b, _, _) = self.consume([ins[2], ins[3]], caps=(True, True))
            self.value(
                ins[1],
                f"({a}[0], {a}[1] - {b}) if type({a}) is tuple else ({a}, -{b})",
            )
        elif o == op.PDIFF:
            (a, _, _), (b, _, _) = self.consume([ins[2], ins[3]], caps=(True, True))
            self.value(
                ins[1],
                f"({a}[1] if type({a}) is tuple else 0)"
                f" - ({b}[1] if type({b}) is tuple else 0)",
            )
        elif o == op.IDX:
            (b, _, _), (i, _, _) = self.consume([ins[2], ins[3]], caps=(True, True))
            self.value(
                ins[1],
                f"{b}[0][{b}[1] + {i}] if type({b}) is tuple else {b}[{i}]",
            )
        elif o == op.IDXW:
            (b, _, _), (i, _, _), (s, _, _) = self.consume(
                [ins[1], ins[2], ins[3]], caps=(True, True, True)
            )
            self.flush()
            self.w(f"if type({b}) is tuple:")
            self.w(f"    {b}[0][{b}[1] + {i}] = {s}")
            self.w("else:")
            self.w(f"    {b}[{i}] = {s}")
        elif o == op.ADDR:
            (b, _, _), (i, _, _) = self.consume([ins[2], ins[3]], caps=(True, True))
            self.value(
                ins[1],
                f"({b}[0], {b}[1] + {i}) if type({b}) is tuple else ({b}, {i})",
            )
        elif o == op.DEREF:
            ((p, _, _),) = self.consume([ins[2]], caps=(True,))
            self.value(ins[1], f"{p}[0][{p}[1]] if type({p}) is tuple else {p}[0]")
        elif o == op.DEREFW:
            (p, _, _), (s, _, _) = self.consume([ins[1], ins[2]], caps=(True, True))
            self.flush()
            self.w(f"if type({p}) is tuple:")
            self.w(f"    {p}[0][{p}[1]] = {s}")
            self.w("else:")
            self.w(f"    {p}[0] = {s}")
        elif o == op.CALL:
            self.used_calls.add(ins[2])
            args = [x[0] for x in self.consume(list(ins[3]))]
            self.value(ins[1], f"_F{ins[2]}({', '.join(args)})", volatile=True)
        elif o == op.CALLI:
            parts = [x[0] for x in self.consume([ins[2], *ins[3]])]
            self.value(
                ins[1],
                f"_icall({parts[0]})({', '.join(parts[1:])})",
                volatile=True,
            )
        elif o == op.LOADFN:
            self.used_fnobjs.add(ins[2])
            self.value(ins[1], f"_FOBJ{ins[2]}")
        elif o == op.INPUT_I:
            self.value(ins[1], _w32("int(_next_input())"), volatile=True)
        elif o == op.INPUT_F:
            self.value(ins[1], "float(_next_input())", volatile=True)
        elif o == op.INPUT_AV:
            self.value(ins[1], "_input_avail()", volatile=True)
        elif o == op.OUTPUT:
            ((s, _, _),) = self.consume([ins[1]])
            self.stmt(f"_emit_out({s})")
        elif o == op.PRINT:
            ((s, _, _),) = self.consume([ins[1]])
            self.stmt(f"_m.debug_log.append({s})")
        elif o == op.ASSERT:
            ((s, c, _),) = self.consume([ins[1]])
            self.stmt(f"if not {c or s}: raise _IErr('__assert failed')")
        elif o == op.CAST_I:
            s, v = self._one(ins)
            self.value(ins[1], _w32(f"int({s})"), volatile=v)
        elif o == op.CAST_F:
            s, v = self._one(ins)
            self.value(ins[1], f"float({s})", volatile=v)
        elif o == op.ABS:
            s, v = self._one(ins)
            self.value(ins[1], _w32(f"abs({s})"), volatile=v)
        elif o == op.FABS:
            s, v = self._one(ins)
            self.value(ins[1], f"abs(float({s}))", volatile=v)
        elif o == op.MIN:
            a, b, v = self._ab(ins)
            self.value(ins[1], f"min({a}, {b})", volatile=v)
        elif o == op.MAX:
            a, b, v = self._ab(ins)
            self.value(ins[1], f"max({a}, {b})", volatile=v)
        elif o == op.MATH:
            s, v = self._one(ins)
            self.value(ins[1], f"float(_MATH[{ins[3]}](float({s})))", volatile=v)
        elif o == op.PROBE:
            self.value(
                ins[1],
                f"_k_probe(_m, _c, {ins[2]}, {self._vals(ins[4])}, {ins[3]!r})",
                volatile=True,
            )
        elif o == op.ROUT:
            self.value(
                ins[1], f"_m.table_for({ins[2]}).output({ins[3]})", volatile=True
            )
        elif o == op.ROUT_ARR:
            dest = self._src(*ins[3])
            self.stmt(f"_k_out_arr(_m, _c, {ins[1]}, {ins[2]}, {dest}, {ins[4]})")
        elif o == op.COMMIT:
            self.stmt(
                f"_k_commit(_m, _c, {ins[1]}, {self._vals(ins[3])}, {ins[2]!r})"
            )
        elif o == op.REND:
            self.stmt(f"_m.table_for({ins[1]}).finish()")
        elif o == op.PROFILE:
            self.flush()
            self.w("if _m.profiler is not None:")
            self.w(f"    _k_profile(_m, {ins[1]}, {self._vals(ins[3])}, {ins[2]!r})")
        elif o == op.FREQ:
            self.stmt(f"_k_freq(_m, {ins[1]})")
        elif o == op.SEGE:
            self.stmt(f"_k_seg_enter(_m, {ins[1]})")
        elif o == op.SEGX:
            self.stmt(f"_k_seg_exit(_m, {ins[1]})")
        elif o == op.PROF_ENTER:
            self.stmt(f"_prof.enter_function({ins[1]!r})")
        elif o == op.PROF_EXIT:
            self.stmt("_prof.exit_function()")
        elif o == op.PROF_PB:
            self.stmt(f"_prof.probe_begin({ins[1]})")
        elif o == op.PROF_PE:
            self.stmt(f"_k_probe_end(_m, _prof, {ins[1]}, r{ins[2]})")
        elif o == op.PROF_CB:
            self.stmt(f"_prof.commit_begin({ins[1]})")
        elif o == op.PROF_SX:
            self.stmt(f"_prof.segment_exit({ins[1]})")
        elif o == op.PROF_LINE:
            self.stmt(f"_prof.at_line({ins[1]})")
        elif o == op.METER_FUNC:
            self.stmt(f"_K[{ins[1]}].inc()")
        elif o == op.METER_PROBE:
            self.stmt(f"_k_meter_probe(_m, {ins[1]}, r{ins[2]}, _K[{ins[3]}])")
        else:  # pragma: no cover - complete opcode coverage above
            raise Untranslatable(f"no template for opcode {o}")


def install_translated(vmfn: VMFunction) -> tuple[dict, set[int], set[int]]:
    """Translate ``vmfn`` to a Python function and install it as ``call``.

    Returns the exec namespace and the function indices used for direct
    calls / function values, to be patched by :func:`link_program` once
    every function has its engine installed.  Raises
    :class:`Untranslatable` (leaving ``vmfn`` unmodified) when the
    bytecode defeats structural reconstruction.
    """
    xl = _Translator(vmfn)
    src = xl.build()
    machine = vmfn.machine
    namespace = {
        "_m": machine,
        "_c": machine.counters,
        "_K": vmfn.consts,
        "_prof": vmfn.cycle_profiler,
        "_ONE": (0,),
        "_IErr": InterpError,
        "_icall": _icall,
        "_fdiv": _float_div,
        "_fmod": math.fmod,
        "_MATH": _MATH_IMPLS,
        "c_div": c_div,
        "c_mod": c_mod,
        "zero_value": zero_value,
        "deep_copy_value": deep_copy_value,
        "_next_input": machine.next_input,
        "_input_avail": machine.input_available,
        "_emit_out": machine.emit,
        "_k_probe": k_probe,
        "_k_commit": k_commit,
        "_k_out_arr": k_out_arr,
        "_k_profile": k_profile,
        "_k_freq": k_freq,
        "_k_seg_enter": k_seg_enter,
        "_k_seg_exit": k_seg_exit,
        "_k_probe_end": k_probe_end,
        "_k_meter_probe": k_meter_probe,
    }
    name = f"_vm_{vmfn.name}"
    exec(compile(src, f"<vm:{vmfn.name}>", "exec"), namespace)
    fn = namespace[name]
    fn.vm_source = src  # for debugging / tests
    vmfn.call = fn
    vmfn.engine = "translate"
    return namespace, xl.used_calls, xl.used_fnobjs


# ---------------------------------------------------------------------------
# Program assembly
# ---------------------------------------------------------------------------


class VMProgram:
    """A whole program compiled to bytecode against a machine.

    Interface-compatible with
    :class:`repro.runtime.compiler.CompiledProgram` (``functions``,
    ``reset_globals``, ``run``), so every caller of ``compile_program``
    works with either backend.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self.functions: dict[str, VMFunction] = {}
        self.by_index: list[VMFunction] = []
        self._global_templates: list = []

    def reset_globals(self) -> None:
        self.machine.globals = [deep_copy_value(v) for v in self._global_templates]

    def run(self, entry: str = "main", args: tuple = ()):
        """Invoke ``entry`` with fresh globals and I/O, return its value.

        Counters are *not* reset so several runs can accumulate, exactly
        like the closure backend's ``CompiledProgram.run``.
        """
        self.reset_globals()
        self.machine.reset_io()
        fn = self.functions.get(entry)
        if fn is None:
            raise InterpError(f"no function named {entry!r}")
        return fn.invoke(tuple(args))


def compile_vm_program(program, machine) -> VMProgram:
    """Compile a resolved mini-C program to bytecode against ``machine``.

    Mirrors ``compile_program``'s phases: function shells (so calls and
    function values resolve by index), global templates, then bodies —
    with the same Typer and the same observer-registration order, so a
    metrics registry sees identical families either way.
    """
    from ...minic.sema import Typer
    from ..compiler import _ensure_recursion_limit, _global_template

    _ensure_recursion_limit()
    prog = VMProgram(machine)
    if machine.source_map is not None:
        machine.source_map.backend = "vm"
    fn_index = {fn.name: i for i, fn in enumerate(program.functions)}
    templates = [_global_template(g.decl) for g in program.globals]
    prog._global_templates = templates
    prog.reset_globals()
    typer = Typer(program)
    for i, fn in enumerate(program.functions):
        vmfn = compile_function(fn, typer, machine, fn_index, i)
        prog.functions[fn.name] = vmfn
        prog.by_index.append(vmfn)
    link_program(prog)
    return prog


def link_program(prog: VMProgram) -> None:
    """Install an execution engine on every function and patch direct
    call references between the generated functions."""
    engine = os.environ.get("REPRO_VM_ENGINE", "translate")
    translated: list[tuple[dict, set[int], set[int]]] = []
    for vmfn in prog.by_index:
        if engine != "dispatch":
            try:
                translated.append(install_translated(vmfn))
                continue
            except Untranslatable:
                pass
        install_dispatch(vmfn, prog)
    # Direct calls bind the callee's entry point without per-call lookups;
    # this must wait until every function has its engine installed.
    for namespace, used_calls, used_fnobjs in translated:
        for fi in used_calls:
            namespace[f"_F{fi}"] = prog.by_index[fi].call
        for fi in used_fnobjs:
            namespace[f"_FOBJ{fi}"] = prog.by_index[fi]
