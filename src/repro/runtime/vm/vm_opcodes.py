"""Instruction set of the register bytecode VM.

An instruction is a plain tuple ``(opcode, *operands)``.  Operands are
register numbers, jump targets (absolute pcs), small immediates, constant
-pool indices, or (for the reuse/profile ops) inline descriptor tuples.
Registers 0..frame_size-1 are the function's sema-assigned variable
slots — the same layout the closure interpreter's frames use — and the
registers above them hold expression temporaries.

Cost accounting is carried *in the opcode stream*: value-computing ops
never touch the machine's counter tally.  The compiler batches each basic
block's statically-known operation classes into one ``CHARGE`` op (the
block-fusion discipline of :mod:`repro.runtime.fuse`), and the few ops
whose cost depends on runtime data — reuse probes and commits hashing a
variable number of words — charge inside their kernels, exactly as the
closure intrinsics do.

Observer ops (``PROF_*``, ``METER_*``) exist in the stream only when the
corresponding observer (cycle profiler, metrics registry) was installed
on the machine at compile time; an unobserved program's bytecode is
byte-identical to a bare run's.
"""

from __future__ import annotations

_next_op = iter(range(256)).__next__

# -- accounting ------------------------------------------------------------
CHARGE = _next_op()  # (pairs,)            pairs: ((cost_class, n), ...)

# -- data movement ---------------------------------------------------------
MOV = _next_op()     # (d, s)              R[d] = R[s]
LOADI = _next_op()   # (d, v)              R[d] = v  (int/float/None immediate)
LOADG = _next_op()   # (d, slot)           R[d] = machine.globals[slot]
STOREG = _next_op()  # (slot, s)           machine.globals[slot] = R[s]
GETBOX = _next_op()  # (d, s)              R[d] = R[s][0]
SETBOX = _next_op()  # (b, s)              R[b][0] = R[s]
NEWBOX = _next_op()  # (d, s)              R[d] = [R[s]]
NEWBOXI = _next_op() # (d, v)              R[d] = [v]
ALLOC_Z = _next_op() # (d, k)              R[d] = zero_value(consts[k])
ALLOC_T = _next_op() # (d, k)              R[d] = deep_copy_value(consts[k])

# -- control flow ----------------------------------------------------------
JUMP = _next_op()    # (t,)
JF = _next_op()      # (r, t)              jump to t when R[r] is falsy
JT = _next_op()      # (r, t)              jump to t when R[r] is truthy
RETV = _next_op()    # (r,)                charge RET; return R[r]
RET0 = _next_op()    # ()                  charge RET; return 0

# -- integer arithmetic (wrap to signed 32-bit like the closure backend) ----
ADD = _next_op()     # (d, a, b)
SUB = _next_op()
MUL = _next_op()
DIV = _next_op()     # c_div semantics (truncate toward zero, raise on 0)
MOD = _next_op()     # c_mod semantics
SHL = _next_op()
SHR = _next_op()
AND = _next_op()
OR = _next_op()
XOR = _next_op()
NEG = _next_op()     # (d, s)
BNOT = _next_op()    # (d, s)              R[d] = ~R[s]
NOT = _next_op()     # (d, s)              R[d] = 0 if R[s] else 1
BOOL = _next_op()    # (d, s)              R[d] = 1 if R[s] else 0

# -- float arithmetic ------------------------------------------------------
FADD = _next_op()    # (d, a, b)
FSUB = _next_op()
FMUL = _next_op()
FDIV = _next_op()    # raises on division by zero
FNEG = _next_op()    # (d, s)

# -- comparisons (int or float; result is 1/0) -----------------------------
EQ = _next_op()      # (d, a, b)
NE = _next_op()
LT = _next_op()
LE = _next_op()
GT = _next_op()
GE = _next_op()

# -- pointers / arrays -----------------------------------------------------
PADD = _next_op()    # (d, p, i)           pointer + int
PSUB = _next_op()    # (d, p, i)           pointer - int
PDIFF = _next_op()   # (d, a, b)           pointer difference (offsets)
IDX = _next_op()     # (d, b, i)           indexed load
IDXW = _next_op()    # (b, i, s)           indexed store
ADDR = _next_op()    # (d, b, i)           &base[i]
DEREF = _next_op()   # (d, p)              *p
DEREFW = _next_op()  # (p, s)              *p = R[s]

# -- calls -----------------------------------------------------------------
CALL = _next_op()    # (d, fi, args)       direct call, args: (reg, ...)
CALLI = _next_op()   # (d, t, args)        indirect call through R[t]
LOADFN = _next_op()  # (d, fi)             function value

# -- I/O and simple intrinsics ---------------------------------------------
INPUT_I = _next_op() # (d,)
INPUT_F = _next_op() # (d,)
INPUT_AV = _next_op()# (d,)
OUTPUT = _next_op()  # (s,)
PRINT = _next_op()   # (s,)
ASSERT = _next_op()  # (s,)
CAST_I = _next_op()  # (d, s)              wrap32(int(v))
CAST_F = _next_op()  # (d, s)              float(v)
ABS = _next_op()     # (d, s)              wrap32(abs(v))
FABS = _next_op()    # (d, s)              abs(float(v))
MIN = _next_op()     # (d, a, b)
MAX = _next_op()     # (d, a, b)
MATH = _next_op()    # (d, s, which)       which indexes MATH_FNS

# -- computation reuse (first-class ops) -----------------------------------
# srcs: ((mode, slot), ...) where mode 0 = register, 1 = boxed register,
# 2 = global slot; meta: ((value_kind, charge_class), ...) aligned with
# srcs.  The kernels charge key-building work only on the non-bypassed
# path, mirroring the closure intrinsics' governed-table gate check.
PROBE = _next_op()    # (d, seg, meta, srcs)
ROUT = _next_op()     # (d, seg, pos)      __reuse_out_i / __reuse_out_f
ROUT_ARR = _next_op() # (seg, pos, dest, cls)  dest register + its charge class
COMMIT = _next_op()   # (seg, meta, srcs)
REND = _next_op()     # (seg,)

# -- profiling stubs (zero cost, runtime-gated like the closures) ----------
PROFILE = _next_op()  # (seg, kinds, srcs)
FREQ = _next_op()     # (seg,)
SEGE = _next_op()     # (seg,)
SEGX = _next_op()     # (seg,)

# -- observer ops (emitted only when the observer is installed) ------------
PROF_ENTER = _next_op()  # (name,)         cycle_profiler.enter_function
PROF_EXIT = _next_op()   # ()
PROF_PB = _next_op()     # (seg,)          probe_begin
PROF_PE = _next_op()     # (seg, r)        probe_end(hit=R[r]==1, bypassed=...)
PROF_CB = _next_op()     # (seg,)          commit_begin
PROF_SX = _next_op()     # (seg,)          segment_exit
PROF_LINE = _next_op()   # (line,)         at_line — line-attribution mark
METER_FUNC = _next_op()  # (k,)            consts[k].inc()  (call counter)
METER_PROBE = _next_op() # (seg, r, k)     consts[k]: (bypassed, probes, hits, misses)

N_OPCODES = _next_op()

OP_NAMES = {
    value: name
    for name, value in sorted(globals().items())
    if isinstance(value, int) and name.isupper() and name not in ("N_OPCODES",)
}

# Source-fetch modes for PROBE/COMMIT/PROFILE descriptors.
SRC_REG = 0
SRC_BOX = 1
SRC_GLOBAL = 2
SRC_CONST = 3  # the slot field holds the literal value itself

# MATH op sub-functions, indexed by the ``which`` operand.
MATH_NAMES = ("__cos", "__sin", "__sqrt", "__floor")


def disassemble(code, consts=(), loops=None) -> str:
    """Human-readable listing of one function's instruction stream."""
    lines = []
    loops = loops or {}
    for pc, ins in enumerate(code):
        marks = []
        if pc in loops:
            marks.append("loop")
        operands = ", ".join(repr(x) for x in ins[1:])
        tag = f"  ; {' '.join(marks)}" if marks else ""
        lines.append(f"{pc:4d}  {OP_NAMES.get(ins[0], '?'):<12s} {operands}{tag}")
    return "\n".join(lines)
