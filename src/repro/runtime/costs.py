"""Operation-class cycle and energy cost model.

This module is the repo's substitute for the paper's Compaq iPAQ 3650
(Intel StrongARM SA-1110 @ 206 MHz, 5 V external supply).  Every dynamic
operation the interpreter executes is tallied into one of the classes
below; total cycles are the dot product of the tally with a per-class
cycle table, and the simulated wall-clock time is ``cycles / 206 MHz``.

Two cycle tables model GCC's -O0 and -O3:

* at **O0** every local variable access is a stack load/store;
* at **O3** scalar locals are register-allocated (zero-cost access),
  constants fold into instructions, and branches/calls are cheaper
  (scheduling, inlining of call overhead).  The O3 *compiler pipeline*
  additionally runs real optimization passes (:mod:`repro.opt`), so the
  dynamic operation tally itself also shrinks.

Float operations are expensive in both tables: the SA-1110 has no FPU,
so floats go through software emulation — this is why the paper's
MPEG2 Reference_IDCT granularity is four orders of magnitude larger than
G721's quan.

Energy: the iPAQ measurement in the paper is whole-device power at 5 V.
We model ``energy = P_base * time + sum(op_extra_energy)``, with memory
traffic (including reuse-table accesses) carrying a higher per-op energy
than ALU work.  P_base dominates, which reproduces the paper's
observation that energy savings track time savings to within a few
points, with small divergences where the op mix shifts toward memory.
"""

from __future__ import annotations

from dataclasses import dataclass

CLOCK_HZ = 206_000_000  # StrongARM SA-1110
SUPPLY_VOLTS = 5.0

# Operation classes (indices into the counter list) -----------------------
CONST = 0        # materialize a constant
LOCAL_RD = 1     # read a scalar local/param
LOCAL_WR = 2     # write a scalar local/param
GLOBAL_RD = 3    # read a scalar global
GLOBAL_WR = 4    # write a scalar global
MEM_RD = 5       # array/pointer load
MEM_WR = 6       # array/pointer store
ALU = 7          # integer add/sub/logic/compare/shift
MUL = 8          # integer multiply
DIV = 9          # integer divide/modulo
FALU = 10        # float add/sub/compare (software emulated)
FMUL = 11        # float multiply
FDIV = 12        # float divide
BRANCH = 13      # conditional/unconditional branch
CALL = 14        # function call overhead
RET = 15         # function return overhead
HASH_WORD = 16   # per-word reuse-table work (key build/compare/copy)
HASH_FIXED = 17  # per-probe fixed reuse-table overhead
MATH = 18        # libm-style intrinsic (__cos, __sqrt, ...)
IO = 19          # __input_* / __output_* stream access

N_CLASSES = 20

CLASS_NAMES = [
    "const", "local_rd", "local_wr", "global_rd", "global_wr",
    "mem_rd", "mem_wr", "alu", "mul", "div",
    "falu", "fmul", "fdiv", "branch", "call", "ret",
    "hash_word", "hash_fixed", "math", "io",
]

# Cycle tables --------------------------------------------------------------

#           CONST L_RD L_WR G_RD G_WR M_RD M_WR ALU MUL DIV FALU FMUL FDIV BR CALL RET HW  HF  MATH IO
_O0_CYCLES = [1,   2,   2,   3,   3,   3,   3,  1,  3,  22, 48,  64,  140, 2, 12,  6,  4,  14, 180, 3]
_O3_CYCLES = [0,   0,   0,   2,   2,   2,   2,  1,  2,  18, 40,  52,  120, 1, 6,   3,  3,  10, 150, 2]

# Per-op *extra* energy in nanojoules (on top of base power) ---------------
#           CONST L_RD L_WR G_RD G_WR M_RD M_WR ALU MUL DIV FALU FMUL FDIV BR CALL RET HW  HF  MATH IO
_OP_NJ = [0.2, 0.5, 0.5, 1.1, 1.1, 1.4, 1.4, 0.3, 0.9, 6.0, 13.0, 17.0, 38.0, 0.5, 3.2, 1.6, 1.9, 5.5, 48.0, 1.4]

# Whole-device base power in watts while running (screen/backlight/RAM/CPU
# idle components); tuned so simulated energies land in the paper's range.
BASE_WATTS = 1.9


# Tally vectors ------------------------------------------------------------
#
# A *tally vector* is a length-N_CLASSES list of per-class operation
# counts — the same shape as ``Machine.counters``.  Block-fused execution
# (:mod:`repro.runtime.fuse`) precomputes one static tally vector per
# basic block and charges it in a single batched update.


def zero_tally() -> list[int]:
    """A fresh all-zero tally vector."""
    return [0] * N_CLASSES


def add_tally(dst: list, delta) -> None:
    """Accumulate ``delta`` (a tally vector) into ``dst`` in place."""
    for i, n in enumerate(delta):
        if n:
            dst[i] += n


def tally_pairs(delta) -> list[tuple[int, int]]:
    """The nonzero (class, count) pairs of a tally vector, in class order.

    This sparse form is what fused code charges: one ``ctr[K] += n`` per
    operation class that actually occurs in the block.
    """
    return [(i, n) for i, n in enumerate(delta) if n]


@dataclass(frozen=True)
class CostTable:
    """A named per-class cycle table plus the shared energy model."""

    name: str
    cycles: tuple

    def cycles_for(self, counts) -> int:
        table = self.cycles
        return sum(c * k for c, k in zip(counts, table))

    def seconds_for(self, counts) -> float:
        return self.cycles_for(counts) / CLOCK_HZ

    def energy_joules_for(self, counts) -> float:
        seconds = self.seconds_for(counts)
        op_extra = sum(c * nj for c, nj in zip(counts, _OP_NJ)) * 1e-9
        return BASE_WATTS * seconds + op_extra


O0 = CostTable("O0", tuple(_O0_CYCLES))
O3 = CostTable("O3", tuple(_O3_CYCLES))

TABLES = {"O0": O0, "O3": O3}


def cost_table(name: str) -> CostTable:
    try:
        return TABLES[name]
    except KeyError:
        raise KeyError(f"unknown cost table {name!r}; choose from {sorted(TABLES)}") from None
