"""Debug info: a side-table mapping compiled artifacts to source lines.

A :class:`SourceMap` installed on a machine **before**
:func:`~repro.runtime.compiler.compile_program` makes both backends
record, per function, where every compiled unit came from:

* the VM compiler records a ``(pc, line)`` entry for every emitted
  instruction, a per-line charge-class breakdown for every fused
  ``CHARGE`` group, and the source line of every reuse site
  (probe / commit / end ops);
* the closure compiler records one ``(line, kind)`` entry per compiled
  statement closure plus the same reuse-site lines.

Recording is strictly observational — it never changes the emitted
bytecode or closure tree (the no-observer-effect differential pins
this), so debug info can always be on.  Lines refer to the *original*
parse: the reuse transformation preserves the line fields of the nodes
it moves and stamps the region's lines onto the intrinsics it
synthesizes.
"""

from __future__ import annotations

__all__ = ["SourceMap", "FunctionSourceMap"]


class FunctionSourceMap:
    """Debug info for one compiled function."""

    __slots__ = ("name", "pc_lines", "charge_lines", "sites", "stmt_lines")

    def __init__(self, name: str) -> None:
        self.name = name
        # VM: (pc, source line) per emitted instruction, in pc order.
        self.pc_lines: list[tuple[int, int]] = []
        # VM: pc of a CHARGE op -> ((line, cost_class, n), ...) breaking
        # the block-fused tally down by the line each charge came from.
        self.charge_lines: dict[int, tuple] = {}
        # seg_id -> {"probe_line" | "commit_line" | "end_line": line}
        self.sites: dict[int, dict[str, int]] = {}
        # closures: (line, statement kind) per compiled statement unit.
        self.stmt_lines: list[tuple[int, str]] = []

    def line_for_pc(self, pc: int) -> int:
        """Source line of the instruction at ``pc`` (0 when unknown)."""
        line = 0
        for at, ln in self.pc_lines:
            if at > pc:
                break
            line = ln
        return line

    def lines_used(self) -> set[int]:
        used = {ln for _, ln in self.pc_lines if ln > 0}
        used.update(ln for ln, _ in self.stmt_lines if ln > 0)
        for site in self.sites.values():
            used.update(ln for ln in site.values() if ln > 0)
        return used


class SourceMap:
    """Whole-program debug info; install as ``machine.source_map``."""

    def __init__(self) -> None:
        self.backend: str | None = None  # stamped by the compiler
        self.functions: dict[str, FunctionSourceMap] = {}

    def function(self, name: str) -> FunctionSourceMap:
        fn = self.functions.get(name)
        if fn is None:
            fn = self.functions[name] = FunctionSourceMap(name)
        return fn

    def sites(self) -> dict[int, tuple[str, dict[str, int]]]:
        """All reuse sites: seg_id -> (function name, site line dict)."""
        out: dict[int, tuple[str, dict[str, int]]] = {}
        for fn in self.functions.values():
            for seg_id, site in fn.sites.items():
                known = out.get(seg_id)
                if known is None:
                    out[seg_id] = (fn.name, dict(site))
                else:
                    known[1].update(site)
        return out

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "functions": {
                name: {
                    "pc_lines": [list(e) for e in fn.pc_lines],
                    "charge_lines": {
                        str(pc): [list(e) for e in entries]
                        for pc, entries in sorted(fn.charge_lines.items())
                    },
                    "sites": {str(s): dict(v) for s, v in sorted(fn.sites.items())},
                    "stmt_lines": [list(e) for e in fn.stmt_lines],
                }
                for name, fn in sorted(self.functions.items())
            },
        }
